//! # nmo-repro — reproduction of "Multi-level Memory-Centric Profiling on ARM
//! Processors with ARM SPE" (SC 2024)
//!
//! This meta-crate ties the workspace together and re-exports the public API
//! of every component:
//!
//! * [`arch_sim`] — the simulated ARM-server machine (caches, DRAM, VM, cores);
//! * [`perf_sub`] — the modelled `perf_event` ABI (attrs, ring/aux buffers, records);
//! * [`spe`] — the ARM Statistical Profiling Extension model (sampling unit,
//!   packet codec, driver, overhead model);
//! * [`nmo`] — the NMO profiler itself: the [`nmo::ProfileSession`] builder,
//!   pluggable [`nmo::SampleBackend`]s (SPE sampling, perf-stat counting),
//!   pluggable [`nmo::AnalysisSink`]s (capacity/bandwidth/region levels),
//!   the streaming pipeline ([`nmo::ProfileSession::run_streaming`], the
//!   [`nmo::stream`] event bus, live [`nmo::ActiveSession::poll_snapshot`]),
//!   configuration, annotations, and the accuracy & overhead analysis;
//! * [`workloads`] — STREAM, CFD, BFS, PageRank and In-memory Analytics.
//!
//! See `README.md` for a guided tour and a `ProfileSession` quickstart. The
//! runnable entry points are the examples in `examples/` and the `repro`
//! binary in `crates/nmo-bench`.

pub use arch_sim;
pub use nmo;
pub use perf_sub;
pub use spe;
pub use workloads;

/// One-call convenience: run a workload under NMO on a fresh simulated
/// Ampere-Altra-like machine and return the resulting profile.
///
/// This is the "preload the library and set environment variables" usage
/// model of the paper compressed into a function: the configuration can come
/// from [`nmo::NmoConfig::from_env`] or be built programmatically. It is a
/// thin wrapper over [`nmo::ProfileSession`]; use the session builder
/// directly for custom machines, backends, or sinks.
///
/// ```
/// use nmo_repro::{profile_workload, nmo::NmoConfig, workloads::StreamBench};
///
/// # fn main() -> Result<(), nmo_repro::nmo::NmoError> {
/// let profile = profile_workload(
///     Box::new(StreamBench::new(10_000, 1)),
///     &NmoConfig::paper_default(500),
///     2,
/// )?;
/// assert!(profile.processed_samples > 0);
/// # Ok(())
/// # }
/// ```
pub fn profile_workload(
    workload: Box<dyn workloads::Workload>,
    config: &nmo::NmoConfig,
    threads: usize,
) -> Result<nmo::Profile, nmo::NmoError> {
    nmo::ProfileSession::builder()
        .machine_config(arch_sim::MachineConfig::ampere_altra_max())
        .config(config.clone())
        .threads(threads)
        .workload(workload)
        .build()?
        .run()
}
