//! # nmo-repro — reproduction of "Multi-level Memory-Centric Profiling on ARM
//! Processors with ARM SPE" (SC 2024)
//!
//! This meta-crate ties the workspace together and re-exports the public API
//! of every component:
//!
//! * [`arch_sim`] — the simulated ARM-server machine (caches, DRAM, VM, cores);
//! * [`perf_sub`] — the modelled `perf_event` ABI (attrs, ring/aux buffers, records);
//! * [`spe`] — the ARM Statistical Profiling Extension model (sampling unit,
//!   packet codec, driver, overhead model);
//! * [`nmo`] — the NMO profiler itself (configuration, annotations, runtime,
//!   capacity/bandwidth/region profiling, accuracy & overhead analysis);
//! * [`workloads`] — STREAM, CFD, BFS, PageRank and In-memory Analytics.
//!
//! See `README.md` for a guided tour, `DESIGN.md` for the system inventory
//! and hardware-substitution argument, and `EXPERIMENTS.md` for the
//! paper-vs-measured comparison of every table and figure. The runnable
//! entry points are the examples in `examples/` and the `repro` binary in
//! `crates/nmo-bench`.

pub use arch_sim;
pub use nmo;
pub use perf_sub;
pub use spe;
pub use workloads;

/// One-call convenience: run a workload under NMO on a fresh simulated
/// Ampere-Altra-like machine and return the resulting profile.
///
/// This is the "preload the library and set environment variables" usage
/// model of the paper compressed into a function: the configuration can come
/// from [`nmo::NmoConfig::from_env`] or be built programmatically.
///
/// ```
/// use nmo_repro::{profile_workload, nmo::NmoConfig, workloads::StreamBench};
///
/// let profile = profile_workload(
///     Box::new(StreamBench::new(10_000, 1)),
///     &NmoConfig::paper_default(500),
///     2,
/// );
/// assert!(profile.processed_samples > 0);
/// ```
pub fn profile_workload(
    mut workload: Box<dyn workloads::Workload>,
    config: &nmo::NmoConfig,
    threads: usize,
) -> nmo::Profile {
    let machine = arch_sim::Machine::new(arch_sim::MachineConfig::ampere_altra_max());
    let mut profiler = nmo::Profiler::new(&machine, config.clone());
    let annotations = profiler.annotations();
    let cores: Vec<usize> = (0..threads).collect();
    workload.setup(&machine, &annotations);
    profiler.enable(&cores).expect("profiler enable");
    workload.run(&machine, &annotations, &cores);
    profiler.finish()
}
