//! Trace store & replay: end-to-end acceptance tests for `nmo::trace`.
//!
//! The contract under test (ISSUE 10 / ROADMAP item 3):
//!
//! * **Replay == live, bit for bit.** A sharded streaming run recorded
//!   through `TraceWriterSink` and replayed sequentially through fresh
//!   `LatencySink` + `HotPageTracker` instances produces byte-identical
//!   reports — same windows, same merge order — without re-simulating.
//! * **Indexed == sequential.** The parallel indexed replay
//!   (`TraceReader::replay_query`, one worker thread per segment) with an
//!   unrestricted query produces the same reports as sequential replay.
//! * **Slicing prunes.** A time-window-restricted query reads fewer blocks
//!   and feeds fewer samples than the full replay, and a core-restricted
//!   query only surfaces the selected cores' samples.
//! * **Damage is an error, not garbage.** Corrupting a stored segment makes
//!   replay fail with `NmoError::Trace` (never a panic, never silently
//!   wrong samples), while `TraceReader::verify` reports the damage with
//!   exact byte accounting.

use std::fs;
use std::path::{Path, PathBuf};

use nmo_repro::arch_sim::{MachineConfig, PlacementPolicy};
use nmo_repro::nmo::trace::replay_finish;
use nmo_repro::nmo::{
    AnalysisSink, HotPageTracker, LatencySink, NmoConfig, NoMigration, Profile, ProfileSession,
    StreamOptions, TraceQuery, TraceReader, TraceWriterSink,
};
use nmo_repro::workloads::PageRank;

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("nmo_trace_it_{tag}_{}", std::process::id()))
}

/// A sharded PageRank run on the tiered test machine, recorded to `dir`.
fn recorded_run(dir: &Path, shards: usize) -> Profile {
    ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.5,
        }))
        .config(NmoConfig::paper_default(100))
        .threads(4)
        .sink(LatencySink::default())
        .sink(HotPageTracker::new(NoMigration))
        .trace_dir(dir.to_path_buf())
        .stream_options(StreamOptions { window_ns: 100_000, shards, ..StreamOptions::default() })
        .workload(Box::new(PageRank::new(1 << 10, 8, 2)))
        .build()
        .expect("session builds")
        .run_streaming()
        .expect("recorded streaming run")
}

fn replay_sinks() -> Vec<Box<dyn AnalysisSink>> {
    vec![Box::new(LatencySink::default()), Box::new(HotPageTracker::new(NoMigration))]
}

/// Debug-format the named live report (panics if the run didn't produce it).
fn live_report(profile: &Profile, sink: &str) -> String {
    let rec = profile
        .analyses
        .iter()
        .find(|r| r.sink == sink)
        .unwrap_or_else(|| panic!("live run has no '{sink}' report"));
    format!("{:?}", rec.report)
}

#[test]
fn sequential_replay_is_bit_for_bit_equal_to_the_live_sharded_run() {
    let dir = tmp("seq_equiv");
    let profile = recorded_run(&dir, 4);
    let live_latency = live_report(&profile, "latency");
    let live_tiering = live_report(&profile, "tiering");
    assert!(profile.processed_samples > 0);

    let reader = TraceReader::open(&dir).expect("open trace");
    assert_eq!(reader.shards(), 4, "one segment per shard");
    assert_eq!(reader.window_ns(), 100_000, "recorded window geometry");
    let summary = reader.summary();
    assert!(summary.samples > 0 && summary.bytes > 0);

    let mut sinks = replay_sinks();
    let stats = reader.replay(&mut sinks).expect("sequential replay");
    assert_eq!(stats.segments, 4);
    assert!(stats.samples > 0 && stats.windows > 0, "{stats:?}");
    assert_eq!(stats.samples, summary.samples, "replay feeds every stored sample");

    let records = replay_finish(&mut sinks).expect("replay reports");
    assert_eq!(format!("{:?}", records[0].report), live_latency, "latency replay == live");
    assert_eq!(format!("{:?}", records[1].report), live_tiering, "tiering replay == live");
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn indexed_parallel_replay_matches_sequential_replay() {
    let dir = tmp("idx_equiv");
    recorded_run(&dir, 4);
    let reader = TraceReader::open(&dir).expect("open trace");

    let mut seq = replay_sinks();
    let seq_stats = reader.replay(&mut seq).expect("sequential replay");
    let seq_records = replay_finish(&mut seq).expect("sequential reports");

    let mut idx = replay_sinks();
    let idx_stats = reader.replay_query(&TraceQuery::all(), &mut idx).expect("indexed replay");
    let idx_records = replay_finish(&mut idx).expect("indexed reports");

    assert_eq!(idx_stats.samples, seq_stats.samples);
    assert_eq!(idx_stats.windows, seq_stats.windows);
    for (i, r) in idx_records.iter().enumerate() {
        assert_eq!(
            format!("{:?}", r.report),
            format!("{:?}", seq_records[i].report),
            "indexed replay diverged on '{}'",
            r.sink
        );
    }
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn window_and_core_sliced_queries_prune_blocks_and_samples() {
    let dir = tmp("sliced");
    recorded_run(&dir, 4);
    let reader = TraceReader::open(&dir).expect("open trace");

    let mut all = replay_sinks();
    let full = reader.replay_query(&TraceQuery::all(), &mut all).expect("full indexed replay");
    assert!(full.windows > 2, "need several windows to slice: {full:?}");

    // First half of the run only: strictly fewer samples and blocks read.
    let half = full.windows / 2;
    let mut sliced = replay_sinks();
    let slice_stats = reader
        .replay_query(&TraceQuery::all().with_windows(0, half - 1), &mut sliced)
        .expect("window-sliced replay");
    assert!(slice_stats.samples < full.samples, "{slice_stats:?} vs {full:?}");
    assert!(slice_stats.blocks < full.blocks, "index must prune whole blocks");
    assert_eq!(slice_stats.windows, half, "exactly the requested windows close");

    // Core slice: only core 0's samples survive (lanes are core-hashed, so
    // the index prunes the other shards' data blocks outright).
    let mut one_core: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let core_stats = reader
        .replay_query(&TraceQuery::all().with_cores([0]), &mut one_core)
        .expect("core-sliced replay");
    assert!(core_stats.samples > 0 && core_stats.samples < full.samples);

    // Both slices together compose.
    let mut both: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let both_stats = reader
        .replay_query(&TraceQuery::all().with_windows(0, half - 1).with_cores([0]), &mut both)
        .expect("window+core replay");
    assert!(both_stats.samples <= core_stats.samples.min(slice_stats.samples));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_segments_fail_replay_with_trace_error_and_verify_reports_them() {
    let dir = tmp("corrupt");
    recorded_run(&dir, 2);
    let reader = TraceReader::open(&dir).expect("open trace");
    let clean = reader.verify().expect("verify clean");
    assert!(clean.errors.is_empty(), "{:?}", clean.errors);
    assert!(clean.blocks > 0 && clean.skipped_bytes == 0);

    // Flip one byte in the middle of shard 0's block region.
    let seg = dir.join("shard-000.seg");
    let mut bytes = fs::read(&seg).expect("read segment");
    let mid = bytes.len() / 3;
    bytes[mid] ^= 0xff;
    fs::write(&seg, &bytes).expect("write corrupted segment");

    let mut sinks = replay_sinks();
    let err = reader.replay(&mut sinks).expect_err("corrupt replay must fail");
    assert!(matches!(err, nmo_repro::nmo::NmoError::Trace(_)), "want NmoError::Trace, got: {err}");

    let damaged = reader.verify().expect("verify damaged");
    assert!(!damaged.errors.is_empty(), "verify must surface the damage");
    assert!(damaged.skipped_bytes > 0, "damaged bytes are accounted, not consumed");
    fs::remove_dir_all(&dir).ok();
}

/// Post-hoc recording: a non-streaming `run()` still produces a replayable
/// trace via the `analyze` fallback (single segment, synthesized windows).
#[test]
fn posthoc_analyze_records_a_replayable_single_segment_trace() {
    let dir = tmp("posthoc");
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.5,
        }))
        .config(NmoConfig::paper_default(100))
        .threads(2)
        .sink(TraceWriterSink::new(dir.clone()))
        .workload(Box::new(PageRank::new(1 << 9, 8, 1)))
        .build()
        .expect("session builds")
        .run()
        .expect("post-hoc run");
    assert!(profile.processed_samples > 0);

    let reader = TraceReader::open(&dir).expect("open post-hoc trace");
    assert_eq!(reader.shards(), 1);
    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(LatencySink::default())];
    let stats = reader.replay(&mut sinks).expect("replay post-hoc trace");
    assert_eq!(stats.samples, profile.processed_samples, "every post-hoc sample is stored");
    fs::remove_dir_all(&dir).ok();
}
