//! Property-based tests (proptest) on the core data structures and
//! invariants: SPE packet codec, perf ring/aux buffers, time conversion,
//! cache behaviour, Eq. (1) accuracy bounds, and chunk partitioning.

use proptest::prelude::*;

use nmo_repro::arch_sim::{
    AddressSpace, Cache, CacheLevelConfig, DataSource, NodeId, OpKind, PlacementPolicy, TimeConv,
};
use nmo_repro::nmo::accuracy;
use nmo_repro::perf_sub::records::{AuxRecord, LostRecord, Record};
use nmo_repro::perf_sub::{AuxBuffer, MetadataPage, PerfEvent, PerfEventAttr, RingBuffer};
use nmo_repro::spe::packet::{decode_nmo_fields, decode_records, SpeRecord, SPE_RECORD_BYTES};
use nmo_repro::workloads::chunk_range;

const PAGE: u64 = 4096;

/// Build a placed address space: one region of `pages` pages, all touched.
fn placed_space(nodes: usize, placement: PlacementPolicy, pages: usize) -> (AddressSpace, u64) {
    let vm = AddressSpace::with_placement(PAGE, 1 << 30, nodes, placement);
    let region = vm.alloc("a", pages as u64 * PAGE).unwrap();
    for p in 0..pages as u64 {
        vm.place(region.start + p * PAGE).unwrap();
    }
    (vm, region.start)
}

/// The per-node RSS split must always sum to the total RSS.
fn assert_rss_consistent(vm: &AddressSpace, expect_pages: u64) {
    let (total, by_node) = vm.rss_snapshot();
    assert_eq!(total, expect_pages * PAGE, "total residency");
    assert_eq!(by_node.iter().sum::<u64>(), total, "per-node split sums to total");
}

/// Build a data source from a class selector and a node id (the offline
/// proptest shim has no `prop_map`, so the mapping happens in the test body).
fn source_from(class: u8, node: u8) -> DataSource {
    match class % 5 {
        0 => DataSource::L1,
        1 => DataSource::L2,
        2 => DataSource::Slc,
        3 => DataSource::Dram(node),
        _ => DataSource::RemoteDram(node),
    }
}

fn arb_kind() -> impl Strategy<Value = OpKind> {
    prop_oneof![Just(OpKind::Load), Just(OpKind::Store)]
}

proptest! {
    #[test]
    fn spe_record_roundtrips_for_arbitrary_fields(
        pc in any::<u64>(),
        vaddr in 1u64..u64::MAX,
        ts in 1u64..u64::MAX,
        latency in 0u64..100_000,
        kind in arb_kind(),
        source_class in 0u8..5,
        node in 0u8..16,
    ) {
        let source = source_from(source_class, node);
        let rec = SpeRecord::new(pc, vaddr, ts, latency, kind, source);
        let bytes = rec.encode();
        prop_assert_eq!(bytes.len(), SPE_RECORD_BYTES);
        let back = SpeRecord::decode(&bytes).expect("decode");
        prop_assert_eq!(back, rec);
        let (va, t) = decode_nmo_fields(&bytes).expect("nmo decode");
        prop_assert_eq!(va, vaddr);
        prop_assert_eq!(t, ts);
    }

    #[test]
    fn corrupting_any_header_byte_never_panics_and_zero_fields_are_rejected(
        vaddr in 1u64..u64::MAX,
        ts in 1u64..u64::MAX,
        corrupt_at in 0usize..64,
        new_byte in any::<u8>(),
    ) {
        let rec = SpeRecord::new(0, vaddr, ts, 5, OpKind::Load, DataSource::L1);
        let mut bytes = rec.encode();
        bytes[corrupt_at] = new_byte;
        // Must never panic; may or may not decode depending on which byte
        // was hit.
        let _ = SpeRecord::decode(&bytes);
        let _ = decode_nmo_fields(&bytes);
        // Zero address / timestamp records are always rejected by the NMO decode.
        let zero = SpeRecord::new(0, 0, ts, 5, OpKind::Load, DataSource::L1);
        prop_assert!(decode_nmo_fields(&zero.encode()).is_none());
    }

    #[test]
    fn perf_records_roundtrip(offset in any::<u64>(), size in any::<u64>(), flags in 0u64..16, id in any::<u64>(), lost in any::<u64>()) {
        for rec in [
            Record::Aux(AuxRecord { aux_offset: offset, aux_size: size, flags }),
            Record::Lost(LostRecord { id, lost }),
        ] {
            let back = Record::from_bytes(&rec.to_bytes()).expect("roundtrip");
            prop_assert_eq!(back, rec);
        }
    }

    #[test]
    fn ring_buffer_fifo_order_and_no_loss_below_capacity(
        sizes in prop::collection::vec(1u64..10_000, 1..40)
    ) {
        let meta = MetadataPage::default();
        let ring = RingBuffer::new(8, 4096).unwrap();
        // Interleave writes and reads; everything written must come back in order.
        let mut expected = std::collections::VecDeque::new();
        for (i, size) in sizes.iter().enumerate() {
            let rec = Record::Aux(AuxRecord { aux_offset: i as u64 * 64, aux_size: *size, flags: 0 });
            prop_assert!(ring.write_record(&rec, &meta), "writes below capacity never fail");
            expected.push_back(rec);
            if i % 3 == 0 {
                if let Some(rec) = ring.read_record(&meta).unwrap() {
                    prop_assert_eq!(rec, expected.pop_front().unwrap());
                }
            }
        }
        while let Some(rec) = ring.read_record(&meta).unwrap() {
            prop_assert_eq!(rec, expected.pop_front().unwrap());
        }
        prop_assert!(expected.is_empty());
        prop_assert_eq!(ring.lost(), 0);
    }

    #[test]
    fn aux_buffer_head_tail_invariants_hold(
        writes in prop::collection::vec(1usize..512, 1..60),
        drain_every in 1usize..8,
    ) {
        let meta = MetadataPage::default();
        let aux = AuxBuffer::new(4, 1024).unwrap();
        for (i, len) in writes.iter().enumerate() {
            let data = vec![0xa5u8; *len];
            let _ = aux.write(&data, &meta);
            prop_assert!(aux.head() >= aux.tail());
            prop_assert!(aux.head() - aux.tail() <= aux.capacity());
            if i % drain_every == 0 {
                aux.advance_tail(aux.head(), &meta);
                prop_assert_eq!(aux.unconsumed(), 0);
            }
        }
    }

    #[test]
    fn event_drain_head_tail_and_lost_accounting(
        bursts in prop::collection::vec(1usize..12, 1..30),
    ) {
        // A deliberately tiny ring (one 256-byte page = eight 32-byte AUX
        // records) so bursts overflow it regularly; the monotonic head/tail
        // arithmetic and the lost counter must stay consistent through many
        // wrap-arounds of the drain API.
        let ev = PerfEvent::open(PerfEventAttr::arm_spe_loads_stores(4096), 0, 1, 256).unwrap();
        let mut published = 0u64;
        let mut accepted = 0u64;
        let mut consumed = 0u64;
        for burst in bursts {
            for _ in 0..burst {
                let rec = Record::Aux(AuxRecord {
                    aux_offset: accepted * 64,
                    aux_size: 64,
                    flags: 0,
                });
                if ev.publish(rec) {
                    accepted += 1;
                }
                published += 1;
                prop_assert!(ev.ring().head() >= ev.ring().tail());
                prop_assert!(ev.ring().head() - ev.ring().tail() <= ev.ring().capacity());
            }
            let mut drain = ev.drain();
            for rec in drain.by_ref() {
                // Accepted records come back in publish order, never
                // corrupted by the wrap.
                match rec {
                    Record::Aux(a) => prop_assert_eq!(a.aux_offset, consumed * 64),
                    other => prop_assert!(false, "unexpected record {:?}", other),
                }
                consumed += 1;
            }
            prop_assert!(drain.error().is_none());
            prop_assert_eq!(ev.ring().head(), ev.ring().tail());
        }
        prop_assert_eq!(consumed, accepted);
        prop_assert_eq!(ev.lost_records(), published - accepted);
    }

    #[test]
    fn aux_wraparound_reads_return_exactly_what_was_written(
        lens in prop::collection::vec(1u64..300, 1..50),
    ) {
        let meta = MetadataPage::default();
        let aux = AuxBuffer::new(1, 512).unwrap();
        let mut fill = 0u8;
        for len in lens {
            let data: Vec<u8> = (0..len).map(|i| fill.wrapping_add(i as u8)).collect();
            fill = fill.wrapping_add(17);
            match aux.write(&data, &meta) {
                Some(offset) => {
                    // Monotonic offsets map onto the circular storage; the
                    // read must reproduce the bytes across any wrap.
                    prop_assert_eq!(aux.read_at(offset, len), data);
                    aux.advance_tail(offset + len, &meta);
                    prop_assert_eq!(aux.unconsumed(), 0);
                }
                None => {
                    // Only oversized writes can fail here (the buffer is
                    // drained after every accepted write).
                    prop_assert!(len > aux.capacity());
                }
            }
            prop_assert!(aux.head() >= aux.tail());
            prop_assert!(aux.head() - aux.tail() <= aux.capacity());
        }
    }

    #[test]
    fn time_conversion_via_mmap_triple_is_close_to_exact(
        cycles in 0u64..10_000_000_000,
        time_zero in 0u64..1_000_000,
    ) {
        let tc = TimeConv::altra().with_time_zero(time_zero);
        let ticks = tc.cycles_to_timer_ticks(cycles);
        let exact = tc.timer_ticks_to_ns(ticks);
        let (zero, shift, mult) = tc.perf_mmap_triple();
        let approx = TimeConv::apply_mmap_triple(ticks, zero, shift, mult);
        // Within 0.01% or 2us, whichever is larger.
        let tolerance = (exact / 10_000).max(2_000);
        prop_assert!(exact.abs_diff(approx) <= tolerance, "exact={exact} approx={approx}");
    }

    #[test]
    fn accuracy_is_always_a_valid_fraction(mem in 0u64..u64::MAX, samples in 0u64..1_000_000_000, period in 0u64..1_000_000) {
        let a = accuracy(mem, samples, period);
        prop_assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn accuracy_is_perfect_when_estimate_matches(samples in 1u64..1_000_000, period in 1u64..100_000) {
        let mem = samples * period;
        let a = accuracy(mem, samples, period);
        prop_assert!((a - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cache_probe_agrees_with_access_history(addresses in prop::collection::vec(0u64..(1<<16), 1..200)) {
        let cfg = CacheLevelConfig {
            size_bytes: 64 * 1024, // larger than the address range: no evictions
            line_bytes: 64,
            ways: 4,
            latency_cycles: 1,
            occupancy_cycles: 1,
        };
        let mut cache = Cache::new(&cfg);
        let mut touched_lines = std::collections::HashSet::new();
        for addr in &addresses {
            let was_touched = touched_lines.contains(&(addr >> 6));
            let res = cache.access(*addr, false);
            prop_assert_eq!(res.hit, was_touched, "addr {:#x}", addr);
            touched_lines.insert(addr >> 6);
        }
        for addr in &addresses {
            prop_assert!(cache.probe(*addr));
        }
    }

    #[test]
    fn interleave_spreads_pages_within_one_of_even(
        nodes in 2usize..=4,
        pages in 1usize..300,
    ) {
        let (vm, _) = placed_space(nodes, PlacementPolicy::Interleave, pages);
        let by_node = vm.rss_bytes_by_node();
        let counts: Vec<u64> = by_node[..nodes].iter().map(|b| b / PAGE).collect();
        let (min, max) = (counts.iter().min().unwrap(), counts.iter().max().unwrap());
        prop_assert!(max - min <= 1, "counts {counts:?} not within one of even");
        prop_assert_eq!(counts.iter().sum::<u64>(), pages as u64);
        assert_rss_consistent(&vm, pages as u64);
    }

    #[test]
    fn tier_split_respects_the_fraction_within_one_page(
        fraction in any::<f64>(),
        pages in 1usize..300,
    ) {
        let placement = PlacementPolicy::TierSplit { local_fraction: fraction };
        let (vm, _) = placed_space(2, placement, pages);
        let local_pages = (vm.rss_bytes_by_node()[0] / PAGE) as f64;
        let target = fraction.clamp(0.0, 1.0) * pages as f64;
        prop_assert!(
            (local_pages - target).abs() <= 1.0,
            "local {local_pages} vs target {target} (fraction {fraction}, {pages} pages)"
        );
        assert_rss_consistent(&vm, pages as u64);
    }

    #[test]
    fn rss_invariants_survive_arbitrary_migration_sequences(
        nodes in 2usize..=4,
        pages in 1usize..120,
        move_pages in prop::collection::vec(0usize..1_000, 0..60),
        move_nodes in prop::collection::vec(0u8..6, 0..60),
    ) {
        let (vm, start) = placed_space(nodes, PlacementPolicy::Interleave, pages);
        for (page_sel, dst) in move_pages.iter().zip(move_nodes.iter()) {
            let addr = start + (*page_sel as u64 % pages as u64) * PAGE;
            let before = vm.node_of(addr);
            match vm.migrate_page(addr, *dst) {
                Some(mig) => {
                    prop_assert!((*dst as usize) < nodes, "out-of-range target never applies");
                    prop_assert_eq!(Some(mig.from), before);
                    prop_assert_eq!(mig.to, *dst);
                    prop_assert_eq!(vm.node_of(addr), Some(*dst), "home follows the migration");
                }
                None => {
                    // Legal no-ops only: already home or invalid target.
                    prop_assert!(
                        before == Some(*dst) || *dst as usize >= nodes,
                        "unexpected no-op: page {page_sel} -> node {dst}"
                    );
                    prop_assert_eq!(vm.node_of(addr), before, "no-op changes nothing");
                }
            }
            assert_rss_consistent(&vm, pages as u64);
        }
    }

    #[test]
    fn placement_sequence_is_unaffected_by_interleaved_migrations(
        nodes in 2usize..=4,
        pages in 2usize..100,
        migrate_every in 1usize..8,
    ) {
        // First-touch placement (round-robin under Interleave) must not be
        // disturbed by migrations happening between touches.
        let vm = AddressSpace::with_placement(PAGE, 1 << 30, nodes, PlacementPolicy::Interleave);
        let region = vm.alloc("a", pages as u64 * PAGE).unwrap();
        for p in 0..pages as u64 {
            let home = vm.place(region.start + p * PAGE).unwrap();
            prop_assert!(home.first_touch);
            prop_assert_eq!(home.node, (p % nodes as u64) as NodeId, "round-robin continues");
            if (p as usize).is_multiple_of(migrate_every) {
                // Shuffle an earlier page around between the touches.
                vm.migrate_page(region.start, ((p as usize + 1) % nodes) as NodeId);
            }
            let (total, by_node) = vm.rss_snapshot();
            prop_assert_eq!(total, (p + 1) * PAGE);
            prop_assert_eq!(by_node.iter().sum::<u64>(), total);
        }
    }

    #[test]
    fn decode_records_never_panics_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..2048),
    ) {
        let mut iter = decode_records(&data);
        let mut decoded = 0u64;
        for rec in iter.by_ref() {
            prop_assert!(rec.vaddr != 0 && rec.ticks != 0, "zero fields are always rejected");
            decoded += 1;
        }
        prop_assert_eq!(iter.decoded(), decoded);
        // Loss accounting covers every undecoded byte exactly.
        prop_assert_eq!(
            decoded * SPE_RECORD_BYTES as u64 + iter.skipped_bytes(),
            data.len() as u64
        );
        // And the record-level skip count covers every 64-byte slot plus
        // the trailing partial (if any).
        let full_slots = (data.len() / SPE_RECORD_BYTES) as u64;
        let partial = (data.len() % SPE_RECORD_BYTES != 0) as u64;
        prop_assert_eq!(decoded + iter.skipped(), full_slots + partial);
    }

    #[test]
    fn decode_records_on_corrupted_truncated_streams_accounts_exactly(
        n in 1usize..20,
        corrupt_at in prop::collection::vec(0usize..1280, 0..48),
        corrupt_with in prop::collection::vec(any::<u8>(), 0..48),
        cut in 0usize..1281,
    ) {
        // A valid stream of n records, then arbitrary byte corruption and
        // an arbitrary truncation point.
        let mut data = Vec::with_capacity(n * SPE_RECORD_BYTES);
        for i in 0..n as u64 {
            let rec = SpeRecord::new(
                0x40_0000 + i,
                0xffff_0000_0000 + (i + 1) * 64,
                1 + i * 1000,
                i % 800,
                if i % 2 == 0 { OpKind::Load } else { OpKind::Store },
                source_from((i % 5) as u8, (i % 4) as u8),
            );
            data.extend_from_slice(&rec.encode());
        }
        for (pos, byte) in corrupt_at.iter().zip(corrupt_with.iter()) {
            let at = pos % data.len();
            data[at] = *byte;
        }
        data.truncate(cut.min(data.len()));

        let mut iter = decode_records(&data);
        let decoded = iter.by_ref().count() as u64;
        prop_assert!(decoded <= n as u64, "cannot decode more records than were written");
        prop_assert_eq!(
            decoded * SPE_RECORD_BYTES as u64 + iter.skipped_bytes(),
            data.len() as u64,
            "skip/loss accounting must exactly cover the undecoded bytes"
        );
    }

    #[test]
    fn chunk_range_partitions_any_n(n in 0usize..10_000, parts in 1usize..64) {
        let mut total = 0usize;
        let mut prev_end = 0usize;
        for p in 0..parts {
            let r = chunk_range(n, parts, p);
            prop_assert!(r.start == prev_end, "ranges must be contiguous");
            prop_assert!(r.end >= r.start);
            total += r.len();
            prev_end = r.end;
        }
        prop_assert_eq!(total, n);
        prop_assert_eq!(prev_end, n);
    }
}

// ---------------------------------------------------------------------------
// Trace store (nmo::trace): codec fuzzing and shard-count round trips.
// ---------------------------------------------------------------------------

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nmo_repro::nmo::trace::scan_blocks;
use nmo_repro::nmo::{
    AddressSample, AnalysisReport, AnalysisSink, Annotations, BatchPayload, NmoError, SampleBatch,
    StreamContext, TraceReader, TraceWriterSink, WindowClock,
};
use nmo_repro::spe::SpeStatsSnapshot;

const TRACE_WINDOW_NS: u64 = 100_000;

/// Unique per-process trace directories for the property runs.
fn trace_tmp(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("nmo_trace_prop_{tag}_{}_{n}", std::process::id()))
}

fn trace_ctx() -> StreamContext {
    StreamContext {
        annotations: Arc::new(Annotations::new()),
        capacity_bytes: 1 << 30,
        bucket_ns: 1000,
        mem_nodes: 2,
        page_bytes: 4096,
        machine: None,
    }
}

/// Write `samples` to a trace at `dir` through `shards` writer shards, the
/// way the live sharded pipeline would: per-window per-core batches on the
/// core-hashed lane, closes delivered to every shard in window order.
fn write_sharded_trace(dir: &Path, shards: usize, samples: &[AddressSample]) {
    let ctx = trace_ctx();
    let clock = WindowClock::new(TRACE_WINDOW_NS);
    let mut by_window: BTreeMap<u64, BTreeMap<usize, Vec<AddressSample>>> = BTreeMap::new();
    for s in samples {
        by_window.entry(clock.index_of(s.time_ns)).or_default().entry(s.core).or_default().push(*s);
    }
    let last_window = by_window.keys().next_back().copied().unwrap_or(0);

    let mut sink = TraceWriterSink::new(dir.to_path_buf());
    sink.on_stream_start(&ctx);
    let writer = sink.as_shardable().expect("trace writer is shardable");
    let mut workers: Vec<_> = (0..shards).map(|s| writer.make_shard(s, &ctx)).collect();
    let mut seq = 0u64;
    for wi in 0..=last_window {
        let window = clock.window(wi);
        if let Some(cores) = by_window.get(&wi) {
            for (&core, core_samples) in cores {
                let loss = SpeStatsSnapshot {
                    samples_selected: core_samples.len() as u64,
                    ..SpeStatsSnapshot::default()
                };
                let mut batch = SampleBatch::new(
                    "spe",
                    Some(core),
                    window,
                    BatchPayload::SpeSamples { samples: core_samples.clone(), loss },
                );
                batch.seq = seq;
                seq += 1;
                workers[core % shards].on_batch(&batch);
            }
        }
        for w in workers.iter_mut() {
            w.on_window_close(window);
        }
    }
    let states = workers.into_iter().map(|w| w.finish()).collect();
    sink.as_shardable().expect("still shardable").merge_final(states);
    let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(sink)];
    nmo_repro::nmo::trace::replay_finish(&mut sinks).expect("manifest written");
}

/// Legacy (non-sharded) sink that collects every replayed sample through a
/// shared handle, so the test can inspect what a replay delivered.
struct CollectorSink {
    out: Arc<parking_lot::Mutex<Vec<AddressSample>>>,
}

impl AnalysisSink for CollectorSink {
    fn name(&self) -> &'static str {
        "collector"
    }
    fn analyze(
        &mut self,
        _machine: &nmo_repro::arch_sim::Machine,
        _profile: &nmo_repro::nmo::Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Text(String::new()))
    }
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            self.out.lock().extend_from_slice(samples);
        }
    }
}

/// Canonical order for comparing sample multisets.
fn sample_sort_key(s: &AddressSample) -> (u64, u64, usize, u16, bool, u8) {
    (s.time_ns, s.vaddr, s.core, s.latency, s.is_store, s.source.encode())
}

proptest! {
    /// The lenient block scanner never panics on arbitrary bytes, and its
    /// consumed/skipped accounting covers every byte exactly (the
    /// `decode_records` fuzz-harness contract, ported to the trace codec).
    #[test]
    fn scan_blocks_never_panics_and_accounts_exactly_on_arbitrary_bytes(
        data in prop::collection::vec(any::<u8>(), 0..4096),
    ) {
        let scan = scan_blocks(&data);
        prop_assert_eq!(scan.consumed_bytes + scan.skipped_bytes, data.len());
        let frame_bytes: usize = scan.blocks.iter().map(|b| b.frame_len).sum();
        prop_assert_eq!(frame_bytes, scan.consumed_bytes);
    }

    /// Arbitrary sample streams written through 1, 2, and 8 writer shards
    /// replay to exactly the same sample multiset — the encode→decode round
    /// trip is lossless and shard-count-independent.
    #[test]
    fn trace_round_trips_arbitrary_streams_across_shard_counts(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
        vaddr_pages in prop::collection::vec(0u64..1_000, 1..200),
        cores in prop::collection::vec(0usize..8, 1..200),
        latencies in prop::collection::vec(0u64..4096, 1..200),
        source_classes in prop::collection::vec(0u8..5, 1..200),
        nodes in prop::collection::vec(0u8..4, 1..200),
    ) {
        let n = times
            .len()
            .min(vaddr_pages.len())
            .min(cores.len())
            .min(latencies.len())
            .min(source_classes.len())
            .min(nodes.len());
        let samples: Vec<AddressSample> = (0..n)
            .map(|i| AddressSample {
                time_ns: times[i],
                vaddr: 0x1000_0000 + vaddr_pages[i] * 4096 + (i as u64 % 64) * 64,
                core: cores[i],
                is_store: i % 3 == 0,
                latency: latencies[i] as u16,
                source: source_from(source_classes[i], nodes[i]),
            })
            .collect();
        let mut expected = samples.clone();
        expected.sort_by_key(sample_sort_key);

        for shards in [1usize, 2, 8] {
            let dir = trace_tmp("rt");
            write_sharded_trace(&dir, shards, &samples);

            let reader = TraceReader::open(&dir).expect("open trace");
            prop_assert_eq!(reader.shards(), shards);
            let out = Arc::new(parking_lot::Mutex::named(Vec::new(), "test.collector"));
            let mut sinks: Vec<Box<dyn AnalysisSink>> =
                vec![Box::new(CollectorSink { out: Arc::clone(&out) })];
            let stats = reader.replay(&mut sinks).expect("replay");
            prop_assert_eq!(stats.samples, n as u64, "shards={}", shards);

            let mut got = std::mem::take(&mut *out.lock());
            got.sort_by_key(sample_sort_key);
            prop_assert_eq!(&got, &expected, "shards={}", shards);
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    /// A valid segment block region survives arbitrary corruption + an
    /// arbitrary truncation point: the scanner never panics, never
    /// double-counts a byte, and never recovers more blocks than written.
    #[test]
    fn scan_blocks_on_corrupted_truncated_segments_accounts_exactly(
        pages in prop::collection::vec(0u64..64, 1..100),
        corrupt_at in prop::collection::vec(0usize..1_000_000, 0..32),
        corrupt_with in prop::collection::vec(any::<u8>(), 0..32),
        cut_frac in 0u64..=1_000,
    ) {
        let samples: Vec<AddressSample> = pages
            .iter()
            .enumerate()
            .map(|(i, &p)| AddressSample {
                time_ns: i as u64 * 1000,
                vaddr: 0x2000_0000 + p * 4096,
                core: i % 4,
                is_store: i % 2 == 0,
                latency: (i % 900) as u16,
                source: source_from((i % 5) as u8, (i % 2) as u8),
            })
            .collect();
        let dir = trace_tmp("corrupt");
        write_sharded_trace(&dir, 1, &samples);
        let seg = dir.join("shard-000.seg");
        let bytes = std::fs::read(&seg).expect("segment bytes");
        std::fs::remove_dir_all(&dir).ok();

        // Block region = after the 8-byte header, before the footer index
        // (trailer's last 12 bytes end with the index offset + magic).
        let trailer = bytes.len() - 12;
        let index_offset =
            u64::from_le_bytes(bytes[trailer..trailer + 8].try_into().expect("8 bytes")) as usize;
        let mut region = bytes[8..index_offset].to_vec();
        let clean = scan_blocks(&region);
        let written_blocks = clean.blocks.len();
        prop_assert_eq!(clean.skipped_bytes, 0);

        for (pos, byte) in corrupt_at.iter().zip(corrupt_with.iter()) {
            let at = pos % region.len();
            region[at] = *byte;
        }
        let cut = (region.len() as u64 * cut_frac / 1_000) as usize;
        region.truncate(cut);

        let scan = scan_blocks(&region);
        prop_assert_eq!(scan.consumed_bytes + scan.skipped_bytes, region.len());
        prop_assert!(scan.blocks.len() <= written_blocks, "cannot recover unwritten blocks");
    }
}
