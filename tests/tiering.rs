//! Profile-guided tiering integration tests: the deterministic manual
//! actuation path (two identically configured runs reproduce the same
//! samples, histograms, and migration decisions), the streaming
//! auto-actuation path (the `HotPageTracker` sink migrates mid-run), and
//! the streaming==post-hoc sink equivalence with migrations active.
use nmo_repro::arch_sim::{MachineConfig, PlacementPolicy};
use nmo_repro::nmo::tiering::{AppliedMigration, HotPageTracker, NoMigration, TopKHot};
use nmo_repro::nmo::{
    BackpressurePolicy, LatencyProfile, LatencySink, NmoConfig, NmoError, Profile, ProfileSession,
    StreamOptions,
};

fn tiered_session(local_fraction: f64, threads: usize, window_ns: u64) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction,
        }))
        .config(NmoConfig {
            // Publish SPE records every few KiB so samples reach the
            // pipeline (and the tracker) with bounded lag.
            aux_watermark_bytes: Some(4096),
            ..NmoConfig::paper_default(64)
        })
        .threads(threads)
        .sink(LatencySink::default())
        .stream_options(StreamOptions {
            window_ns,
            backpressure: BackpressurePolicy::Block,
            ..StreamOptions::default()
        })
        .build()
        .expect("session builds")
}

/// One deterministic tiered run: a single-threaded skewed workload driven
/// in chunks, with `ActiveSession::tiering_step` actuating a `TopKHot`
/// tracker between the chunks. Everything that matters — drains, window
/// closes, decisions, migrations — happens at fixed points of the
/// *simulated* timeline.
fn deterministic_run(chunks: usize) -> (Profile, Vec<AppliedMigration>) {
    let session = tiered_session(0.25, 1, 200_000);
    let mut active = session.start().expect("start");
    let mut tracker = HotPageTracker::new(TopKHot::new(4, 1));
    let page = active.machine().config().page_bytes;
    let region = active.machine().alloc("data", 64 * page).expect("alloc");
    let mut applied = Vec::new();
    for _ in 0..chunks {
        {
            let mut e = active.machine().attach(0).expect("attach");
            for i in 0..30_000u64 {
                // Hot set: the first 8 pages, cycled densely. Cold set: a
                // stream over the remaining 56 pages.
                let hot = (i % 8) * page + (i % 64) * 8;
                e.load(region.start + hot, 8);
                let cold = 8 * page + (i * 64) % (56 * page);
                e.load(region.start + cold, 8);
            }
        }
        // The engine drop above flushed and published every buffered SPE
        // record, and tiering_step's synchronous drain is gated against the
        // backend's monitor thread — so the step observes the complete,
        // wall-clock-independent prefix of the sample stream.
        applied.extend(active.tiering_step(&mut tracker).expect("tiering step"));
    }
    let profile = active.finish().expect("finish");
    (profile, applied)
}

#[test]
fn tiering_runs_are_deterministic_end_to_end() {
    let (p1, a1) = deterministic_run(4);
    let (p2, a2) = deterministic_run(4);

    // Identical sample counts...
    assert_eq!(p1.processed_samples, p2.processed_samples);
    assert_eq!(p1.samples.len(), p2.samples.len());
    assert_eq!(p1.counters.mem_access, p2.counters.mem_access);
    assert_eq!(p1.counters.cycles, p2.counters.cycles, "whole simulated timeline pinned");
    // ...identical per-tier latency histograms...
    assert_eq!(p1.latency(), p2.latency());
    // ...and identical migration decisions, in order.
    assert_eq!(a1, a2);
    assert!(!a1.is_empty(), "the policy migrated at least once");
    assert_eq!(p1.migrations, p2.migrations);
    assert_eq!(p1.migrations.migrations, a1.len() as u64);
    assert!(p1.migrations.promoted_pages > 0, "{:?}", p1.migrations);
}

#[test]
fn manual_actuation_promotes_hot_pages_and_cuts_remote_latency() {
    let (profile, applied) = deterministic_run(4);
    // TierSplit(0.25) homes 3/4 of the pages remotely; the hot set is hit
    // thousands of times per chunk, so TopKHot promotes it.
    assert!(applied.iter().all(|m| m.is_promotion()));
    let page = MachineConfig::small_test().page_bytes;
    assert_eq!(profile.migrations.promoted_bytes, applied.len() as u64 * page);
    // Promoted pages are served locally afterwards: the local-DRAM share
    // of samples is substantial even though only 1/4 of pages started local.
    let latency = profile.latency();
    assert!(latency.local_dram().count() > 0);
    assert!(latency.remote_dram().count() > 0);
    // Migration counts surface in the summary line.
    let summary = profile.summary();
    assert!(summary.contains("page migrations"), "{summary}");
}

#[test]
fn tiering_step_is_rejected_on_streaming_sessions() {
    let active = tiered_session(0.5, 1, 100_000).start_streaming().expect("start");
    let mut tracker = HotPageTracker::new(NoMigration);
    let err = {
        let mut active = active;
        let result = active.tiering_step(&mut tracker);
        let err = result.expect_err("streaming sessions refuse the manual actuator");
        drop(active.finish());
        err
    };
    assert!(matches!(err, NmoError::Config(_)), "{err}");
}

/// The streaming path: a `HotPageTracker` registered as a sink applies
/// migrations mid-run from the consumer thread, the live snapshot carries
/// the migration counters, and the sinks' incremental aggregation still
/// equals a post-hoc scan over the same run's samples — streaming==post-hoc
/// equivalence is preserved with migrations active.
#[test]
fn streaming_tiering_migrates_and_preserves_sink_equivalence() {
    let session = ProfileSession::builder()
        .machine_config(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.1,
        }))
        .config(NmoConfig { aux_watermark_bytes: Some(4096), ..NmoConfig::paper_default(64) })
        .threads(2)
        .sink(LatencySink::default())
        .sink(HotPageTracker::new(TopKHot::new(8, 1)))
        .stream_options(StreamOptions {
            window_ns: 100_000,
            backpressure: BackpressurePolicy::Block,
            ..StreamOptions::default()
        })
        .build()
        .expect("session builds");

    let active = session.start_streaming().expect("start streaming");
    let page = active.machine().config().page_bytes;
    let region = active.machine().alloc("data", 64 * page).expect("alloc");
    std::thread::scope(|s| {
        for (t, &core) in active.cores().iter().enumerate() {
            let machine = active.machine();
            let region = region.clone();
            s.spawn(move || {
                let mut e = machine.attach(core).expect("attach");
                let base = region.start + t as u64 * 32 * page;
                for i in 0..150_000u64 {
                    let hot = (i % 4) * page + (i % 64) * 8;
                    e.load(base + hot, 8);
                    let cold = 4 * page + (i * 64) % (28 * page);
                    e.load(base + cold, 8);
                }
            });
        }
    });
    let snapshot = active.poll_snapshot().expect("streaming snapshot");
    let profile = active.finish().expect("finish");

    // Migrations happened and are visible everywhere they should be.
    assert!(profile.migrations.migrations > 0, "{:?}", profile.migrations);
    assert!(profile.migrations.promoted_pages > 0);
    let tiering = profile.tiering().expect("tracker report cached on the profile");
    assert_eq!(tiering.migrations(), profile.migrations.migrations);
    assert_eq!(tiering.policy, "top-k-hot");
    assert!(tiering.before.total_count() > 0);
    assert!(
        snapshot.migrations.migrations <= profile.migrations.migrations,
        "snapshot counters are a prefix of the final ones"
    );
    assert!(profile.summary().contains("page migrations"), "{}", profile.summary());

    // Streaming==post-hoc with migrations active: the latency sink's
    // incrementally merged histograms equal a post-hoc scan of the
    // profile's complete sample record.
    let streamed = profile.latency();
    assert!(!streamed.is_empty());
    assert_eq!(streamed, LatencyProfile::from_samples(&profile.samples));
    // The tracker observed the same stream: before+after together cover
    // every sample the latency sink saw.
    assert_eq!(tiering.before.total_count() + tiering.after.total_count(), streamed.total_count());

    // CSV reports grow the migration files.
    let dir = std::env::temp_dir().join(format!("nmo_tiering_test_{}", std::process::id()));
    let written = profile.write_csv_reports(&dir).expect("write csv");
    assert!(written.iter().any(|f| f.ends_with("_migrations.csv")), "{written:?}");
    assert!(written.iter().any(|f| f.ends_with("_tiering.csv")), "{written:?}");
    let tiering_csv =
        std::fs::read_to_string(written.iter().find(|f| f.ends_with("_tiering.csv")).unwrap())
            .expect("read tiering csv");
    assert!(tiering_csv.contains("migrations"), "{tiering_csv}");
    assert!(tiering_csv.contains("remote_dram_p99_before"), "{tiering_csv}");
    std::fs::remove_dir_all(&dir).ok();
}
