//! Adaptive-pipeline integration tests.
//!
//! Three properties of the adaptive controller that must hold end to end:
//!
//! * an adaptive session runs to completion with its accounting intact and
//!   the controller's activity recorded in [`nmo::StreamStats`];
//! * the serial (one-shard) pipeline accepts a controller too — it tunes
//!   cadence and backpressure there, never width;
//! * the deterministic merge tolerates a **changing active-shard set**: the
//!   merged per-window and final results are identical no matter how the
//!   active width moves mid-run, and identical across repeated runs of the
//!   same width schedule. (Controller *decision* determinism is pinned at
//!   the unit level in `nmo::stream::adaptive`.)

use std::time::Duration;

use nmo_repro::arch_sim::{DataSource, MachineConfig};
use nmo_repro::nmo::stream::{BusEvent, BusRecv, Window};
use nmo_repro::nmo::{
    AdaptiveOptions, AddressSample, BackpressurePolicy, BandwidthSink, BatchPayload, CapacitySink,
    LatencySink, NmoConfig, ProfileSession, RegionSink, SampleBatch, ShardState, ShardableSink,
    ShardedBus, SinkShard, StreamOptions,
};
use nmo_repro::spe::SpeStatsSnapshot;
use nmo_repro::workloads::StreamBench;

/// An adaptive sharded session runs to completion, keeps exact accounting
/// under `Block`, and records the controller's footprint (requested and
/// effective widths, final active width, decision count) in the stats.
#[test]
fn adaptive_session_completes_and_records_controller_state() {
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig::paper_default(10))
        .threads(4)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions {
            window_ns: 100_000,
            backpressure: BackpressurePolicy::Block,
            shards: 4,
            adaptive: Some(AdaptiveOptions {
                control_interval: Duration::from_micros(200),
                window: 2,
                ..AdaptiveOptions::default()
            }),
            ..StreamOptions::default()
        })
        .workload(Box::new(StreamBench::new(32_000, 2)))
        .build()
        .expect("session builds")
        .run_streaming()
        .expect("adaptive run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 4, "4 profiled cores support 4 shards");
    assert_eq!(stats.shards_requested, 4);
    assert!(
        (1..=4).contains(&(stats.active_shards as usize)),
        "final active width within the allocated range: {stats:?}"
    );
    assert_eq!(stats.batches_dropped, 0, "Block stays lossless under adaptation: {stats:?}");
    assert!(profile.processed_samples > 0);
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    assert_eq!(profile.latency().total_count(), profile.processed_samples);
}

/// The serial pipeline (one shard) takes a controller too: width is pinned
/// at 1, so only cadence/backpressure rules can fire, and the run stays
/// bit-compatible with its accounting.
#[test]
fn adaptive_serial_session_pins_width_at_one() {
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig::paper_default(10))
        .threads(1)
        .sink(LatencySink::default())
        .stream_options(StreamOptions {
            window_ns: 100_000,
            backpressure: BackpressurePolicy::Block,
            shards: 1,
            adaptive: Some(AdaptiveOptions {
                control_interval: Duration::from_micros(200),
                window: 2,
                ..AdaptiveOptions::default()
            }),
            ..StreamOptions::default()
        })
        .workload(Box::new(StreamBench::new(16_000, 1)))
        .build()
        .expect("session builds")
        .run_streaming()
        .expect("serial adaptive run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 1);
    assert_eq!(stats.active_shards, 1, "a one-shard pipeline cannot change width");
    assert_eq!(stats.batches_dropped, 0, "{stats:?}");
    assert_eq!(profile.latency().total_count(), profile.processed_samples);
}

// ---------------------------------------------------------------------------
// Mid-run width-change merge equivalence (unit-level harness)
// ---------------------------------------------------------------------------
//
// A deterministic multi-shard *session* is impossible on this host (effective
// shards clamp to the profiled core count, and multi-core simulation is
// nondeterministic), so the width-change equivalence is pinned one level
// down: synthetic batches through a real `ShardedBus` and real `SinkShard`
// workers, with `set_active_lanes` moved mid-stream exactly as the
// controller moves it. The digest below is order-sensitive per window, so
// equality means the merged view — not just the totals — is width-invariant.

/// Per-window digest sink: each shard tracks (count, vaddr-sum) per open
/// window and hands the pair over at window close; the parent records the
/// merged per-window tuples in close order plus cumulative totals.
#[derive(Default)]
struct DigestSink {
    merged: Vec<(u64, u64, u64)>,
    total_count: u64,
    total_vaddr: u64,
}

struct DigestShard {
    window_count: u64,
    window_vaddr: u64,
    total_count: u64,
    total_vaddr: u64,
}

impl SinkShard for DigestShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            for s in samples {
                self.window_count += 1;
                self.window_vaddr = self.window_vaddr.wrapping_add(s.vaddr);
                self.total_count += 1;
                self.total_vaddr = self.total_vaddr.wrapping_add(s.vaddr);
            }
        }
    }

    fn on_window_close(&mut self, _window: Window) -> Option<ShardState> {
        let state = (self.window_count, self.window_vaddr);
        self.window_count = 0;
        self.window_vaddr = 0;
        Some(Box::new(state))
    }

    fn finish(self: Box<Self>) -> ShardState {
        Box::new((self.total_count, self.total_vaddr))
    }
}

impl ShardableSink for DigestSink {
    fn make_shard(
        &mut self,
        _shard: usize,
        _ctx: &nmo_repro::nmo::StreamContext,
    ) -> Box<dyn SinkShard> {
        Box::new(DigestShard { window_count: 0, window_vaddr: 0, total_count: 0, total_vaddr: 0 })
    }

    fn merge_window(&mut self, window: Window, states: Vec<ShardState>) {
        let mut count = 0u64;
        let mut vaddr = 0u64;
        for state in states {
            let (c, v) = *state.downcast::<(u64, u64)>().expect("a DigestShard window state");
            count += c;
            vaddr = vaddr.wrapping_add(v);
        }
        self.merged.push((window.index, count, vaddr));
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        for state in states {
            let (c, v) = *state.downcast::<(u64, u64)>().expect("a DigestShard final state");
            self.total_count += c;
            self.total_vaddr = self.total_vaddr.wrapping_add(v);
        }
    }
}

fn sample(time_ns: u64, core: usize, vaddr: u64) -> AddressSample {
    AddressSample {
        time_ns,
        vaddr,
        core,
        is_store: core.is_multiple_of(2),
        latency: 40,
        source: DataSource::Dram(0),
    }
}

/// Drain every queued event from every lane in ascending lane order,
/// feeding each shard worker; per-window states gather in lane order and
/// merge when the close signal has been seen on every lane.
fn drain_all(
    bus: &ShardedBus,
    shards: &mut [Box<dyn SinkShard>],
    pending: &mut Vec<(Window, Vec<ShardState>)>,
    sink: &mut DigestSink,
) {
    let lanes = bus.shards();
    for (lane, shard) in shards.iter_mut().enumerate() {
        loop {
            match bus.lane(lane).recv_timeout(Duration::from_millis(1)) {
                BusRecv::Event(BusEvent::Batch(batch)) => shard.on_batch(&batch),
                BusRecv::Event(BusEvent::CloseWindow(window)) => {
                    if let Some(state) = shard.on_window_close(window) {
                        let entry = match pending.iter_mut().find(|(w, _)| w.index == window.index)
                        {
                            Some(entry) => entry,
                            None => {
                                pending.push((window, Vec::new()));
                                pending.last_mut().expect("just pushed")
                            }
                        };
                        entry.1.push(state);
                    }
                }
                BusRecv::TimedOut | BusRecv::Closed => break,
            }
        }
    }
    // Merge every window all lanes have now closed, ascending by index —
    // the session coordinator's dispatch rule, sequentially.
    pending.sort_by_key(|(w, _)| w.index);
    while let Some((window, states)) = pending.first_mut() {
        if states.len() < lanes {
            break;
        }
        let window = *window;
        let states = std::mem::take(states);
        pending.remove(0);
        sink.merge_window(window, states);
    }
}

/// Feed a fixed synthetic stream (8 windows × 200 samples over 4 cores)
/// through a 4-lane bus, applying `schedule` (batch index → new active
/// width) mid-stream, and return the sink's full digest.
fn run_schedule(schedule: &[(usize, usize)]) -> (Vec<(u64, u64, u64)>, u64, u64) {
    const WINDOW_NS: u64 = 1_000;
    const WINDOWS: u64 = 8;
    const BATCHES_PER_WINDOW: usize = 20;
    let bus = ShardedBus::new(4, 1024, BackpressurePolicy::Block);
    let mut sink = DigestSink::default();
    let ctx = nmo_repro::nmo::StreamContext {
        annotations: std::sync::Arc::new(nmo_repro::nmo::Annotations::new()),
        capacity_bytes: 1 << 30,
        bucket_ns: WINDOW_NS,
        mem_nodes: 1,
        page_bytes: 4096,
        machine: None,
    };
    let mut shards: Vec<Box<dyn SinkShard>> = (0..4).map(|s| sink.make_shard(s, &ctx)).collect();
    let mut pending: Vec<(Window, Vec<ShardState>)> = Vec::new();

    let mut batch_index = 0usize;
    for w in 0..WINDOWS {
        let window = Window { index: w, start_ns: w * WINDOW_NS, end_ns: (w + 1) * WINDOW_NS };
        for b in 0..BATCHES_PER_WINDOW {
            if let Some((_, width)) = schedule.iter().find(|(at, _)| *at == batch_index) {
                bus.set_active_lanes(*width);
            }
            let core = b % 4;
            let samples: Vec<AddressSample> = (0..10)
                .map(|i| {
                    let t = window.start_ns + (b as u64 * 10 + i) % WINDOW_NS;
                    sample(t, core, 0x1000 + (batch_index as u64) * 64 + i * 8)
                })
                .collect();
            let batch = SampleBatch::new(
                "spe",
                Some(core),
                window,
                BatchPayload::SpeSamples { samples, loss: SpeStatsSnapshot::default() },
            );
            assert!(bus.publish(batch), "Block bus never drops");
            batch_index += 1;
        }
        bus.broadcast_close(window);
        drain_all(&bus, &mut shards, &mut pending, &mut sink);
    }
    bus.close_all();
    drain_all(&bus, &mut shards, &mut pending, &mut sink);
    assert!(pending.is_empty(), "every window merged: {} left", pending.len());
    let finals: Vec<ShardState> = shards.into_iter().map(|s| s.finish()).collect();
    sink.merge_final(finals);
    (sink.merged, sink.total_count, sink.total_vaddr)
}

/// The merged digest is invariant under mid-run width changes: a static
/// full-width run, a static serial run, and a run whose active width moves
/// 4 → 2 → 1 → 3 mid-stream all merge to the same per-window tuples and the
/// same totals — and the changing-width run is reproducible run-to-run.
#[test]
fn mid_run_width_changes_preserve_the_merged_digest() {
    let static_full = run_schedule(&[]);
    let static_serial = run_schedule(&[(0, 1)]);
    let changing = run_schedule(&[(30, 2), (70, 1), (110, 3)]);
    let changing_again = run_schedule(&[(30, 2), (70, 1), (110, 3)]);

    assert_eq!(changing, changing_again, "same schedule, identical digest");
    assert_eq!(changing, static_full, "width changes do not alter the merged view");
    assert_eq!(static_serial, static_full, "serial == sharded semantics");
    let (merged, total, _) = static_full;
    assert_eq!(merged.len(), 8, "one merge per window");
    assert_eq!(total, 8 * 20 * 10, "every sample merged exactly once");
}
