//! Cross-validation of the runtime lock-order checker against the real
//! pipeline: run a small multi-threaded streaming session with the checker
//! forced on, then inspect the acquisition graph and hold-time report.
//!
//! This is the dynamic counterpart of `nmo-lint`'s static `lock-order`
//! pass: the static pass proves no inverted acquisition *sites* exist; this
//! test observes the orders actually taken at runtime (including through
//! trait objects and closures the static pass cannot see) and panics on
//! inversion. It is also the in-tree example of the `NMO_LOCK_CHECK=1`
//! workflow described in the README.

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{BandwidthSink, CapacitySink, NmoConfig, ProfileSession, StreamOptions};
use nmo_repro::workloads::StreamBench;
use parking_lot::{check, lock_report};

#[test]
fn streaming_session_under_lock_checker_is_inversion_free() {
    check::force_enable();

    let result = ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig::paper_default(200))
        .threads(2)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        // shards: 2 forces the sharded pipeline (parallel pump workers,
        // per-shard merger) so the merger/coordinator locks are exercised.
        .stream_options(StreamOptions { window_ns: 100_000, shards: 2, ..StreamOptions::default() })
        .workload(Box::new(StreamBench::new(40_000, 2)))
        .build()
        .expect("session builds")
        .run_streaming()
        // Any lock-order inversion anywhere in the pipeline panics inside
        // this call (worker threads propagate panics through join).
        .expect("streaming run completes under NMO_LOCK_CHECK");
    assert!(result.processed_samples > 0);

    // The named locks of the streaming pipeline all show up in the report
    // with real acquisition counts and plausible hold times.
    let report = lock_report();
    let stat = |name: &str| {
        report
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("`{name}` missing from report: {report:?}"))
    };
    for name in ["bus.inner", "session.coordinator", "session.merger", "machine.core"] {
        let s = stat(name);
        assert!(s.acquisitions > 0, "{name}: {s:?}");
        assert!(s.max_hold_ns > 0, "{name}: {s:?}");
        // A streaming lock held for a second would be a bug in itself.
        assert!(s.max_hold_ns < 1_000_000_000, "{name} held too long: {s:?}");
    }

    // The observed acquisition graph must agree with the documented order:
    // `publish_batch` takes the coordinator lock strictly *after* releasing
    // the bus lock, so no `bus.inner -> session.coordinator` edge may ever
    // appear in the same held-while-acquiring chain in reverse. Stronger:
    // the edge set over the named streaming locks must be acyclic (the
    // checker would have panicked otherwise, but assert it explicitly so
    // the graph is surfaced on failure).
    let edges = check::order_edges();
    assert!(!edges.is_empty(), "checker saw no nested acquisitions at all");
    for (from, to) in &edges {
        assert!(
            !edges.contains(&(to.clone(), from.clone())),
            "two-cycle {from} <-> {to} in observed order graph: {edges:?}"
        );
    }
}
