//! Integration tests of the sensitivity behaviour the paper measures
//! (Section VII), at reduced scale: these check the *shape* invariants the
//! figures rely on, with generous tolerances so they stay robust.

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{accuracy, time_overhead, NmoConfig, Profile, ProfileSession};
use nmo_repro::spe::OverheadModel;
use nmo_repro::workloads::StreamBench;

const ELEMS: usize = 400_000;
const THREADS: usize = 4;

fn session(config: NmoConfig) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(config)
        .threads(THREADS)
        .workload(Box::new(StreamBench::new(ELEMS, 1)))
        .build()
        .expect("session builds")
}

fn baseline() -> (u64, u64) {
    let p = session(NmoConfig::default()).run().expect("baseline run");
    (p.counters.mem_access, p.counters.cycles)
}

fn profiled(config: NmoConfig) -> Profile {
    session(config).run().expect("profiled run")
}

#[test]
fn accuracy_is_high_at_moderate_periods_and_degrades_at_tiny_periods() {
    let (mem_counted, _) = baseline();

    let acc_moderate = {
        let p = profiled(NmoConfig::paper_default(4096));
        accuracy(mem_counted, p.processed_samples, 4096)
    };
    // An extreme sampling rate with a deliberately slow drain loses samples:
    // at period 16 each core produces more record bytes than the whole aux
    // buffer holds, so a slow consumer forces truncation.
    let acc_tiny = {
        let slow_drain = OverheadModel {
            drain_cycles_per_byte: 400.0,
            drain_service_latency_cycles: 10_000_000,
            ..OverheadModel::default()
        };
        let cfg = NmoConfig { overhead: slow_drain, ..NmoConfig::paper_default(16) };
        let p = profiled(cfg);
        accuracy(mem_counted, p.processed_samples, 16)
    };
    assert!(acc_moderate > 0.85, "moderate-period accuracy too low: {acc_moderate}");
    assert!(
        acc_tiny < acc_moderate,
        "tiny period with slow drain must lose accuracy: tiny={acc_tiny} moderate={acc_moderate}"
    );
}

#[test]
fn overhead_decreases_with_larger_sampling_periods() {
    let (_, baseline_cycles) = baseline();
    let overhead_at = |period: u64| {
        let p = profiled(NmoConfig::paper_default(period));
        time_overhead(baseline_cycles, p.elapsed_cycles)
    };
    let small = overhead_at(512);
    let large = overhead_at(32_768);
    assert!(small > large, "more samples must cost more time: {small} vs {large}");
    // The large-period overhead is tiny; allow head-room for run-to-run
    // variance from DRAM-contention ordering between simulated cores.
    assert!(large < 0.10, "overhead at period 32768 should be small: {large}");
}

#[test]
fn aux_buffer_below_minimum_collects_nothing_but_larger_buffers_do() {
    // 2 pages is below the 4-page functional minimum the paper observed.
    let too_small = {
        // 2 pages of 64 KiB = 128 KiB; NmoConfig sizes in MiB, so use the
        // builder that takes pages directly via the overhead model check.
        let mut cfg = NmoConfig::paper_default(1024);
        cfg.auxbufsize_mib = 1;
        cfg.overhead = OverheadModel { min_functional_aux_pages: 64, ..OverheadModel::default() };
        profiled(cfg)
    };
    assert_eq!(
        too_small.processed_samples, 0,
        "an aux buffer below the functional minimum must produce nothing"
    );

    let normal = profiled(NmoConfig::paper_default(1024));
    assert!(normal.processed_samples > 0);
    // Time overhead of the non-functional configuration is also ~zero, as in
    // Figure 9's smallest point.
    assert_eq!(too_small.counters.observer_cycles, 0);
    assert!(normal.counters.observer_cycles > 0);
}

#[test]
fn larger_aux_buffers_do_not_lose_more_samples_than_smaller_ones() {
    let samples_with_pages = |mib: u64| {
        let cfg = NmoConfig { auxbufsize_mib: mib, ..NmoConfig::paper_default(512) };
        profiled(cfg)
    };
    let small = samples_with_pages(1); // 16 pages
    let large = samples_with_pages(8); // 128 pages
    let small_lost = small.spe.truncated_records;
    let large_lost = large.spe.truncated_records;
    assert!(
        large_lost <= small_lost,
        "a larger aux buffer must not truncate more: {large_lost} > {small_lost}"
    );
    assert!(large.processed_samples as f64 >= 0.9 * small.processed_samples as f64);
}

#[test]
fn per_core_stats_cover_all_profiled_cores() {
    let p = profiled(NmoConfig::paper_default(2048));
    assert_eq!(p.per_core_spe.len(), THREADS);
    let total: u64 = p.per_core_spe.iter().map(|(_, s)| s.records_written).sum();
    assert_eq!(total, p.spe.records_written);
    // With a static partition every core contributes samples.
    assert!(p.per_core_spe.iter().all(|(_, s)| s.records_written > 0));
}

#[test]
fn collision_flags_propagate_to_aux_records_under_pressure() {
    // Force heavy truncation with a pathological drain model and check the
    // profiler observes PERF_AUX_FLAG_COLLISION-flagged records, as NMO does.
    let slow = OverheadModel {
        drain_cycles_per_byte: 2_000.0,
        drain_service_latency_cycles: 50_000_000,
        ..OverheadModel::default()
    };
    // Period 16 produces ~1.2 MiB of records per core, exceeding the 1 MiB
    // aux buffer, so a slow consumer guarantees truncation.
    let cfg = NmoConfig { overhead: slow, ..NmoConfig::paper_default(16) };
    let p = profiled(cfg);
    assert!(p.spe.truncated_records > 0, "expected aux-buffer pressure");
    assert!(
        p.collision_flagged_records > 0,
        "truncation must surface as collision-flagged AUX records"
    );
}
