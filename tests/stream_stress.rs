//! Sharded-pipeline stress tests: the full 128-core machine at the
//! smallest sampling period, under both backpressure policies.
//!
//! What must hold (the acceptance criteria of the sharding refactor):
//!
//! * no deadlock — every configuration runs to completion, including lanes
//!   small enough to force constant backpressure;
//! * exact accounting — under `Block` nothing is lost (every decoded sample
//!   reaches every sink exactly once), under `DropNewest` the drops are
//!   counted per lane and rolled up, and the final [`Profile`] stays the
//!   complete record either way (bus loss affects live sinks, never the
//!   post-hoc data);
//! * sharded == serial — a deterministic (single-worker-core) PageRank run
//!   produces bit-identical reports through 8 shards and through the serial
//!   pipeline (the STREAM equivalence lives in `tests/streaming.rs`).

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{
    BackpressurePolicy, BandwidthSink, CapacitySink, LatencySink, NmoConfig, Profile,
    ProfileSession, RegionSink, StreamOptions,
};
use nmo_repro::workloads::{PageRank, StreamBench};

/// All 128 cores of the paper's machine, smallest sampling period, the
/// standard sink set, and an aggressive aux watermark so samples stream
/// while windows are open.
fn altra_stress_session(
    shards: usize,
    bus_capacity: usize,
    policy: BackpressurePolicy,
) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig { aux_watermark_bytes: Some(16 * 1024), ..NmoConfig::paper_default(1) })
        .threads(128)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions {
            window_ns: 100_000,
            bus_capacity,
            backpressure: policy,
            shards,
            ..StreamOptions::default()
        })
        .workload(Box::new(StreamBench::new(64_000, 1)))
        .build()
        .expect("session builds")
}

/// 128 simulated cores at period 1 through 8 shards with lanes too small to
/// keep up: the run must complete (no deadlock), count every drop, and
/// still assemble the complete sample record.
#[test]
fn stress_128_cores_dropnewest_counts_drops_exactly() {
    let profile = altra_stress_session(8, 2, BackpressurePolicy::DropNewest)
        .run_streaming()
        .expect("streaming run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 8);
    assert!(stats.batches_published > 0, "{stats:?}");
    assert!(stats.windows_closed > 0, "{stats:?}");
    assert!(
        stats.batches_dropped > 0 && stats.items_dropped > 0,
        "2-deep lanes at period 1 must overflow: {stats:?}"
    );
    // Bus loss never corrupts the post-hoc record: every decoded sample is
    // in the profile even though some batches never reached the sinks.
    assert!(profile.processed_samples > 10_000, "{}", profile.processed_samples);
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    // The loss is surfaced, not silent.
    assert!(profile.summary().contains("bus loss"), "{}", profile.summary());
    // The live latency sink saw at most what the bus delivered.
    let delivered = profile.latency().total_count();
    assert!(delivered < profile.processed_samples, "drops must cost the live sinks something");
}

/// The lossless arm: `Block` backpressure on the same overloaded
/// configuration stalls the pump workers instead of dropping, so every
/// decoded sample reaches every sink exactly once — and nothing deadlocks
/// even with 8 pump workers blocking on 2-deep lanes.
#[test]
fn stress_128_cores_block_is_lossless_and_deadlock_free() {
    let profile = altra_stress_session(8, 2, BackpressurePolicy::Block)
        .run_streaming()
        .expect("streaming run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 8);
    assert_eq!(stats.batches_dropped, 0, "{stats:?}");
    assert_eq!(stats.items_dropped, 0, "{stats:?}");
    assert!(profile.processed_samples > 10_000, "{}", profile.processed_samples);
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    // Exact delivery accounting: with no drops, the streaming latency sink
    // saw exactly the decoded sample set, and the region sink attributed
    // exactly one scatter point per sample.
    assert_eq!(profile.latency().total_count(), profile.processed_samples);
    assert_eq!(profile.regions().scatter.len() as u64, profile.processed_samples);
}

fn pagerank_session(shards: usize) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig::paper_default(100))
        .threads(1)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions { window_ns: 100_000, shards, ..StreamOptions::default() })
        .workload(Box::new(PageRank::new(1 << 11, 8, 2)))
        .build()
        .expect("session builds")
}

fn assert_profiles_equivalent(sharded: &Profile, serial: &Profile) {
    assert_eq!(sharded.samples, serial.samples, "identical decoded sample streams");
    assert_eq!(sharded.processed_samples, serial.processed_samples);
    assert_eq!(sharded.capacity, serial.capacity);
    assert_eq!(sharded.bandwidth, serial.bandwidth);
    assert_eq!(sharded.latency(), serial.latency());
    let (rs, rp) = (sharded.regions(), serial.regions());
    assert_eq!(rs.per_tag, rp.per_tag);
    assert_eq!(rs.per_phase, rp.per_phase);
    assert_eq!(rs.untagged_samples, rp.untagged_samples);
    assert_eq!(rs.scatter.len(), rp.scatter.len());
}

/// PageRank through 8 shards equals PageRank through the serial pipeline
/// (single worker core → deterministic simulation → bit-for-bit reports).
#[test]
fn pagerank_sharded_equals_serial() {
    let serial = pagerank_session(1).run_streaming().expect("serial run");
    let sharded = pagerank_session(8).run_streaming().expect("sharded run");
    assert!(serial.processed_samples > 500, "{}", serial.processed_samples);
    assert_profiles_equivalent(&sharded, &serial);
    assert_eq!(sharded.stream.expect("stats").shards, 8);
    assert_eq!(sharded.stream.expect("stats").batches_dropped, 0);
}
