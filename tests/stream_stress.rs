//! Sharded-pipeline stress tests: the full 128-core machine at the
//! smallest sampling period, under both backpressure policies.
//!
//! What must hold (the acceptance criteria of the sharding refactor):
//!
//! * no deadlock — every configuration runs to completion, including lanes
//!   small enough to force constant backpressure;
//! * exact accounting — under `Block` nothing is lost (every decoded sample
//!   reaches every sink exactly once), under `DropNewest` the drops are
//!   counted per lane and rolled up, and the final [`Profile`] stays the
//!   complete record either way (bus loss affects live sinks, never the
//!   post-hoc data);
//! * sharded == serial — a deterministic (single-worker-core) PageRank run
//!   produces bit-identical reports through 8 shards and through the serial
//!   pipeline (the STREAM equivalence lives in `tests/streaming.rs`).

use std::time::Duration;

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{
    AdaptiveOptions, BackpressurePolicy, BandwidthSink, CapacitySink, LatencySink, NmoConfig,
    Profile, ProfileSession, RegionSink, StreamOptions,
};
use nmo_repro::workloads::{PageRank, StreamBench};

/// All 128 cores of the paper's machine, smallest sampling period, the
/// standard sink set, and an aggressive aux watermark so samples stream
/// while windows are open.
fn altra_stress_session(
    shards: usize,
    bus_capacity: usize,
    policy: BackpressurePolicy,
) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig { aux_watermark_bytes: Some(16 * 1024), ..NmoConfig::paper_default(1) })
        .threads(128)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions {
            window_ns: 100_000,
            bus_capacity,
            backpressure: policy,
            shards,
            ..StreamOptions::default()
        })
        .workload(Box::new(StreamBench::new(64_000, 1)))
        .build()
        .expect("session builds")
}

/// 128 simulated cores at period 1 through 8 shards with lanes too small to
/// keep up: the run must complete (no deadlock), count every drop, and
/// still assemble the complete sample record.
#[test]
fn stress_128_cores_dropnewest_counts_drops_exactly() {
    let profile = altra_stress_session(8, 2, BackpressurePolicy::DropNewest)
        .run_streaming()
        .expect("streaming run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 8);
    assert_eq!(stats.shards_requested, 8);
    assert_eq!(stats.active_shards, 8, "static run keeps every shard active");
    assert!(stats.batches_published > 0, "{stats:?}");
    assert!(stats.windows_closed > 0, "{stats:?}");
    assert!(
        stats.batches_dropped > 0 && stats.items_dropped > 0,
        "2-deep lanes at period 1 must overflow: {stats:?}"
    );
    // Bus loss never corrupts the post-hoc record: every decoded sample is
    // in the profile even though some batches never reached the sinks.
    assert!(profile.processed_samples > 10_000, "{}", profile.processed_samples);
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    // The loss is surfaced, not silent.
    assert!(profile.summary().contains("bus loss"), "{}", profile.summary());
    // The live latency sink saw at most what the bus delivered.
    let delivered = profile.latency().total_count();
    assert!(delivered < profile.processed_samples, "drops must cost the live sinks something");
}

/// The lossless arm: `Block` backpressure on the same overloaded
/// configuration stalls the pump workers instead of dropping, so every
/// decoded sample reaches every sink exactly once — and nothing deadlocks
/// even with 8 pump workers blocking on 2-deep lanes.
#[test]
fn stress_128_cores_block_is_lossless_and_deadlock_free() {
    let profile = altra_stress_session(8, 2, BackpressurePolicy::Block)
        .run_streaming()
        .expect("streaming run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 8);
    assert_eq!(stats.batches_dropped, 0, "{stats:?}");
    assert_eq!(stats.items_dropped, 0, "{stats:?}");
    assert!(profile.processed_samples > 10_000, "{}", profile.processed_samples);
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    // Exact delivery accounting: with no drops, the streaming latency sink
    // saw exactly the decoded sample set, and the region sink attributed
    // exactly one scatter point per sample.
    assert_eq!(profile.latency().total_count(), profile.processed_samples);
    assert_eq!(profile.regions().scatter.len() as u64, profile.processed_samples);
}

/// Adaptive mode under the full 128-core stress load. The controller is free
/// to repartition mid-run — parking and re-activating pump workers, moving
/// the drain cadence, and (from `DropNewest`) escalating to `Block` — and
/// the pipeline must still run to completion with its accounting intact.
/// This test rides the CI `NMO_LOCK_CHECK=1` job, so every controller lock
/// edge (`adaptive.control` → `bus.inner`, the shared drainer slots) is
/// order-checked under real contention.
#[test]
fn stress_128_cores_adaptive_completes_with_exact_accounting() {
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(NmoConfig { aux_watermark_bytes: Some(16 * 1024), ..NmoConfig::paper_default(1) })
        .threads(128)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions {
            window_ns: 100_000,
            bus_capacity: 64,
            backpressure: BackpressurePolicy::Block,
            shards: 8,
            adaptive: Some(AdaptiveOptions {
                control_interval: Duration::from_micros(500),
                window: 2,
                ..AdaptiveOptions::default()
            }),
            ..StreamOptions::default()
        })
        .workload(Box::new(StreamBench::new(64_000, 1)))
        .build()
        .expect("session builds")
        .run_streaming()
        .expect("adaptive streaming run completes");
    let stats = profile.stream.expect("stream stats");
    assert_eq!(stats.shards, 8);
    assert_eq!(stats.shards_requested, 8);
    assert!(
        (1..=8).contains(&(stats.active_shards as usize)),
        "final active width stays within the allocated range: {stats:?}"
    );
    // Block backpressure stays lossless no matter how the controller moves
    // the active width or cadence mid-run.
    assert_eq!(stats.batches_dropped, 0, "{stats:?}");
    assert_eq!(stats.items_dropped, 0, "{stats:?}");
    assert!(profile.processed_samples > 10_000, "{}", profile.processed_samples);
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    assert_eq!(profile.latency().total_count(), profile.processed_samples);
    assert_eq!(profile.regions().scatter.len() as u64, profile.processed_samples);
}

fn pagerank_session(shards: usize) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig::paper_default(100))
        .threads(1)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions { window_ns: 100_000, shards, ..StreamOptions::default() })
        .workload(Box::new(PageRank::new(1 << 11, 8, 2)))
        .build()
        .expect("session builds")
}

fn assert_profiles_equivalent(sharded: &Profile, serial: &Profile) {
    assert_eq!(sharded.samples, serial.samples, "identical decoded sample streams");
    assert_eq!(sharded.processed_samples, serial.processed_samples);
    assert_eq!(sharded.capacity, serial.capacity);
    assert_eq!(sharded.bandwidth, serial.bandwidth);
    assert_eq!(sharded.latency(), serial.latency());
    let (rs, rp) = (sharded.regions(), serial.regions());
    assert_eq!(rs.per_tag, rp.per_tag);
    assert_eq!(rs.per_phase, rp.per_phase);
    assert_eq!(rs.untagged_samples, rp.untagged_samples);
    assert_eq!(rs.scatter.len(), rp.scatter.len());
}

/// PageRank with an over-provisioned shard request (8 shards, 1 profiled
/// core) clamps to the serial-width pipeline and stays bit-for-bit equal to
/// the serial run — the shards>cores resolution pin on a second workload
/// (single worker core → deterministic simulation → bit-for-bit reports).
#[test]
fn pagerank_over_provisioned_shards_equal_serial() {
    let serial = pagerank_session(1).run_streaming().expect("serial run");
    let sharded = pagerank_session(8).run_streaming().expect("sharded run");
    assert!(serial.processed_samples > 500, "{}", serial.processed_samples);
    assert_profiles_equivalent(&sharded, &serial);
    let stats = sharded.stream.expect("stats");
    assert_eq!(stats.shards, 1, "effective shards clamp to the profiled core count");
    assert_eq!(stats.shards_requested, 8, "the original request is recorded");
    assert_eq!(stats.batches_dropped, 0);
}
