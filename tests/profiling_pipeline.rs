//! Cross-crate integration tests: workloads → machine → SPE → perf buffers →
//! NMO runtime → analysis, end to end.

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{Mode, NmoConfig, Profile, ProfileSession};
use nmo_repro::profile_workload;
use nmo_repro::workloads::{
    bfs::GraphKind, BfsBench, CfdBench, InMemAnalytics, PageRank, StreamBench, Workload,
};

fn run_profiled(workload: Box<dyn Workload>, threads: usize, period: u64) -> Profile {
    profile_workload(workload, &NmoConfig::paper_default(period), threads)
        .expect("profiling session")
}

#[test]
fn stream_profile_attributes_samples_to_all_three_arrays() {
    let profile = run_profiled(Box::new(StreamBench::new(200_000, 2)), 4, 500);
    assert!(profile.processed_samples > 100);
    let regions = profile.regions();
    let names: Vec<&str> = regions.per_tag.iter().map(|t| t.name.as_str()).collect();
    for expected in ["a", "b", "c"] {
        assert!(names.contains(&expected), "missing samples in array {expected}: {names:?}");
    }
    // Triad reads b and c, writes a: stores should concentrate in `a`.
    let a = regions.per_tag.iter().find(|t| t.name == "a").unwrap();
    let b = regions.per_tag.iter().find(|t| t.name == "b").unwrap();
    assert!(a.stores > a.loads / 2, "a is the store target: {a:?}");
    assert!(b.stores < b.samples / 10, "b is read-only in triad: {b:?}");
    // All samples fall inside the triad phase instances.
    let in_phase: u64 = regions.per_phase.iter().map(|(_, n)| *n).sum();
    assert!(in_phase as f64 > 0.95 * profile.processed_samples as f64);
}

#[test]
fn cfd_profile_shows_indirection_traffic_and_phase() {
    let profile = run_profiled(Box::new(CfdBench::new(4_000, 2)), 4, 400);
    assert!(profile.processed_samples > 100);
    let regions = profile.regions();
    let vars = regions.per_tag.iter().find(|t| t.name == "variables");
    let normals = regions.per_tag.iter().find(|t| t.name == "normals");
    assert!(vars.is_some_and(|t| t.samples > 0), "variables must be sampled");
    assert!(normals.is_some_and(|t| t.samples > 0), "normals must be sampled");
    assert_eq!(profile.phases.len(), 1);
    assert_eq!(profile.phases[0].name, "computation loop");
}

#[test]
fn bfs_profile_collects_samples_with_low_collision_rate() {
    let profile = run_profiled(Box::new(BfsBench::new(1 << 13, 8, GraphKind::Uniform)), 4, 500);
    assert!(profile.processed_samples > 50);
    // BFS is latency-bound: sample production is slow, so losses are rare.
    let lost = profile.spe.collisions + profile.spe.truncated_records;
    assert!(
        (lost as f64) < 0.05 * profile.spe.samples_selected as f64,
        "BFS should lose few samples: lost {lost} of {}",
        profile.spe.samples_selected
    );
}

#[test]
fn pagerank_capacity_saturates_after_load_phase() {
    let profile = run_profiled(Box::new(PageRank::new(1 << 12, 8, 3)), 4, 1000);
    // The capacity series reaches its peak early (during the load phase) and
    // stays there (PageRank keeps the whole graph resident).
    let points = &profile.capacity.points;
    assert!(!points.is_empty());
    let peak = profile.capacity.peak_gib();
    assert!(peak > 0.0);
    let first_peak_idx = points.iter().position(|p| (p.rss_gib - peak).abs() < 1e-9).unwrap();
    assert!(
        first_peak_idx < points.len() / 2,
        "PageRank should saturate memory in the first half of the run"
    );
    assert!((profile.capacity.final_gib() - peak).abs() < 1e-9);
}

#[test]
fn inmem_analytics_bandwidth_is_periodic_across_sweeps() {
    let profile = run_profiled(Box::new(InMemAnalytics::new(600, 800, 20, 3)), 4, 1000);
    // Each ALS sweep re-reads the ratings: the phase list alternates and the
    // bandwidth series is non-trivial.
    let names: Vec<&str> = profile.phases.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names.iter().filter(|n| **n == "als-user-sweep").count(), 3);
    assert_eq!(names.iter().filter(|n| **n == "als-item-sweep").count(), 3);
    assert!(profile.bandwidth.total_bytes > 0);
}

#[test]
fn capacity_only_mode_runs_without_spe_and_without_overhead() {
    let config = NmoConfig {
        enabled: true,
        mode: Mode::None,
        track_rss: true,
        track_bandwidth: true,
        ..Default::default()
    };
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(config)
        .threads(2)
        .workload(Box::new(StreamBench::new(100_000, 1)))
        .build()
        .unwrap()
        .run()
        .unwrap();
    assert_eq!(profile.processed_samples, 0);
    assert_eq!(profile.counters.observer_cycles, 0, "no SPE => no profiling overhead");
    assert!(profile.capacity.peak_bytes > 0);
    assert!(profile.bandwidth.total_bytes > 0);
    // Counter-only sessions still count: the perf-stat backend agrees with
    // the machine-wide counter.
    assert_eq!(profile.perf_count("mem_access"), Some(profile.counters.mem_access));
    assert_eq!(profile.backends, vec!["counters".to_string()]);
}

#[test]
fn profile_csv_reports_are_written_and_parse_back() {
    let profile = run_profiled(Box::new(StreamBench::new(50_000, 1)), 2, 200);
    let dir = std::env::temp_dir().join(format!("nmo_it_csv_{}", std::process::id()));
    let files = profile.write_csv_reports(&dir).unwrap();
    // samples, capacity, bandwidth, latency, regions, phases, plus the
    // perf-stat counters collected by the counter backend.
    assert_eq!(files.len(), 7);
    assert!(files.iter().any(|f| f.ends_with("_latency.csv")));
    for f in &files {
        let content = std::fs::read_to_string(f).unwrap();
        let mut lines = content.lines();
        let header = lines.next().unwrap();
        assert!(header.contains(','), "header must be CSV: {header}");
        // Every data row has the same number of fields as the header.
        let ncols = header.split(',').count();
        for line in lines {
            assert_eq!(line.split(',').count(), ncols, "malformed row in {f}: {line}");
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn samples_count_scales_inversely_with_period() {
    let counts: Vec<u64> = [250u64, 500, 1000]
        .iter()
        .map(|&period| {
            run_profiled(Box::new(StreamBench::new(300_000, 1)), 2, period).processed_samples
        })
        .collect();
    assert!(counts[0] > counts[1] && counts[1] > counts[2], "{counts:?}");
    // samples * period should be roughly constant (Figure 7 linearity).
    let products: Vec<f64> =
        counts.iter().zip([250.0f64, 500.0, 1000.0]).map(|(c, p)| *c as f64 * p).collect();
    let max = products.iter().cloned().fold(f64::MIN, f64::max);
    let min = products.iter().cloned().fold(f64::MAX, f64::min);
    assert!(max / min < 1.3, "inverse-linearity violated: {products:?}");
}
