//! Streaming-pipeline integration tests (the acceptance criteria of the
//! `run_streaming` redesign): running the STREAM workload through the online
//! pipeline must reproduce the post-hoc capacity/bandwidth/region results,
//! and `poll_snapshot` must expose monotonically growing, non-empty windows
//! while the workload is still running.

use std::time::Duration;

use nmo_repro::arch_sim::{MachineConfig, PlacementPolicy};
use nmo_repro::nmo::{
    BandwidthSink, CapacitySink, LatencySink, NmoConfig, ProfileSession, RegionSink, StreamOptions,
    StreamSnapshot, Workload,
};
use nmo_repro::workloads::StreamBench;

fn stream_session_on(
    machine_config: MachineConfig,
    threads: usize,
    n: usize,
    iterations: usize,
) -> ProfileSession {
    ProfileSession::builder()
        .machine_config(machine_config)
        .config(NmoConfig::paper_default(200))
        .threads(threads)
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .sink(LatencySink::default())
        .stream_options(StreamOptions { window_ns: 100_000, ..StreamOptions::default() })
        .workload(Box::new(StreamBench::new(n, iterations)))
        .build()
        .expect("session builds")
}

fn stream_session(threads: usize, n: usize, iterations: usize) -> ProfileSession {
    stream_session_on(MachineConfig::small_test(), threads, n, iterations)
}

/// Equivalence: a single-threaded run is fully deterministic, so the
/// windowed merge must land on the same final series as the post-hoc scan
/// (exact integers, float fields within merge tolerance).
#[test]
fn streaming_stream_workload_matches_post_hoc_series() {
    let post_hoc = stream_session(1, 60_000, 2).run().expect("post-hoc run");
    let streamed = stream_session(1, 60_000, 2).run_streaming().expect("streaming run");

    assert!(post_hoc.processed_samples > 500, "{}", post_hoc.processed_samples);
    assert_eq!(streamed.processed_samples, post_hoc.processed_samples);
    assert_eq!(streamed.samples, post_hoc.samples, "identical decoded sample streams");

    // Level 1: capacity series.
    assert_eq!(streamed.capacity.peak_bytes, post_hoc.capacity.peak_bytes);
    assert_eq!(streamed.capacity.points.len(), post_hoc.capacity.points.len());
    for (s, p) in streamed.capacity.points.iter().zip(&post_hoc.capacity.points) {
        assert!((s.time_s - p.time_s).abs() < 1e-9, "{s:?} vs {p:?}");
        assert!((s.rss_gib - p.rss_gib).abs() < 1e-9, "{s:?} vs {p:?}");
    }

    // Level 2: bandwidth series.
    assert_eq!(streamed.bandwidth.total_bytes, post_hoc.bandwidth.total_bytes);
    assert_eq!(streamed.bandwidth.points.len(), post_hoc.bandwidth.points.len());
    for (s, p) in streamed.bandwidth.points.iter().zip(&post_hoc.bandwidth.points) {
        assert!((s.time_s - p.time_s).abs() < 1e-9, "{s:?} vs {p:?}");
        assert!((s.gib_per_s - p.gib_per_s).abs() < 1e-6, "{s:?} vs {p:?}");
    }
    assert!((streamed.bandwidth.peak_gib_per_s - post_hoc.bandwidth.peak_gib_per_s).abs() < 1e-6);

    // Level 3: region attribution.
    let (rs, rp) = (streamed.regions(), post_hoc.regions());
    assert_eq!(rs.per_tag, rp.per_tag);
    assert_eq!(rs.per_phase, rp.per_phase);
    assert_eq!(rs.untagged_samples, rp.untagged_samples);
    assert_eq!(rs.scatter.len(), rp.scatter.len());

    // Per-tier latency distributions: the histograms are order-independent,
    // so the streaming merge is *exactly* the post-hoc scan.
    let (ls, lp) = (streamed.latency(), post_hoc.latency());
    assert!(!ls.is_empty());
    assert_eq!(ls, lp, "streaming latency histograms must equal the post-hoc scan");

    // The streaming run actually streamed.
    let stats = streamed.stream.expect("streaming stats recorded");
    assert!(stats.batches_published > 0, "{stats:?}");
    assert!(stats.windows_closed > 1, "{stats:?}");
    assert_eq!(stats.batches_dropped, 0, "{stats:?}");
    assert!(post_hoc.stream.is_none());
}

/// The tiered-memory acceptance run: on a two-node machine under TierSplit
/// placement, STREAM's latency distribution is bimodal (remote-node p50
/// strictly above local-node p50), the per-node capacity/bandwidth splits
/// are populated, and single-threaded streaming still equals post-hoc for
/// the latency sink.
#[test]
fn tiered_stream_latency_is_bimodal_and_streaming_matches_post_hoc() {
    let tiered = || {
        stream_session_on(
            MachineConfig::small_test_tiered(PlacementPolicy::TierSplit { local_fraction: 0.5 }),
            1,
            60_000,
            2,
        )
    };
    let post_hoc = tiered().run().expect("post-hoc tiered run");
    let streamed = tiered().run_streaming().expect("streaming tiered run");

    // Both tiers served DRAM traffic and the remote mode sits above the
    // local one — the DDR-vs-CXL signature.
    let latency = post_hoc.latency();
    let (local, remote) = (latency.local_dram(), latency.remote_dram());
    assert!(local.count() > 0, "local DRAM fills observed");
    assert!(remote.count() > 0, "remote DRAM fills observed");
    assert!(
        remote.p50() > local.p50(),
        "bimodal: remote p50 {} must exceed local p50 {}",
        remote.p50(),
        local.p50()
    );
    assert!(latency.dram_tiers_bimodal());

    // Per-node capacity and bandwidth splits are populated and consistent.
    assert_eq!(post_hoc.capacity.nodes, 2);
    assert!(post_hoc.capacity.peak_bytes_by_node[0] > 0);
    assert!(post_hoc.capacity.peak_bytes_by_node[1] > 0);
    assert_eq!(post_hoc.bandwidth.nodes, 2);
    assert!(post_hoc.bandwidth.total_bytes_by_node[0] > 0);
    assert!(post_hoc.bandwidth.total_bytes_by_node[1] > 0);
    assert_eq!(
        post_hoc.bandwidth.total_bytes_by_node.iter().sum::<u64>(),
        post_hoc.bandwidth.total_bytes
    );

    // Streaming == post-hoc holds on the tiered machine too (single thread
    // => deterministic simulation).
    assert_eq!(streamed.samples, post_hoc.samples);
    assert_eq!(streamed.latency(), latency);
    assert_eq!(streamed.capacity, post_hoc.capacity);
    assert_eq!(streamed.bandwidth, post_hoc.bandwidth);
}

/// The shards>cores edge: an explicit `shards = 4` request on a 1-core run
/// used to spawn pump workers that owned zero cores and bus lanes with no
/// producer. The session now clamps the allocation to the profiled core
/// count (here: the serial pipeline), records the original request in
/// `shards_requested`, and the over-provisioned run stays bit-for-bit the
/// serial run: same samples, same capacity/bandwidth series, same region
/// stats, same latency histograms. (Exact-accounting coverage of the truly
/// sharded machinery lives in `tests/stream_stress.rs`, where the 128-core
/// machine gives every shard real cores to own.)
#[test]
fn over_provisioned_shards_clamp_to_cores_bit_for_bit() {
    let with_shards = |shards: usize| {
        ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(200))
            .threads(1)
            .sink(CapacitySink::default())
            .sink(BandwidthSink::default())
            .sink(RegionSink::default())
            .sink(LatencySink::default())
            .stream_options(StreamOptions {
                window_ns: 100_000,
                shards,
                ..StreamOptions::default()
            })
            .workload(Box::new(StreamBench::new(60_000, 2)))
            .build()
            .expect("session builds")
    };
    let serial = with_shards(1).run_streaming().expect("serial streaming run");
    let sharded = with_shards(4).run_streaming().expect("sharded streaming run");

    assert_eq!(sharded.samples, serial.samples, "identical decoded sample streams");
    assert_eq!(sharded.processed_samples, serial.processed_samples);
    assert_eq!(sharded.capacity, serial.capacity);
    assert_eq!(sharded.bandwidth, serial.bandwidth);
    assert_eq!(sharded.latency(), serial.latency());
    let (rs, rp) = (sharded.regions(), serial.regions());
    assert_eq!(rs.per_tag, rp.per_tag);
    assert_eq!(rs.per_phase, rp.per_phase);
    assert_eq!(rs.untagged_samples, rp.untagged_samples);
    assert_eq!(rs.scatter.len(), rp.scatter.len());

    let serial_stats = serial.stream.expect("serial stats");
    let sharded_stats = sharded.stream.expect("sharded stats");
    assert_eq!(serial_stats.shards, 1);
    assert_eq!(serial_stats.shards_requested, 1);
    // The clamp pins: 4 requested, 1 effective (1 profiled core), and both
    // counts surfaced in the stats.
    assert_eq!(sharded_stats.shards, 1, "effective shards clamp to the core count");
    assert_eq!(sharded_stats.shards_requested, 4, "the original request is recorded");
    assert_eq!(sharded_stats.active_shards, 1);
    assert_eq!(sharded_stats.adaptive_decisions, 0, "static run makes no decisions");
    assert_eq!(sharded_stats.batches_dropped, 0, "default bus must not drop");
}

/// Live readout: snapshots observed while the STREAM workload is still
/// running grow monotonically and expose non-empty windows.
#[test]
fn poll_snapshot_grows_monotonically_during_the_run() {
    let session = ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig::paper_default(50))
        .threads(2)
        .stream_options(StreamOptions { window_ns: 50_000, ..StreamOptions::default() })
        .build()
        .expect("session builds");

    let mut workload = StreamBench::new(400_000, 3);
    workload.setup(session.machine(), &session.annotations()).expect("setup");
    let active = session.start_streaming().expect("start streaming");

    let mut snapshots: Vec<StreamSnapshot> = Vec::new();
    let report = std::thread::scope(|s| {
        let machine = active.machine();
        let annotations = active.annotations_ref();
        let cores = active.cores();
        let workload = &mut workload;
        let handle = s.spawn(move || workload.run(machine, annotations, cores));
        while !handle.is_finished() {
            snapshots.push(active.poll_snapshot().expect("streaming session snapshots"));
            #[allow(clippy::disallowed_methods)] // test poll loop
            std::thread::sleep(Duration::from_millis(1));
        }
        handle.join().expect("workload thread").expect("workload run")
    });
    assert!(workload.verify(), "workload result corrupted");
    assert!(report.mem_ops > 0);

    // Monotonic growth across every observed snapshot.
    assert!(snapshots.len() > 2, "expected several mid-run snapshots");
    for pair in snapshots.windows(2) {
        assert!(pair[1].batches >= pair[0].batches);
        assert!(pair[1].spe_samples >= pair[0].spe_samples);
        assert!(pair[1].windows_closed >= pair[0].windows_closed);
        assert!(pair[1].last_time_ns >= pair[0].last_time_ns);
        assert!(pair[1].windows.len() >= pair[0].windows.len());
    }

    // Mid-run snapshots saw real, non-empty windows.
    let last = snapshots.last().unwrap();
    assert!(last.batches > 0, "pump delivered batches during the run: {last:?}");
    assert!(!last.windows.is_empty(), "windows observed during the run: {last:?}");
    assert!(last.windows.iter().any(|w| w.batches > 0), "windows carry data: {:?}", last.windows);

    let profile = active.finish().expect("finish");
    let stats = profile.stream.expect("stream stats");
    assert!(stats.windows_closed >= last.windows_closed);
    assert!(stats.batches_published >= last.batches);
    assert!(profile.processed_samples >= last.spe_samples);
    assert!(profile.processed_samples > 1_000, "{}", profile.processed_samples);
    // The final profile is complete even though data was streamed out
    // incrementally along the way.
    assert_eq!(profile.samples.len() as u64, profile.processed_samples);
    assert!(profile.capacity.peak_bytes > 0);
    assert!(profile.bandwidth.total_bytes > 0);
}
