//! End-to-end coverage of the `ProfileSession` API: every paper workload runs
//! under one session on the `small_test` machine with both sample backends
//! (ARM SPE sampling + perf-stat counting) registered explicitly, and each
//! analysis sink must produce non-empty output.

use nmo_repro::arch_sim::MachineConfig;
use nmo_repro::nmo::{
    AnalysisReport, BandwidthSink, CapacitySink, CounterBackend, NmoConfig, Profile,
    ProfileSession, RegionSink, SpeBackend, Workload,
};
use nmo_repro::workloads::{
    bfs::GraphKind, BfsBench, CfdBench, InMemAnalytics, PageRank, StreamBench,
};

const THREADS: usize = 2;

fn tiny_workloads() -> Vec<Box<dyn Workload>> {
    vec![
        Box::new(StreamBench::new(40_000, 2)),
        Box::new(CfdBench::new(2_000, 2)),
        Box::new(BfsBench::new(1 << 12, 6, GraphKind::Uniform)),
        Box::new(PageRank::new(1 << 11, 8, 2)),
        Box::new(InMemAnalytics::new(200, 400, 10, 2)),
    ]
}

fn run_session(workload: Box<dyn Workload>) -> (String, Profile) {
    let name = workload.name().to_string();
    let profile = ProfileSession::builder()
        .machine_config(MachineConfig::small_test())
        .config(NmoConfig { name: name.clone(), ..NmoConfig::paper_default(100) })
        .threads(THREADS)
        .backend(SpeBackend::new())
        .backend(CounterBackend::new())
        .sink(CapacitySink::default())
        .sink(BandwidthSink::default())
        .sink(RegionSink::default())
        .workload(workload)
        .build()
        .unwrap_or_else(|e| panic!("{name}: session build failed: {e}"))
        .run()
        .unwrap_or_else(|e| panic!("{name}: session run failed: {e}"));
    (name, profile)
}

#[test]
fn every_workload_profiles_under_one_session_with_both_backends() {
    for workload in tiny_workloads() {
        let (name, profile) = run_session(workload);

        // Both backends ran under the session.
        assert_eq!(
            profile.backends,
            vec!["spe".to_string(), "counters".to_string()],
            "{name}: both backends must be active"
        );

        // The SPE backend sampled addresses.
        assert!(profile.processed_samples > 0, "{name}: no SPE samples");
        assert_eq!(
            profile.processed_samples as usize,
            profile.samples.len(),
            "{name}: sample count mismatch"
        );

        // The counter backend agrees exactly with the machine-wide counter
        // (both observe the same retired-operation stream).
        assert_eq!(
            profile.perf_count("mem_access"),
            Some(profile.counters.mem_access),
            "{name}: counter backend disagrees with machine counters"
        );
        assert_eq!(
            profile.perf_count("ld_retired").unwrap() + profile.perf_count("st_retired").unwrap(),
            profile.counters.mem_access,
            "{name}: loads + stores must equal mem_access"
        );

        // The workload itself completed and verified (run() errors otherwise)
        // and reported its operation counts.
        let report = profile.workload.expect("workload report present");
        assert!(report.mem_ops > 0, "{name}: empty workload report");

        // Every sink produced non-empty output.
        assert_eq!(profile.analyses.len(), 3, "{name}: expected 3 sink reports");
        for record in &profile.analyses {
            assert!(
                !record.report.is_empty(),
                "{name}: sink '{}' produced empty output",
                record.sink
            );
        }

        // Level 1 (capacity): the workload touched memory, so RSS rose.
        assert!(profile.capacity.peak_bytes > 0, "{name}: empty capacity series");
        assert!(!profile.capacity.points.is_empty(), "{name}: no capacity points");

        // Level 2 (bandwidth): bus traffic was recorded.
        assert!(profile.bandwidth.total_bytes > 0, "{name}: empty bandwidth series");
        assert!(!profile.bandwidth.points.is_empty(), "{name}: no bandwidth points");

        // Level 3 (regions): samples were attributed to the workload's tags.
        let regions = profile
            .analyses
            .iter()
            .find_map(|a| match &a.report {
                AnalysisReport::Regions(r) if a.sink == "regions" => Some(r.clone()),
                _ => None,
            })
            .expect("region sink report present");
        assert!(!regions.scatter.is_empty(), "{name}: empty region scatter");
        assert!(
            regions.per_tag.iter().any(|t| t.samples > 0),
            "{name}: no samples attributed to any tag"
        );
        // Profile::regions() returns the sink's cached report.
        assert_eq!(profile.regions().per_tag.len(), regions.per_tag.len());
    }
}

#[test]
fn session_reports_are_deterministic_per_configuration() {
    // Two identical sessions over the same deterministic workload must agree
    // on the counter backend's exact counts (the SPE jitter is seeded per
    // core, so sample counts agree as well).
    let (_, a) = run_session(Box::new(StreamBench::new(20_000, 1)));
    let (_, b) = run_session(Box::new(StreamBench::new(20_000, 1)));
    assert_eq!(a.perf_counts, b.perf_counts);
    assert_eq!(a.processed_samples, b.processed_samples);
}
