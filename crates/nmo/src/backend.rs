//! Pluggable sample backends (the data-acquisition seam of the profiler).
//!
//! The paper's NMO tool is layered: ARM SPE sampling at the bottom, a
//! `perf_event` substrate in the middle, and the analysis levels on top. A
//! [`SampleBackend`] is the seam between the bottom two layers and the
//! session: it opens whatever per-core instruments it needs, hands the
//! session one [`arch_sim::OpObserver`] per core (composed with other
//! backends via [`arch_sim::FanoutObserver`] when several backends share a
//! core), and folds its results into the final [`Profile`].
//!
//! Two backends ship with the crate:
//!
//! * [`SpeBackend`] — the paper's path: one ARM SPE perf event per core, a
//!   monitoring thread draining `PERF_RECORD_AUX` records, and the 64-byte
//!   record decode of Section IV.
//! * [`CounterBackend`] — `perf stat`-style aggregate counting over
//!   [`perf_sub::CountingEvent`], the baseline side of the paper's accuracy
//!   methodology (Eq. 1). It samples no addresses and charges no overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use arch_sim::{DataSource, Machine, MemOutcome, ObserverCharge, Op, OpKind, OpObserver, TimeConv};
use perf_sub::attr::{hw_config, PerfEventAttr};
use perf_sub::poll::PollTimeout;
use perf_sub::records::Record;
use perf_sub::{CountingEvent, PerfEvent};
use spe::packet::{decode_records, SPE_RECORD_BYTES};
use spe::{SpeDriver, SpeStats, SpeStatsSnapshot};

use crate::config::NmoConfig;
use crate::runtime::{AddressSample, Profile};
use crate::stream::{
    BatchPayload, BatchPool, CounterDelta, SampleBatch, StreamSource, WindowClock,
};
use crate::NmoError;

/// One per-core observer produced by a backend, ready to attach.
pub struct CoreObserver {
    /// The core the observer belongs to.
    pub core: usize,
    /// The observer to install (alone or fanned out with other backends').
    pub observer: Box<dyn OpObserver>,
}

impl std::fmt::Debug for CoreObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreObserver").field("core", &self.core).finish()
    }
}

/// A pluggable source of profiling data for a session.
///
/// Lifecycle: [`SampleBackend::start`] before the workload runs (returning
/// the per-core observers), [`SampleBackend::stop`] after the workload
/// finishes and observers are detached, then [`SampleBackend::fill`] to fold
/// the backend's results into the assembled [`Profile`].
///
/// During a streaming session the pump thread additionally calls
/// [`SampleBackend::drain`] periodically while the workload runs (and once
/// more after `stop`), turning whatever accumulated since the previous call
/// into window-stamped [`SampleBatch`]es for the event bus. Backends that
/// only report at the end keep the default no-op.
pub trait SampleBackend: Send {
    /// Stable backend name (used in reports and error messages).
    fn name(&self) -> &'static str;

    /// Open per-core instruments for `cores` under `config` and return the
    /// observers to attach. A backend that is inactive under `config` (e.g.
    /// SPE with sampling disabled) returns an empty vector.
    fn start(
        &mut self,
        machine: &Machine,
        cores: &[usize],
        config: &NmoConfig,
    ) -> Result<Vec<CoreObserver>, NmoError>;

    /// Streaming hook: move everything collected since the previous call
    /// into window-stamped batches. `clock` supplies the window arithmetic
    /// and the producer watermark (use [`WindowClock::current`] for data
    /// without timestamps); `pool` supplies (and takes back) the batch
    /// buffers, so a steady-state drain allocates nothing. Data returned
    /// here must *also* be folded into the final [`Profile`] by
    /// [`SampleBackend::fill`] — batches feed the live pipeline, the
    /// profile stays the complete record.
    fn drain(
        &mut self,
        _machine: &Machine,
        _clock: &WindowClock,
        _pool: &BatchPool,
    ) -> Result<Vec<SampleBatch>, NmoError> {
        Ok(Vec::new())
    }

    /// Split this backend's per-core drain work into independent workers,
    /// one per pipeline shard (core-hash partitioning: the worker for shard
    /// `s` covers the backend's cores with `core % shards == s`). Each
    /// worker runs on its own pump thread and drains only its disjoint core
    /// subset, so drains scale with core count.
    ///
    /// A backend that cannot shard (machine-wide instruments like the
    /// counting backend) keeps the default empty list; the sharded session
    /// then calls its [`SampleBackend::drain`] from the coordinator pump
    /// instead. When workers are handed out, the session stops calling
    /// `drain` on the backend itself — the workers own the streaming side
    /// until [`SampleBackend::stop`].
    fn shard_drainers(&mut self, _shards: usize) -> Vec<Box<dyn ShardDrainer>> {
        Vec::new()
    }

    /// The timestamped batch producers this backend will feed once started
    /// (queried after [`SampleBackend::start`]). The streaming pump holds
    /// the window-close watermark until each declared source has produced —
    /// otherwise a slow-starting producer's first delivery would land in
    /// already-closed windows. Backends whose batches carry no timestamps
    /// keep the default empty list.
    fn stream_sources(&self) -> Vec<StreamSource> {
        Vec::new()
    }

    /// Stop collection and drain any remaining data. Called after the
    /// session has detached this backend's observers from the cores.
    fn stop(&mut self, machine: &Machine) -> Result<(), NmoError>;

    /// Fold the backend's results into `profile`.
    fn fill(&mut self, profile: &mut Profile) -> Result<(), NmoError>;
}

/// One pump worker's slice of a backend's drain work: a disjoint core
/// subset drained in parallel with the other shards' workers (see
/// [`SampleBackend::shard_drainers`]).
pub trait ShardDrainer: Send {
    /// The pipeline shard this worker belongs to.
    fn shard(&self) -> usize;

    /// Drain everything this worker's cores collected since the previous
    /// call into window-stamped batches (same contract as
    /// [`SampleBackend::drain`], restricted to the worker's core subset).
    fn drain(
        &mut self,
        machine: &Machine,
        clock: &WindowClock,
        pool: &BatchPool,
    ) -> Result<Vec<SampleBatch>, NmoError>;

    /// The timestamped batch producers this worker feeds (the subset of the
    /// backend's [`SampleBackend::stream_sources`] it covers).
    fn sources(&self) -> Vec<StreamSource>;
}

/// Per-core store the SPE decode paths (monitor thread and pump drains)
/// deposit samples into. One store per core keeps the hot decode path off a
/// single shared lock, and lets per-shard drain workers collect disjoint
/// core subsets without contending.
#[derive(Debug)]
pub(crate) struct SampleStore {
    pub(crate) samples: Mutex<Vec<AddressSample>>,
    pub(crate) processed: AtomicU64,
    pub(crate) skipped: AtomicU64,
    pub(crate) aux_records: AtomicU64,
    pub(crate) collision_flagged: AtomicU64,
    pub(crate) truncated_flagged: AtomicU64,
}

impl Default for SampleStore {
    fn default() -> Self {
        SampleStore {
            samples: Mutex::named(Vec::new(), "spe.store.samples"),
            processed: AtomicU64::new(0),
            skipped: AtomicU64::new(0),
            aux_records: AtomicU64::new(0),
            collision_flagged: AtomicU64::new(0),
            truncated_flagged: AtomicU64::new(0),
        }
    }
}

/// Everything one SPE core's drain paths share: the perf event, statistics,
/// the per-core sample store, and the drain gate. Cloning shares the
/// underlying instruments (all fields are `Arc`s).
#[derive(Clone)]
pub(crate) struct CoreSpe {
    pub(crate) core: usize,
    pub(crate) event: Arc<PerfEvent>,
    pub(crate) stats: Arc<SpeStats>,
    /// Serialises ring drains of this event between the monitor thread and
    /// synchronous drains (`SampleBackend::drain`, `stop`). Holding it
    /// across a whole `drain_event` call guarantees that once a
    /// synchronous drain has run, *every* record published to the ring so
    /// far is in the sample store — the completeness property
    /// `ActiveSession::tiering_step`'s determinism contract rests on.
    pub(crate) drain_gate: Arc<Mutex<()>>,
    /// This core's decode target.
    pub(crate) store: Arc<SampleStore>,
}

/// The ARM SPE sampling backend (paper Section IV).
///
/// Opens one SPE perf event per profiled core (PMU type `0x2c`) with a ring
/// buffer of `(N+1)` pages and an aux buffer sized by `NMO_AUXBUFSIZE`,
/// spawns a monitoring thread that polls the events and decodes each
/// 64-byte SPE record (validating the `0xb2`/`0x71` header bytes, reading
/// the virtual address at offset 31 and the timestamp at offset 56), and
/// converts timestamps to the perf clock via the metadata-page triple.
pub struct SpeBackend {
    cores: Vec<CoreSpe>,
    monitor: Option<JoinHandle<()>>,
    /// Everything already handed out through [`SampleBackend::drain`];
    /// merged back into the profile by `fill`.
    drained: Arc<Mutex<Vec<AddressSample>>>,
    /// One drained-record slot per shard drain worker (each worker writes
    /// only its own slot, so the hot publish path never contends across
    /// shards); collected alongside `drained` by `fill`.
    shard_drained: Vec<Arc<Mutex<Vec<AddressSample>>>>,
    /// Cumulative statistics at the previous drain (for per-drain deltas).
    last_stats: SpeStatsSnapshot,
}

impl Default for SpeBackend {
    fn default() -> Self {
        Self::new()
    }
}

impl SpeBackend {
    /// Create an idle SPE backend.
    pub fn new() -> Self {
        SpeBackend {
            cores: Vec::new(),
            monitor: None,
            drained: Arc::new(Mutex::named(Vec::new(), "spe.drained")),
            shard_drained: Vec::new(),
            last_stats: SpeStatsSnapshot::default(),
        }
    }

    /// Close every opened event and join the monitor thread. Idempotent.
    fn shut_down(&mut self) -> std::thread::Result<()> {
        for c in &self.cores {
            c.event.close();
        }
        match self.monitor.take() {
            Some(handle) => handle.join(),
            None => Ok(()),
        }
    }
}

/// A session that errors out mid-run drops its backends without calling
/// [`SampleBackend::stop`]; without this, the monitor thread would keep
/// polling (and its perf events stay open) for the rest of the process.
impl Drop for SpeBackend {
    fn drop(&mut self) {
        let _ = self.shut_down();
    }
}

impl std::fmt::Debug for SpeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeBackend")
            .field("cores", &self.cores.len())
            .field("monitoring", &self.monitor.is_some())
            .finish()
    }
}

impl SampleBackend for SpeBackend {
    fn name(&self) -> &'static str {
        "spe"
    }

    fn start(
        &mut self,
        machine: &Machine,
        cores: &[usize],
        config: &NmoConfig,
    ) -> Result<Vec<CoreObserver>, NmoError> {
        if !config.spe_active() {
            return Ok(Vec::new());
        }
        let page_bytes = machine.config().page_bytes;
        let ring_pages = config.ring_pages(page_bytes);
        let aux_pages = config.aux_pages(page_bytes);
        let spe_cfg = config.spe_config();
        let mut observers = Vec::with_capacity(cores.len());
        for &core in cores {
            let (driver, event, stats) =
                SpeDriver::open_for(machine, core, spe_cfg, ring_pages, aux_pages, config.overhead)
                    .map_err(NmoError::Perf)?;
            self.cores.push(CoreSpe {
                core,
                event,
                stats,
                drain_gate: Arc::new(Mutex::named((), "spe.drain_gate")),
                store: Arc::new(SampleStore::default()),
            });
            observers.push(CoreObserver { core, observer: Box::new(driver) });
        }

        let events = self.cores.clone();
        self.monitor = Some(std::thread::spawn(move || {
            monitor_loop(&events);
        }));
        Ok(observers)
    }

    fn drain(
        &mut self,
        machine: &Machine,
        clock: &WindowClock,
        pool: &BatchPool,
    ) -> Result<Vec<SampleBatch>, NmoError> {
        if self.cores.is_empty() {
            return Ok(Vec::new());
        }
        Ok(drain_core_set(
            &self.cores,
            machine,
            clock,
            pool,
            &self.drained,
            &mut self.last_stats,
            None,
        ))
    }

    fn shard_drainers(&mut self, shards: usize) -> Vec<Box<dyn ShardDrainer>> {
        if self.cores.is_empty() || shards <= 1 {
            return Vec::new();
        }
        let mut by_shard: std::collections::BTreeMap<usize, Vec<CoreSpe>> =
            std::collections::BTreeMap::new();
        for c in &self.cores {
            by_shard.entry(c.core % shards).or_default().push(c.clone());
        }
        by_shard
            .into_iter()
            .map(|(shard, cores)| {
                let drained = Arc::new(Mutex::named(Vec::new(), "spe.shard_drained"));
                self.shard_drained.push(drained.clone());
                Box::new(SpeShardDrainer {
                    shard,
                    cores,
                    drained,
                    last_stats: SpeStatsSnapshot::default(),
                }) as Box<dyn ShardDrainer>
            })
            .collect()
    }

    fn stream_sources(&self) -> Vec<StreamSource> {
        self.cores.iter().map(|c| ("spe", Some(c.core))).collect()
    }

    fn stop(&mut self, _machine: &Machine) -> Result<(), NmoError> {
        self.shut_down().map_err(|_| NmoError::backend("spe", "monitor thread panicked"))?;
        // Final synchronous drain in case the monitor exited early.
        let mut scratch = Vec::new();
        for c in &self.cores {
            let _gate = c.drain_gate.lock();
            drain_event(c.core, &c.event, &c.store, &mut scratch);
        }
        Ok(())
    }

    fn fill(&mut self, profile: &mut Profile) -> Result<(), NmoError> {
        // Everything still in the per-core stores plus everything already
        // streamed out through `drain` (or the shard drain workers) —
        // together the complete sample record.
        let mut samples = std::mem::take(&mut *self.drained.lock());
        for slot in &self.shard_drained {
            samples.append(&mut slot.lock());
        }
        let mut processed = 0u64;
        let mut skipped = 0u64;
        let mut aux_records = 0u64;
        let mut collision_flagged = 0u64;
        let mut truncated_flagged = 0u64;
        for c in &self.cores {
            samples.append(&mut c.store.samples.lock());
            let st = &c.store;
            // relaxed-ok: loss-accounting counters; the drain gate already
            // serialised the writers, these sums are for the report.
            let (p, s, a, cf, tf) = (
                st.processed.load(Ordering::Relaxed),
                st.skipped.load(Ordering::Relaxed),
                st.aux_records.load(Ordering::Relaxed),
                st.collision_flagged.load(Ordering::Relaxed),
                st.truncated_flagged.load(Ordering::Relaxed),
            );
            processed += p;
            skipped += s;
            aux_records += a;
            collision_flagged += cf;
            truncated_flagged += tf;
        }
        samples.sort_by_key(|s| s.time_ns);

        let mut per_core_spe = Vec::new();
        let mut merged = SpeStatsSnapshot::default();
        for c in &self.cores {
            let snap = c.stats.snapshot();
            merged.merge(&snap);
            per_core_spe.push((c.core, snap));
        }

        profile.processed_samples = processed;
        profile.skipped_packets = skipped;
        profile.aux_records = aux_records;
        profile.collision_flagged_records = collision_flagged;
        profile.truncated_flagged_records = truncated_flagged;
        profile.samples = samples;
        profile.spe = merged;
        profile.per_core_spe = per_core_spe;
        Ok(())
    }
}

/// One pump worker's slice of the SPE backend: the cores whose index hashes
/// to its shard, drained in parallel with the other shards' workers. Loss
/// deltas are tracked per worker (each covers a disjoint core subset, so
/// the per-shard deltas sum to the backend-wide delta).
struct SpeShardDrainer {
    shard: usize,
    cores: Vec<CoreSpe>,
    drained: Arc<Mutex<Vec<AddressSample>>>,
    last_stats: SpeStatsSnapshot,
}

impl ShardDrainer for SpeShardDrainer {
    fn shard(&self) -> usize {
        self.shard
    }

    fn drain(
        &mut self,
        machine: &Machine,
        clock: &WindowClock,
        pool: &BatchPool,
    ) -> Result<Vec<SampleBatch>, NmoError> {
        // Stamp batches with a representative core so the sharded bus
        // routes them to this worker's lane (every core in the subset
        // hashes to the same lane by construction).
        let lane_core = self.cores.first().map(|c| c.core);
        Ok(drain_core_set(
            &self.cores,
            machine,
            clock,
            pool,
            &self.drained,
            &mut self.last_stats,
            lane_core,
        ))
    }

    fn sources(&self) -> Vec<StreamSource> {
        self.cores.iter().map(|c| ("spe", Some(c.core))).collect()
    }
}

/// Drain a core subset: flush the per-core drivers, pull every published
/// ring record through the decode pipeline (the monitor thread may also be
/// pulling; the ring hands each record to exactly one of us), and turn the
/// collected samples into window-stamped batches. The per-drain loss delta
/// of the subset rides on the newest batch. Buffers come from `pool`;
/// `batch_core` stamps the emitted batches (lane routing on the sharded
/// bus).
fn drain_core_set(
    cores: &[CoreSpe],
    machine: &Machine,
    clock: &WindowClock,
    pool: &BatchPool,
    drained: &Mutex<Vec<AddressSample>>,
    last_stats: &mut SpeStatsSnapshot,
    batch_core: Option<usize>,
) -> Vec<SampleBatch> {
    // Push sub-watermark data out of the per-core drivers, then decode.
    let mut scratch = pool.bytes();
    for c in cores {
        let _ = machine.flush_observer(c.core);
        let _gate = c.drain_gate.lock();
        drain_event(c.core, &c.event, &c.store, &mut scratch);
    }
    pool.recycle_bytes(scratch);

    // Collect the subset's samples, grouped by window into pooled buffers.
    let mut by_window: std::collections::BTreeMap<u64, Vec<AddressSample>> =
        std::collections::BTreeMap::new();
    for c in cores {
        let taken = {
            let mut lock = c.store.samples.lock();
            if lock.is_empty() {
                continue;
            }
            std::mem::replace(&mut *lock, pool.samples())
        };
        drained.lock().extend_from_slice(&taken);
        for s in &taken {
            by_window.entry(clock.index_of(s.time_ns)).or_insert_with(|| pool.samples()).push(*s);
        }
        pool.recycle_samples(taken);
    }

    let mut cumulative = SpeStatsSnapshot::default();
    for c in cores {
        cumulative.merge(&c.stats.snapshot());
    }
    let loss = cumulative.delta(last_stats);
    *last_stats = cumulative;

    if by_window.is_empty() {
        if loss == SpeStatsSnapshot::default() {
            return Vec::new();
        }
        // Loss-only drain (e.g. pure truncation): stamp with the current
        // watermark window.
        return vec![SampleBatch::new(
            "spe",
            batch_core,
            clock.current(),
            BatchPayload::SpeSamples { samples: Vec::new(), loss },
        )];
    }
    let last = by_window.len() - 1;
    by_window
        .into_iter()
        .enumerate()
        .map(|(i, (index, group))| {
            // The per-drain loss delta rides on the newest batch.
            let loss = if i == last { loss } else { SpeStatsSnapshot::default() };
            SampleBatch::new(
                "spe",
                batch_core,
                clock.window(index),
                BatchPayload::SpeSamples { samples: group, loss },
            )
        })
        .collect()
}

pub(crate) fn monitor_loop(events: &[CoreSpe]) {
    // Every drain holds the event's gate for the whole pop→decode→store
    // sequence, so a concurrent synchronous drain never observes a record
    // that has left the ring but not yet reached the store. One scratch
    // buffer serves every event's aux reads (the monitor never allocates in
    // steady state).
    let mut scratch = Vec::new();
    loop {
        let mut any_ready = false;
        let mut all_closed = true;
        for c in events {
            match c.event.waker().try_wait() {
                PollTimeout::Ready => {
                    any_ready = true;
                    let _gate = c.drain_gate.lock();
                    drain_event(c.core, &c.event, &c.store, &mut scratch);
                }
                PollTimeout::Closed => {
                    let _gate = c.drain_gate.lock();
                    drain_event(c.core, &c.event, &c.store, &mut scratch);
                }
                PollTimeout::TimedOut => {}
            }
            if !c.event.waker().is_closed() {
                all_closed = false;
            }
        }
        if all_closed {
            for c in events {
                let _gate = c.drain_gate.lock();
                drain_event(c.core, &c.event, &c.store, &mut scratch);
            }
            return;
        }
        if !any_ready {
            // The emulated-interrupt poll loop deliberately naps between
            // checks; there is no condvar on the simulated aux buffers.
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Drain every pending ring-buffer record of one event, decoding aux data
/// into the core's sample store. `scratch` is the caller's reusable aux
/// read buffer (see [`perf_sub::AuxBuffer::read_into`]) — the decode loop
/// allocates nothing beyond sample-store growth.
pub(crate) fn drain_event(
    core: usize,
    event: &Arc<PerfEvent>,
    store: &Arc<SampleStore>,
    scratch: &mut Vec<u8>,
) {
    let (time_zero, time_shift, time_mult) = event.meta().clock();
    for record in event.drain() {
        let aux = match record {
            Record::Aux(a) => a,
            Record::ItraceStart(_) | Record::Lost(_) => continue,
        };
        // relaxed-ok: loss-accounting counter; the drain gate serialises
        // drainers and the summary read happens after the final drain.
        store.aux_records.fetch_add(1, Ordering::Relaxed);
        if aux.collision() {
            store.collision_flagged.fetch_add(1, Ordering::Relaxed); // relaxed-ok: as above
        }
        if aux.truncated() {
            store.truncated_flagged.fetch_add(1, Ordering::Relaxed); // relaxed-ok: as above
        }
        let Some(aux_buf) = event.aux() else { continue };
        aux_buf.read_into(aux.aux_offset, aux.aux_size, scratch);
        // The incremental NMO decode: validate the 0xb2 / 0x71 header bytes,
        // read the 64-bit address and timestamp, count everything else as
        // skipped (per-drain loss accounting). Samples decode straight into
        // the per-core store (the gate serialises us with other drainers).
        let mut decoder = decode_records(scratch);
        let mut samples = store.samples.lock();
        samples.reserve(scratch.len() / SPE_RECORD_BYTES);
        let before = samples.len();
        for rec in decoder.by_ref() {
            let time_ns = TimeConv::apply_mmap_triple(rec.ticks, time_zero, time_shift, time_mult);
            // Opportunistic full decode for the richer fields.
            let (is_store, latency, source) = match rec.full {
                Some(full) => (full.is_store, full.latency, full.source),
                None => (false, 0, DataSource::L1),
            };
            samples.push(AddressSample {
                time_ns,
                vaddr: rec.vaddr,
                core,
                is_store,
                latency,
                source,
            });
        }
        let decoded = (samples.len() - before) as u64;
        drop(samples);
        // relaxed-ok: loss-accounting counters, as above — the samples
        // themselves travel through the mutex-protected store.
        store.skipped.fetch_add(decoder.skipped(), Ordering::Relaxed);
        store.processed.fetch_add(decoded, Ordering::Relaxed); // relaxed-ok: as above
    }
}

/// The `perf stat`-style counting backend.
///
/// Opens one machine-wide [`CountingEvent`] per tracked hardware event
/// (`mem_access`, `ld_retired`, `st_retired`, `inst_retired`, `br_retired`)
/// and feeds them from a per-core observer. Counting charges no cycles to the
/// profiled cores, mirroring the negligible overhead of `perf stat` in the
/// paper's baseline runs; the final counts land in
/// [`Profile::perf_counts`].
#[derive(Debug, Default)]
pub struct CounterBackend {
    events: Vec<(&'static str, Arc<CountingEvent>)>,
    /// Counter values at the previous streaming drain.
    last_totals: Vec<u64>,
}

impl CounterBackend {
    /// Create an idle counting backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current value of one named counter, if it exists.
    pub fn read(&self, name: &str) -> Option<u64> {
        self.events.iter().find(|(n, _)| *n == name).map(|(_, e)| e.read())
    }
}

struct CounterObserver {
    mem_access: Arc<CountingEvent>,
    ld_retired: Arc<CountingEvent>,
    st_retired: Arc<CountingEvent>,
    inst_retired: Arc<CountingEvent>,
    br_retired: Arc<CountingEvent>,
}

impl OpObserver for CounterObserver {
    fn on_op(
        &mut self,
        op: &Op,
        _outcome: Option<&MemOutcome>,
        _now_cycles: u64,
    ) -> ObserverCharge {
        self.inst_retired.add(1);
        match op.kind {
            OpKind::Load => {
                self.mem_access.add(1);
                self.ld_retired.add(1);
            }
            OpKind::Store => {
                self.mem_access.add(1);
                self.st_retired.add(1);
            }
            OpKind::Branch => self.br_retired.add(1),
            OpKind::Other => {}
        }
        ObserverCharge::NONE
    }
}

impl SampleBackend for CounterBackend {
    fn name(&self) -> &'static str {
        "counters"
    }

    fn start(
        &mut self,
        _machine: &Machine,
        cores: &[usize],
        config: &NmoConfig,
    ) -> Result<Vec<CoreObserver>, NmoError> {
        if !config.enabled {
            return Ok(Vec::new());
        }
        let open = |cfg: u64| -> Result<Arc<CountingEvent>, NmoError> {
            let attr = PerfEventAttr::counting(cfg);
            attr.validate().map_err(NmoError::Perf)?;
            Ok(Arc::new(CountingEvent::new(attr)))
        };
        let mem_access = open(hw_config::MEM_ACCESS)?;
        let ld_retired = open(hw_config::LD_RETIRED)?;
        let st_retired = open(hw_config::ST_RETIRED)?;
        let inst_retired = open(hw_config::INSTRUCTIONS)?;
        let br_retired = open(hw_config::BR_RETIRED)?;
        self.events = vec![
            ("mem_access", mem_access.clone()),
            ("ld_retired", ld_retired.clone()),
            ("st_retired", st_retired.clone()),
            ("inst_retired", inst_retired.clone()),
            ("br_retired", br_retired.clone()),
        ];
        Ok(cores
            .iter()
            .map(|&core| CoreObserver {
                core,
                observer: Box::new(CounterObserver {
                    mem_access: mem_access.clone(),
                    ld_retired: ld_retired.clone(),
                    st_retired: st_retired.clone(),
                    inst_retired: inst_retired.clone(),
                    br_retired: br_retired.clone(),
                }) as Box<dyn OpObserver>,
            })
            .collect())
    }

    fn drain(
        &mut self,
        _machine: &Machine,
        clock: &WindowClock,
        _pool: &BatchPool,
    ) -> Result<Vec<SampleBatch>, NmoError> {
        if self.events.is_empty() {
            return Ok(Vec::new());
        }
        if self.last_totals.len() != self.events.len() {
            self.last_totals = vec![0; self.events.len()];
        }
        let mut deltas = Vec::new();
        for (i, (name, event)) in self.events.iter().enumerate() {
            let total = event.read();
            let delta = total.saturating_sub(self.last_totals[i]);
            if delta > 0 {
                deltas.push(CounterDelta { event: name.to_string(), delta, total });
            }
            self.last_totals[i] = total;
        }
        if deltas.is_empty() {
            return Ok(Vec::new());
        }
        // Counter reads carry no timestamps of their own; stamp with the
        // producer watermark's current window. (The counters are
        // machine-wide, so this backend does not shard — the coordinator
        // pump drains it.)
        Ok(vec![SampleBatch::new(
            "counters",
            None,
            clock.current(),
            BatchPayload::CounterDeltas { deltas },
        )])
    }

    fn stop(&mut self, _machine: &Machine) -> Result<(), NmoError> {
        for (_, event) in &self.events {
            event.disable();
        }
        Ok(())
    }

    fn fill(&mut self, profile: &mut Profile) -> Result<(), NmoError> {
        profile
            .perf_counts
            .extend(self.events.iter().map(|(name, event)| (name.to_string(), event.read())));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small_test())
    }

    #[test]
    fn spe_backend_inactive_without_sampling_config() {
        let machine = machine();
        let mut backend = SpeBackend::new();
        let observers = backend.start(&machine, &[0, 1], &NmoConfig::default()).unwrap();
        assert!(observers.is_empty());
        backend.stop(&machine).unwrap();
    }

    #[test]
    fn spe_backend_collects_samples_end_to_end() {
        let machine = machine();
        let config = NmoConfig::paper_default(100);
        let mut backend = SpeBackend::new();
        let observers = backend.start(&machine, &[0], &config).unwrap();
        assert_eq!(observers.len(), 1);
        for co in observers {
            machine.set_observer(co.core, co.observer).unwrap();
        }
        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..50_000u64 {
                e.load(region.start + (i % 10_000) * 8, 8);
            }
        }
        let _ = machine.take_observer(0).unwrap();
        backend.stop(&machine).unwrap();
        let mut profile = Profile::empty("t", config);
        backend.fill(&mut profile).unwrap();
        assert!(profile.processed_samples > 100, "{}", profile.processed_samples);
        assert_eq!(profile.samples.len() as u64, profile.processed_samples);
        assert!(profile.spe.records_written >= profile.processed_samples);
    }

    #[test]
    fn spe_drain_streams_batches_and_fill_keeps_the_complete_record() {
        let machine = machine();
        let config = NmoConfig::paper_default(100);
        let mut backend = SpeBackend::new();
        let observers = backend.start(&machine, &[0], &config).unwrap();
        for co in observers {
            machine.set_observer(co.core, co.observer).unwrap();
        }
        let clock = crate::stream::WindowClock::new(1_000);
        let pool = BatchPool::new(8);
        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..50_000u64 {
                e.load(region.start + (i % 10_000) * 8, 8);
            }
        }
        let _ = machine.take_observer(0).unwrap();

        // Mid-run drain: batches are window-stamped, carry samples, and the
        // per-drain loss delta rides exactly once.
        let batches = backend.drain(&machine, &clock, &pool).unwrap();
        assert!(!batches.is_empty());
        let mut streamed = 0u64;
        let mut loss_batches = 0u64;
        let mut last_window = None;
        for b in &batches {
            assert_eq!(b.backend, "spe");
            if let BatchPayload::SpeSamples { samples, loss } = b.payload() {
                streamed += samples.len() as u64;
                assert!(samples.iter().all(|s| b.window.contains_ns(s.time_ns)));
                if *loss != SpeStatsSnapshot::default() {
                    loss_batches += 1;
                }
            } else {
                panic!("spe backend emits SpeSamples payloads");
            }
            if let Some(prev) = last_window {
                assert!(b.window.index > prev, "batches ascend by window");
            }
            last_window = Some(b.window.index);
        }
        assert!(streamed > 0);
        assert_eq!(loss_batches, 1, "the drain's stats delta rides on one batch");

        // A second drain with no new data is empty.
        assert!(backend.drain(&machine, &clock, &pool).unwrap().is_empty());

        // fill() still assembles the complete record.
        backend.stop(&machine).unwrap();
        let mut profile = Profile::empty("t", config);
        backend.fill(&mut profile).unwrap();
        assert!(profile.processed_samples >= streamed);
        assert_eq!(profile.samples.len() as u64, profile.processed_samples);
        assert!(profile.samples.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
    }

    #[test]
    fn counter_drain_emits_deltas_and_totals() {
        let machine = machine();
        let config = NmoConfig { enabled: true, ..NmoConfig::default() };
        let mut backend = CounterBackend::new();
        let observers = backend.start(&machine, &[0], &config).unwrap();
        for co in observers {
            machine.set_observer(co.core, co.observer).unwrap();
        }
        let clock = crate::stream::WindowClock::new(1_000);
        let pool = BatchPool::new(8);
        let region = machine.alloc("data", 1 << 16).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..1_000u64 {
                e.load(region.start + i * 8, 8);
            }
        }
        let batches = backend.drain(&machine, &clock, &pool).unwrap();
        assert_eq!(batches.len(), 1);
        let BatchPayload::CounterDeltas { deltas } = batches[0].payload() else {
            panic!("counter backend emits CounterDeltas");
        };
        let mem = deltas.iter().find(|d| d.event == "mem_access").unwrap();
        assert_eq!(mem.delta, 1_000);
        assert_eq!(mem.total, 1_000);

        // Incremental: the next drain reports only the new work.
        {
            let mut e = machine.attach(0).unwrap();
            e.store(region.start, 8);
        }
        let batches = backend.drain(&machine, &clock, &pool).unwrap();
        let BatchPayload::CounterDeltas { deltas } = batches[0].payload() else {
            panic!("counter backend emits CounterDeltas");
        };
        let mem = deltas.iter().find(|d| d.event == "mem_access").unwrap();
        assert_eq!(mem.delta, 1);
        assert_eq!(mem.total, 1_001);
        let _ = machine.take_observer(0).unwrap();
        backend.stop(&machine).unwrap();
        // Quiescent counters drain to nothing.
        assert!(backend.drain(&machine, &clock, &pool).unwrap().is_empty());
    }

    #[test]
    fn counter_backend_counts_while_attached() {
        let machine = machine();
        let config = NmoConfig { enabled: true, ..NmoConfig::default() };
        let mut backend = CounterBackend::new();
        let observers = backend.start(&machine, &[0, 1], &config).unwrap();
        assert_eq!(observers.len(), 2);
        for co in observers {
            machine.set_observer(co.core, co.observer).unwrap();
        }
        let region = machine.alloc("data", 1 << 16).unwrap();
        for core in [0usize, 1] {
            let mut e = machine.attach(core).unwrap();
            for i in 0..1_000u64 {
                e.load(region.start + i * 8, 8);
            }
            e.store(region.start, 8);
        }
        for core in [0usize, 1] {
            let _ = machine.take_observer(core).unwrap();
        }
        backend.stop(&machine).unwrap();
        assert_eq!(backend.read("mem_access"), Some(2 * 1_000 + 2));
        assert_eq!(backend.read("st_retired"), Some(2));
        let mut profile = Profile::empty("t", config);
        backend.fill(&mut profile).unwrap();
        let mem = profile.perf_counts.iter().find(|(n, _)| n == "mem_access").unwrap();
        assert_eq!(mem.1, machine.counters().mem_access);
    }

    #[test]
    fn counter_backend_disabled_config_attaches_nothing() {
        let machine = machine();
        let mut backend = CounterBackend::new();
        let observers = backend.start(&machine, &[0], &NmoConfig::default()).unwrap();
        assert!(observers.is_empty());
        assert_eq!(backend.read("mem_access"), None);
    }
}
