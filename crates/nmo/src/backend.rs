//! Pluggable sample backends (the data-acquisition seam of the profiler).
//!
//! The paper's NMO tool is layered: ARM SPE sampling at the bottom, a
//! `perf_event` substrate in the middle, and the analysis levels on top. A
//! [`SampleBackend`] is the seam between the bottom two layers and the
//! session: it opens whatever per-core instruments it needs, hands the
//! session one [`arch_sim::OpObserver`] per core (composed with other
//! backends via [`arch_sim::FanoutObserver`] when several backends share a
//! core), and folds its results into the final [`Profile`].
//!
//! Two backends ship with the crate:
//!
//! * [`SpeBackend`] — the paper's path: one ARM SPE perf event per core, a
//!   monitoring thread draining `PERF_RECORD_AUX` records, and the 64-byte
//!   record decode of Section IV.
//! * [`CounterBackend`] — `perf stat`-style aggregate counting over
//!   [`perf_sub::CountingEvent`], the baseline side of the paper's accuracy
//!   methodology (Eq. 1). It samples no addresses and charges no overhead.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use arch_sim::{Machine, MemLevel, MemOutcome, ObserverCharge, Op, OpKind, OpObserver, TimeConv};
use perf_sub::attr::{hw_config, PerfEventAttr};
use perf_sub::poll::PollTimeout;
use perf_sub::records::Record;
use perf_sub::{CountingEvent, PerfEvent};
use spe::packet::{decode_nmo_fields, SpeRecord, SPE_RECORD_BYTES};
use spe::{SpeDriver, SpeStats, SpeStatsSnapshot};

use crate::config::NmoConfig;
use crate::runtime::{AddressSample, Profile};
use crate::NmoError;

/// One per-core observer produced by a backend, ready to attach.
pub struct CoreObserver {
    /// The core the observer belongs to.
    pub core: usize,
    /// The observer to install (alone or fanned out with other backends').
    pub observer: Box<dyn OpObserver>,
}

impl std::fmt::Debug for CoreObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreObserver").field("core", &self.core).finish()
    }
}

/// A pluggable source of profiling data for a session.
///
/// Lifecycle: [`SampleBackend::start`] before the workload runs (returning
/// the per-core observers), [`SampleBackend::stop`] after the workload
/// finishes and observers are detached, then [`SampleBackend::fill`] to fold
/// the backend's results into the assembled [`Profile`].
pub trait SampleBackend: Send {
    /// Stable backend name (used in reports and error messages).
    fn name(&self) -> &'static str;

    /// Open per-core instruments for `cores` under `config` and return the
    /// observers to attach. A backend that is inactive under `config` (e.g.
    /// SPE with sampling disabled) returns an empty vector.
    fn start(
        &mut self,
        machine: &Machine,
        cores: &[usize],
        config: &NmoConfig,
    ) -> Result<Vec<CoreObserver>, NmoError>;

    /// Stop collection and drain any remaining data. Called after the
    /// session has detached this backend's observers from the cores.
    fn stop(&mut self, machine: &Machine) -> Result<(), NmoError>;

    /// Fold the backend's results into `profile`.
    fn fill(&mut self, profile: &mut Profile) -> Result<(), NmoError>;
}

/// Shared store the SPE monitoring thread decodes samples into.
#[derive(Debug, Default)]
pub(crate) struct SampleStore {
    pub(crate) samples: Mutex<Vec<AddressSample>>,
    pub(crate) processed: AtomicU64,
    pub(crate) skipped: AtomicU64,
    pub(crate) aux_records: AtomicU64,
    pub(crate) collision_flagged: AtomicU64,
    pub(crate) truncated_flagged: AtomicU64,
}

pub(crate) struct CoreSpe {
    pub(crate) core: usize,
    pub(crate) event: Arc<PerfEvent>,
    pub(crate) stats: Arc<SpeStats>,
}

/// The ARM SPE sampling backend (paper Section IV).
///
/// Opens one SPE perf event per profiled core (PMU type `0x2c`) with a ring
/// buffer of `(N+1)` pages and an aux buffer sized by `NMO_AUXBUFSIZE`,
/// spawns a monitoring thread that polls the events and decodes each
/// 64-byte SPE record (validating the `0xb2`/`0x71` header bytes, reading
/// the virtual address at offset 31 and the timestamp at offset 56), and
/// converts timestamps to the perf clock via the metadata-page triple.
#[derive(Default)]
pub struct SpeBackend {
    cores: Vec<CoreSpe>,
    store: Arc<SampleStore>,
    monitor: Option<JoinHandle<()>>,
}

impl SpeBackend {
    /// Create an idle SPE backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Close every opened event and join the monitor thread. Idempotent.
    fn shut_down(&mut self) -> std::thread::Result<()> {
        for c in &self.cores {
            c.event.close();
        }
        match self.monitor.take() {
            Some(handle) => handle.join(),
            None => Ok(()),
        }
    }
}

/// A session that errors out mid-run drops its backends without calling
/// [`SampleBackend::stop`]; without this, the monitor thread would keep
/// polling (and its perf events stay open) for the rest of the process.
impl Drop for SpeBackend {
    fn drop(&mut self) {
        let _ = self.shut_down();
    }
}

impl std::fmt::Debug for SpeBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpeBackend")
            .field("cores", &self.cores.len())
            .field("monitoring", &self.monitor.is_some())
            .finish()
    }
}

impl SampleBackend for SpeBackend {
    fn name(&self) -> &'static str {
        "spe"
    }

    fn start(
        &mut self,
        machine: &Machine,
        cores: &[usize],
        config: &NmoConfig,
    ) -> Result<Vec<CoreObserver>, NmoError> {
        if !config.spe_active() {
            return Ok(Vec::new());
        }
        let page_bytes = machine.config().page_bytes;
        let ring_pages = config.ring_pages(page_bytes);
        let aux_pages = config.aux_pages(page_bytes);
        let spe_cfg = config.spe_config();
        let mut observers = Vec::with_capacity(cores.len());
        for &core in cores {
            let (driver, event, stats) =
                SpeDriver::open_for(machine, core, spe_cfg, ring_pages, aux_pages, config.overhead)
                    .map_err(NmoError::Perf)?;
            self.cores.push(CoreSpe { core, event, stats });
            observers.push(CoreObserver { core, observer: Box::new(driver) });
        }

        let events: Vec<(usize, Arc<PerfEvent>)> =
            self.cores.iter().map(|c| (c.core, c.event.clone())).collect();
        let store = self.store.clone();
        self.monitor = Some(std::thread::spawn(move || {
            monitor_loop(&events, &store);
        }));
        Ok(observers)
    }

    fn stop(&mut self, _machine: &Machine) -> Result<(), NmoError> {
        self.shut_down().map_err(|_| NmoError::backend("spe", "monitor thread panicked"))?;
        // Final synchronous drain in case the monitor exited early.
        for c in &self.cores {
            drain_event(c.core, &c.event, &self.store);
        }
        Ok(())
    }

    fn fill(&mut self, profile: &mut Profile) -> Result<(), NmoError> {
        let mut samples = std::mem::take(&mut *self.store.samples.lock());
        samples.sort_by_key(|s| s.time_ns);

        let mut per_core_spe = Vec::new();
        let mut merged = SpeStatsSnapshot::default();
        for c in &self.cores {
            let snap = c.stats.snapshot();
            merged.merge(&snap);
            per_core_spe.push((c.core, snap));
        }

        profile.processed_samples = self.store.processed.load(Ordering::Relaxed);
        profile.skipped_packets = self.store.skipped.load(Ordering::Relaxed);
        profile.aux_records = self.store.aux_records.load(Ordering::Relaxed);
        profile.collision_flagged_records = self.store.collision_flagged.load(Ordering::Relaxed);
        profile.truncated_flagged_records = self.store.truncated_flagged.load(Ordering::Relaxed);
        profile.samples = samples;
        profile.spe = merged;
        profile.per_core_spe = per_core_spe;
        Ok(())
    }
}

pub(crate) fn monitor_loop(events: &[(usize, Arc<PerfEvent>)], store: &Arc<SampleStore>) {
    loop {
        let mut any_ready = false;
        let mut all_closed = true;
        for (core, event) in events {
            match event.waker().try_wait() {
                PollTimeout::Ready => {
                    any_ready = true;
                    drain_event(*core, event, store);
                }
                PollTimeout::Closed => {
                    drain_event(*core, event, store);
                }
                PollTimeout::TimedOut => {}
            }
            if !event.waker().is_closed() {
                all_closed = false;
            }
        }
        if all_closed {
            for (core, event) in events {
                drain_event(*core, event, store);
            }
            return;
        }
        if !any_ready {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Drain every pending ring-buffer record of one event, decoding aux data
/// into address samples.
pub(crate) fn drain_event(core: usize, event: &Arc<PerfEvent>, store: &Arc<SampleStore>) {
    let (time_zero, time_shift, time_mult) = event.meta().clock();
    while let Ok(Some(record)) = event.next_record() {
        let aux = match record {
            Record::Aux(a) => a,
            Record::ItraceStart(_) | Record::Lost(_) => continue,
        };
        store.aux_records.fetch_add(1, Ordering::Relaxed);
        if aux.collision() {
            store.collision_flagged.fetch_add(1, Ordering::Relaxed);
        }
        if aux.truncated() {
            store.truncated_flagged.fetch_add(1, Ordering::Relaxed);
        }
        let Some(aux_buf) = event.aux() else { continue };
        let data = aux_buf.read_at(aux.aux_offset, aux.aux_size);
        let mut samples = Vec::with_capacity(data.len() / SPE_RECORD_BYTES);
        for chunk in data.chunks_exact(SPE_RECORD_BYTES) {
            // The NMO decode: validate the 0xb2 / 0x71 header bytes, read the
            // 64-bit address and timestamp, skip the record otherwise.
            match decode_nmo_fields(chunk) {
                Some((vaddr, ticks)) => {
                    let time_ns =
                        TimeConv::apply_mmap_triple(ticks, time_zero, time_shift, time_mult);
                    // Opportunistic full decode for the richer fields.
                    let (is_store, latency, level) = match SpeRecord::decode(chunk) {
                        Some(rec) => (rec.is_store, rec.latency, rec.level),
                        None => (false, 0, MemLevel::L1),
                    };
                    samples.push(AddressSample { time_ns, vaddr, core, is_store, latency, level });
                }
                None => {
                    store.skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        store.processed.fetch_add(samples.len() as u64, Ordering::Relaxed);
        store.samples.lock().extend(samples);
    }
}

/// The `perf stat`-style counting backend.
///
/// Opens one machine-wide [`CountingEvent`] per tracked hardware event
/// (`mem_access`, `ld_retired`, `st_retired`, `inst_retired`, `br_retired`)
/// and feeds them from a per-core observer. Counting charges no cycles to the
/// profiled cores, mirroring the negligible overhead of `perf stat` in the
/// paper's baseline runs; the final counts land in
/// [`Profile::perf_counts`].
#[derive(Debug, Default)]
pub struct CounterBackend {
    events: Vec<(&'static str, Arc<CountingEvent>)>,
}

impl CounterBackend {
    /// Create an idle counting backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current value of one named counter, if it exists.
    pub fn read(&self, name: &str) -> Option<u64> {
        self.events.iter().find(|(n, _)| *n == name).map(|(_, e)| e.read())
    }
}

struct CounterObserver {
    mem_access: Arc<CountingEvent>,
    ld_retired: Arc<CountingEvent>,
    st_retired: Arc<CountingEvent>,
    inst_retired: Arc<CountingEvent>,
    br_retired: Arc<CountingEvent>,
}

impl OpObserver for CounterObserver {
    fn on_op(
        &mut self,
        op: &Op,
        _outcome: Option<&MemOutcome>,
        _now_cycles: u64,
    ) -> ObserverCharge {
        self.inst_retired.add(1);
        match op.kind {
            OpKind::Load => {
                self.mem_access.add(1);
                self.ld_retired.add(1);
            }
            OpKind::Store => {
                self.mem_access.add(1);
                self.st_retired.add(1);
            }
            OpKind::Branch => self.br_retired.add(1),
            OpKind::Other => {}
        }
        ObserverCharge::NONE
    }
}

impl SampleBackend for CounterBackend {
    fn name(&self) -> &'static str {
        "counters"
    }

    fn start(
        &mut self,
        _machine: &Machine,
        cores: &[usize],
        config: &NmoConfig,
    ) -> Result<Vec<CoreObserver>, NmoError> {
        if !config.enabled {
            return Ok(Vec::new());
        }
        let open = |cfg: u64| -> Result<Arc<CountingEvent>, NmoError> {
            let attr = PerfEventAttr::counting(cfg);
            attr.validate().map_err(NmoError::Perf)?;
            Ok(Arc::new(CountingEvent::new(attr)))
        };
        let mem_access = open(hw_config::MEM_ACCESS)?;
        let ld_retired = open(hw_config::LD_RETIRED)?;
        let st_retired = open(hw_config::ST_RETIRED)?;
        let inst_retired = open(hw_config::INSTRUCTIONS)?;
        let br_retired = open(hw_config::BR_RETIRED)?;
        self.events = vec![
            ("mem_access", mem_access.clone()),
            ("ld_retired", ld_retired.clone()),
            ("st_retired", st_retired.clone()),
            ("inst_retired", inst_retired.clone()),
            ("br_retired", br_retired.clone()),
        ];
        Ok(cores
            .iter()
            .map(|&core| CoreObserver {
                core,
                observer: Box::new(CounterObserver {
                    mem_access: mem_access.clone(),
                    ld_retired: ld_retired.clone(),
                    st_retired: st_retired.clone(),
                    inst_retired: inst_retired.clone(),
                    br_retired: br_retired.clone(),
                }) as Box<dyn OpObserver>,
            })
            .collect())
    }

    fn stop(&mut self, _machine: &Machine) -> Result<(), NmoError> {
        for (_, event) in &self.events {
            event.disable();
        }
        Ok(())
    }

    fn fill(&mut self, profile: &mut Profile) -> Result<(), NmoError> {
        profile
            .perf_counts
            .extend(self.events.iter().map(|(name, event)| (name.to_string(), event.read())));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;

    fn machine() -> Machine {
        Machine::new(MachineConfig::small_test())
    }

    #[test]
    fn spe_backend_inactive_without_sampling_config() {
        let machine = machine();
        let mut backend = SpeBackend::new();
        let observers = backend.start(&machine, &[0, 1], &NmoConfig::default()).unwrap();
        assert!(observers.is_empty());
        backend.stop(&machine).unwrap();
    }

    #[test]
    fn spe_backend_collects_samples_end_to_end() {
        let machine = machine();
        let config = NmoConfig::paper_default(100);
        let mut backend = SpeBackend::new();
        let observers = backend.start(&machine, &[0], &config).unwrap();
        assert_eq!(observers.len(), 1);
        for co in observers {
            machine.set_observer(co.core, co.observer).unwrap();
        }
        let region = machine.alloc("data", 1 << 20).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..50_000u64 {
                e.load(region.start + (i % 10_000) * 8, 8);
            }
        }
        let _ = machine.take_observer(0).unwrap();
        backend.stop(&machine).unwrap();
        let mut profile = Profile::empty("t", config);
        backend.fill(&mut profile).unwrap();
        assert!(profile.processed_samples > 100, "{}", profile.processed_samples);
        assert_eq!(profile.samples.len() as u64, profile.processed_samples);
        assert!(profile.spe.records_written >= profile.processed_samples);
    }

    #[test]
    fn counter_backend_counts_while_attached() {
        let machine = machine();
        let config = NmoConfig { enabled: true, ..NmoConfig::default() };
        let mut backend = CounterBackend::new();
        let observers = backend.start(&machine, &[0, 1], &config).unwrap();
        assert_eq!(observers.len(), 2);
        for co in observers {
            machine.set_observer(co.core, co.observer).unwrap();
        }
        let region = machine.alloc("data", 1 << 16).unwrap();
        for core in [0usize, 1] {
            let mut e = machine.attach(core).unwrap();
            for i in 0..1_000u64 {
                e.load(region.start + i * 8, 8);
            }
            e.store(region.start, 8);
        }
        for core in [0usize, 1] {
            let _ = machine.take_observer(core).unwrap();
        }
        backend.stop(&machine).unwrap();
        assert_eq!(backend.read("mem_access"), Some(2 * 1_000 + 2));
        assert_eq!(backend.read("st_retired"), Some(2));
        let mut profile = Profile::empty("t", config);
        backend.fill(&mut profile).unwrap();
        let mem = profile.perf_counts.iter().find(|(n, _)| n == "mem_access").unwrap();
        assert_eq!(mem.1, machine.counters().mem_access);
    }

    #[test]
    fn counter_backend_disabled_config_attaches_nothing() {
        let machine = machine();
        let mut backend = CounterBackend::new();
        let observers = backend.start(&machine, &[0], &NmoConfig::default()).unwrap();
        assert!(observers.is_empty());
        assert_eq!(backend.read("mem_access"), None);
    }
}
