//! The workload contract a [`crate::session::ProfileSession`] drives.
//!
//! A workload allocates its simulated regions in [`Workload::setup`], runs
//! its kernels in [`Workload::run`] (bracketing phases and routing every
//! load/store through the machine's engines), and checks its numerical
//! result in [`Workload::verify`]. All fallible steps report
//! [`NmoError`] instead of panicking, so a session can surface allocation
//! failures, busy cores, or corrupted results to the caller.
//!
//! The trait lives in `nmo` (rather than the `workloads` crate) so the
//! session type can drive any workload without a dependency cycle; the
//! `workloads` crate re-exports it alongside the five paper benchmarks.

use arch_sim::Machine;

use crate::annotate::Annotations;
use crate::NmoError;

/// Summary of one workload execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkloadReport {
    /// Simulated memory operations issued.
    pub mem_ops: u64,
    /// Floating-point operations reported.
    pub flops: u64,
    /// A workload-specific checksum for verification.
    pub checksum: f64,
}

/// A benchmark that can run on the simulated machine under a profiling
/// session.
pub trait Workload: Send {
    /// Short name ("stream", "cfd", ...).
    fn name(&self) -> &'static str;

    /// Allocate simulated regions and register NMO address tags.
    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError>;

    /// Run the workload using one thread per entry of `cores`. Execution
    /// phases are bracketed with NMO annotations.
    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError>;

    /// Verify the computed result (returns false on numerical corruption).
    fn verify(&self) -> bool;
}

impl Workload for Box<dyn Workload> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn setup(&mut self, machine: &Machine, annotations: &Annotations) -> Result<(), NmoError> {
        (**self).setup(machine, annotations)
    }

    fn run(
        &mut self,
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<WorkloadReport, NmoError> {
        (**self).run(machine, annotations, cores)
    }

    fn verify(&self) -> bool {
        (**self).verify()
    }
}
