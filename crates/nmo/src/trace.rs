//! Append-only binary trace store and replay — record a streaming run once,
//! re-analyse it forever.
//!
//! Every analysis in NMO used to require a live [`crate::ProfileSession`]:
//! sinks only see samples while the simulated machine runs, so trying a new
//! sink, tiering policy, or report on an existing run cost a full
//! re-simulation. This module stores the streaming delivery itself — the
//! exact per-shard sequence of window-stamped [`SampleBatch`]es and
//! window-close broadcasts — in a compact indexed binary format, and replays
//! it through any [`AnalysisSink`] without touching a machine.
//!
//! # On-disk layout
//!
//! A trace is a directory: one segment file per pipeline shard plus a small
//! text manifest.
//!
//! ```text
//! trace-dir/
//! ├── trace.manifest          window width, stream geometry, segment list
//! ├── shard-000.seg           everything shard lane 0 delivered, in order
//! ├── shard-001.seg
//! └── ...
//!
//! segment   := header block* index trailer
//! header    := "NMOT" version:u16 shard:u16                  (8 bytes)
//! block     := "NMOB" payload_len:u32 fnv1a64(payload):u64 payload
//! payload   := event*                                        (see below)
//! index     := "NMOX" count:u32 entry{count} fnv1a64(entries):u64
//! entry     := offset payload_len checksum first_window last_window
//!              core_mask min_vaddr max_vaddr samples events closes
//!              (11 × u64-equivalent little-endian fields, 88 bytes)
//! trailer   := index_offset:u64 "NMOE"                       (12 bytes)
//! ```
//!
//! Blocks are flushed at every window-close broadcast (so a close always
//! terminates its block and blocks map cleanly onto time windows) and when
//! the scratch buffer passes a size target. Window closes additionally go
//! into their own one-event mini blocks, so an indexed query can prune data
//! blocks by core/address yet still deliver every close in its time range.
//! The footer index is what makes a segment random-access: a query reads the
//! fixed-width entry table from the end of the file and seeks straight to
//! the matching blocks — O(1) per block, never scanning the whole segment.
//!
//! # Encoding invariants (varint/delta)
//!
//! Integers are LEB128 varints (7 bits per byte, little-endian groups, at
//! most 10 bytes); signed deltas are zigzag-mapped (`0,-1,1,-2,…` →
//! `0,1,2,3,…`) before varint encoding. Within one batch event:
//!
//! * sample timestamps are zigzag deltas from the previous sample, seeded
//!   with the batch window's `start_ns` — in-window times are small;
//! * virtual addresses are zigzag deltas from the previous sample's address,
//!   seeded with 0 — strided and page-local access patterns collapse to a
//!   byte or two;
//! * the core id is elided while it equals the previous sample's core
//!   (seeded with the batch core), which is always on per-core SPE batches;
//! * the data source is the 1-byte SPE data-source encoding
//!   ([`DataSource::encode`]), so the serving node id survives round-trips.
//!
//! Decoding is the exact inverse and every read is bounds-checked: arbitrary
//! bytes never panic, a corrupt block fails its checksum before any event in
//! it is decoded, and damage surfaces as [`NmoError::Trace`] (strict replay)
//! or as per-block skip accounting ([`scan_blocks`], lenient).
//!
//! # Recording and replaying
//!
//! [`TraceWriterSink`] is an ordinary [`AnalysisSink`] + [`ShardableSink`]:
//! registered on a session it appends each shard lane's deliveries to that
//! shard's segment, with no cross-shard lock on the hot path (each
//! [`SinkShard`] owns its file and scratch buffer). [`TraceReader::replay`]
//! rebuilds the sharded consumer structure offline — per-shard workers fed
//! in recorded per-lane order, per-window merges in ascending shard index
//! once every shard closed the window — so a replay through a
//! [`crate::LatencySink`] or [`crate::tiering::HotPageTracker`] reproduces
//! the recorded live run bit-for-bit. [`TraceReader::replay_query`] fans
//! matching blocks out across one worker thread per segment for
//! time-window-, core-, or address-sliced queries that never load the whole
//! trace.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fs::{self, File};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::thread;

use arch_sim::{BandwidthPoint, DataSource, Machine, MachineConfig, RssPoint, MAX_MEM_NODES};
use spe::SpeStatsSnapshot;

use crate::config::NmoConfig;
use crate::runtime::{AddressSample, Profile};
use crate::sink::{
    AnalysisRecord, AnalysisReport, AnalysisSink, ShardState, ShardableSink, SinkShard,
    StreamContext,
};
use crate::stream::{BatchPayload, BatchPool, SampleBatch, Window, WindowClock};
use crate::NmoError;

/// Segment file header magic.
const SEGMENT_MAGIC: [u8; 4] = *b"NMOT";
/// Block frame magic.
const BLOCK_MAGIC: [u8; 4] = *b"NMOB";
/// Footer index magic.
const INDEX_MAGIC: [u8; 4] = *b"NMOX";
/// End-of-file trailer magic.
const TRAILER_MAGIC: [u8; 4] = *b"NMOE";
/// Current format version.
const FORMAT_VERSION: u16 = 1;
/// Flush a block once its payload passes this size (closes flush earlier).
const BLOCK_TARGET_BYTES: usize = 64 * 1024;
/// Upper bound on a declared block payload length (corruption guard).
const MAX_BLOCK_BYTES: usize = 1 << 28;
/// Size of one fixed-width footer index entry.
const INDEX_ENTRY_BYTES: usize = 88;
/// Manifest file name inside a trace directory.
const MANIFEST_NAME: &str = "trace.manifest";

/// Event tags inside a block payload.
const EV_SPE: u8 = 1;
const EV_CLOSE: u8 = 2;
const EV_COUNTERS: u8 = 3;
const EV_RSS: u8 = 4;
const EV_BANDWIDTH: u8 = 5;

// ---------------------------------------------------------------------------
// Primitive codecs: varint, zigzag, FNV-1a.
// ---------------------------------------------------------------------------

/// Append a LEB128 varint (at most 10 bytes). Single-byte values — the
/// overwhelming majority under delta encoding — take the early return;
/// longer ones are staged in a stack buffer so the `Vec` is touched once
/// instead of once per byte.
#[inline]
fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    if v < 0x80 {
        out.push(v as u8);
        return;
    }
    let mut buf = [0u8; 10];
    let mut n = 0;
    while v >= 0x80 {
        buf[n] = (v as u8) | 0x80;
        v >>= 7;
        n += 1;
    }
    buf[n] = v as u8;
    out.extend_from_slice(&buf[..n + 1]);
}

/// Read a LEB128 varint; `None` on truncation or overlong encoding.
fn get_varint(data: &[u8], pos: &mut usize) -> Option<u64> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let byte = *data.get(*pos)?;
        *pos += 1;
        if shift == 63 && byte > 1 {
            return None; // would overflow u64
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 63 {
            return None;
        }
    }
}

/// Map a signed delta onto the unsigned varint domain (`0,-1,1,…` → `0,1,2,…`).
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// FNV-1a 64-bit hash — the block and index checksum.
fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn get_u32(data: &[u8], pos: usize) -> Option<u32> {
    data.get(pos..pos + 4).map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

fn get_u64(data: &[u8], pos: usize) -> Option<u64> {
    data.get(pos..pos + 8)
        .map(|b| u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
}

// ---------------------------------------------------------------------------
// Event codec.
// ---------------------------------------------------------------------------

/// Map a backend name to its stored id. Unknown custom backends collapse to
/// a generic id (replayed as `"trace"`): [`SampleBatch::backend`] is a
/// `&'static str`, so only well-known names can be reconstructed.
fn backend_id(name: &str) -> u64 {
    match name {
        "spe" => 0,
        "counters" => 1,
        "machine" => 2,
        _ => 3,
    }
}

/// Inverse of [`backend_id`].
fn backend_name(id: u64) -> &'static str {
    match id {
        0 => "spe",
        1 => "counters",
        2 => "machine",
        _ => "trace",
    }
}

/// One decoded trace record: a recorded batch delivery or a window-close
/// broadcast, exactly as the shard lane saw it during the live run.
#[derive(Debug, Clone)]
pub enum TraceEvent {
    /// A recorded delivery of one [`SampleBatch`] (sequence number
    /// preserved).
    Batch(SampleBatch),
    /// A recorded window-close broadcast.
    Close(Window),
}

/// Per-block summary accumulated by the writer and stored in the footer
/// index entry for that block.
#[derive(Debug, Clone, Copy)]
struct BlockMeta {
    first_window: u64,
    last_window: u64,
    core_mask: u64,
    min_vaddr: u64,
    max_vaddr: u64,
    samples: u64,
    events: u64,
    closes: u64,
}

impl BlockMeta {
    fn empty() -> Self {
        BlockMeta {
            first_window: u64::MAX,
            last_window: 0,
            core_mask: 0,
            min_vaddr: u64::MAX,
            max_vaddr: 0,
            samples: 0,
            events: 0,
            closes: 0,
        }
    }

    fn see_window(&mut self, index: u64) {
        self.first_window = self.first_window.min(index);
        self.last_window = self.last_window.max(index);
    }
}

/// The bit a core contributes to a block's 64-bit core presence mask.
fn core_bit(core: usize) -> u64 {
    1u64 << (core % 64)
}

fn put_window(out: &mut Vec<u8>, w: Window) {
    put_varint(out, w.index);
    put_varint(out, w.start_ns);
    put_varint(out, w.end_ns.saturating_sub(w.start_ns));
}

/// Encode one batch delivery. Returns the number of address samples written.
fn encode_batch_event(out: &mut Vec<u8>, batch: &SampleBatch, meta: &mut BlockMeta) -> u64 {
    let tag = match batch.payload() {
        BatchPayload::SpeSamples { .. } => EV_SPE,
        BatchPayload::CounterDeltas { .. } => EV_COUNTERS,
        BatchPayload::Rss { .. } => EV_RSS,
        BatchPayload::Bandwidth { .. } => EV_BANDWIDTH,
    };
    out.push(tag);
    put_varint(out, batch.seq);
    put_window(out, batch.window);
    put_varint(out, batch.core.map_or(0, |c| c as u64 + 1));
    put_varint(out, backend_id(batch.backend));
    meta.see_window(batch.window.index);
    meta.events += 1;
    match batch.core {
        Some(c) => meta.core_mask |= core_bit(c),
        // Core-less deliveries (machine probe ticks) must never be pruned
        // by a core-sliced query: claim every core bit.
        None => meta.core_mask = u64::MAX,
    }
    let mut samples_written = 0u64;
    match batch.payload() {
        BatchPayload::SpeSamples { samples, loss } => {
            // Worst case ~2 + 3 varints of ≤4 bytes per sample; one reserve
            // here keeps the per-sample pushes off the growth path.
            out.reserve(samples.len() * 16 + 96);
            put_varint(out, samples.len() as u64);
            let mut prev_time = batch.window.start_ns;
            let mut prev_vaddr = 0u64;
            let mut prev_core = batch.core.unwrap_or(usize::MAX);
            for s in samples {
                let core_differs = s.core != prev_core;
                let flags = u8::from(s.is_store) | (u8::from(core_differs) << 1);
                out.push(flags);
                out.push(s.source.encode());
                put_varint(out, zigzag(s.time_ns.wrapping_sub(prev_time) as i64));
                put_varint(out, zigzag(s.vaddr.wrapping_sub(prev_vaddr) as i64));
                put_varint(out, u64::from(s.latency));
                if core_differs {
                    put_varint(out, s.core as u64);
                    meta.core_mask |= core_bit(s.core);
                }
                prev_time = s.time_ns;
                prev_vaddr = s.vaddr;
                prev_core = s.core;
                meta.min_vaddr = meta.min_vaddr.min(s.vaddr);
                meta.max_vaddr = meta.max_vaddr.max(s.vaddr);
            }
            samples_written = samples.len() as u64;
            meta.samples += samples_written;
            for v in [
                loss.population_ops,
                loss.samples_selected,
                loss.records_written,
                loss.collisions,
                loss.filtered_out,
                loss.truncated_records,
                loss.interrupts,
                loss.aux_bytes_written,
                loss.overhead_cycles,
            ] {
                put_varint(out, v);
            }
        }
        BatchPayload::CounterDeltas { deltas } => {
            put_varint(out, deltas.len() as u64);
            for d in deltas {
                put_varint(out, d.event.len() as u64);
                out.extend_from_slice(d.event.as_bytes());
                put_varint(out, d.delta);
                put_varint(out, d.total);
            }
        }
        BatchPayload::Rss { points } => {
            put_varint(out, points.len() as u64);
            let mut prev_time = batch.window.start_ns;
            for p in points {
                put_varint(out, zigzag(p.time_ns.wrapping_sub(prev_time) as i64));
                prev_time = p.time_ns;
                put_varint(out, p.rss_bytes);
                let nodes = nonzero_prefix(&p.rss_by_node);
                put_varint(out, nodes as u64);
                for &n in &p.rss_by_node[..nodes] {
                    put_varint(out, n);
                }
            }
        }
        BatchPayload::Bandwidth { points } => {
            put_varint(out, points.len() as u64);
            let mut prev_time = batch.window.start_ns;
            for p in points {
                put_varint(out, zigzag(p.time_ns.wrapping_sub(prev_time) as i64));
                prev_time = p.time_ns;
                put_varint(out, p.bytes);
                out.extend_from_slice(&p.gib_per_s.to_bits().to_le_bytes());
                let nodes = nonzero_prefix(&p.by_node);
                put_varint(out, nodes as u64);
                for &n in &p.by_node[..nodes] {
                    put_varint(out, n);
                }
            }
        }
    }
    samples_written
}

/// Length of the prefix of `arr` holding every non-zero element.
fn nonzero_prefix(arr: &[u64; MAX_MEM_NODES]) -> usize {
    arr.iter().rposition(|&v| v != 0).map_or(0, |i| i + 1)
}

/// Encode one window-close broadcast.
fn encode_close_event(out: &mut Vec<u8>, w: Window, meta: &mut BlockMeta) {
    out.push(EV_CLOSE);
    put_window(out, w);
    meta.see_window(w.index);
    meta.events += 1;
    meta.closes += 1;
}

// ---------------------------------------------------------------------------
// Event decoding (strictly bounds-checked — never panics on any input).
// ---------------------------------------------------------------------------

fn rv(data: &[u8], pos: &mut usize, what: &str) -> Result<u64, String> {
    get_varint(data, pos).ok_or_else(|| format!("truncated varint ({what}) at byte {pos}"))
}

fn read_window(data: &[u8], pos: &mut usize) -> Result<Window, String> {
    let index = rv(data, pos, "window index")?;
    let start_ns = rv(data, pos, "window start")?;
    let width = rv(data, pos, "window width")?;
    Ok(Window { index, start_ns, end_ns: start_ns.saturating_add(width) })
}

/// Guard a declared element count against the bytes actually remaining
/// (each element encodes to at least `min_bytes`), so corrupt counts cannot
/// drive huge allocations.
fn checked_count(
    data: &[u8],
    pos: usize,
    count: u64,
    min_bytes: usize,
    what: &str,
) -> Result<usize, String> {
    let remaining = data.len().saturating_sub(pos);
    let count = usize::try_from(count).map_err(|_| format!("absurd {what} count {count}"))?;
    if count.saturating_mul(min_bytes.max(1)) > remaining {
        return Err(format!("{what} count {count} exceeds remaining payload ({remaining} bytes)"));
    }
    Ok(count)
}

/// Decode every event in a (checksum-verified) block payload.
fn decode_events(payload: &[u8]) -> Result<Vec<TraceEvent>, String> {
    let mut pos = 0usize;
    let mut out = Vec::new();
    while pos < payload.len() {
        let tag = payload[pos];
        pos += 1;
        if tag == EV_CLOSE {
            let w = read_window(payload, &mut pos)?;
            out.push(TraceEvent::Close(w));
            continue;
        }
        if !(EV_SPE..=EV_BANDWIDTH).contains(&tag) {
            return Err(format!("unknown event tag {tag} at byte {pos}"));
        }
        let seq = rv(payload, &mut pos, "batch seq")?;
        let window = read_window(payload, &mut pos)?;
        let core_plus1 = rv(payload, &mut pos, "batch core")?;
        let core = match core_plus1 {
            0 => None,
            c => Some(usize::try_from(c - 1).map_err(|_| format!("absurd batch core {}", c - 1))?),
        };
        let backend = backend_name(rv(payload, &mut pos, "backend id")?);
        let data = match tag {
            EV_SPE => {
                let n = rv(payload, &mut pos, "sample count")?;
                let n = checked_count(payload, pos, n, 5, "sample")?;
                let mut samples = Vec::with_capacity(n);
                let mut prev_time = window.start_ns;
                let mut prev_vaddr = 0u64;
                let mut prev_core = core.unwrap_or(usize::MAX);
                for _ in 0..n {
                    let flags = *payload
                        .get(pos)
                        .ok_or_else(|| format!("truncated sample flags at byte {pos}"))?;
                    let code = *payload
                        .get(pos + 1)
                        .ok_or_else(|| format!("truncated data source at byte {pos}"))?;
                    pos += 2;
                    let source = DataSource::decode(code)
                        .ok_or_else(|| format!("invalid data-source code {code:#x}"))?;
                    let dt = unzigzag(rv(payload, &mut pos, "time delta")?);
                    let dv = unzigzag(rv(payload, &mut pos, "vaddr delta")?);
                    let latency = u16::try_from(rv(payload, &mut pos, "latency")?)
                        .map_err(|_| "latency out of u16 range".to_string())?;
                    let sample_core = if flags & 0b10 != 0 {
                        let c = rv(payload, &mut pos, "sample core")?;
                        usize::try_from(c).map_err(|_| format!("absurd sample core {c}"))?
                    } else {
                        prev_core
                    };
                    let time_ns = prev_time.wrapping_add(dt as u64);
                    let vaddr = prev_vaddr.wrapping_add(dv as u64);
                    prev_time = time_ns;
                    prev_vaddr = vaddr;
                    prev_core = sample_core;
                    samples.push(AddressSample {
                        time_ns,
                        vaddr,
                        core: sample_core,
                        is_store: flags & 0b1 != 0,
                        latency,
                        source,
                    });
                }
                let mut loss = SpeStatsSnapshot::default();
                for field in [
                    &mut loss.population_ops,
                    &mut loss.samples_selected,
                    &mut loss.records_written,
                    &mut loss.collisions,
                    &mut loss.filtered_out,
                    &mut loss.truncated_records,
                    &mut loss.interrupts,
                    &mut loss.aux_bytes_written,
                    &mut loss.overhead_cycles,
                ] {
                    *field = rv(payload, &mut pos, "loss counter")?;
                }
                BatchPayload::SpeSamples { samples, loss }
            }
            EV_COUNTERS => {
                let n = rv(payload, &mut pos, "delta count")?;
                let n = checked_count(payload, pos, n, 3, "counter delta")?;
                let mut deltas = Vec::with_capacity(n);
                for _ in 0..n {
                    let len = rv(payload, &mut pos, "event-name length")?;
                    let len = checked_count(payload, pos, len, 1, "event-name byte")?;
                    let bytes = payload
                        .get(pos..pos + len)
                        .ok_or_else(|| format!("truncated event name at byte {pos}"))?;
                    pos += len;
                    let event = std::str::from_utf8(bytes)
                        .map_err(|_| "event name is not UTF-8".to_string())?
                        .to_string();
                    let delta = rv(payload, &mut pos, "counter delta")?;
                    let total = rv(payload, &mut pos, "counter total")?;
                    deltas.push(crate::stream::CounterDelta { event, delta, total });
                }
                BatchPayload::CounterDeltas { deltas }
            }
            EV_RSS => {
                let n = rv(payload, &mut pos, "rss point count")?;
                let n = checked_count(payload, pos, n, 3, "rss point")?;
                let mut points = Vec::with_capacity(n);
                let mut prev_time = window.start_ns;
                for _ in 0..n {
                    let dt = unzigzag(rv(payload, &mut pos, "rss time delta")?);
                    let time_ns = prev_time.wrapping_add(dt as u64);
                    prev_time = time_ns;
                    let rss_bytes = rv(payload, &mut pos, "rss bytes")?;
                    let rss_by_node = read_node_array(payload, &mut pos)?;
                    points.push(RssPoint { time_ns, rss_bytes, rss_by_node });
                }
                BatchPayload::Rss { points }
            }
            _ => {
                let n = rv(payload, &mut pos, "bandwidth point count")?;
                let n = checked_count(payload, pos, n, 11, "bandwidth point")?;
                let mut points = Vec::with_capacity(n);
                let mut prev_time = window.start_ns;
                for _ in 0..n {
                    let dt = unzigzag(rv(payload, &mut pos, "bandwidth time delta")?);
                    let time_ns = prev_time.wrapping_add(dt as u64);
                    prev_time = time_ns;
                    let bytes = rv(payload, &mut pos, "bandwidth bytes")?;
                    let bits = get_u64(payload, pos)
                        .ok_or_else(|| format!("truncated bandwidth rate at byte {pos}"))?;
                    pos += 8;
                    let by_node = read_node_array(payload, &mut pos)?;
                    points.push(BandwidthPoint {
                        time_ns,
                        bytes,
                        by_node,
                        gib_per_s: f64::from_bits(bits),
                    });
                }
                BatchPayload::Bandwidth { points }
            }
        };
        let mut batch = SampleBatch::new(backend, core, window, data);
        batch.seq = seq;
        out.push(TraceEvent::Batch(batch));
    }
    Ok(out)
}

fn read_node_array(payload: &[u8], pos: &mut usize) -> Result<[u64; MAX_MEM_NODES], String> {
    let nodes = rv(payload, pos, "node count")?;
    let nodes = usize::try_from(nodes).unwrap_or(usize::MAX);
    if nodes > MAX_MEM_NODES {
        return Err(format!("node count {nodes} exceeds MAX_MEM_NODES ({MAX_MEM_NODES})"));
    }
    let mut arr = [0u64; MAX_MEM_NODES];
    for slot in arr.iter_mut().take(nodes) {
        *slot = rv(payload, pos, "per-node value")?;
    }
    Ok(arr)
}

// ---------------------------------------------------------------------------
// Lenient block scanning (corruption-tolerant, exact byte accounting).
// ---------------------------------------------------------------------------

/// One verified block recovered by [`scan_blocks`].
#[derive(Debug)]
pub struct ScannedBlock {
    /// Byte offset of the block frame within the scanned slice.
    pub offset: usize,
    /// Whole frame length (header + payload).
    pub frame_len: usize,
    /// The decoded events.
    pub events: Vec<TraceEvent>,
}

/// Result of a lenient scan over a segment's block region.
///
/// Invariant (the fuzz-harness property): `consumed_bytes + skipped_bytes`
/// always equals the scanned slice's length — every byte is either part of
/// exactly one verified frame or accounted as skipped.
#[derive(Debug, Default)]
pub struct BlockScan {
    /// Blocks whose frame, checksum, and event stream all verified.
    pub blocks: Vec<ScannedBlock>,
    /// Bytes covered by verified frames.
    pub consumed_bytes: usize,
    /// Bytes not covered by any verified frame (garbage, corrupt or
    /// truncated frames).
    pub skipped_bytes: usize,
    /// One message per rejected frame or truncated tail (resync noise from
    /// plain garbage bytes is not reported).
    pub errors: Vec<String>,
}

impl BlockScan {
    /// The first damage report, as the error strict replay would surface.
    pub fn first_error(&self) -> Option<NmoError> {
        self.errors.first().map(|e| NmoError::trace(e.clone()))
    }
}

/// Scan a segment's block region, skipping over corruption instead of
/// failing: bad magic bytes are stepped over one at a time, frames whose
/// checksum or event stream does not verify are skipped whole, and a
/// truncated tail is accounted and reported. Never panics, for any input.
pub fn scan_blocks(data: &[u8]) -> BlockScan {
    let mut scan = BlockScan::default();
    let mut pos = 0usize;
    while pos < data.len() {
        let remaining = data.len() - pos;
        if remaining < 16 {
            if data[pos..].starts_with(&BLOCK_MAGIC) {
                scan.errors.push(format!("truncated block header at offset {pos}"));
            }
            scan.skipped_bytes += remaining;
            break;
        }
        if data[pos..pos + 4] != BLOCK_MAGIC {
            pos += 1;
            scan.skipped_bytes += 1;
            continue;
        }
        // unwrap-ok: the 16-byte header presence was checked above.
        let len = get_u32(data, pos + 4).unwrap() as usize;
        let checksum = get_u64(data, pos + 8).unwrap(); // unwrap-ok: as above
        if len > MAX_BLOCK_BYTES {
            scan.errors.push(format!("oversized block length {len} at offset {pos}"));
            pos += 1;
            scan.skipped_bytes += 1;
            continue;
        }
        let frame_len = 16 + len;
        if remaining < frame_len {
            scan.errors.push(format!(
                "truncated block payload at offset {pos} (need {frame_len} bytes, have {remaining})"
            ));
            scan.skipped_bytes += remaining;
            break;
        }
        let payload = &data[pos + 16..pos + frame_len];
        if fnv1a(payload) != checksum {
            scan.errors.push(format!("block checksum mismatch at offset {pos}"));
            scan.skipped_bytes += frame_len;
            pos += frame_len;
            continue;
        }
        match decode_events(payload) {
            Ok(events) => {
                scan.blocks.push(ScannedBlock { offset: pos, frame_len, events });
                scan.consumed_bytes += frame_len;
                pos += frame_len;
            }
            Err(e) => {
                scan.errors.push(format!("undecodable block at offset {pos}: {e}"));
                scan.skipped_bytes += frame_len;
                pos += frame_len;
            }
        }
    }
    scan
}

// ---------------------------------------------------------------------------
// Footer index.
// ---------------------------------------------------------------------------

/// One fixed-width footer index entry describing a block.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    offset: u64,
    payload_len: u64,
    checksum: u64,
    first_window: u64,
    last_window: u64,
    core_mask: u64,
    min_vaddr: u64,
    max_vaddr: u64,
    samples: u64,
    events: u64,
    closes: u64,
}

impl IndexEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        for v in [
            self.offset,
            self.payload_len,
            self.checksum,
            self.first_window,
            self.last_window,
            self.core_mask,
            self.min_vaddr,
            self.max_vaddr,
            self.samples,
            self.events,
            self.closes,
        ] {
            put_u64(out, v);
        }
    }

    fn decode(data: &[u8], pos: usize) -> Option<IndexEntry> {
        let mut fields = [0u64; 11];
        for (i, f) in fields.iter_mut().enumerate() {
            *f = get_u64(data, pos + i * 8)?;
        }
        Some(IndexEntry {
            offset: fields[0],
            payload_len: fields[1],
            checksum: fields[2],
            first_window: fields[3],
            last_window: fields[4],
            core_mask: fields[5],
            min_vaddr: fields[6],
            max_vaddr: fields[7],
            samples: fields[8],
            events: fields[9],
            closes: fields[10],
        })
    }
}

// ---------------------------------------------------------------------------
// Segment writer (the per-shard hot path).
// ---------------------------------------------------------------------------

/// Per-segment totals, returned as the shard state of a
/// [`TraceWriterSink`]'s shards and folded into the manifest.
#[derive(Debug, Clone, Default)]
struct SegmentSummary {
    shard: usize,
    file_name: String,
    window_ns: u64,
    samples: u64,
    events: u64,
    closes: u64,
    blocks: u64,
    bytes: u64,
    error: Option<String>,
}

/// Appends one shard lane's deliveries to its segment file. Owns its file
/// handle and scratch buffer, so the streaming hot path takes no lock; the
/// scratch comes from (and returns to) the parent sink's [`BatchPool`].
struct SegmentWriter {
    file: BufWriter<File>,
    file_name: String,
    shard: usize,
    /// Current file offset (the header is already written at construction).
    offset: u64,
    /// Block payload scratch, reused across blocks.
    buf: Vec<u8>,
    meta: BlockMeta,
    index: Vec<IndexEntry>,
    /// Window width latched from the first event (0 until then).
    window_ns: u64,
    samples: u64,
    events: u64,
    closes: u64,
    pool: Arc<BatchPool>,
}

impl SegmentWriter {
    /// File name of the segment for `shard`.
    fn segment_file_name(shard: usize) -> String {
        format!("shard-{shard:03}.seg")
    }

    fn create(dir: &Path, shard: usize, pool: Arc<BatchPool>) -> std::io::Result<SegmentWriter> {
        let file_name = Self::segment_file_name(shard);
        let mut file = BufWriter::new(File::create(dir.join(&file_name))?);
        file.write_all(&SEGMENT_MAGIC)?;
        file.write_all(&FORMAT_VERSION.to_le_bytes())?;
        file.write_all(&(shard as u16).to_le_bytes())?;
        Ok(SegmentWriter {
            file,
            file_name,
            shard,
            offset: 8,
            buf: pool.bytes_with_capacity(BLOCK_TARGET_BYTES),
            meta: BlockMeta::empty(),
            index: Vec::new(),
            window_ns: 0,
            samples: 0,
            events: 0,
            closes: 0,
            pool,
        })
    }

    fn latch_window(&mut self, w: Window) {
        if self.window_ns == 0 {
            self.window_ns = w.width_ns();
        }
    }

    fn append_batch(&mut self, batch: &SampleBatch) -> std::io::Result<()> {
        self.latch_window(batch.window);
        self.samples += encode_batch_event(&mut self.buf, batch, &mut self.meta);
        self.events += 1;
        if self.buf.len() >= BLOCK_TARGET_BYTES {
            self.flush_block()?;
        }
        Ok(())
    }

    /// Record a window-close broadcast: flush the data accumulated so far,
    /// then write the close as its own one-event mini block, so index-driven
    /// queries can prune data blocks yet still seek every close in range.
    fn append_close(&mut self, w: Window) -> std::io::Result<()> {
        self.latch_window(w);
        self.flush_block()?;
        encode_close_event(&mut self.buf, w, &mut self.meta);
        self.events += 1;
        self.closes += 1;
        self.flush_block()
    }

    fn flush_block(&mut self) -> std::io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let checksum = fnv1a(&self.buf);
        self.file.write_all(&BLOCK_MAGIC)?;
        self.file.write_all(&(self.buf.len() as u32).to_le_bytes())?;
        self.file.write_all(&checksum.to_le_bytes())?;
        self.file.write_all(&self.buf)?;
        self.index.push(IndexEntry {
            offset: self.offset,
            payload_len: self.buf.len() as u64,
            checksum,
            first_window: self.meta.first_window,
            last_window: self.meta.last_window,
            core_mask: self.meta.core_mask,
            min_vaddr: self.meta.min_vaddr,
            max_vaddr: self.meta.max_vaddr,
            samples: self.meta.samples,
            events: self.meta.events,
            closes: self.meta.closes,
        });
        self.offset += 16 + self.buf.len() as u64;
        self.buf.clear();
        self.meta = BlockMeta::empty();
        Ok(())
    }

    /// Flush outstanding data, write the footer index and trailer, and
    /// return the segment's totals.
    fn finish(mut self) -> std::io::Result<SegmentSummary> {
        self.flush_block()?;
        let index_offset = self.offset;
        let mut entries = Vec::with_capacity(self.index.len() * INDEX_ENTRY_BYTES);
        for e in &self.index {
            e.encode(&mut entries);
        }
        self.file.write_all(&INDEX_MAGIC)?;
        self.file.write_all(&(self.index.len() as u32).to_le_bytes())?;
        self.file.write_all(&entries)?;
        self.file.write_all(&fnv1a(&entries).to_le_bytes())?;
        self.file.write_all(&index_offset.to_le_bytes())?;
        self.file.write_all(&TRAILER_MAGIC)?;
        self.file.flush()?;
        let bytes = index_offset + 8 + entries.len() as u64 + 8 + 8 + 4;
        self.pool.recycle_bytes(self.buf);
        Ok(SegmentSummary {
            shard: self.shard,
            file_name: self.file_name,
            window_ns: self.window_ns,
            samples: self.samples,
            events: self.events,
            closes: self.closes,
            blocks: self.index.len() as u64,
            bytes,
            error: None,
        })
    }
}

// ---------------------------------------------------------------------------
// The recording sink.
// ---------------------------------------------------------------------------

/// Stream geometry persisted to the manifest so a replay can rebuild an
/// equivalent [`StreamContext`] without the original machine.
#[derive(Debug, Clone, Copy)]
struct Geometry {
    capacity_bytes: u64,
    bucket_ns: u64,
    mem_nodes: usize,
    page_bytes: u64,
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry { capacity_bytes: 0, bucket_ns: 1, mem_nodes: 1, page_bytes: 64 * 1024 }
    }
}

/// Records a streaming run into an on-disk trace directory.
///
/// Register it on a session like any other sink; under the sharded pipeline
/// it is a [`ShardableSink`] whose shards each append to their own segment
/// file (no cross-shard lock on the hot path), and under the serial
/// consumer it writes a single-segment trace. [`AnalysisSink::finish`]
/// finalises the segments and writes the manifest; the returned
/// [`AnalysisReport::Text`] summarises what was stored.
///
/// ```no_run
/// use nmo::trace::TraceWriterSink;
/// use nmo::{NmoConfig, ProfileSession};
///
/// # fn main() -> Result<(), nmo::NmoError> {
/// let session = ProfileSession::builder()
///     .config(NmoConfig::paper_default(500))
///     .threads(2)
///     .sink(TraceWriterSink::new("results/trace_demo"))
///     .build()?;
/// # Ok(())
/// # }
/// ```
pub struct TraceWriterSink {
    dir: PathBuf,
    pool: Arc<BatchPool>,
    /// Window width used by the post-hoc (`analyze`) path, where no
    /// streaming windows exist to latch from.
    posthoc_window_ns: u64,
    geometry: Geometry,
    streamed: bool,
    sharded: bool,
    serial: Option<SegmentWriter>,
    summaries: Vec<SegmentSummary>,
    error: Option<String>,
}

impl TraceWriterSink {
    /// A writer that stores the trace under `dir` (created on demand).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TraceWriterSink {
            dir: dir.into(),
            pool: BatchPool::new(32),
            posthoc_window_ns: 100_000,
            geometry: Geometry::default(),
            streamed: false,
            sharded: false,
            serial: None,
            summaries: Vec::new(),
            error: None,
        }
    }

    /// Window width for the post-hoc [`AnalysisSink::analyze`] path (a
    /// streamed recording always uses the session's own windows).
    pub fn posthoc_window_ns(mut self, window_ns: u64) -> Self {
        self.posthoc_window_ns = window_ns.max(1);
        self
    }

    /// The trace directory this sink writes to.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn record_error(&mut self, e: impl std::fmt::Display) {
        if self.error.is_none() {
            self.error = Some(e.to_string());
        }
    }

    /// The serial-path segment writer, created on first use.
    fn serial_writer(&mut self) -> Option<&mut SegmentWriter> {
        if self.serial.is_none() && self.error.is_none() {
            match fs::create_dir_all(&self.dir)
                .and_then(|()| SegmentWriter::create(&self.dir, 0, Arc::clone(&self.pool)))
            {
                Ok(w) => self.serial = Some(w),
                Err(e) => self.record_error(format!("cannot open segment 0: {e}")),
            }
        }
        self.serial.as_mut()
    }

    fn write_manifest(&self) -> Result<(), NmoError> {
        fs::create_dir_all(&self.dir)?;
        let window_ns = self.summaries.iter().map(|s| s.window_ns).max().unwrap_or(0);
        let samples: u64 = self.summaries.iter().map(|s| s.samples).sum();
        let mut out = String::new();
        out.push_str("nmo-trace-manifest v1\n");
        out.push_str(&format!("window_ns {window_ns}\n"));
        out.push_str(&format!("capacity_bytes {}\n", self.geometry.capacity_bytes));
        out.push_str(&format!("bucket_ns {}\n", self.geometry.bucket_ns));
        out.push_str(&format!("mem_nodes {}\n", self.geometry.mem_nodes));
        out.push_str(&format!("page_bytes {}\n", self.geometry.page_bytes));
        out.push_str(&format!("shards {}\n", self.summaries.len()));
        out.push_str(&format!("samples {samples}\n"));
        for s in &self.summaries {
            out.push_str(&format!("segment {}\n", s.file_name));
        }
        out.push_str("end\n");
        fs::write(self.dir.join(MANIFEST_NAME), out)?;
        Ok(())
    }

    fn summary_report(&self) -> AnalysisReport {
        let samples: u64 = self.summaries.iter().map(|s| s.samples).sum();
        let events: u64 = self.summaries.iter().map(|s| s.events).sum();
        let closes: u64 = self.summaries.iter().map(|s| s.closes).sum();
        let blocks: u64 = self.summaries.iter().map(|s| s.blocks).sum();
        let bytes: u64 = self.summaries.iter().map(|s| s.bytes).sum();
        AnalysisReport::Text(format!(
            "trace: {samples} samples / {events} events ({closes} closes) in {} segment(s), \
             {blocks} blocks, {bytes} bytes at {}",
            self.summaries.len(),
            self.dir.display()
        ))
    }
}

impl AnalysisSink for TraceWriterSink {
    fn name(&self) -> &'static str {
        "trace-writer"
    }

    /// Post-hoc mode: no streaming delivery happened, so encode the
    /// profile's collected samples as a single-segment trace, windowed at
    /// [`TraceWriterSink::posthoc_window_ns`] (per-window batches in
    /// timestamp order, one close per window).
    fn analyze(
        &mut self,
        _machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        let clock = WindowClock::new(self.posthoc_window_ns);
        let mut by_window: BTreeMap<u64, Vec<AddressSample>> = BTreeMap::new();
        for s in &profile.samples {
            by_window.entry(clock.index_of(s.time_ns)).or_default().push(*s);
        }
        fs::create_dir_all(&self.dir)?;
        let mut writer = SegmentWriter::create(&self.dir, 0, Arc::clone(&self.pool))?;
        for (index, samples) in by_window {
            let window = clock.window(index);
            let batch = SampleBatch::new(
                "spe",
                None,
                window,
                BatchPayload::SpeSamples { samples, loss: SpeStatsSnapshot::default() },
            );
            writer.append_batch(&batch)?;
            writer.append_close(window)?;
        }
        self.summaries = vec![writer.finish()?];
        self.write_manifest()?;
        Ok(self.summary_report())
    }

    fn on_stream_start(&mut self, ctx: &StreamContext) {
        self.streamed = true;
        self.geometry = Geometry {
            capacity_bytes: ctx.capacity_bytes,
            bucket_ns: ctx.bucket_ns,
            mem_nodes: ctx.mem_nodes,
            page_bytes: ctx.page_bytes,
        };
        if let Err(e) = fs::create_dir_all(&self.dir) {
            self.record_error(format!("cannot create trace directory: {e}"));
        }
    }

    /// Serial-path recording (the sharded path goes through
    /// [`ShardableSink::make_shard`] instead).
    fn on_batch(&mut self, batch: &SampleBatch) {
        if self.sharded {
            return;
        }
        if let Some(w) = self.serial_writer() {
            if let Err(e) = w.append_batch(batch) {
                self.serial = None;
                self.record_error(format!("segment write failed: {e}"));
            }
        }
    }

    fn on_window_close(&mut self, window: Window) {
        if self.sharded {
            return;
        }
        if let Some(w) = self.serial_writer() {
            if let Err(e) = w.append_close(window) {
                self.serial = None;
                self.record_error(format!("segment write failed: {e}"));
            }
        }
    }

    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        if !self.streamed && self.summaries.is_empty() {
            return self.analyze(machine, profile);
        }
        if let Some(w) = self.serial.take() {
            match w.finish() {
                Ok(s) => self.summaries.push(s),
                Err(e) => self.record_error(format!("segment finalise failed: {e}")),
            }
        }
        let shard_errors: Vec<String> =
            self.summaries.iter().filter_map(|s| s.error.clone()).collect();
        for e in shard_errors {
            self.record_error(e);
        }
        if let Some(e) = &self.error {
            return Err(NmoError::sink("trace-writer", e.clone()));
        }
        self.summaries.sort_by_key(|s| s.shard);
        self.write_manifest()?;
        Ok(self.summary_report())
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        Some(self)
    }
}

impl ShardableSink for TraceWriterSink {
    fn make_shard(&mut self, shard: usize, _ctx: &StreamContext) -> Box<dyn SinkShard> {
        self.sharded = true;
        let writer = fs::create_dir_all(&self.dir)
            .and_then(|()| SegmentWriter::create(&self.dir, shard, Arc::clone(&self.pool)));
        match writer {
            Ok(w) => Box::new(TraceShard { writer: Some(w), shard, error: None }),
            Err(e) => Box::new(TraceShard {
                writer: None,
                shard,
                error: Some(format!("cannot open segment {shard}: {e}")),
            }),
        }
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        for state in states {
            if let Ok(summary) = state.downcast::<SegmentSummary>() {
                self.summaries.push(*summary);
            }
        }
        self.summaries.sort_by_key(|s| s.shard);
    }
}

/// One shard of the [`TraceWriterSink`]: owns its segment writer, records
/// exactly what its lane delivered, in delivery order.
struct TraceShard {
    writer: Option<SegmentWriter>,
    shard: usize,
    error: Option<String>,
}

impl TraceShard {
    fn fail(&mut self, e: std::io::Error) {
        if self.error.is_none() {
            self.error = Some(format!("segment {} write failed: {e}", self.shard));
        }
        self.writer = None;
    }
}

impl SinkShard for TraceShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.append_batch(batch) {
                self.fail(e);
            }
        }
    }

    fn on_window_close(&mut self, window: Window) -> Option<ShardState> {
        if let Some(w) = self.writer.as_mut() {
            if let Err(e) = w.append_close(window) {
                self.fail(e);
            }
        }
        None
    }

    fn finish(self: Box<Self>) -> ShardState {
        let mut summary = match self.writer {
            Some(w) => match w.finish() {
                Ok(s) => s,
                Err(e) => SegmentSummary {
                    shard: self.shard,
                    error: Some(format!("segment {} finalise failed: {e}", self.shard)),
                    ..SegmentSummary::default()
                },
            },
            None => SegmentSummary { shard: self.shard, ..SegmentSummary::default() },
        };
        if summary.error.is_none() {
            summary.error = self.error;
        }
        Box::new(summary)
    }
}

// ---------------------------------------------------------------------------
// The reader: manifest, strict segment streaming, footer-index access.
// ---------------------------------------------------------------------------

/// Parsed `trace.manifest`.
#[derive(Debug, Clone)]
struct Manifest {
    window_ns: u64,
    capacity_bytes: u64,
    bucket_ns: u64,
    mem_nodes: usize,
    page_bytes: u64,
    samples: u64,
    segments: Vec<String>,
}

impl Manifest {
    fn parse(text: &str) -> Result<Manifest, NmoError> {
        let mut lines = text.lines();
        if lines.next() != Some("nmo-trace-manifest v1") {
            return Err(NmoError::trace("unrecognised manifest header"));
        }
        let mut m = Manifest {
            window_ns: 0,
            capacity_bytes: 0,
            bucket_ns: 1,
            mem_nodes: 1,
            page_bytes: 64 * 1024,
            samples: 0,
            segments: Vec::new(),
        };
        for line in lines {
            let (key, value) = match line.split_once(' ') {
                Some(kv) => kv,
                None => {
                    if line == "end" {
                        break;
                    }
                    return Err(NmoError::trace(format!("malformed manifest line: {line:?}")));
                }
            };
            let num = || {
                value
                    .parse::<u64>()
                    .map_err(|_| NmoError::trace(format!("bad manifest value for {key}: {value}")))
            };
            match key {
                "window_ns" => m.window_ns = num()?,
                "capacity_bytes" => m.capacity_bytes = num()?,
                "bucket_ns" => m.bucket_ns = num()?,
                "mem_nodes" => m.mem_nodes = num()? as usize,
                "page_bytes" => m.page_bytes = num()?,
                "samples" => m.samples = num()?,
                "shards" => {} // implied by the segment list
                "segment" => {
                    if value.contains('/') || value.contains("..") {
                        return Err(NmoError::trace(format!("suspicious segment name: {value}")));
                    }
                    m.segments.push(value.to_string());
                }
                _ => {} // forward compatibility: ignore unknown keys
            }
        }
        if m.segments.is_empty() {
            return Err(NmoError::trace("manifest lists no segments"));
        }
        Ok(m)
    }
}

/// What a stored trace contains, for reports and examples.
#[derive(Debug, Clone)]
pub struct TraceSummary {
    /// Number of per-shard segment files.
    pub shards: usize,
    /// Total address samples stored.
    pub samples: u64,
    /// Total stored bytes across segments (including indexes).
    pub bytes: u64,
    /// Streaming window width, nanoseconds.
    pub window_ns: u64,
}

/// Counters reported by a replay.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReplayStats {
    /// Address samples delivered to sinks.
    pub samples: u64,
    /// Batch deliveries replayed.
    pub batches: u64,
    /// Windows fully closed (all shards) during the replay.
    pub windows: u64,
    /// Blocks decoded.
    pub blocks: u64,
    /// Segment files visited.
    pub segments: usize,
}

/// Streams one segment file block by block, strictly: any framing,
/// checksum, or decode damage is an immediate [`NmoError::Trace`].
struct SegmentEventReader {
    file: BufReader<File>,
    path: PathBuf,
    scratch: Vec<u8>,
    done: bool,
}

impl SegmentEventReader {
    fn open(path: PathBuf) -> Result<SegmentEventReader, NmoError> {
        let file = File::open(&path)
            .map_err(|e| NmoError::trace(format!("cannot open {}: {e}", path.display())))?;
        let mut r = SegmentEventReader {
            file: BufReader::new(file),
            path,
            scratch: Vec::new(),
            done: false,
        };
        let mut header = [0u8; 8];
        r.read_exact(&mut header, "segment header")?;
        if header[..4] != SEGMENT_MAGIC {
            return Err(r.damage("not an NMO trace segment (bad magic)"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != FORMAT_VERSION {
            return Err(r.damage(format!("unsupported segment version {version}")));
        }
        Ok(r)
    }

    fn damage(&self, what: impl std::fmt::Display) -> NmoError {
        NmoError::trace(format!("{}: {what}", self.path.display()))
    }

    fn read_exact(&mut self, buf: &mut [u8], what: &str) -> Result<(), NmoError> {
        self.file
            .read_exact(buf)
            .map_err(|e| NmoError::trace(format!("{}: truncated {what}: {e}", self.path.display())))
    }

    /// The next block's events, or `None` once the footer index is reached.
    fn next_block(&mut self) -> Result<Option<Vec<TraceEvent>>, NmoError> {
        if self.done {
            return Ok(None);
        }
        let mut magic = [0u8; 4];
        self.read_exact(&mut magic, "block header")?;
        if magic == INDEX_MAGIC {
            self.done = true;
            return Ok(None);
        }
        if magic != BLOCK_MAGIC {
            return Err(self.damage("bad block magic (corrupt segment)"));
        }
        let mut rest = [0u8; 12];
        self.read_exact(&mut rest, "block header")?;
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let checksum = u64::from_le_bytes([
            rest[4], rest[5], rest[6], rest[7], rest[8], rest[9], rest[10], rest[11],
        ]);
        if len > MAX_BLOCK_BYTES {
            return Err(self.damage(format!("oversized block length {len}")));
        }
        self.scratch.resize(len, 0);
        let mut scratch = std::mem::take(&mut self.scratch);
        let res = self.read_exact(&mut scratch, "block payload");
        self.scratch = scratch;
        res?;
        if fnv1a(&self.scratch) != checksum {
            return Err(self.damage("block checksum mismatch"));
        }
        let events = decode_events(&self.scratch).map_err(|e| self.damage(e))?;
        Ok(Some(events))
    }
}

/// Read and verify a segment's footer index (for O(1) block seeks).
fn read_segment_index(file: &mut File, path: &Path) -> Result<Vec<IndexEntry>, NmoError> {
    let err = |what: String| NmoError::trace(format!("{}: {what}", path.display()));
    let file_len = file.seek(SeekFrom::End(0)).map_err(|e| err(format!("cannot seek: {e}")))?;
    if file_len < 8 + 12 {
        return Err(err("file too short for a trailer".into()));
    }
    file.seek(SeekFrom::End(-12)).map_err(|e| err(format!("cannot seek: {e}")))?;
    let mut trailer = [0u8; 12];
    file.read_exact(&mut trailer).map_err(|e| err(format!("truncated trailer: {e}")))?;
    if trailer[8..] != TRAILER_MAGIC {
        return Err(err("bad trailer magic (unfinalised or corrupt segment)".into()));
    }
    let index_offset = u64::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
        trailer[7],
    ]);
    if index_offset < 8 || index_offset + 12 > file_len {
        return Err(err(format!("index offset {index_offset} out of bounds")));
    }
    file.seek(SeekFrom::Start(index_offset)).map_err(|e| err(format!("cannot seek: {e}")))?;
    let mut head = [0u8; 8];
    file.read_exact(&mut head).map_err(|e| err(format!("truncated index header: {e}")))?;
    if head[..4] != INDEX_MAGIC {
        return Err(err("bad index magic".into()));
    }
    let count = u32::from_le_bytes([head[4], head[5], head[6], head[7]]) as usize;
    let index_bytes = count.saturating_mul(INDEX_ENTRY_BYTES);
    let available = (file_len - index_offset).saturating_sub(8 + 8 + 12);
    if index_bytes as u64 > available {
        return Err(err(format!("index entry count {count} exceeds file size")));
    }
    let mut entries = vec![0u8; index_bytes];
    file.read_exact(&mut entries).map_err(|e| err(format!("truncated index: {e}")))?;
    let mut sum = [0u8; 8];
    file.read_exact(&mut sum).map_err(|e| err(format!("truncated index checksum: {e}")))?;
    if fnv1a(&entries) != u64::from_le_bytes(sum) {
        return Err(err("index checksum mismatch".into()));
    }
    let mut out = Vec::with_capacity(count);
    for i in 0..count {
        match IndexEntry::decode(&entries, i * INDEX_ENTRY_BYTES) {
            Some(e) => out.push(e),
            None => return Err(err("truncated index entry".into())),
        }
    }
    Ok(out)
}

/// Read, verify, and decode the block described by `entry`.
fn read_block_at(
    file: &mut File,
    path: &Path,
    entry: &IndexEntry,
) -> Result<Vec<TraceEvent>, NmoError> {
    let err = |what: String| NmoError::trace(format!("{}: {what}", path.display()));
    let len = usize::try_from(entry.payload_len)
        .ok()
        .filter(|&l| l <= MAX_BLOCK_BYTES)
        .ok_or_else(|| err(format!("oversized indexed block ({} bytes)", entry.payload_len)))?;
    file.seek(SeekFrom::Start(entry.offset)).map_err(|e| err(format!("cannot seek: {e}")))?;
    let mut frame = vec![0u8; 16 + len];
    file.read_exact(&mut frame)
        .map_err(|e| err(format!("truncated block at offset {}: {e}", entry.offset)))?;
    if frame[..4] != BLOCK_MAGIC {
        return Err(err(format!("index points at a non-block offset {}", entry.offset)));
    }
    let payload = &frame[16..];
    if fnv1a(payload) != entry.checksum {
        return Err(err(format!("block checksum mismatch at offset {}", entry.offset)));
    }
    decode_events(payload).map_err(err)
}

/// Per-window shard states awaiting the all-shards-closed merge:
/// window index -> (window, accumulated `(shard, state)` pairs).
type PendingWindows = BTreeMap<u64, (Window, Vec<(usize, ShardState)>)>;

/// Opens a stored trace directory and replays it through analysis sinks.
pub struct TraceReader {
    dir: PathBuf,
    manifest: Manifest,
}

impl TraceReader {
    /// Open a trace directory written by [`TraceWriterSink`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<TraceReader, NmoError> {
        let dir = dir.into();
        let manifest_path = dir.join(MANIFEST_NAME);
        let text = fs::read_to_string(&manifest_path).map_err(|e| {
            NmoError::trace(format!("cannot read {}: {e}", manifest_path.display()))
        })?;
        let manifest = Manifest::parse(&text)?;
        Ok(TraceReader { dir, manifest })
    }

    /// Number of per-shard segments (the live run's shard count).
    pub fn shards(&self) -> usize {
        self.manifest.segments.len()
    }

    /// Streaming window width of the recorded run, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.manifest.window_ns
    }

    /// Totals of the stored trace.
    pub fn summary(&self) -> TraceSummary {
        let bytes = self
            .manifest
            .segments
            .iter()
            .filter_map(|s| fs::metadata(self.dir.join(s)).ok())
            .map(|m| m.len())
            .sum();
        TraceSummary {
            shards: self.manifest.segments.len(),
            samples: self.manifest.samples,
            bytes,
            window_ns: self.manifest.window_ns,
        }
    }

    /// A machine-less [`StreamContext`] rebuilt from the recorded stream
    /// geometry: the legitimate replay-side context ([`StreamContext::machine`]
    /// is `None`, so sinks aggregate but do not actuate).
    pub fn replay_context(&self) -> StreamContext {
        StreamContext::for_replay(
            self.manifest.capacity_bytes,
            self.manifest.bucket_ns,
            self.manifest.mem_nodes,
            self.manifest.page_bytes,
        )
    }

    fn segment_path(&self, shard: usize) -> PathBuf {
        self.dir.join(&self.manifest.segments[shard])
    }

    /// Sequentially replay the whole trace through `sinks`, reproducing the
    /// recorded run bit-for-bit: each sink's shard workers are fed their
    /// lane's deliveries in recorded order, and per-window states merge in
    /// ascending shard index exactly when the last shard closes the window
    /// — the same schedule the live sharded consumer follows. Sinks without
    /// a shardable implementation receive the merged stream serially
    /// (shard-major within each window round).
    ///
    /// Call [`replay_finish`] (or the sinks' `finish` directly) afterwards
    /// to collect the reports.
    pub fn replay(&self, sinks: &mut [Box<dyn AnalysisSink>]) -> Result<ReplayStats, NmoError> {
        let ctx = self.replay_context();
        self.replay_with_context(&ctx, sinks)
    }

    /// [`TraceReader::replay`] with a caller-built context (e.g. carrying
    /// the original annotations so a region sink can re-attribute samples).
    pub fn replay_with_context(
        &self,
        ctx: &StreamContext,
        sinks: &mut [Box<dyn AnalysisSink>],
    ) -> Result<ReplayStats, NmoError> {
        let shards = self.shards();
        let mut stats = ReplayStats { segments: shards, ..ReplayStats::default() };
        let mut readers = Vec::with_capacity(shards);
        for shard in 0..shards {
            readers.push(SegmentEventReader::open(self.segment_path(shard))?);
        }
        // Per-sink shard workers (None = legacy sink fed serially).
        let mut workers: Vec<Option<Vec<Box<dyn SinkShard>>>> = Vec::with_capacity(sinks.len());
        for sink in sinks.iter_mut() {
            sink.on_stream_start(ctx);
            match sink.as_shardable() {
                Some(sh) => {
                    workers.push(Some((0..shards).map(|s| sh.make_shard(s, ctx)).collect()));
                }
                None => workers.push(None),
            }
        }
        // Pending per-window shard states, per sink, and per-window close
        // counts for the all-shards-closed trigger (the live merge rule).
        let mut pending: Vec<PendingWindows> = sinks.iter().map(|_| BTreeMap::new()).collect();
        let mut close_counts: BTreeMap<u64, (Window, usize)> = BTreeMap::new();
        let mut queues: Vec<VecDeque<TraceEvent>> = (0..shards).map(|_| VecDeque::new()).collect();
        loop {
            let mut progressed = false;
            for shard in 0..shards {
                // Deliver this shard's events up to and including its next
                // window close (one close per shard per round keeps the
                // lanes advancing in lock step, windows ascending).
                loop {
                    let ev = match queues[shard].pop_front() {
                        Some(ev) => ev,
                        None => match readers[shard].next_block()? {
                            Some(events) => {
                                stats.blocks += 1;
                                queues[shard].extend(events);
                                continue;
                            }
                            None => break,
                        },
                    };
                    progressed = true;
                    match ev {
                        TraceEvent::Batch(batch) => {
                            stats.batches += 1;
                            if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
                                stats.samples += samples.len() as u64;
                            }
                            for (sink, ws) in sinks.iter_mut().zip(workers.iter_mut()) {
                                match ws {
                                    Some(ws) => ws[shard].on_batch(&batch),
                                    None => sink.on_batch(&batch),
                                }
                            }
                        }
                        TraceEvent::Close(w) => {
                            for (ws, pend) in workers.iter_mut().zip(pending.iter_mut()) {
                                if let Some(ws) = ws {
                                    if let Some(state) = ws[shard].on_window_close(w) {
                                        pend.entry(w.index)
                                            .or_insert_with(|| (w, Vec::new()))
                                            .1
                                            .push((shard, state));
                                    }
                                }
                            }
                            let entry = close_counts.entry(w.index).or_insert((w, 0));
                            entry.1 += 1;
                            if entry.1 == shards {
                                close_counts.remove(&w.index);
                                stats.windows += 1;
                                merge_closed_window(sinks, &mut workers, &mut pending, w, shards);
                            }
                            break;
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        // Final merge, ascending shard index — the live end-of-run path.
        for (sink, ws) in sinks.iter_mut().zip(workers.iter_mut()) {
            if let Some(ws) = ws.take() {
                let states: Vec<ShardState> = ws.into_iter().map(|w| w.finish()).collect();
                if let Some(sh) = sink.as_shardable() {
                    sh.merge_final(states);
                }
            }
        }
        Ok(stats)
    }
}

/// Merge a fully closed window: shardable sinks whose every shard returned
/// a state get `merge_window` with the states in ascending shard order;
/// legacy sinks get their single `on_window_close` — the same delivery the
/// live consumer performs when the last lane processes the broadcast.
fn merge_closed_window(
    sinks: &mut [Box<dyn AnalysisSink>],
    workers: &mut [Option<Vec<Box<dyn SinkShard>>>],
    pending: &mut [PendingWindows],
    w: Window,
    shards: usize,
) {
    for ((sink, ws), pend) in sinks.iter_mut().zip(workers.iter_mut()).zip(pending.iter_mut()) {
        match ws {
            Some(_) => {
                let complete = pend.get(&w.index).is_some_and(|(_, states)| states.len() == shards);
                if complete {
                    if let Some((win, mut states)) = pend.remove(&w.index) {
                        states.sort_by_key(|(shard, _)| *shard);
                        if let Some(sh) = sink.as_shardable() {
                            sh.merge_window(win, states.into_iter().map(|(_, s)| s).collect());
                        }
                    }
                }
            }
            None => sink.on_window_close(w),
        }
    }
}

// ---------------------------------------------------------------------------
// Indexed parallel replay.
// ---------------------------------------------------------------------------

/// A slice of a stored trace: time windows, cores, and/or an address range.
/// Unset dimensions match everything. Time and core slicing are
/// batch-granular (an SPE batch is per-core and per-window); the address
/// range additionally filters individual samples inside matching batches.
#[derive(Debug, Clone, Default)]
pub struct TraceQuery {
    /// Inclusive window-index range.
    pub windows: Option<(u64, u64)>,
    /// Cores to include (batch-level; core-less machine ticks always pass).
    pub cores: Option<Vec<usize>>,
    /// Inclusive virtual-address range (applied per sample).
    pub vaddr: Option<(u64, u64)>,
}

impl TraceQuery {
    /// A query matching the whole trace.
    pub fn all() -> Self {
        TraceQuery::default()
    }

    /// Restrict to an inclusive window-index range.
    pub fn with_windows(mut self, first: u64, last: u64) -> Self {
        self.windows = Some((first.min(last), first.max(last)));
        self
    }

    /// Restrict to the given cores.
    pub fn with_cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores = Some(cores.into_iter().collect());
        self
    }

    /// Restrict to an inclusive virtual-address range.
    pub fn with_vaddr(mut self, lo: u64, hi: u64) -> Self {
        self.vaddr = Some((lo.min(hi), lo.max(hi)));
        self
    }

    fn window_in_range(&self, index: u64) -> bool {
        self.windows.is_none_or(|(lo, hi)| (lo..=hi).contains(&index))
    }

    fn core_matches(&self, core: usize) -> bool {
        self.cores.as_ref().is_none_or(|cores| cores.contains(&core))
    }

    fn core_mask(&self) -> u64 {
        match &self.cores {
            None => u64::MAX,
            Some(cores) => cores.iter().fold(0, |m, &c| m | core_bit(c)),
        }
    }

    /// Whether a footer index entry can contain anything this query needs.
    /// Close mini blocks ride on the window range alone: every close in
    /// range must reach the sinks regardless of core/address slicing.
    fn matches_entry(&self, e: &IndexEntry) -> bool {
        if let Some((lo, hi)) = self.windows {
            if e.first_window > hi || e.last_window < lo {
                return false;
            }
        }
        if e.closes > 0 {
            return true;
        }
        if e.core_mask & self.core_mask() == 0 {
            return false;
        }
        if let Some((lo, hi)) = self.vaddr {
            if e.samples > 0 && (e.min_vaddr > hi || e.max_vaddr < lo) {
                return false;
            }
        }
        true
    }

    /// Apply the per-sample address filter; `None` drops the whole batch.
    fn filter_batch(&self, batch: SampleBatch) -> Option<SampleBatch> {
        let (lo, hi) = match self.vaddr {
            Some(range) if matches!(batch.payload(), BatchPayload::SpeSamples { .. }) => range,
            _ => return Some(batch),
        };
        let (seq, backend, core, window) = (batch.seq, batch.backend, batch.core, batch.window);
        match batch.into_payload() {
            BatchPayload::SpeSamples { samples, loss } => {
                let filtered: Vec<AddressSample> =
                    samples.into_iter().filter(|s| (lo..=hi).contains(&s.vaddr)).collect();
                if filtered.is_empty() {
                    return None;
                }
                let mut b = SampleBatch::new(
                    backend,
                    core,
                    window,
                    BatchPayload::SpeSamples { samples: filtered, loss },
                );
                b.seq = seq;
                Some(b)
            }
            _ => None, // unreachable: guarded by the payload match above
        }
    }
}

/// What one segment worker brings back from an indexed replay.
struct ShardOutcome {
    shard: usize,
    workers: Vec<(usize, Box<dyn SinkShard>)>,
    states: Vec<(usize, Window, ShardState)>,
    closed: Vec<u64>,
    samples: u64,
    batches: u64,
    blocks: u64,
}

/// Replay the blocks of one segment matching `query` through this shard's
/// workers (runs on its own thread).
fn query_segment(
    path: PathBuf,
    shard: usize,
    query: TraceQuery,
    mut set: Vec<(usize, Box<dyn SinkShard>)>,
) -> Result<ShardOutcome, NmoError> {
    let mut file = File::open(&path)
        .map_err(|e| NmoError::trace(format!("cannot open {}: {e}", path.display())))?;
    let entries = read_segment_index(&mut file, &path)?;
    let mut out = ShardOutcome {
        shard,
        workers: Vec::new(),
        states: Vec::new(),
        closed: Vec::new(),
        samples: 0,
        batches: 0,
        blocks: 0,
    };
    for entry in entries.iter().filter(|e| query.matches_entry(e)) {
        let events = read_block_at(&mut file, &path, entry)?;
        out.blocks += 1;
        for ev in events {
            match ev {
                TraceEvent::Batch(batch) => {
                    if !query.window_in_range(batch.window.index) {
                        continue;
                    }
                    if let Some(core) = batch.core {
                        if !query.core_matches(core) {
                            continue;
                        }
                    }
                    if let Some(batch) = query.filter_batch(batch) {
                        out.batches += 1;
                        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
                            out.samples += samples.len() as u64;
                        }
                        for (_, worker) in set.iter_mut() {
                            worker.on_batch(&batch);
                        }
                    }
                }
                TraceEvent::Close(w) => {
                    if query.window_in_range(w.index) {
                        out.closed.push(w.index);
                        for (sink_idx, worker) in set.iter_mut() {
                            if let Some(state) = worker.on_window_close(w) {
                                out.states.push((*sink_idx, w, state));
                            }
                        }
                    }
                }
            }
        }
    }
    out.workers = set;
    Ok(out)
}

impl TraceReader {
    /// Indexed parallel replay: fan the blocks matching `query` out across
    /// one worker thread per segment, deliver them to per-shard sink
    /// workers, then merge per-window states (ascending window, ascending
    /// shard) and finish — without ever reading non-matching blocks or
    /// loading the whole trace. Every sink must be a [`ShardableSink`]
    /// (deterministic merge is what makes the parallel fan-out safe).
    pub fn replay_query(
        &self,
        query: &TraceQuery,
        sinks: &mut [Box<dyn AnalysisSink>],
    ) -> Result<ReplayStats, NmoError> {
        let ctx = self.replay_context();
        let shards = self.shards();
        let mut sets: Vec<Vec<(usize, Box<dyn SinkShard>)>> =
            (0..shards).map(|_| Vec::new()).collect();
        for (i, sink) in sinks.iter_mut().enumerate() {
            sink.on_stream_start(&ctx);
            let name = sink.name();
            let sh = sink.as_shardable().ok_or_else(|| {
                NmoError::trace(format!("indexed replay requires shardable sinks; '{name}' is not"))
            })?;
            for (shard, set) in sets.iter_mut().enumerate() {
                set.push((i, sh.make_shard(shard, &ctx)));
            }
        }
        let outcomes: Vec<Result<ShardOutcome, NmoError>> = thread::scope(|scope| {
            let handles: Vec<_> = sets
                .into_iter()
                .enumerate()
                .map(|(shard, set)| {
                    let path = self.segment_path(shard);
                    let query = query.clone();
                    scope.spawn(move || query_segment(path, shard, query, set))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|_| Err(NmoError::trace("indexed replay worker panicked")))
                })
                .collect()
        });
        let mut stats = ReplayStats { segments: shards, ..ReplayStats::default() };
        let mut per_sink: Vec<PendingWindows> = sinks.iter().map(|_| BTreeMap::new()).collect();
        let mut workers: Vec<Vec<(usize, Box<dyn SinkShard>)>> =
            sinks.iter().map(|_| Vec::new()).collect();
        let mut close_counts: BTreeMap<u64, usize> = BTreeMap::new();
        for outcome in outcomes {
            let o = outcome?;
            stats.samples += o.samples;
            stats.batches += o.batches;
            stats.blocks += o.blocks;
            for w in o.closed {
                *close_counts.entry(w).or_insert(0) += 1;
            }
            for (sink_idx, window, state) in o.states {
                per_sink[sink_idx]
                    .entry(window.index)
                    .or_insert_with(|| (window, Vec::new()))
                    .1
                    .push((o.shard, state));
            }
            for (sink_idx, worker) in o.workers {
                workers[sink_idx].push((o.shard, worker));
            }
        }
        stats.windows = close_counts.values().filter(|&&n| n == shards).count() as u64;
        for (sink, (pend, mut ws)) in sinks.iter_mut().zip(per_sink.into_iter().zip(workers)) {
            if let Some(sh) = sink.as_shardable() {
                for (_, (window, mut states)) in pend {
                    if states.len() == shards {
                        states.sort_by_key(|(shard, _)| *shard);
                        sh.merge_window(window, states.into_iter().map(|(_, s)| s).collect());
                    }
                }
                ws.sort_by_key(|(shard, _)| *shard);
                sh.merge_final(ws.into_iter().map(|(_, w)| w.finish()).collect());
            }
        }
        Ok(stats)
    }

    /// Lenient integrity check over every segment: scan all block regions
    /// with [`scan_blocks`], tolerating (and reporting) damage instead of
    /// failing on the first corrupt byte.
    pub fn verify(&self) -> Result<TraceVerify, NmoError> {
        let mut v = TraceVerify::default();
        for shard in 0..self.shards() {
            let path = self.segment_path(shard);
            let data = fs::read(&path)
                .map_err(|e| NmoError::trace(format!("cannot read {}: {e}", path.display())))?;
            // Scan only the block region when the trailer parses; a segment
            // with a damaged trailer is scanned to the end (the index bytes
            // then show up as skipped).
            let end = match fs::File::open(&path) {
                Ok(mut f) => read_segment_index(&mut f, &path)
                    .ok()
                    .and_then(|_| data.len().checked_sub(12))
                    .and_then(|t| get_u64(&data, t))
                    .map_or(data.len(), |off| (off as usize).min(data.len())),
                Err(_) => data.len(),
            };
            let start = 8.min(end);
            let scan = scan_blocks(&data[start..end]);
            v.blocks += scan.blocks.len() as u64;
            v.consumed_bytes += scan.consumed_bytes as u64;
            v.skipped_bytes += scan.skipped_bytes as u64;
            v.errors.extend(scan.errors.into_iter().map(|e| format!("{}: {e}", path.display())));
        }
        Ok(v)
    }
}

/// Result of [`TraceReader::verify`].
#[derive(Debug, Default)]
pub struct TraceVerify {
    /// Blocks that verified across all segments.
    pub blocks: u64,
    /// Bytes covered by verified blocks.
    pub consumed_bytes: u64,
    /// Bytes skipped as damaged or unrecognised.
    pub skipped_bytes: u64,
    /// Damage reports.
    pub errors: Vec<String>,
}

/// Collect the sinks' reports after a replay, without a live machine: calls
/// each sink's [`AnalysisSink::finish`] against a minimal machine and an
/// empty profile (streaming-fed sinks ignore both and report what they
/// aggregated from the replayed stream).
pub fn replay_finish(sinks: &mut [Box<dyn AnalysisSink>]) -> Result<Vec<AnalysisRecord>, NmoError> {
    let machine = Machine::new(MachineConfig::small_test());
    let profile = Profile::empty("replay", NmoConfig::paper_default(1000));
    sinks
        .iter_mut()
        .map(|s| {
            s.finish(&machine, &profile)
                .map(|report| AnalysisRecord { sink: s.name().to_string(), report })
        })
        .collect()
}

/// A machine-less [`StreamContext`] for replays with default geometry (used
/// by hand-built tests; [`TraceReader::replay_context`] rebuilds the
/// recorded geometry instead).
pub fn default_replay_context() -> StreamContext {
    StreamContext::for_replay(0, 1, 1, 64 * 1024)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::BatchPayload;

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("nmo_trace_{tag}_{}", std::process::id()))
    }

    fn sample(t: u64, vaddr: u64, core: usize, latency: u16, source: DataSource) -> AddressSample {
        AddressSample { time_ns: t, vaddr, core, is_store: t.is_multiple_of(3), latency, source }
    }

    fn spe_batch(core: usize, window: Window, samples: Vec<AddressSample>) -> SampleBatch {
        let loss = SpeStatsSnapshot {
            samples_selected: samples.len() as u64,
            records_written: samples.len() as u64 + 1,
            ..SpeStatsSnapshot::default()
        };
        let mut b =
            SampleBatch::new("spe", Some(core), window, BatchPayload::SpeSamples { samples, loss });
        b.seq = 41 + core as u64;
        b
    }

    fn assert_batches_eq(a: &SampleBatch, b: &SampleBatch) {
        assert_eq!(a.backend, b.backend);
        assert_eq!(a.core, b.core);
        assert_eq!(a.seq, b.seq);
        assert_eq!(a.window, b.window);
        match (a.payload(), b.payload()) {
            (
                BatchPayload::SpeSamples { samples: sa, loss: la },
                BatchPayload::SpeSamples { samples: sb, loss: lb },
            ) => {
                assert_eq!(sa, sb);
                assert_eq!(la, lb);
            }
            (
                BatchPayload::CounterDeltas { deltas: da },
                BatchPayload::CounterDeltas { deltas: db },
            ) => {
                assert_eq!(da.len(), db.len());
                for (x, y) in da.iter().zip(db) {
                    assert_eq!((&x.event, x.delta, x.total), (&y.event, y.delta, y.total));
                }
            }
            (BatchPayload::Rss { points: pa }, BatchPayload::Rss { points: pb }) => {
                assert_eq!(pa, pb);
            }
            (BatchPayload::Bandwidth { points: pa }, BatchPayload::Bandwidth { points: pb }) => {
                assert_eq!(pa.len(), pb.len());
                for (x, y) in pa.iter().zip(pb) {
                    assert_eq!((x.time_ns, x.bytes, x.by_node), (y.time_ns, y.bytes, y.by_node));
                    assert!((x.gib_per_s - y.gib_per_s).abs() < f64::EPSILON);
                }
            }
            _ => panic!("payload kinds differ"),
        }
    }

    #[test]
    fn varint_round_trips_boundaries() {
        let mut buf = Vec::new();
        let values = [0u64, 1, 127, 128, 16_383, 16_384, u32::MAX as u64, u64::MAX - 1, u64::MAX];
        for &v in &values {
            buf.clear();
            put_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(get_varint(&buf, &mut pos), Some(v));
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn varint_rejects_truncation_and_overlong() {
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            let mut pos = 0;
            assert_eq!(get_varint(&buf[..cut], &mut pos), None, "cut at {cut}");
        }
        // 11 continuation bytes can only encode overflow.
        let overlong = [0x80u8; 11];
        let mut pos = 0;
        assert_eq!(get_varint(&overlong, &mut pos), None);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    fn mixed_events(window: Window) -> Vec<TraceEvent> {
        let samples = vec![
            sample(window.start_ns + 10, 0x7f00_0000, 3, 120, DataSource::L1),
            sample(window.start_ns + 25, 0x7f00_0040, 3, 300, DataSource::Dram(0)),
            sample(window.start_ns + 26, 0x6000_0000, 7, 900, DataSource::RemoteDram(1)),
        ];
        let counters = SampleBatch::new(
            "counters",
            Some(1),
            window,
            BatchPayload::CounterDeltas {
                deltas: vec![crate::stream::CounterDelta {
                    event: "ll_cache_miss".to_string(),
                    delta: 17,
                    total: 4242,
                }],
            },
        );
        let mut rss_by_node = [0u64; MAX_MEM_NODES];
        rss_by_node[0] = 4096;
        rss_by_node[1] = 8192;
        let rss = SampleBatch::new(
            "machine",
            None,
            window,
            BatchPayload::Rss {
                points: vec![RssPoint {
                    time_ns: window.start_ns + 5,
                    rss_bytes: 12_288,
                    rss_by_node,
                }],
            },
        );
        let bw = SampleBatch::new(
            "machine",
            None,
            window,
            BatchPayload::Bandwidth {
                points: vec![BandwidthPoint {
                    time_ns: window.start_ns + 6,
                    bytes: 64,
                    by_node: rss_by_node,
                    gib_per_s: 1.75,
                }],
            },
        );
        vec![
            TraceEvent::Batch(spe_batch(3, window, samples)),
            TraceEvent::Batch(counters),
            TraceEvent::Batch(rss),
            TraceEvent::Batch(bw),
            TraceEvent::Close(window),
        ]
    }

    #[test]
    fn events_encode_decode_round_trip() {
        let window = Window { index: 4, start_ns: 4_000_000, end_ns: 5_000_000 };
        let events = mixed_events(window);
        let mut buf = Vec::new();
        let mut meta = BlockMeta::empty();
        for ev in &events {
            match ev {
                TraceEvent::Batch(b) => {
                    encode_batch_event(&mut buf, b, &mut meta);
                }
                TraceEvent::Close(w) => encode_close_event(&mut buf, *w, &mut meta),
            }
        }
        assert_eq!(meta.samples, 3);
        assert_eq!(meta.closes, 1);
        assert_eq!(meta.first_window, 4);
        assert_eq!(meta.core_mask & core_bit(3), core_bit(3));
        // Core-less machine batches force the mask wide open.
        assert_eq!(meta.core_mask, u64::MAX);
        assert_eq!(meta.min_vaddr, 0x6000_0000);
        assert_eq!(meta.max_vaddr, 0x7f00_0040);

        let decoded = decode_events(&buf).expect("decode");
        assert_eq!(decoded.len(), events.len());
        for (orig, got) in events.iter().zip(&decoded) {
            match (orig, got) {
                (TraceEvent::Batch(a), TraceEvent::Batch(b)) => assert_batches_eq(a, b),
                (TraceEvent::Close(a), TraceEvent::Close(b)) => assert_eq!(a, b),
                _ => panic!("event kinds differ"),
            }
        }
    }

    #[test]
    fn decode_rejects_any_truncation() {
        let window = Window { index: 0, start_ns: 0, end_ns: 1_000_000 };
        let mut buf = Vec::new();
        let mut meta = BlockMeta::empty();
        // A cut at an exact event boundary is a legal (shorter) stream, so
        // record the boundaries and expect success with fewer events there
        // and a decode error everywhere else — never a panic.
        let mut boundaries = std::collections::BTreeSet::new();
        let mut n_events = 0usize;
        for ev in mixed_events(window) {
            match ev {
                TraceEvent::Batch(b) => {
                    encode_batch_event(&mut buf, &b, &mut meta);
                }
                TraceEvent::Close(w) => encode_close_event(&mut buf, w, &mut meta),
            }
            boundaries.insert(buf.len());
            n_events += 1;
        }
        for cut in 1..buf.len() {
            match decode_events(&buf[..cut]) {
                Ok(events) => {
                    assert!(boundaries.contains(&cut), "cut {cut} inside an event decoded Ok");
                    assert!(events.len() < n_events);
                }
                Err(_) => {
                    assert!(!boundaries.contains(&cut), "cut {cut} at a boundary must decode");
                }
            }
        }
    }

    fn write_segment(dir: &Path, shard: usize, windows: u64) -> SegmentSummary {
        let pool = BatchPool::new(4);
        let mut w = SegmentWriter::create(dir, shard, Arc::clone(&pool)).expect("create");
        let clock = WindowClock::new(1_000_000);
        for wi in 0..windows {
            let window = clock.window(wi);
            let samples = (0..50)
                .map(|i| {
                    sample(
                        window.start_ns + i * 10,
                        0x1000_0000 + wi * 0x1000 + i * 64,
                        shard,
                        (100 + i) as u16,
                        if i % 2 == 0 { DataSource::L1 } else { DataSource::Dram(0) },
                    )
                })
                .collect();
            w.append_batch(&spe_batch(shard, window, samples)).expect("append");
            w.append_close(window).expect("close");
        }
        w.finish().expect("finish")
    }

    #[test]
    fn segment_round_trips_through_index_and_sequential_reader() {
        let dir = tmp("segment_rt");
        fs::create_dir_all(&dir).expect("mkdir");
        let summary = write_segment(&dir, 0, 6);
        assert_eq!(summary.samples, 300);
        assert_eq!(summary.closes, 6);
        let path = dir.join(SegmentWriter::segment_file_name(0));

        // Footer index: every block readable via read_block_at, metadata sane.
        let mut file = File::open(&path).expect("open");
        let entries = read_segment_index(&mut file, &path).expect("index");
        assert_eq!(entries.len() as u64, summary.blocks);
        let mut indexed_events = 0u64;
        for e in &entries {
            let events = read_block_at(&mut file, &path, e).expect("block");
            assert_eq!(events.len() as u64, e.events);
            indexed_events += e.events;
        }
        assert_eq!(indexed_events, summary.events);

        // Sequential reader sees the same event stream in order.
        let mut reader = SegmentEventReader::open(path.clone()).expect("reader");
        let mut seq_events = 0u64;
        let mut closes = 0u64;
        while let Some(events) = reader.next_block().expect("next") {
            for ev in &events {
                if matches!(ev, TraceEvent::Close(_)) {
                    closes += 1;
                }
            }
            seq_events += events.len() as u64;
        }
        assert_eq!(seq_events, summary.events);
        assert_eq!(closes, 6);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn scan_blocks_accounts_for_every_byte_under_corruption() {
        let dir = tmp("scan_corrupt");
        fs::create_dir_all(&dir).expect("mkdir");
        let summary = write_segment(&dir, 0, 4);
        let path = dir.join(SegmentWriter::segment_file_name(0));
        let data = fs::read(&path).expect("read");
        let trailer_at = data.len() - 12;
        let index_offset = get_u64(&data, trailer_at).expect("trailer") as usize;
        let blocks = &data[8..index_offset];

        // Pristine region: everything consumed, nothing skipped.
        let clean = scan_blocks(blocks);
        assert!(clean.errors.is_empty(), "{:?}", clean.errors);
        assert_eq!(clean.blocks.len() as u64, summary.blocks);
        assert_eq!(clean.consumed_bytes, blocks.len());
        assert_eq!(clean.skipped_bytes, 0);

        // Flip one payload byte in every position of the first block frame:
        // never a panic, bytes always exactly accounted.
        let first_len = clean.blocks[0].frame_len;
        for at in 0..first_len {
            let mut bad = blocks.to_vec();
            bad[at] ^= 0xff;
            let scan = scan_blocks(&bad);
            assert_eq!(
                scan.consumed_bytes + scan.skipped_bytes,
                bad.len(),
                "byte {at}: consumed {} + skipped {} != {}",
                scan.consumed_bytes,
                scan.skipped_bytes,
                bad.len()
            );
        }

        // A checksum flip specifically must surface as a checksum error.
        let mut bad = blocks.to_vec();
        bad[4 + 4 + 2] ^= 0xff; // inside the fnv1a64 field of block 0
        let scan = scan_blocks(&bad);
        assert!(scan.errors.iter().any(|e| e.contains("checksum mismatch")), "{:?}", scan.errors);
        assert!(scan.first_error().is_some());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strict_reader_surfaces_checksum_damage_as_trace_error() {
        let dir = tmp("strict_damage");
        fs::create_dir_all(&dir).expect("mkdir");
        write_segment(&dir, 0, 2);
        let path = dir.join(SegmentWriter::segment_file_name(0));
        let mut data = fs::read(&path).expect("read");
        data[8 + 4 + 4 + 2] ^= 0xff; // corrupt block 0's stored checksum
        fs::write(&path, &data).expect("write");
        let mut reader = SegmentEventReader::open(path.clone()).expect("open");
        let err = loop {
            match reader.next_block() {
                Ok(Some(_)) => continue,
                Ok(None) => panic!("damage not detected"),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(&err, NmoError::Trace(m) if m.contains("checksum")),
            "unexpected error: {err}"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_parses_and_rejects_path_escapes() {
        let text = "nmo-trace-manifest v1\nwindow_ns 250000\ncapacity_bytes 1024\nbucket_ns 7\nmem_nodes 2\npage_bytes 65536\nshards 2\nsamples 99\nsegment shard-000.seg\nsegment shard-001.seg\nend\n";
        let m = Manifest::parse(text).expect("parse");
        assert_eq!(m.window_ns, 250_000);
        assert_eq!(m.mem_nodes, 2);
        assert_eq!(m.segments.len(), 2);
        assert!(Manifest::parse("not a manifest\n").is_err());
        assert!(Manifest::parse("nmo-trace-manifest v1\nsegment ../../etc/passwd\nend\n").is_err());
    }

    #[test]
    fn query_pruning_matches_entry_semantics() {
        let entry = IndexEntry {
            offset: 8,
            payload_len: 100,
            checksum: 0,
            first_window: 4,
            last_window: 6,
            core_mask: core_bit(2) | core_bit(66), // 2 and 66 alias mod 64
            min_vaddr: 0x1000,
            max_vaddr: 0x2000,
            samples: 10,
            events: 3,
            closes: 0,
        };
        assert!(TraceQuery::all().matches_entry(&entry));
        assert!(TraceQuery::all().with_windows(6, 9).matches_entry(&entry));
        assert!(!TraceQuery::all().with_windows(7, 9).matches_entry(&entry));
        assert!(TraceQuery::all().with_cores([2]).matches_entry(&entry));
        assert!(!TraceQuery::all().with_cores([3]).matches_entry(&entry));
        // Aliased core bit keeps the block (pruning is conservative).
        assert!(TraceQuery::all().with_cores([66]).matches_entry(&entry));
        assert!(TraceQuery::all().with_vaddr(0x1800, 0x1900).matches_entry(&entry));
        assert!(!TraceQuery::all().with_vaddr(0x3000, 0x4000).matches_entry(&entry));
        // Close-carrying blocks are never pruned by core/vaddr.
        let close_entry = IndexEntry { closes: 1, ..entry };
        assert!(TraceQuery::all().with_cores([3]).matches_entry(&close_entry));
    }
}
