//! Level 3: memory-region-based profiling (paper Section VI-C, Figures 4–6).
//!
//! The virtual addresses of SPE samples are attributed to the address-range
//! tags registered through the annotation API, and bucketed over time so the
//! access pattern of each object can be inspected (scatter plots in the
//! paper). A high-resolution view over a narrow time window supports the
//! "zoomed" tracing of Figure 6.

use std::collections::HashMap;

use crate::annotate::{AddrTag, Phase};
use crate::runtime::AddressSample;

/// Per-tag access statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionStats {
    /// Tag (object) name.
    pub name: String,
    /// Number of samples attributed to the tag.
    pub samples: u64,
    /// Number of load samples.
    pub loads: u64,
    /// Number of store samples.
    pub stores: u64,
    /// Lowest sampled address within the tag.
    pub min_addr: u64,
    /// Highest sampled address within the tag.
    pub max_addr: u64,
    /// Fraction of the tagged range that was sampled at least once, measured
    /// at 64-byte-line granularity over the sampled addresses (coverage of
    /// the scatter plot, 0.0–1.0).
    pub coverage: f64,
}

/// A sample attributed to a tag and phase (one point of the scatter plot).
#[derive(Debug, Clone, PartialEq)]
pub struct AttributedSample {
    /// Sample time, seconds.
    pub time_s: f64,
    /// Virtual address.
    pub vaddr: u64,
    /// Tag name, if the address fell inside a registered tag.
    pub tag: Option<String>,
    /// Phase name, if the timestamp fell inside a phase.
    pub phase: Option<String>,
    /// Whether the sampled operation was a store.
    pub is_store: bool,
}

/// Result of region-based attribution.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegionProfile {
    /// All samples with their attribution (scatter-plot data).
    pub scatter: Vec<AttributedSample>,
    /// Per-tag statistics, sorted by descending sample count.
    pub per_tag: Vec<RegionStats>,
    /// Samples that fell outside every tag.
    pub untagged_samples: u64,
    /// Per-phase sample counts.
    pub per_phase: Vec<(String, u64)>,
}

/// Incremental region attribution: the windowed-merge core behind both the
/// post-hoc [`attribute`] scan and the streaming
/// [`crate::sink::RegionSink`].
///
/// Samples are ingested batch by batch (each batch attributed against the
/// tags and phases known at ingestion time, which is how a streaming
/// profiler avoids keeping the whole run in memory before analysing), and
/// [`RegionAccumulator::finalize`] computes the coverage statistics that
/// need the final tag extents.
#[derive(Debug, Default)]
pub struct RegionAccumulator {
    scatter: Vec<AttributedSample>,
    per_tag: HashMap<String, (RegionStats, std::collections::HashSet<u64>)>,
    per_phase: HashMap<String, u64>,
    untagged: u64,
}

impl RegionAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of samples ingested so far.
    pub fn len(&self) -> usize {
        self.scatter.len()
    }

    /// Whether no samples have been ingested.
    pub fn is_empty(&self) -> bool {
        self.scatter.is_empty()
    }

    /// Attribute one batch of samples against the currently known tags and
    /// phases, merging into the running statistics.
    pub fn ingest(&mut self, samples: &[AddressSample], tags: &[AddrTag], phases: &[Phase]) {
        self.scatter.reserve(samples.len());
        for s in samples {
            let tag = tags.iter().rev().find(|t| t.contains(s.vaddr));
            let phase =
                phases.iter().rev().find(|p| p.contains_ns(s.time_ns)).map(|p| p.name.clone());
            if let Some(p) = &phase {
                *self.per_phase.entry(p.clone()).or_insert(0) += 1;
            }
            match tag {
                Some(t) => {
                    let entry = self.per_tag.entry(t.name.clone()).or_insert_with(|| {
                        (
                            RegionStats {
                                name: t.name.clone(),
                                samples: 0,
                                loads: 0,
                                stores: 0,
                                min_addr: u64::MAX,
                                max_addr: 0,
                                coverage: 0.0,
                            },
                            std::collections::HashSet::new(),
                        )
                    });
                    entry.0.samples += 1;
                    if s.is_store {
                        entry.0.stores += 1;
                    } else {
                        entry.0.loads += 1;
                    }
                    entry.0.min_addr = entry.0.min_addr.min(s.vaddr);
                    entry.0.max_addr = entry.0.max_addr.max(s.vaddr);
                    entry.1.insert(s.vaddr >> 6);
                }
                None => self.untagged += 1,
            }
            self.scatter.push(AttributedSample {
                time_s: s.time_ns as f64 * 1e-9,
                vaddr: s.vaddr,
                tag: tag.map(|t| t.name.clone()),
                phase,
                is_store: s.is_store,
            });
        }
    }

    /// Merge another accumulator into this one (the shard-merge step of the
    /// sharded streaming pipeline): counts and extents sum, sampled cache
    /// lines union, and `other`'s scatter points append after ours — so
    /// merging shard accumulators in ascending shard index is
    /// deterministic.
    pub fn merge(&mut self, other: RegionAccumulator) {
        self.scatter.extend(other.scatter);
        for (name, (stats, lines)) in other.per_tag {
            match self.per_tag.get_mut(&name) {
                Some((ours, our_lines)) => {
                    ours.samples += stats.samples;
                    ours.loads += stats.loads;
                    ours.stores += stats.stores;
                    ours.min_addr = ours.min_addr.min(stats.min_addr);
                    ours.max_addr = ours.max_addr.max(stats.max_addr);
                    our_lines.extend(lines);
                }
                None => {
                    self.per_tag.insert(name, (stats, lines));
                }
            }
        }
        for (phase, count) in other.per_phase {
            *self.per_phase.entry(phase).or_insert(0) += count;
        }
        self.untagged += other.untagged;
    }

    /// Finish: compute per-tag coverage against the final tag extents and
    /// assemble the [`RegionProfile`]. Scatter samples keep ingestion order.
    pub fn finalize(self, tags: &[AddrTag]) -> RegionProfile {
        let mut per_tag: Vec<RegionStats> = self
            .per_tag
            .into_iter()
            .map(|(name, (mut stats, lines))| {
                // A tag seen during ingestion is normally still registered at
                // the end; fall back to the sampled span if it is not.
                let total_lines = match tags.iter().find(|t| t.name == name) {
                    Some(tag) => (tag.len() >> 6).max(1),
                    None => ((stats.max_addr.saturating_sub(stats.min_addr)) >> 6) + 1,
                };
                stats.coverage = (lines.len() as f64 / total_lines as f64).min(1.0);
                stats
            })
            .collect();
        per_tag.sort_by(|a, b| b.samples.cmp(&a.samples).then(a.name.cmp(&b.name)));

        let mut per_phase: Vec<(String, u64)> = self.per_phase.into_iter().collect();
        per_phase.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

        RegionProfile { scatter: self.scatter, per_tag, untagged_samples: self.untagged, per_phase }
    }
}

/// Attribute SPE samples to tags and phases (the post-hoc, whole-run scan:
/// one [`RegionAccumulator`] pass over everything).
pub fn attribute(samples: &[AddressSample], tags: &[AddrTag], phases: &[Phase]) -> RegionProfile {
    let mut accum = RegionAccumulator::new();
    accum.ingest(samples, tags, phases);
    accum.finalize(tags)
}

impl RegionProfile {
    /// Extract a high-resolution window of the scatter data (Figure 6, right):
    /// all samples with `t0_s <= time < t1_s`, optionally restricted to one tag.
    pub fn window(&self, t0_s: f64, t1_s: f64, tag: Option<&str>) -> Vec<AttributedSample> {
        self.scatter
            .iter()
            .filter(|s| s.time_s >= t0_s && s.time_s < t1_s)
            .filter(|s| match tag {
                Some(name) => s.tag.as_deref() == Some(name),
                None => true,
            })
            .cloned()
            .collect()
    }

    /// The most-accessed tag, if any samples were attributed.
    pub fn hottest_tag(&self) -> Option<&RegionStats> {
        self.per_tag.first()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(time_ns: u64, vaddr: u64, is_store: bool) -> AddressSample {
        AddressSample {
            time_ns,
            vaddr,
            core: 0,
            is_store,
            latency: 4,
            source: arch_sim::DataSource::L1,
        }
    }

    fn tags() -> Vec<AddrTag> {
        vec![
            AddrTag { name: "a".into(), start: 0x1000, end: 0x2000 },
            AddrTag { name: "b".into(), start: 0x2000, end: 0x3000 },
        ]
    }

    fn phases() -> Vec<Phase> {
        vec![Phase { name: "triad".into(), start_ns: 100, end_ns: 1000 }]
    }

    /// Splitting a sample stream across accumulators and merging them in
    /// order must equal one serial ingestion — the shard-merge guarantee of
    /// the sharded streaming pipeline.
    #[test]
    fn sharded_accumulators_merge_to_the_serial_result() {
        let samples: Vec<AddressSample> = (0..200u64)
            .map(|i| sample(100 + i * 7, 0x1000 + (i % 80) * 0x40, i % 3 == 0))
            .collect();
        let mut serial = RegionAccumulator::new();
        serial.ingest(&samples, &tags(), &phases());

        let mut shards: Vec<RegionAccumulator> = (0..4).map(|_| RegionAccumulator::new()).collect();
        for (i, chunk) in samples.chunks(13).enumerate() {
            shards[i % 4].ingest(chunk, &tags(), &phases());
        }
        let mut merged = shards.remove(0);
        for shard in shards {
            merged.merge(shard);
        }

        let (s, m) = (serial.finalize(&tags()), merged.finalize(&tags()));
        assert_eq!(s.per_tag, m.per_tag);
        assert_eq!(s.per_phase, m.per_phase);
        assert_eq!(s.untagged_samples, m.untagged_samples);
        assert_eq!(s.scatter.len(), m.scatter.len());
    }

    #[test]
    fn attribution_to_tags_and_phases() {
        let samples = vec![
            sample(150, 0x1100, false),
            sample(200, 0x1200, true),
            sample(250, 0x2100, false),
            sample(2000, 0x1300, false), // outside the phase
            sample(300, 0x9999, false),  // outside every tag
        ];
        let p = attribute(&samples, &tags(), &phases());
        assert_eq!(p.scatter.len(), 5);
        assert_eq!(p.untagged_samples, 1);
        assert_eq!(p.per_tag.len(), 2);
        let a = p.per_tag.iter().find(|t| t.name == "a").unwrap();
        assert_eq!(a.samples, 3);
        assert_eq!(a.loads, 2);
        assert_eq!(a.stores, 1);
        assert_eq!(a.min_addr, 0x1100);
        assert_eq!(a.max_addr, 0x1300);
        assert!(a.coverage > 0.0 && a.coverage <= 1.0);
        assert_eq!(p.hottest_tag().unwrap().name, "a");
        let triad = p.per_phase.iter().find(|(n, _)| n == "triad").unwrap();
        assert_eq!(triad.1, 4, "samples at 150, 200, 250 and 300 fall in the phase");
        // Sample at t=2000 has no phase.
        assert!(p.scatter[3].phase.is_none());
    }

    #[test]
    fn incremental_ingestion_matches_whole_run_scan() {
        let samples: Vec<AddressSample> =
            (0..200u64).map(|i| sample(i * 10 + 100, 0x1000 + (i % 0x2000), i % 3 == 0)).collect();
        let post_hoc = attribute(&samples, &tags(), &phases());
        let mut accum = RegionAccumulator::new();
        for chunk in samples.chunks(17) {
            accum.ingest(chunk, &tags(), &phases());
        }
        assert_eq!(accum.len(), samples.len());
        let streamed = accum.finalize(&tags());
        assert_eq!(streamed.per_tag, post_hoc.per_tag);
        assert_eq!(streamed.per_phase, post_hoc.per_phase);
        assert_eq!(streamed.untagged_samples, post_hoc.untagged_samples);
        assert_eq!(streamed.scatter, post_hoc.scatter);
    }

    #[test]
    fn finalize_survives_a_vanished_tag() {
        let tag = vec![AddrTag { name: "tmp".into(), start: 0x1000, end: 0x1100 }];
        let mut accum = RegionAccumulator::new();
        accum.ingest(&[sample(1, 0x1000, false), sample(2, 0x1040, false)], &tag, &[]);
        let profile = accum.finalize(&[]); // tag no longer registered
        assert_eq!(profile.per_tag.len(), 1);
        assert!(profile.per_tag[0].coverage > 0.0);
    }

    #[test]
    fn empty_inputs() {
        let p = attribute(&[], &[], &[]);
        assert!(p.scatter.is_empty());
        assert!(p.per_tag.is_empty());
        assert_eq!(p.untagged_samples, 0);
        assert!(p.hottest_tag().is_none());
    }

    #[test]
    fn high_resolution_window() {
        let samples: Vec<AddressSample> =
            (0..100u64).map(|i| sample(i * 10_000_000, 0x1000 + i, false)).collect();
        let p = attribute(&samples, &tags(), &[]);
        let w = p.window(0.2, 0.4, None);
        assert!(!w.is_empty());
        assert!(w.iter().all(|s| s.time_s >= 0.2 && s.time_s < 0.4));
        let w_a = p.window(0.0, 1.0, Some("a"));
        assert!(w_a.iter().all(|s| s.tag.as_deref() == Some("a")));
        let w_none = p.window(5.0, 6.0, None);
        assert!(w_none.is_empty());
    }

    #[test]
    fn coverage_full_when_every_line_sampled() {
        let tag = vec![AddrTag { name: "small".into(), start: 0, end: 256 }];
        // Sample every 64-byte line of the 256-byte tag.
        let samples: Vec<AddressSample> = (0..4u64).map(|i| sample(i, i * 64, false)).collect();
        let p = attribute(&samples, &tag, &[]);
        assert!((p.per_tag[0].coverage - 1.0).abs() < 1e-12);
    }
}
