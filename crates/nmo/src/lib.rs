//! # nmo — multi-level memory-centric profiling with ARM SPE
//!
//! This crate is the Rust implementation of **NMO**, the profiling tool
//! presented in *"Multi-level Memory-Centric Profiling on ARM Processors with
//! ARM SPE"* (SC 2024). NMO provides three levels of memory-centric
//! profiling:
//!
//! 1. **Temporal capacity usage** ([`capacity`]) — resident set size over
//!    time, for right-sizing memory allocations (Figure 2 of the paper).
//! 2. **Temporal bandwidth usage** ([`bandwidth`]) — bus traffic over time and
//!    arithmetic intensity, for spotting bandwidth-bound phases (Figure 3).
//! 3. **Memory-region-based profiling** ([`regions`]) — precise
//!    virtual-address samples collected with the ARM Statistical Profiling
//!    Extension and attributed to user-tagged objects and execution phases
//!    (Figures 4–6).
//!
//! Configuration follows Table I of the paper ([`config::NmoConfig`], the
//! `NMO_*` environment variables); source annotations follow the C API of
//! Section III-B ([`annotate`]); the runtime ([`runtime::Profiler`]) opens one
//! SPE perf event per core, monitors the ring/aux buffers, and decodes the
//! 64-byte SPE records exactly as described in Section IV; the accuracy and
//! overhead metrics of the sensitivity study (Section VII) live in
//! [`analysis`].
//!
//! Because real SPE hardware is unavailable in this environment, the profiler
//! runs against the simulated machine of the `arch-sim` crate and the SPE
//! model of the `spe` crate — see `DESIGN.md` at the repository root for the
//! substitution argument.
//!
//! ## Example
//!
//! ```
//! use arch_sim::{Machine, MachineConfig};
//! use nmo::{NmoConfig, Profiler};
//!
//! let machine = Machine::new(MachineConfig::small_test());
//! let mut profiler = Profiler::new(&machine, NmoConfig::paper_default(100));
//! let data = machine.alloc("data", 1 << 20).unwrap();
//! profiler.tag_addr("data", data.start, data.end());
//! profiler.enable(&[0]).unwrap();
//! {
//!     let mut engine = machine.attach(0).unwrap();
//!     profiler.start_phase("kernel", engine.now_ns());
//!     for i in 0..10_000u64 {
//!         engine.load(data.start + (i % 1000) * 8, 8);
//!     }
//!     profiler.stop_phase(engine.now_ns());
//! }
//! let profile = profiler.finish();
//! assert!(profile.processed_samples > 0);
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod annotate;
pub mod bandwidth;
pub mod capacity;
pub mod config;
pub mod regions;
pub mod report;
pub mod runtime;

pub use analysis::{accuracy, time_overhead, RunMeasurement, Sweep, SweepPoint};
pub use annotate::{AddrTag, Annotations, Phase};
pub use bandwidth::BandwidthSeries;
pub use capacity::CapacitySeries;
pub use config::{Mode, NmoConfig, NmoConfigBuilder};
pub use regions::{attribute, RegionProfile, RegionStats};
pub use runtime::{AddressSample, Profile, Profiler};

/// Errors produced by the NMO runtime.
#[derive(Debug)]
pub enum NmoError {
    /// The underlying perf substrate rejected a configuration.
    Perf(perf_sub::PerfError),
    /// The machine substrate reported an error (e.g. core already in use).
    Sim(arch_sim::SimError),
    /// An I/O error while writing reports.
    Io(std::io::Error),
}

impl std::fmt::Display for NmoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NmoError::Perf(e) => write!(f, "perf error: {e}"),
            NmoError::Sim(e) => write!(f, "machine error: {e}"),
            NmoError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for NmoError {}

impl From<perf_sub::PerfError> for NmoError {
    fn from(e: perf_sub::PerfError) -> Self {
        NmoError::Perf(e)
    }
}

impl From<arch_sim::SimError> for NmoError {
    fn from(e: arch_sim::SimError) -> Self {
        NmoError::Sim(e)
    }
}

impl From<std::io::Error> for NmoError {
    fn from(e: std::io::Error) -> Self {
        NmoError::Io(e)
    }
}
