//! # nmo — multi-level memory-centric profiling with ARM SPE
//!
//! This crate is the Rust implementation of **NMO**, the profiling tool
//! presented in *"Multi-level Memory-Centric Profiling on ARM Processors with
//! ARM SPE"* (SC 2024). NMO provides three levels of memory-centric
//! profiling:
//!
//! 1. **Temporal capacity usage** ([`capacity`]) — resident set size over
//!    time, for right-sizing memory allocations (Figure 2 of the paper).
//! 2. **Temporal bandwidth usage** ([`bandwidth`]) — bus traffic over time and
//!    arithmetic intensity, for spotting bandwidth-bound phases (Figure 3).
//! 3. **Memory-region-based profiling** ([`regions`]) — precise
//!    virtual-address samples collected with the ARM Statistical Profiling
//!    Extension and attributed to user-tagged objects and execution phases
//!    (Figures 4–6).
//!
//! On tiered-memory machines (local DDR plus CXL-style remote nodes) a
//! fourth view rides on the same samples: [`latency`] builds per-data-source
//! latency distributions (log2 histograms with p50/p90/p99) via
//! [`sink::LatencySink`], separating local-DRAM from remote-DRAM fills —
//! the paper's DDR-vs-CXL comparison.
//!
//! The public API is organised around three seams:
//!
//! * [`session::ProfileSession`] — the entry point. A builder configures the
//!   machine, cores, workload, backends, and sinks; every fallible step
//!   returns [`Result`]`<_, `[`NmoError`]`>`.
//! * [`backend::SampleBackend`] — pluggable data sources. [`backend::SpeBackend`]
//!   samples precise addresses with the ARM SPE model; [`backend::CounterBackend`]
//!   aggregates `perf stat`-style hardware counters. A session can run both
//!   at once on the same cores.
//! * [`sink::AnalysisSink`] — pluggable analyses over the collected data.
//!   The paper's levels ship as [`sink::CapacitySink`],
//!   [`sink::BandwidthSink`], [`sink::RegionSink`], and
//!   [`sink::LatencySink`] — all incremental aggregators.
//! * [`stream`] — the online data plane: backends emit window-stamped
//!   [`stream::SampleBatch`]es onto a bounded [`stream::EventBus`] while
//!   the workload runs ([`session::ProfileSession::run_streaming`]), sinks
//!   consume them through streaming hooks, and
//!   [`session::ActiveSession::poll_snapshot`] exposes a live readout —
//!   the mode long-running services are profiled in.
//! * [`tiering`] — the profile-guided feedback loop: a
//!   [`tiering::HotPageTracker`] aggregates decayed per-page heat from the
//!   sample stream and a pluggable [`tiering::TieringPolicy`] migrates hot
//!   pages between memory tiers mid-run through
//!   [`arch_sim::Machine::migrate_page`] — the first place the profiler's
//!   output changes simulated machine behaviour.
//!
//! Configuration follows Table I of the paper ([`config::NmoConfig`], the
//! `NMO_*` environment variables); source annotations follow the C API of
//! Section III-B ([`annotate`]); the SPE backend opens one perf event per
//! core, monitors the ring/aux buffers, and decodes the 64-byte SPE records
//! exactly as described in Section IV; the accuracy and overhead metrics of
//! the sensitivity study (Section VII) live in [`analysis`].
//!
//! Because real SPE hardware is unavailable in this environment, the profiler
//! runs against the simulated machine of the `arch-sim` crate and the SPE
//! model of the `spe` crate — see `README.md` at the repository root.
//!
//! ## Example
//!
//! ```
//! use arch_sim::MachineConfig;
//! use nmo::{NmoConfig, ProfileSession};
//!
//! # fn main() -> Result<(), nmo::NmoError> {
//! let session = ProfileSession::builder()
//!     .machine_config(MachineConfig::small_test())
//!     .config(NmoConfig::paper_default(100))
//!     .threads(1)
//!     .build()?;
//!
//! let profile = session.run_with(|machine, annotations, cores| {
//!     let data = machine.alloc("data", 1 << 20)?;
//!     annotations.tag_addr("data", data.start, data.end());
//!     let mut engine = machine.attach(cores[0])?;
//!     annotations.start("kernel", engine.now_ns());
//!     for i in 0..10_000u64 {
//!         engine.load(data.start + (i % 1000) * 8, 8);
//!     }
//!     annotations.stop(engine.now_ns());
//!     Ok(())
//! })?;
//!
//! assert!(profile.processed_samples > 0);
//! assert!(profile.regions().per_tag.iter().any(|t| t.name == "data"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod annotate;
pub mod backend;
pub mod bandwidth;
pub mod capacity;
pub mod config;
pub mod latency;
pub mod regions;
pub mod report;
pub mod runtime;
pub mod session;
pub mod sink;
pub mod stream;
pub mod tiering;
pub mod trace;
pub mod workload;

pub use analysis::{accuracy, time_overhead, RunMeasurement, Sweep, SweepPoint};
pub use annotate::{AddrTag, Annotations, Phase};
pub use backend::{CoreObserver, CounterBackend, SampleBackend, ShardDrainer, SpeBackend};
pub use bandwidth::BandwidthSeries;
pub use capacity::CapacitySeries;
pub use config::{Mode, NmoConfig, NmoConfigBuilder};
pub use latency::{LatencyHistogram, LatencyProfile};
pub use regions::{attribute, RegionAccumulator, RegionProfile, RegionStats};
pub use runtime::{AddressSample, Profile, Profiler};
pub use session::{ActiveSession, ProfileSession, ProfileSessionBuilder};
pub use sink::{
    AnalysisRecord, AnalysisReport, AnalysisSink, BandwidthSink, CapacitySink, LatencySink,
    RegionSink, ShardState, ShardableSink, SinkShard, StreamContext,
};
pub use stream::adaptive::{
    AdaptiveController, AdaptiveDecision, AdaptiveOptions, AdaptiveRuntime, ControlAction,
    ControlSample, SlidingWindow,
};
pub use stream::{
    BackpressurePolicy, BatchPayload, BatchPool, BusStats, CounterDelta, EventBus, PoolStats,
    SampleBatch, ShardSummary, ShardedBus, StreamOptions, StreamSnapshot, StreamStats, Window,
    WindowClock, WindowSummary,
};
pub use tiering::{
    AppliedMigration, HotPageTracker, LatencyThreshold, MigrationDecision, NoMigration, PageStats,
    TieringPolicy, TieringReport, TieringView, TopKHot,
};
pub use trace::{ReplayStats, TraceQuery, TraceReader, TraceSummary, TraceWriterSink};
pub use workload::{Workload, WorkloadReport};

/// Errors produced by the NMO runtime.
///
/// Marked `#[non_exhaustive]`: new backends and sinks may introduce new
/// failure classes, so downstream matches must carry a wildcard arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum NmoError {
    /// The underlying perf substrate rejected a configuration.
    Perf(perf_sub::PerfError),
    /// The machine substrate reported an error (e.g. core already in use).
    Sim(arch_sim::SimError),
    /// An I/O error while writing reports.
    Io(std::io::Error),
    /// A [`backend::SampleBackend`] failed to start, stop, or report.
    Backend {
        /// Name of the failing backend.
        backend: String,
        /// What went wrong.
        message: String,
    },
    /// An [`sink::AnalysisSink`] failed to produce its analysis.
    Sink {
        /// Name of the failing sink.
        sink: String,
        /// What went wrong.
        message: String,
    },
    /// A workload failed during setup, execution, or verification.
    Workload(String),
    /// The session was configured inconsistently (no cores, unknown core
    /// ids, missing workload, ...).
    Config(String),
    /// The binary trace store rejected a segment or a replay failed:
    /// truncated or corrupt blocks, checksum mismatches, unsupported
    /// versions, or a query that cannot be served from the stored index.
    Trace(String),
}

impl NmoError {
    /// Construct a [`NmoError::Backend`] from a backend name and message.
    pub fn backend(backend: impl Into<String>, message: impl Into<String>) -> Self {
        NmoError::Backend { backend: backend.into(), message: message.into() }
    }

    /// Construct a [`NmoError::Sink`] from a sink name and message.
    pub fn sink(sink: impl Into<String>, message: impl Into<String>) -> Self {
        NmoError::Sink { sink: sink.into(), message: message.into() }
    }

    /// Construct a [`NmoError::Trace`] from a message.
    pub fn trace(message: impl Into<String>) -> Self {
        NmoError::Trace(message.into())
    }
}

impl std::fmt::Display for NmoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NmoError::Perf(e) => write!(f, "perf error: {e}"),
            NmoError::Sim(e) => write!(f, "machine error: {e}"),
            NmoError::Io(e) => write!(f, "i/o error: {e}"),
            NmoError::Backend { backend, message } => {
                write!(f, "backend '{backend}' failed: {message}")
            }
            NmoError::Sink { sink, message } => write!(f, "sink '{sink}' failed: {message}"),
            NmoError::Workload(msg) => write!(f, "workload error: {msg}"),
            NmoError::Config(msg) => write!(f, "session configuration error: {msg}"),
            NmoError::Trace(msg) => write!(f, "trace error: {msg}"),
        }
    }
}

impl std::error::Error for NmoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NmoError::Perf(e) => Some(e),
            NmoError::Sim(e) => Some(e),
            NmoError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<perf_sub::PerfError> for NmoError {
    fn from(e: perf_sub::PerfError) -> Self {
        NmoError::Perf(e)
    }
}

impl From<arch_sim::SimError> for NmoError {
    fn from(e: arch_sim::SimError) -> Self {
        NmoError::Sim(e)
    }
}

impl From<std::io::Error> for NmoError {
    fn from(e: std::io::Error) -> Self {
        NmoError::Io(e)
    }
}
