//! Report generation: CSV series and text tables.
//!
//! The original NMO writes its raw data to files that Python scripts
//! post-process into the paper's figures. This module provides the same
//! output surface in Rust: every temporal series and attribution table of a
//! [`Profile`] can be written as CSV (one file per figure-style series), and
//! small helpers format aligned text tables for terminal output.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::runtime::Profile;

/// Quote a CSV cell per RFC 4180 when it contains a comma, a double quote,
/// or a line break; other cells pass through unchanged.
fn csv_cell(cell: &str) -> std::borrow::Cow<'_, str> {
    if cell.contains([',', '"', '\n', '\r']) {
        std::borrow::Cow::Owned(format!("\"{}\"", cell.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(cell)
    }
}

fn csv_row(out: &mut String, cells: impl Iterator<Item = impl AsRef<str>>) {
    let mut first = true;
    for cell in cells {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&csv_cell(cell.as_ref()));
    }
    out.push('\n');
}

/// Write a generic CSV file: a header row plus data rows. Cells containing
/// commas, quotes, or newlines (e.g. user-supplied region names) are quoted
/// per RFC 4180 so they cannot corrupt the row structure.
pub fn write_csv<P: AsRef<Path>>(path: P, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    let mut out = String::new();
    csv_row(&mut out, header.iter());
    for row in rows {
        csv_row(&mut out, row.iter());
    }
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Write a CSV whose cells are machine-formatted (numbers, hex addresses,
/// enum debug labels) and therefore can never need RFC 4180 quoting: the
/// column layout is derived once per report and `emit` appends every row
/// directly into one preallocated buffer — no `Vec<String>` per row, no
/// `String` per cell. On million-row sample/latency CSVs this is the
/// difference between 2N+ transient allocations and one.
fn write_csv_streamed<P: AsRef<Path>>(
    path: P,
    header: &[&str],
    rows: usize,
    bytes_per_row: usize,
    emit: impl FnOnce(&mut String),
) -> io::Result<()> {
    let header_bytes: usize = header.iter().map(|h| h.len() + 1).sum();
    let mut out = String::with_capacity(header_bytes + rows * bytes_per_row);
    csv_row(&mut out, header.iter());
    emit(&mut out);
    if let Some(parent) = path.as_ref().parent() {
        fs::create_dir_all(parent)?;
    }
    fs::write(path, out)
}

/// Render rows as an aligned text table.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, cell) in cells.iter().enumerate() {
            let w = widths.get(i).copied().unwrap_or(cell.len());
            let _ = write!(out, "{cell:<w$}  ");
        }
        out.push('\n');
    };
    fmt_row(&header.iter().map(|s| s.to_string()).collect::<Vec<_>>(), &widths, &mut out);
    fmt_row(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>(), &widths, &mut out);
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

impl Profile {
    /// Write every series of this profile as CSV files under `dir`, prefixed
    /// with the profile's base name (`NMO_NAME`). Returns the list of files
    /// written.
    pub fn write_csv_reports<P: AsRef<Path>>(&self, dir: P) -> io::Result<Vec<String>> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let mut written = Vec::new();
        let base = &self.name;

        // Address samples (the scatter data of Figures 4-6). The source
        // column carries the serving memory node for DRAM-class fills, e.g.
        // `Dram(0)` / `RemoteDram(1)`. The source label is cached per
        // distinct `DataSource` (a handful per topology), not re-formatted
        // per row.
        let path = dir.join(format!("{base}_samples.csv"));
        let mut source_labels: Vec<(arch_sim::DataSource, String)> = Vec::new();
        write_csv_streamed(
            &path,
            &["time_ns", "vaddr", "core", "is_store", "latency", "source"],
            self.samples.len(),
            44,
            |out| {
                for s in &self.samples {
                    let label = match source_labels.iter().find(|(src, _)| *src == s.source) {
                        Some((_, label)) => label,
                        None => {
                            source_labels.push((s.source, format!("{:?}", s.source)));
                            &source_labels[source_labels.len() - 1].1
                        }
                    };
                    let _ = writeln!(
                        out,
                        "{},{:#x},{},{},{},{label}",
                        s.time_ns, s.vaddr, s.core, s.is_store as u8, s.latency,
                    );
                }
            },
        )?;
        written.push(path.display().to_string());

        // Capacity over time (Figure 2), one extra column per memory node
        // on tiered topologies. The per-tier column layout is hoisted once
        // per report; the row loop only formats numbers into the buffer.
        let path = dir.join(format!("{base}_capacity.csv"));
        let nodes = self.capacity.nodes;
        let mut header = vec!["time_s".to_string(), "rss_gib".to_string()];
        header.extend((0..nodes).map(|n| format!("node{n}_gib")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        write_csv_streamed(
            &path,
            &header_refs,
            self.capacity.points.len(),
            18 * (2 + nodes),
            |out| {
                for p in &self.capacity.points {
                    let _ = write!(out, "{:.6},{:.6}", p.time_s, p.rss_gib);
                    for gib in &p.rss_by_node_gib[..nodes] {
                        let _ = write!(out, ",{gib:.6}");
                    }
                    out.push('\n');
                }
            },
        )?;
        written.push(path.display().to_string());

        // Bandwidth over time (Figure 3), one extra column per memory node
        // on tiered topologies; same hoisted layout as capacity.
        let path = dir.join(format!("{base}_bandwidth.csv"));
        let nodes = self.bandwidth.nodes;
        let mut header = vec!["time_s".to_string(), "gib_per_s".to_string()];
        header.extend((0..nodes).map(|n| format!("node{n}_gib_per_s")));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        write_csv_streamed(
            &path,
            &header_refs,
            self.bandwidth.points.len(),
            14 * (2 + nodes),
            |out| {
                for p in &self.bandwidth.points {
                    let _ = write!(out, "{:.6},{:.3}", p.time_s, p.gib_per_s);
                    for gib in &p.gib_per_s_by_node[..nodes] {
                        let _ = write!(out, ",{gib:.3}");
                    }
                    out.push('\n');
                }
            },
        )?;
        written.push(path.display().to_string());

        // Per-data-source latency distributions (the tiered-memory latency
        // figure): log2-histogram summary statistics per source.
        let latency = self.latency();
        if !latency.is_empty() {
            let path = dir.join(format!("{base}_latency.csv"));
            write_csv_streamed(
                &path,
                &["source", "samples", "mean", "p50", "p90", "p99", "min", "max"],
                latency.per_source.len(),
                64,
                |out| {
                    for (source, hist) in &latency.per_source {
                        let _ = writeln!(
                            out,
                            "{source:?},{},{:.1},{:.1},{:.1},{:.1},{},{}",
                            hist.count(),
                            hist.mean(),
                            hist.p50(),
                            hist.p90(),
                            hist.p99(),
                            hist.min(),
                            hist.max(),
                        );
                    }
                },
            )?;
            written.push(path.display().to_string());
        }

        // Region attribution (Figures 4-6 legends).
        let regions = self.regions();
        let path = dir.join(format!("{base}_regions.csv"));
        let rows: Vec<Vec<String>> = regions
            .per_tag
            .iter()
            .map(|t| {
                vec![
                    t.name.clone(),
                    t.samples.to_string(),
                    t.loads.to_string(),
                    t.stores.to_string(),
                    format!("{:#x}", t.min_addr),
                    format!("{:#x}", t.max_addr),
                    format!("{:.4}", t.coverage),
                ]
            })
            .collect();
        write_csv(
            &path,
            &["tag", "samples", "loads", "stores", "min_addr", "max_addr", "coverage"],
            &rows,
        )?;
        written.push(path.display().to_string());

        // Phases.
        let path = dir.join(format!("{base}_phases.csv"));
        let rows: Vec<Vec<String>> = self
            .phases
            .iter()
            .map(|p| vec![p.name.clone(), p.start_ns.to_string(), p.end_ns.to_string()])
            .collect();
        write_csv(&path, &["phase", "start_ns", "end_ns"], &rows)?;
        written.push(path.display().to_string());

        // Profile-guided tiering: the applied migration log plus the
        // before/after per-tier latency comparison (only when a
        // HotPageTracker ran on the session).
        if let Some(tiering) = self.tiering() {
            let path = dir.join(format!("{base}_migrations.csv"));
            write_csv_streamed(
                &path,
                &["time_ns", "window", "page_addr", "from_node", "to_node", "bytes", "direction"],
                tiering.applied.len(),
                56,
                |out| {
                    for m in &tiering.applied {
                        let direction = if m.is_promotion() {
                            "promotion"
                        } else if m.is_demotion() {
                            "demotion"
                        } else {
                            "lateral"
                        };
                        let _ = writeln!(
                            out,
                            "{},{},{:#x},{},{},{},{direction}",
                            m.time_ns, m.window, m.page_addr, m.from, m.to, m.bytes,
                        );
                    }
                },
            )?;
            written.push(path.display().to_string());

            let path = dir.join(format!("{base}_tiering.csv"));
            let mut rows: Vec<Vec<String>> = vec![
                vec!["policy".into(), tiering.policy.clone()],
                vec!["pages_tracked".into(), tiering.pages_tracked.to_string()],
                vec!["migrations".into(), tiering.migrations().to_string()],
                vec!["promoted_bytes".into(), tiering.promoted_bytes().to_string()],
                vec!["demoted_bytes".into(), tiering.demoted_bytes().to_string()],
                vec!["migration_bus_bytes".into(), self.migrations.bus_bytes.to_string()],
                vec!["migration_cycles".into(), self.migrations.charged_cycles.to_string()],
            ];
            for (phase, profile) in [
                ("before", &tiering.before),
                ("after", &tiering.after),
                ("settled", &tiering.settled),
            ] {
                for (tier, hist) in
                    [("local", profile.local_dram()), ("remote", profile.remote_dram())]
                {
                    rows.push(vec![
                        format!("{tier}_dram_samples_{phase}"),
                        hist.count().to_string(),
                    ]);
                    rows.push(vec![
                        format!("{tier}_dram_p50_{phase}"),
                        format!("{:.1}", hist.p50()),
                    ]);
                    rows.push(vec![
                        format!("{tier}_dram_p99_{phase}"),
                        format!("{:.1}", hist.p99()),
                    ]);
                }
            }
            write_csv(&path, &["metric", "value"], &rows)?;
            written.push(path.display().to_string());
        }

        // Hardware counters from the counting backend (perf stat analogue).
        if !self.perf_counts.is_empty() {
            let path = dir.join(format!("{base}_counters.csv"));
            let rows: Vec<Vec<String>> = self
                .perf_counts
                .iter()
                .map(|(event, count)| vec![event.clone(), count.to_string()])
                .collect();
            write_csv(&path, &["event", "count"], &rows)?;
            written.push(path.display().to_string());
        }

        Ok(written)
    }

    /// A one-paragraph text summary of the run, including the SPE data-loss
    /// fraction (paper §SPE limitations), per-tier traffic and latency on
    /// tiered-memory machines, and, for streaming runs, the pipeline
    /// statistics.
    pub fn summary(&self) -> String {
        let mut out = format!(
            "profile '{}' [{}]: {} samples processed ({} skipped), {} aux records, \
             elapsed {:.3} ms simulated, peak RSS {:.3} GiB, peak BW {:.1} GiB/s, \
             collisions {}, truncated {}, SPE loss {:.1}%",
            self.name,
            if self.backends.is_empty() {
                "no backends".to_string()
            } else {
                self.backends.join("+")
            },
            self.processed_samples,
            self.skipped_packets,
            self.aux_records,
            self.elapsed_ns as f64 * 1e-6,
            self.capacity.peak_gib(),
            self.bandwidth.peak_gib_per_s,
            self.spe.collisions,
            self.spe.truncated_records,
            self.loss_fraction() * 100.0,
        );
        // Per-tier view on multi-node topologies: traffic split per memory
        // node, plus tier medians when a LatencySink report is cached on the
        // profile (no on-demand sample scan here — summary stays cheap).
        if self.bandwidth.nodes > 1 {
            let shares: Vec<String> = (0..self.bandwidth.nodes)
                .map(|node| {
                    format!("node{node} {:.1}%", self.bandwidth.node_traffic_share(node) * 100.0)
                })
                .collect();
            let _ = write!(out, ", mem traffic {}", shares.join(" / "));
        }
        if let Some(latency) = self.analyses.iter().find_map(|a| match &a.report {
            crate::sink::AnalysisReport::Latency(l) => Some(l),
            _ => None,
        }) {
            let (local, remote) = (latency.local_dram(), latency.remote_dram());
            if local.count() > 0 {
                let _ = write!(out, ", DRAM p50 local {:.0}c", local.p50());
                if remote.count() > 0 {
                    let _ = write!(out, " / remote {:.0}c", remote.p50());
                }
            }
        }
        // Page migrations: the profile-guided tiering readout — counts and
        // moved bytes from the machine's counters, plus the before/after
        // remote-tier latency shift when a HotPageTracker report is cached.
        if self.migrations.migrations > 0 {
            let _ = write!(
                out,
                ", {} page migrations ({} promoted / {} demoted, {:.1} MiB moved)",
                self.migrations.migrations,
                self.migrations.promoted_pages,
                self.migrations.demoted_pages,
                self.migrations.bus_bytes as f64 / (1u64 << 21) as f64,
            );
            if let Some(tiering) = self.tiering() {
                let before = tiering.before.remote_dram();
                // Prefer the settled distribution (after the last
                // migration); fall back to everything-after-the-first when
                // the settled period saw no remote fills.
                let settled = tiering.settled.remote_dram();
                let after = if settled.count() > 0 { settled } else { tiering.after.remote_dram() };
                if before.count() > 0 && after.count() > 0 {
                    let _ = write!(
                        out,
                        ", remote DRAM p50/p99 {:.0}/{:.0}c before -> {:.0}/{:.0}c after",
                        before.p50(),
                        before.p99(),
                        after.p50(),
                        after.p99(),
                    );
                }
            }
        }
        if let Some(stream) = &self.stream {
            let _ = write!(
                out,
                ", streamed {} batches over {} windows ({} dropped, {} late)",
                stream.batches_published,
                stream.windows_closed,
                stream.batches_dropped,
                stream.late_batches,
            );
            if stream.batches_dropped > 0 {
                // Bus drops are the pipeline's own loss channel (decoded
                // data that never reached the sinks) — spell the item count
                // and fraction out instead of leaving them invisible.
                let _ = write!(
                    out,
                    ", bus loss {} items ({:.1}% of batches)",
                    stream.items_dropped,
                    stream.bus_drop_fraction() * 100.0,
                );
            }
            if stream.shards > 1 {
                let _ = write!(out, ", {} shards", stream.shards);
            }
            if stream.shards_requested > stream.shards {
                // An over-provisioned request was clamped to the profiled
                // core count — surface the resolution instead of silently
                // running narrower than asked.
                let _ = write!(out, " ({} requested)", stream.shards_requested);
            }
            if stream.adaptive_decisions > 0 {
                let _ = write!(
                    out,
                    ", adaptive: {} decisions, {} shards active at finish",
                    stream.adaptive_decisions, stream.active_shards,
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_writer_produces_well_formed_files() {
        let dir = std::env::temp_dir().join(format!("nmo_report_test_{}", std::process::id()));
        let path = dir.join("x.csv");
        write_csv(
            &path,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn csv_cells_with_delimiters_are_quoted() {
        let dir = std::env::temp_dir().join(format!("nmo_csvq_test_{}", std::process::id()));
        let path = dir.join("q.csv");
        write_csv(
            &path,
            &["tag", "n"],
            &[
                vec!["plain".into(), "1".into()],
                vec!["a,b".into(), "2".into()],
                vec!["say \"hi\"".into(), "3".into()],
                vec!["line\nbreak".into(), "4".into()],
            ],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, "tag,n\nplain,1\n\"a,b\",2\n\"say \"\"hi\"\"\",3\n\"line\nbreak\",4\n");
        // Every data row still parses to exactly two cells under RFC 4180.
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn summary_reports_loss_fraction() {
        let mut profile = crate::runtime::Profile::empty("t", crate::config::NmoConfig::default());
        profile.spe.samples_selected = 100;
        profile.spe.records_written = 80;
        assert!(profile.summary().contains("SPE loss 20.0%"), "{}", profile.summary());
        profile.stream = Some(crate::stream::StreamStats {
            windows_closed: 7,
            batches_published: 42,
            ..Default::default()
        });
        assert!(profile.summary().contains("42 batches over 7 windows"), "{}", profile.summary());
        assert!(!profile.summary().contains("bus loss"), "no drops, no loss note");
        // Bus drops surface with their item count and fraction, and the
        // shard count is reported for sharded runs.
        profile.stream = Some(crate::stream::StreamStats {
            windows_closed: 7,
            batches_published: 30,
            batches_dropped: 10,
            items_dropped: 1234,
            shards: 8,
            ..Default::default()
        });
        let summary = profile.summary();
        assert!(summary.contains("bus loss 1234 items (25.0% of batches)"), "{summary}");
        assert!(summary.contains("8 shards"), "{summary}");
        assert!(!summary.contains("requested"), "no clamp note when requested defaults low");
        // A clamped request and an adaptive run each get their own note.
        profile.stream = Some(crate::stream::StreamStats {
            windows_closed: 7,
            batches_published: 30,
            shards: 4,
            shards_requested: 16,
            active_shards: 2,
            adaptive_decisions: 5,
            ..Default::default()
        });
        let summary = profile.summary();
        assert!(summary.contains("4 shards (16 requested)"), "{summary}");
        assert!(summary.contains("adaptive: 5 decisions, 2 shards active at finish"), "{summary}");
    }

    #[test]
    fn table_formatting_aligns_columns() {
        let t = format_table(
            &["name", "value"],
            &[vec!["x".into(), "1".into()], vec!["longer-name".into(), "22".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("x"));
        assert!(lines[3].starts_with("longer-name"));
    }
}
