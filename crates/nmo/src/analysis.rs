//! Accuracy, overhead, and sensitivity analysis (paper Section VII).
//!
//! * **Accuracy** follows Eq. (1):
//!   `accuracy = 1 - |mem_counted - samples * period| / mem_counted`,
//!   where `mem_counted` is the `perf stat` baseline count of the
//!   `mem_access` event, `samples` the number of processed SPE samples and
//!   `period` the sampling period.
//! * **Time overhead** is the relative increase of execution time when
//!   profiling is enabled: `(t_profiled - t_baseline) / t_baseline`.
//! * The sweep structures hold one row per sampling period / aux-buffer size
//!   / thread count, mirroring Figures 7–11.

use spe::SpeStatsSnapshot;

/// Eq. (1): sampling accuracy from the baseline count, the number of
/// processed samples, and the sampling period. Clamped to `[0, 1]`.
pub fn accuracy(mem_counted: u64, samples: u64, period: u64) -> f64 {
    if mem_counted == 0 {
        return 0.0;
    }
    let estimate = samples as f64 * period as f64;
    let err = (mem_counted as f64 - estimate).abs() / mem_counted as f64;
    (1.0 - err).clamp(0.0, 1.0)
}

/// Relative time overhead of profiling: `(profiled - baseline) / baseline`.
/// Negative differences (measurement noise) clamp to 0.
pub fn time_overhead(baseline_cycles: u64, profiled_cycles: u64) -> f64 {
    if baseline_cycles == 0 {
        return 0.0;
    }
    ((profiled_cycles as f64 - baseline_cycles as f64) / baseline_cycles as f64).max(0.0)
}

/// The measurements of one profiled run, as used by the sensitivity figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunMeasurement {
    /// Sampling period used.
    pub period: u64,
    /// Aux-buffer size in pages.
    pub aux_pages: u64,
    /// Number of worker threads.
    pub threads: usize,
    /// Baseline (unprofiled) execution time in cycles.
    pub baseline_cycles: u64,
    /// Profiled execution time in cycles.
    pub profiled_cycles: u64,
    /// Baseline `mem_access` count.
    pub mem_counted: u64,
    /// Number of SPE samples processed by NMO.
    pub processed_samples: u64,
    /// Aggregated SPE statistics across cores.
    pub spe: SpeStatsSnapshot,
}

impl RunMeasurement {
    /// Accuracy per Eq. (1).
    pub fn accuracy(&self) -> f64 {
        accuracy(self.mem_counted, self.processed_samples, self.period)
    }

    /// Relative time overhead.
    pub fn overhead(&self) -> f64 {
        time_overhead(self.baseline_cycles, self.profiled_cycles)
    }

    /// Sample collisions observed (hardware collisions plus aux-buffer drops
    /// flagged `PERF_AUX_FLAG_COLLISION`, which is what NMO counts).
    pub fn collisions(&self) -> u64 {
        self.spe.collisions + self.spe.truncated_records
    }
}

/// Aggregated result of repeated trials at one parameter point.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// The independent variable (period, pages, or threads).
    pub x: u64,
    /// Per-trial sample counts (Figure 7 plots every trial).
    pub samples_per_trial: Vec<u64>,
    /// Mean accuracy over trials.
    pub accuracy_mean: f64,
    /// Standard deviation of accuracy over trials.
    pub accuracy_std: f64,
    /// Mean time overhead over trials.
    pub overhead_mean: f64,
    /// Standard deviation of the time overhead.
    pub overhead_std: f64,
    /// Mean collision count over trials.
    pub collisions_mean: f64,
}

impl SweepPoint {
    /// Aggregate a set of trial measurements taken at the same `x`.
    pub fn from_trials(x: u64, trials: &[RunMeasurement]) -> Self {
        let n = trials.len().max(1) as f64;
        let samples_per_trial = trials.iter().map(|t| t.processed_samples).collect();
        let accs: Vec<f64> = trials.iter().map(|t| t.accuracy()).collect();
        let ovhs: Vec<f64> = trials.iter().map(|t| t.overhead()).collect();
        let colls: Vec<f64> = trials.iter().map(|t| t.collisions() as f64).collect();
        let mean = |v: &[f64]| v.iter().sum::<f64>() / n;
        let std = |v: &[f64], m: f64| (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n).sqrt();
        let am = mean(&accs);
        let om = mean(&ovhs);
        SweepPoint {
            x,
            samples_per_trial,
            accuracy_mean: am,
            accuracy_std: std(&accs, am),
            overhead_mean: om,
            overhead_std: std(&ovhs, om),
            collisions_mean: mean(&colls),
        }
    }

    /// Mean number of processed samples over trials.
    pub fn samples_mean(&self) -> f64 {
        if self.samples_per_trial.is_empty() {
            0.0
        } else {
            self.samples_per_trial.iter().sum::<u64>() as f64 / self.samples_per_trial.len() as f64
        }
    }
}

/// A full sweep (one figure): a labelled series of [`SweepPoint`]s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sweep {
    /// Series label (workload name).
    pub label: String,
    /// Points, in the order they were collected.
    pub points: Vec<SweepPoint>,
}

impl Sweep {
    /// Create an empty sweep with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Sweep { label: label.into(), points: Vec::new() }
    }

    /// Check whether the mean sample counts scale inversely with the
    /// independent variable (the linearity the paper validates in Fig. 7):
    /// returns the worst-case relative deviation of `samples * x` from its
    /// median across points.
    pub fn inverse_linearity_error(&self) -> f64 {
        let mut products: Vec<f64> = self
            .points
            .iter()
            .map(|p| p.samples_mean() * p.x as f64)
            .filter(|v| *v > 0.0)
            .collect();
        if products.len() < 2 {
            return 0.0;
        }
        // total_cmp instead of partial_cmp().unwrap(): a NaN product (e.g.
        // from a degenerate 0 * inf point) must not panic mid-analysis.
        products.sort_by(f64::total_cmp);
        let median = products[products.len() / 2];
        products.iter().map(|p| (p - median).abs() / median).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_formula_matches_eq1() {
        // Perfect estimate.
        assert!((accuracy(1_000_000, 1000, 1000) - 1.0).abs() < 1e-12);
        // 10% undercount.
        assert!((accuracy(1_000_000, 900, 1000) - 0.9).abs() < 1e-12);
        // 10% overcount is also a 10% error.
        assert!((accuracy(1_000_000, 1100, 1000) - 0.9).abs() < 1e-12);
        // Degenerate cases.
        assert_eq!(accuracy(0, 100, 100), 0.0);
        assert_eq!(accuracy(100, 0, 100), 0.0);
        // Gross overestimate clamps at zero rather than going negative.
        assert_eq!(accuracy(100, 1000, 1000), 0.0);
    }

    #[test]
    fn overhead_formula() {
        assert!((time_overhead(100, 103) - 0.03).abs() < 1e-12);
        assert_eq!(time_overhead(100, 95), 0.0, "clamped at zero");
        assert_eq!(time_overhead(0, 100), 0.0);
    }

    fn meas(period: u64, samples: u64, mem: u64, base: u64, prof: u64) -> RunMeasurement {
        RunMeasurement {
            period,
            aux_pages: 16,
            threads: 1,
            baseline_cycles: base,
            profiled_cycles: prof,
            mem_counted: mem,
            processed_samples: samples,
            spe: SpeStatsSnapshot { collisions: 3, truncated_records: 7, ..Default::default() },
        }
    }

    #[test]
    fn run_measurement_derivations() {
        let m = meas(1000, 950, 1_000_000, 1_000_000, 1_020_000);
        assert!((m.accuracy() - 0.95).abs() < 1e-12);
        assert!((m.overhead() - 0.02).abs() < 1e-12);
        assert_eq!(m.collisions(), 10);
    }

    #[test]
    fn sweep_point_aggregation() {
        let trials = vec![
            meas(1000, 900, 1_000_000, 100, 102),
            meas(1000, 1000, 1_000_000, 100, 104),
            meas(1000, 950, 1_000_000, 100, 103),
        ];
        let p = SweepPoint::from_trials(1000, &trials);
        assert_eq!(p.samples_per_trial.len(), 3);
        assert!((p.samples_mean() - 950.0).abs() < 1e-9);
        assert!(p.accuracy_mean > 0.9 && p.accuracy_mean < 1.0);
        assert!(p.accuracy_std > 0.0);
        assert!((p.overhead_mean - 0.03).abs() < 1e-12);
        assert!((p.collisions_mean - 10.0).abs() < 1e-12);
    }

    #[test]
    fn linearity_check_flags_deviations() {
        let mut sweep = Sweep::new("stream");
        // samples * period constant => perfect inverse linearity.
        for (period, samples) in [(1000u64, 1000u64), (2000, 500), (4000, 250)] {
            sweep.points.push(SweepPoint::from_trials(
                period,
                &[meas(period, samples, 1_000_000, 100, 101)],
            ));
        }
        assert!(sweep.inverse_linearity_error() < 1e-9);

        // Introduce a 50% deficit at one point.
        sweep.points.push(SweepPoint::from_trials(8000, &[meas(8000, 62, 1_000_000, 100, 101)]));
        assert!(sweep.inverse_linearity_error() > 0.3);
    }

    #[test]
    fn empty_sweep_has_zero_error() {
        assert_eq!(Sweep::new("x").inverse_linearity_error(), 0.0);
    }
}
