//! Level 2: temporal memory-bandwidth profiling (paper Section VI-B, Figure 3).
//!
//! NMO estimates memory bandwidth by counting bus load/store events over
//! fixed intervals and dividing by the interval length. Augmented with
//! floating-point event counts this also yields the arithmetic intensity used
//! by the Roofline model to classify a phase as compute- or memory-bound.
//!
//! On a tiered-memory machine each bucket carries the per-node traffic
//! split, so the series shows how much bandwidth each tier (local DDR,
//! remote/CXL) sustained — the bandwidth view of the paper's tiering
//! experiments.

use arch_sim::{BandwidthPoint, MAX_MEM_NODES};

/// One sample of the bandwidth-over-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Simulated time at the start of the interval, seconds.
    pub time_s: f64,
    /// Average bandwidth over the interval, GiB/s (all nodes).
    pub gib_per_s: f64,
    /// Average bandwidth over the interval per memory node, GiB/s.
    pub gib_per_s_by_node: [f64; MAX_MEM_NODES],
}

/// The memory-bandwidth profile of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BandwidthSeries {
    /// Interval samples.
    pub points: Vec<BandwidthSample>,
    /// Peak interval bandwidth, GiB/s.
    pub peak_gib_per_s: f64,
    /// Peak interval bandwidth per memory node, GiB/s.
    pub peak_gib_per_s_by_node: [f64; MAX_MEM_NODES],
    /// Average bandwidth over the whole run, GiB/s.
    pub mean_gib_per_s: f64,
    /// Total bus traffic, bytes.
    pub total_bytes: u64,
    /// Total bus traffic per memory node, bytes.
    pub total_bytes_by_node: [u64; MAX_MEM_NODES],
    /// Number of memory nodes the series was built for (the meaningful
    /// prefix of the per-node arrays).
    pub nodes: usize,
    /// Arithmetic intensity (FLOP per DRAM byte), if FLOPs were recorded.
    pub arithmetic_intensity: Option<f64>,
}

impl BandwidthSeries {
    /// Build a series from the machine's per-bucket bus traffic.
    ///
    /// `flops` supplies the total floating-point operations of the run (for
    /// arithmetic intensity); pass 0 if not tracked. `nodes` is the number
    /// of memory nodes in the topology.
    pub fn from_buckets(buckets: &[BandwidthPoint], flops: u64, nodes: usize) -> Self {
        let nodes = nodes.clamp(1, MAX_MEM_NODES);
        let mut total_bytes_by_node = [0u64; MAX_MEM_NODES];
        let mut peak_by_node = [0f64; MAX_MEM_NODES];
        let points: Vec<BandwidthSample> = buckets
            .iter()
            .map(|b| {
                // Per-node rates share the bucket's byte→GiB/s scale.
                let scale = if b.bytes > 0 { b.gib_per_s / b.bytes as f64 } else { 0.0 };
                let mut gib_per_s_by_node = [0f64; MAX_MEM_NODES];
                for (node, bytes) in b.by_node.iter().enumerate() {
                    total_bytes_by_node[node] += bytes;
                    gib_per_s_by_node[node] = *bytes as f64 * scale;
                    peak_by_node[node] = peak_by_node[node].max(gib_per_s_by_node[node]);
                }
                BandwidthSample {
                    time_s: b.time_ns as f64 * 1e-9,
                    gib_per_s: b.gib_per_s,
                    gib_per_s_by_node,
                }
            })
            .collect();
        let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
        let peak = points.iter().map(|p| p.gib_per_s).fold(0.0f64, f64::max);
        let mean = if points.is_empty() {
            0.0
        } else {
            points.iter().map(|p| p.gib_per_s).sum::<f64>() / points.len() as f64
        };
        let arithmetic_intensity = if total_bytes > 0 && flops > 0 {
            Some(flops as f64 / total_bytes as f64)
        } else {
            None
        };
        BandwidthSeries {
            points,
            peak_gib_per_s: peak,
            peak_gib_per_s_by_node: peak_by_node,
            mean_gib_per_s: mean,
            total_bytes,
            total_bytes_by_node,
            nodes,
            arithmetic_intensity,
        }
    }

    /// Classify the run with a simple Roofline rule of thumb: memory-bound if
    /// the arithmetic intensity is below `machine_balance` FLOP/byte.
    pub fn is_memory_bound(&self, machine_balance: f64) -> Option<bool> {
        self.arithmetic_intensity.map(|ai| ai < machine_balance)
    }

    /// Fraction of the total traffic served by one node (0.0 when idle).
    pub fn node_traffic_share(&self, node: usize) -> f64 {
        if self.total_bytes == 0 {
            return 0.0;
        }
        self.total_bytes_by_node.get(node).map(|b| *b as f64).unwrap_or(0.0)
            / self.total_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp(time_ns: u64, bytes: u64, gib_per_s: f64) -> BandwidthPoint {
        let mut by_node = [0u64; MAX_MEM_NODES];
        by_node[0] = bytes;
        BandwidthPoint { time_ns, bytes, by_node, gib_per_s }
    }

    #[test]
    fn series_statistics() {
        let buckets =
            vec![bp(0, 1 << 30, 10.0), bp(1_000_000_000, 2 << 30, 20.0), bp(2_000_000_000, 0, 0.0)];
        let s = BandwidthSeries::from_buckets(&buckets, 3 << 30, 1);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.total_bytes, 3 << 30);
        assert!((s.peak_gib_per_s - 20.0).abs() < 1e-12);
        assert!((s.mean_gib_per_s - 10.0).abs() < 1e-12);
        let ai = s.arithmetic_intensity.unwrap();
        assert!((ai - 1.0).abs() < 1e-12);
        // Flat traffic lives on node 0.
        assert_eq!(s.total_bytes_by_node[0], 3 << 30);
        assert!((s.peak_gib_per_s_by_node[0] - 20.0).abs() < 1e-12);
        assert!((s.node_traffic_share(0) - 1.0).abs() < 1e-12);
        assert_eq!(s.node_traffic_share(1), 0.0);
    }

    #[test]
    fn per_node_split_scales_with_bucket_rate() {
        let mut by_node = [0u64; MAX_MEM_NODES];
        by_node[0] = 3 << 30;
        by_node[1] = 1 << 30;
        let buckets = vec![BandwidthPoint { time_ns: 0, bytes: 4 << 30, by_node, gib_per_s: 40.0 }];
        let s = BandwidthSeries::from_buckets(&buckets, 0, 2);
        assert_eq!(s.nodes, 2);
        assert!((s.points[0].gib_per_s_by_node[0] - 30.0).abs() < 1e-9);
        assert!((s.points[0].gib_per_s_by_node[1] - 10.0).abs() < 1e-9);
        assert!((s.node_traffic_share(1) - 0.25).abs() < 1e-12);
        let node_sum: f64 = s.points[0].gib_per_s_by_node.iter().sum();
        assert!((node_sum - s.points[0].gib_per_s).abs() < 1e-9);
    }

    #[test]
    fn empty_series() {
        let s = BandwidthSeries::from_buckets(&[], 0, 1);
        assert!(s.points.is_empty());
        assert_eq!(s.mean_gib_per_s, 0.0);
        assert_eq!(s.total_bytes, 0);
        assert!(s.arithmetic_intensity.is_none());
        assert!(s.is_memory_bound(10.0).is_none());
        assert_eq!(s.node_traffic_share(0), 0.0);
    }

    #[test]
    fn roofline_classification() {
        let buckets = vec![bp(0, 1 << 30, 50.0)];
        // 0.25 FLOP/byte — memory bound for any balance above that.
        let s = BandwidthSeries::from_buckets(&buckets, 1 << 28, 1);
        assert_eq!(s.is_memory_bound(10.0), Some(true));
        assert_eq!(s.is_memory_bound(0.01), Some(false));
    }
}
