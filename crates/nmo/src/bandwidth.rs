//! Level 2: temporal memory-bandwidth profiling (paper Section VI-B, Figure 3).
//!
//! NMO estimates memory bandwidth by counting bus load/store events over
//! fixed intervals and dividing by the interval length. Augmented with
//! floating-point event counts this also yields the arithmetic intensity used
//! by the Roofline model to classify a phase as compute- or memory-bound.

use arch_sim::BandwidthPoint;

/// One sample of the bandwidth-over-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthSample {
    /// Simulated time at the start of the interval, seconds.
    pub time_s: f64,
    /// Average bandwidth over the interval, GiB/s.
    pub gib_per_s: f64,
}

/// The memory-bandwidth profile of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BandwidthSeries {
    /// Interval samples.
    pub points: Vec<BandwidthSample>,
    /// Peak interval bandwidth, GiB/s.
    pub peak_gib_per_s: f64,
    /// Average bandwidth over the whole run, GiB/s.
    pub mean_gib_per_s: f64,
    /// Total bus traffic, bytes.
    pub total_bytes: u64,
    /// Arithmetic intensity (FLOP per DRAM byte), if FLOPs were recorded.
    pub arithmetic_intensity: Option<f64>,
}

impl BandwidthSeries {
    /// Build a series from the machine's per-bucket bus traffic.
    ///
    /// `flops` supplies the total floating-point operations of the run (for
    /// arithmetic intensity); pass 0 if not tracked.
    pub fn from_buckets(buckets: &[BandwidthPoint], flops: u64) -> Self {
        let points: Vec<BandwidthSample> = buckets
            .iter()
            .map(|b| BandwidthSample { time_s: b.time_ns as f64 * 1e-9, gib_per_s: b.gib_per_s })
            .collect();
        let total_bytes: u64 = buckets.iter().map(|b| b.bytes).sum();
        let peak = points.iter().map(|p| p.gib_per_s).fold(0.0f64, f64::max);
        let mean = if points.is_empty() {
            0.0
        } else {
            points.iter().map(|p| p.gib_per_s).sum::<f64>() / points.len() as f64
        };
        let arithmetic_intensity = if total_bytes > 0 && flops > 0 {
            Some(flops as f64 / total_bytes as f64)
        } else {
            None
        };
        BandwidthSeries {
            points,
            peak_gib_per_s: peak,
            mean_gib_per_s: mean,
            total_bytes,
            arithmetic_intensity,
        }
    }

    /// Classify the run with a simple Roofline rule of thumb: memory-bound if
    /// the arithmetic intensity is below `machine_balance` FLOP/byte.
    pub fn is_memory_bound(&self, machine_balance: f64) -> Option<bool> {
        self.arithmetic_intensity.map(|ai| ai < machine_balance)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp(time_ns: u64, bytes: u64, gib_per_s: f64) -> BandwidthPoint {
        BandwidthPoint { time_ns, bytes, gib_per_s }
    }

    #[test]
    fn series_statistics() {
        let buckets =
            vec![bp(0, 1 << 30, 10.0), bp(1_000_000_000, 2 << 30, 20.0), bp(2_000_000_000, 0, 0.0)];
        let s = BandwidthSeries::from_buckets(&buckets, 3 << 30);
        assert_eq!(s.points.len(), 3);
        assert_eq!(s.total_bytes, 3 << 30);
        assert!((s.peak_gib_per_s - 20.0).abs() < 1e-12);
        assert!((s.mean_gib_per_s - 10.0).abs() < 1e-12);
        let ai = s.arithmetic_intensity.unwrap();
        assert!((ai - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_series() {
        let s = BandwidthSeries::from_buckets(&[], 0);
        assert!(s.points.is_empty());
        assert_eq!(s.mean_gib_per_s, 0.0);
        assert_eq!(s.total_bytes, 0);
        assert!(s.arithmetic_intensity.is_none());
        assert!(s.is_memory_bound(10.0).is_none());
    }

    #[test]
    fn roofline_classification() {
        let buckets = vec![bp(0, 1 << 30, 50.0)];
        // 0.25 FLOP/byte — memory bound for any balance above that.
        let s = BandwidthSeries::from_buckets(&buckets, 1 << 28);
        assert_eq!(s.is_memory_bound(10.0), Some(true));
        assert_eq!(s.is_memory_bound(0.01), Some(false));
    }
}
