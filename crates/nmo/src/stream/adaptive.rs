//! The adaptive pipeline controller: auto-tunes the sharded streaming
//! pipeline at runtime instead of trusting a static shard count.
//!
//! `results/bench_stream.csv` history showed why a static configuration is
//! wrong: the best shard count depends on host parallelism and load, and a
//! wrong choice collapses throughput (8 shards on a host with one free core
//! oversubscribes; 1 shard on a 128-core machine funnels every lane through
//! one consumer). A production profiler runs continuously across varied
//! hosts, so the pipeline has to find its own operating point and keep its
//! loss/overhead inside a budget.
//!
//! The control loop (run by the coordinator pump worker once per
//! [`AdaptiveOptions::control_interval`]):
//!
//! ```text
//!           sample                 decide                    actuate
//!  bus/lane stats ──▶ SlidingWindow ──▶ AdaptiveController ──▶ active shard
//!  consumer idle       (last N control   (threshold rules +     count, drain
//!  ticks               samples)          throughput guard)      cadence,
//!                                                               backpressure
//! ```
//!
//! * [`ControlSample`] is one sampling of the pipeline: batch throughput,
//!   drops, worst-lane occupancy, and consumer idle time over one control
//!   interval.
//! * [`SlidingWindow`] holds the last N samples and exposes the windowed
//!   aggregates the rules act on (the Exo-OS adaptive-driver shape: decide
//!   on a recent window, never on a single noisy sample).
//! * [`AdaptiveController`] is *pure*: given the same sample sequence it
//!   produces the same [`AdaptiveDecision`] sequence, which is what makes
//!   adaptive runs explainable and replayable (see the determinism tests
//!   below). Side effects live in [`AdaptiveRuntime`], the shared handle the
//!   session's pump/consumer spine reads.
//!
//! The decision space:
//!
//! * **Active shard count** — the allocated topology (lanes, pump workers,
//!   shard consumers) is fixed at session start; the controller moves the
//!   *active* width within `[min_active, allocated]`. Parked pump workers
//!   sleep and their drain slots are taken over by the active ones; parked
//!   lanes receive no new batches (routing is `core % active`). Every shard
//!   consumer stays subscribed, so window-close bookkeeping and the
//!   deterministic merge are untouched by width changes.
//! * **Drain cadence** — the pump poll interval, within
//!   `[cadence_min, cadence_max]`.
//! * **Backpressure mode** — [`BackpressurePolicy::DropNewest`] ↔
//!   [`BackpressurePolicy::Block`] once the loss budget is exhausted at full
//!   width (bounded overhead beats unbounded loss only when widening is no
//!   longer an option).
//!
//! Every transition is recorded as an [`AdaptiveDecision`] and surfaced in
//! [`super::StreamSnapshot::adaptive`] and counted in
//! [`super::StreamStats::adaptive_decisions`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use super::{BackpressurePolicy, ShardedBus};

/// Tuning knobs of the adaptive controller
/// (see [`super::StreamOptions::adaptive`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveOptions {
    /// Wall-clock interval between control decisions (default 2 ms).
    pub control_interval: Duration,
    /// Number of control samples the sliding window holds; decisions only
    /// fire on a full window (default 4).
    pub window: usize,
    /// Target loss budget: the tolerated fraction of batches dropped by
    /// backpressure over the window (default 0.01). Above it the controller
    /// widens, and at full width switches to
    /// [`BackpressurePolicy::Block`].
    pub loss_budget: f64,
    /// Worst-lane occupancy fraction above which the pipeline counts as
    /// pressured (default 0.6): widen, or shorten the cadence at full width.
    pub occupancy_high: f64,
    /// Worst-lane occupancy fraction below which lanes count as quiet
    /// (default 0.05).
    pub occupancy_low: f64,
    /// Consumer idle fraction above which the active consumers count as
    /// starved (default 0.5): with quiet lanes this parks a shard, or
    /// lengthens the cadence at minimum width.
    pub idle_high: f64,
    /// Lower bound on the active shard count (default 1).
    pub min_active: usize,
    /// Shortest drain cadence the controller may set (default 50 µs).
    pub cadence_min: Duration,
    /// Longest drain cadence the controller may set (default 2 ms).
    pub cadence_max: Duration,
    /// Initial active shard count; `0` (the default) resolves to
    /// `min(allocated, available_parallelism)` — start no wider than the
    /// host can actually run.
    pub initial_active: usize,
    /// Relative throughput regression that makes the controller revert its
    /// previous width change (default 0.10): a move that cost more than
    /// this fraction of windowed throughput is undone.
    pub regression_tolerance: f64,
}

impl Default for AdaptiveOptions {
    fn default() -> Self {
        AdaptiveOptions {
            control_interval: Duration::from_millis(2),
            window: 4,
            loss_budget: 0.01,
            occupancy_high: 0.6,
            occupancy_low: 0.05,
            idle_high: 0.5,
            min_active: 1,
            cadence_min: Duration::from_micros(50),
            cadence_max: Duration::from_millis(2),
            initial_active: 0,
            regression_tolerance: 0.10,
        }
    }
}

/// One sampling of the pipeline over one control interval: the per-lane
/// metrics the pump/consumer spine feeds the controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControlSample {
    /// Wall-clock span the sample covers.
    pub elapsed: Duration,
    /// Batches accepted onto the bus during the span.
    pub published: u64,
    /// Batches dropped by backpressure during the span.
    pub dropped: u64,
    /// Worst active-lane occupancy fraction (`queued / capacity`) at sample
    /// time, `0.0..=1.0`.
    pub worst_occupancy: f64,
    /// Fraction of active-consumer wall-clock spent idle (receive timeouts)
    /// during the span, `0.0..=1.0`.
    pub consumer_idle: f64,
}

/// The last N [`ControlSample`]s plus the windowed aggregates the decision
/// rules act on (the Exo-OS `SlidingWindow` shape, over control samples
/// instead of raw operation timestamps).
#[derive(Debug, Clone)]
pub struct SlidingWindow {
    samples: VecDeque<ControlSample>,
    cap: usize,
}

impl SlidingWindow {
    /// A window holding at most `cap` samples (clamped to at least 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        SlidingWindow { samples: VecDeque::with_capacity(cap), cap }
    }

    /// Push a sample, evicting the oldest once full.
    pub fn push(&mut self, sample: ControlSample) {
        if self.samples.len() == self.cap {
            self.samples.pop_front();
        }
        self.samples.push_back(sample);
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Whether the window holds its full `cap` samples.
    pub fn is_full(&self) -> bool {
        self.samples.len() == self.cap
    }

    /// Drop every sample (called after an actuation so the next decision
    /// only sees the new operating point).
    pub fn clear(&mut self) {
        self.samples.clear();
    }

    /// Windowed batch throughput, batches per second (0.0 on an empty
    /// window).
    pub fn throughput(&self) -> f64 {
        let secs: f64 = self.samples.iter().map(|s| s.elapsed.as_secs_f64()).sum();
        if secs <= 0.0 {
            return 0.0;
        }
        let published: u64 = self.samples.iter().map(|s| s.published).sum();
        published as f64 / secs
    }

    /// Windowed drop fraction: dropped over published-plus-dropped (0.0
    /// when nothing was attempted).
    pub fn drop_fraction(&self) -> f64 {
        let published: u64 = self.samples.iter().map(|s| s.published).sum();
        let dropped: u64 = self.samples.iter().map(|s| s.dropped).sum();
        let attempted = published + dropped;
        if attempted == 0 {
            return 0.0;
        }
        dropped as f64 / attempted as f64
    }

    /// Mean worst-lane occupancy over the window.
    pub fn mean_occupancy(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.worst_occupancy).sum::<f64>() / self.samples.len() as f64
    }

    /// Mean consumer idle fraction over the window.
    pub fn mean_idle(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().map(|s| s.consumer_idle).sum::<f64>() / self.samples.len() as f64
    }
}

/// What one [`AdaptiveDecision`] changed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ControlAction {
    /// The active shard count moved.
    SetActiveShards {
        /// Active count before the decision.
        from: usize,
        /// Active count after the decision.
        to: usize,
    },
    /// The pump drain cadence moved.
    SetPollInterval {
        /// Cadence before the decision.
        from: Duration,
        /// Cadence after the decision.
        to: Duration,
    },
    /// The backpressure mode switched.
    SetBackpressure {
        /// Policy before the decision.
        from: BackpressurePolicy,
        /// Policy after the decision.
        to: BackpressurePolicy,
    },
}

/// One recorded controller transition: what changed, when (in controller
/// ticks), and why.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveDecision {
    /// Controller tick (sample count) the decision fired on.
    pub tick: u64,
    /// The transition.
    pub action: ControlAction,
    /// The rule that fired (`"loss-over-budget"`, `"idle-lanes"`, ...).
    pub reason: &'static str,
}

/// Decision log entries kept in memory; beyond this the log stops growing
/// but [`AdaptiveController::decisions_total`] keeps counting, so a
/// long-lived session's controller state stays bounded.
const MAX_LOGGED_DECISIONS: usize = 1024;

/// Throughput baseline remembered across a width change, so a move that
/// regressed throughput can be reverted.
#[derive(Debug, Clone, Copy)]
struct WidthGuard {
    baseline_throughput: f64,
    prev_active: usize,
}

/// The pure decision core: feed it [`ControlSample`]s via
/// [`AdaptiveController::observe`], apply the returned decisions. Given the
/// same sample sequence it produces the same decision sequence (no clocks,
/// no randomness) — sharded-equals-serial semantics never depend on *what*
/// it decides, and the determinism tests pin *when*.
#[derive(Debug)]
pub struct AdaptiveController {
    opts: AdaptiveOptions,
    allocated: usize,
    active: usize,
    poll: Duration,
    policy: BackpressurePolicy,
    /// Whether the controller itself switched the policy to `Block` (only
    /// then may it switch back).
    switched_policy: bool,
    window: SlidingWindow,
    cooldown: u32,
    tick: u64,
    guard: Option<WidthGuard>,
    decisions: Vec<AdaptiveDecision>,
    decisions_total: u64,
}

impl AdaptiveController {
    /// A controller over `allocated` shards, starting from the session's
    /// configured poll interval and backpressure policy.
    pub fn new(
        opts: AdaptiveOptions,
        allocated: usize,
        initial_poll: Duration,
        initial_policy: BackpressurePolicy,
    ) -> Self {
        let allocated = allocated.max(1);
        let auto = allocated
            .min(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
            .max(1);
        let active = match opts.initial_active {
            0 => auto,
            n => n.clamp(opts.min_active.max(1).min(allocated), allocated),
        };
        let window = SlidingWindow::new(opts.window);
        AdaptiveController {
            opts,
            allocated,
            active,
            poll: initial_poll,
            policy: initial_policy,
            switched_policy: false,
            window,
            cooldown: 0,
            tick: 0,
            guard: None,
            decisions: Vec::new(),
            decisions_total: 0,
        }
    }

    /// The allocated (maximum) shard count.
    pub fn allocated(&self) -> usize {
        self.allocated
    }

    /// The current active shard count.
    pub fn active(&self) -> usize {
        self.active
    }

    /// The current drain cadence.
    pub fn poll_interval(&self) -> Duration {
        self.poll
    }

    /// The current backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        self.policy
    }

    /// The recorded decision log (capped at an internal bound; see
    /// [`AdaptiveController::decisions_total`]).
    pub fn decisions(&self) -> &[AdaptiveDecision] {
        &self.decisions
    }

    /// Total decisions made, including any beyond the log cap.
    pub fn decisions_total(&self) -> u64 {
        self.decisions_total
    }

    fn record(&mut self, action: ControlAction, reason: &'static str) -> AdaptiveDecision {
        let decision = AdaptiveDecision { tick: self.tick, action, reason };
        self.decisions_total += 1;
        if self.decisions.len() < MAX_LOGGED_DECISIONS {
            self.decisions.push(decision.clone());
        }
        decision
    }

    fn set_active(&mut self, to: usize, reason: &'static str) -> Option<AdaptiveDecision> {
        let to = to.clamp(self.opts.min_active.max(1).min(self.allocated), self.allocated);
        if to == self.active {
            return None;
        }
        let action = ControlAction::SetActiveShards { from: self.active, to };
        self.active = to;
        Some(self.record(action, reason))
    }

    fn set_poll(&mut self, to: Duration, reason: &'static str) -> Option<AdaptiveDecision> {
        let to = to.clamp(self.opts.cadence_min, self.opts.cadence_max);
        if to == self.poll {
            return None;
        }
        let action = ControlAction::SetPollInterval { from: self.poll, to };
        self.poll = to;
        Some(self.record(action, reason))
    }

    fn set_policy(&mut self, to: BackpressurePolicy, reason: &'static str) -> AdaptiveDecision {
        let action = ControlAction::SetBackpressure { from: self.policy, to };
        self.policy = to;
        self.record(action, reason)
    }

    /// Feed one control sample; returns the decisions fired this tick
    /// (empty while the window warms up or a cooldown is pending).
    pub fn observe(&mut self, sample: ControlSample) -> Vec<AdaptiveDecision> {
        self.tick += 1;
        self.window.push(sample);
        if !self.window.is_full() {
            return Vec::new();
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Vec::new();
        }

        let throughput = self.window.throughput();
        let mut fired = Vec::new();

        // Guard pass: the previous width change is now covered by a full
        // window at the new operating point — revert it if it regressed
        // throughput beyond tolerance, keep it otherwise.
        if let Some(guard) = self.guard.take() {
            let floor = guard.baseline_throughput * (1.0 - self.opts.regression_tolerance);
            if throughput < floor {
                if let Some(d) = self.set_active(guard.prev_active, "throughput-regression") {
                    fired.push(d);
                }
                // Longer cooldown: do not immediately re-try the move that
                // just regressed.
                self.cooldown = (self.opts.window as u32).saturating_mul(2);
                self.window.clear();
                return fired;
            }
        }

        let drops = self.window.drop_fraction();
        let occupancy = self.window.mean_occupancy();
        let idle = self.window.mean_idle();
        let min_active = self.opts.min_active.max(1).min(self.allocated);

        if drops > self.opts.loss_budget {
            // Over the loss budget: widen while possible; at full width,
            // bounded loss beats unbounded loss — block the pump instead.
            if self.active < self.allocated {
                let target = self.active.saturating_mul(2).min(self.allocated);
                self.guard =
                    Some(WidthGuard { baseline_throughput: throughput, prev_active: self.active });
                if let Some(d) = self.set_active(target, "loss-over-budget") {
                    fired.push(d);
                }
            } else if self.policy == BackpressurePolicy::DropNewest {
                fired.push(self.set_policy(BackpressurePolicy::Block, "loss-over-budget-at-width"));
                self.switched_policy = true;
            }
        } else if occupancy > self.opts.occupancy_high {
            // Pressured lanes, loss still inside budget: widen, or drain
            // faster once already at full width.
            if self.active < self.allocated {
                let target = self.active.saturating_mul(2).min(self.allocated);
                self.guard =
                    Some(WidthGuard { baseline_throughput: throughput, prev_active: self.active });
                if let Some(d) = self.set_active(target, "lane-pressure") {
                    fired.push(d);
                }
            } else if let Some(d) = self.set_poll(self.poll / 2, "lane-pressure-cadence") {
                fired.push(d);
            }
        } else if occupancy < self.opts.occupancy_low && idle > self.opts.idle_high {
            // Quiet lanes and starved consumers: shed width, then restore a
            // controller-forced Block, then relax the cadence.
            if self.active > min_active {
                let target = (self.active / 2).max(min_active);
                self.guard =
                    Some(WidthGuard { baseline_throughput: throughput, prev_active: self.active });
                if let Some(d) = self.set_active(target, "idle-lanes") {
                    fired.push(d);
                }
            } else if self.switched_policy
                && self.policy == BackpressurePolicy::Block
                && drops == 0.0
            {
                fired.push(self.set_policy(BackpressurePolicy::DropNewest, "pressure-subsided"));
                self.switched_policy = false;
            } else if let Some(d) = self.set_poll(self.poll.saturating_mul(2), "idle-cadence") {
                fired.push(d);
            }
        }

        if !fired.is_empty() {
            // Measure the new operating point on fresh samples only.
            self.window.clear();
            self.cooldown = 1;
        }
        fired
    }
}

/// Sampling state behind the runtime's mutex: the controller plus the
/// cursors needed to turn cumulative bus/idle counters into per-interval
/// deltas.
#[derive(Debug)]
struct ControlState {
    controller: AdaptiveController,
    last_sample: Instant,
    last_published: u64,
    last_dropped: u64,
    last_idle: u64,
}

/// The shared actuation handle of an adaptive session: the coordinator pump
/// worker drives [`AdaptiveRuntime::control`], every pump worker reads
/// [`AdaptiveRuntime::poll_interval`], and the shard consumers report idle
/// receive timeouts through [`AdaptiveRuntime::note_consumer_idle`].
///
/// Width and backpressure actuation go straight to the [`ShardedBus`]
/// (active-lane routing, per-lane policy); only the cadence lives here.
#[derive(Debug)]
pub struct AdaptiveRuntime {
    state: Mutex<ControlState>,
    poll_ns: AtomicU64,
    /// Per-shard consumer idle-timeout counters.
    idle_ticks: Vec<AtomicU64>,
    /// Wall-clock length of one consumer receive timeout (what one idle
    /// tick is worth when estimating the idle fraction).
    idle_tick: Duration,
    control_interval: Duration,
}

impl AdaptiveRuntime {
    /// Build the runtime for `allocated` shards and apply the controller's
    /// initial active width to the bus.
    pub fn new(
        opts: AdaptiveOptions,
        allocated: usize,
        initial_poll: Duration,
        initial_policy: BackpressurePolicy,
        idle_tick: Duration,
    ) -> Arc<AdaptiveRuntime> {
        let control_interval = opts.control_interval.max(Duration::from_micros(100));
        let controller = AdaptiveController::new(opts, allocated, initial_poll, initial_policy);
        let poll_ns = AtomicU64::new(initial_poll.as_nanos() as u64);
        Arc::new(AdaptiveRuntime {
            state: Mutex::named(
                ControlState {
                    controller,
                    last_sample: Instant::now(),
                    last_published: 0,
                    last_dropped: 0,
                    last_idle: 0,
                },
                "adaptive.control",
            ),
            poll_ns,
            idle_ticks: (0..allocated.max(1)).map(|_| AtomicU64::new(0)).collect(),
            idle_tick,
            control_interval,
        })
    }

    /// The controller's current active width (read once at session start to
    /// seed the bus's routing).
    pub fn active(&self) -> usize {
        self.state.lock().controller.active()
    }

    /// The drain cadence every pump worker sleeps between ticks.
    pub fn poll_interval(&self) -> Duration {
        // relaxed-ok: cadence hint — a worker reading a stale interval
        // sleeps one tick at the old cadence; no data depends on it.
        Duration::from_nanos(self.poll_ns.load(Ordering::Relaxed))
    }

    /// A shard consumer's receive timed out with its lane empty.
    pub fn note_consumer_idle(&self, shard: usize) {
        if let Some(counter) = self.idle_ticks.get(shard) {
            // relaxed-ok: idle accounting sampled by `control` as a delta;
            // skew only perturbs one control sample's idle estimate.
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Coordinator hook: once per control interval, sample the pipeline,
    /// run the controller, and apply its decisions to the bus and the
    /// shared cadence. Cheap no-op between intervals.
    pub fn control(&self, bus: &ShardedBus) -> Vec<AdaptiveDecision> {
        let mut state = self.state.lock();
        let now = Instant::now();
        let elapsed = now.duration_since(state.last_sample);
        if elapsed < self.control_interval {
            return Vec::new();
        }

        let active = bus.active_lanes();
        let lanes = bus.lane_stats();
        let mut published = 0u64;
        let mut dropped = 0u64;
        let mut worst_occupancy = 0f64;
        for (lane, stats) in lanes.iter().enumerate() {
            published += stats.published;
            dropped += stats.dropped_batches;
            if lane < active && stats.capacity > 0 {
                worst_occupancy = worst_occupancy.max(stats.queued as f64 / stats.capacity as f64);
            }
        }
        let idle_now: u64 = self.idle_ticks[..active.min(self.idle_ticks.len())]
            .iter()
            // relaxed-ok: idle accounting snapshot, as in `note_consumer_idle`.
            .map(|c| c.load(Ordering::Relaxed))
            .sum();
        let idle_delta = idle_now.saturating_sub(state.last_idle);
        let idle_budget = elapsed.as_secs_f64() * active.max(1) as f64;
        let consumer_idle = if idle_budget > 0.0 {
            (idle_delta as f64 * self.idle_tick.as_secs_f64() / idle_budget).clamp(0.0, 1.0)
        } else {
            0.0
        };

        let sample = ControlSample {
            elapsed,
            published: published.saturating_sub(state.last_published),
            dropped: dropped.saturating_sub(state.last_dropped),
            worst_occupancy,
            consumer_idle,
        };
        state.last_sample = now;
        state.last_published = published;
        state.last_dropped = dropped;
        state.last_idle = idle_now;

        let decisions = state.controller.observe(sample);
        for decision in &decisions {
            match decision.action {
                ControlAction::SetActiveShards { to, .. } => bus.set_active_lanes(to),
                ControlAction::SetPollInterval { to, .. } => {
                    // relaxed-ok: cadence hint, see `poll_interval`.
                    self.poll_ns.store(to.as_nanos() as u64, Ordering::Relaxed);
                }
                ControlAction::SetBackpressure { to, .. } => bus.set_policy(to),
            }
        }
        decisions
    }

    /// Snapshot of the decision log so far.
    pub fn decisions(&self) -> Vec<AdaptiveDecision> {
        self.state.lock().controller.decisions().to_vec()
    }

    /// Total decisions made so far (including any beyond the log cap).
    pub fn decisions_total(&self) -> u64 {
        self.state.lock().controller.decisions_total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opts() -> AdaptiveOptions {
        // Explicit initial width so tests never depend on the host's
        // available parallelism.
        AdaptiveOptions { initial_active: 2, ..AdaptiveOptions::default() }
    }

    fn controller(allocated: usize) -> AdaptiveController {
        AdaptiveController::new(
            opts(),
            allocated,
            Duration::from_micros(200),
            BackpressurePolicy::DropNewest,
        )
    }

    fn sample(published: u64, dropped: u64, occupancy: f64, idle: f64) -> ControlSample {
        ControlSample {
            elapsed: Duration::from_millis(2),
            published,
            dropped,
            worst_occupancy: occupancy,
            consumer_idle: idle,
        }
    }

    #[test]
    fn sliding_window_aggregates() {
        let mut w = SlidingWindow::new(3);
        assert!(w.is_empty());
        w.push(sample(100, 0, 0.5, 0.0));
        w.push(sample(300, 100, 0.7, 0.2));
        assert!(!w.is_full());
        w.push(sample(200, 0, 0.3, 0.4));
        assert!(w.is_full());
        // 600 batches over 6 ms.
        assert!((w.throughput() - 100_000.0).abs() < 1e-6, "{}", w.throughput());
        assert!((w.drop_fraction() - 100.0 / 700.0).abs() < 1e-12);
        assert!((w.mean_occupancy() - 0.5).abs() < 1e-12);
        assert!((w.mean_idle() - 0.2).abs() < 1e-12);
        // Eviction: a fourth push drops the first sample.
        w.push(sample(0, 0, 0.0, 0.0));
        assert_eq!(w.len(), 3);
        assert!((w.drop_fraction() - 100.0 / 600.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_and_cooldown_suppress_decisions() {
        let mut c = controller(8);
        // Window of 4: the first 3 samples cannot fire regardless of load.
        for _ in 0..3 {
            assert!(c.observe(sample(1000, 1000, 1.0, 0.0)).is_empty());
        }
        let fired = c.observe(sample(1000, 1000, 1.0, 0.0));
        assert_eq!(fired.len(), 1, "full window over budget fires: {fired:?}");
        assert!(matches!(fired[0].action, ControlAction::SetActiveShards { from: 2, to: 4 }));
        // The window cleared and a cooldown tick follows: the next full
        // window needs 4 samples + 1 cooldown before anything fires again.
        for _ in 0..4 {
            assert!(c.observe(sample(1000, 1000, 1.0, 0.0)).is_empty());
        }
    }

    #[test]
    fn loss_over_budget_widens_then_blocks_at_full_width() {
        let mut c = controller(4);
        let overloaded = || sample(1000, 500, 1.0, 0.0);
        let mut actions = Vec::new();
        for _ in 0..40 {
            actions.extend(c.observe(overloaded()).into_iter().map(|d| d.action));
            if c.policy() == BackpressurePolicy::Block {
                break;
            }
        }
        assert_eq!(c.active(), 4, "widened to full width");
        assert_eq!(c.policy(), BackpressurePolicy::Block, "then switched to Block: {actions:?}");
        assert!(actions
            .iter()
            .any(|a| matches!(a, ControlAction::SetActiveShards { from: 2, to: 4 })));
        assert!(actions.iter().any(|a| matches!(
            a,
            ControlAction::SetBackpressure {
                from: BackpressurePolicy::DropNewest,
                to: BackpressurePolicy::Block
            }
        )));
    }

    #[test]
    fn idle_lanes_park_down_to_min_then_relax_cadence() {
        let mut c = controller(8);
        let idle = || sample(10, 0, 0.0, 0.9);
        for _ in 0..60 {
            let _ = c.observe(idle());
        }
        assert_eq!(c.active(), 1, "parked down to min_active");
        assert!(
            c.poll_interval() > Duration::from_micros(200),
            "cadence relaxed: {:?}",
            c.poll_interval()
        );
        assert!(c.poll_interval() <= AdaptiveOptions::default().cadence_max);
        assert!(c.decisions_total() >= 3, "{:?}", c.decisions());
    }

    #[test]
    fn pressure_at_full_width_shortens_cadence() {
        let mut c = controller(2);
        let pressured = || sample(1000, 0, 0.9, 0.0);
        for _ in 0..40 {
            let _ = c.observe(pressured());
        }
        assert_eq!(c.active(), 2);
        assert!(
            c.poll_interval() < Duration::from_micros(200),
            "cadence shortened: {:?}",
            c.poll_interval()
        );
        assert!(c.poll_interval() >= AdaptiveOptions::default().cadence_min);
    }

    #[test]
    fn throughput_regression_reverts_the_width_change() {
        let mut c = controller(8);
        // Pressure fires a widen 2 → 4 with a throughput baseline.
        for _ in 0..4 {
            let _ = c.observe(sample(1000, 0, 0.9, 0.0));
        }
        assert_eq!(c.active(), 4);
        // Cooldown tick, then a full window at under 90% of the baseline
        // throughput (and calm pressure, so no other rule competes).
        let _ = c.observe(sample(100, 0, 0.3, 0.0));
        let mut reverted = Vec::new();
        for _ in 0..4 {
            reverted.extend(c.observe(sample(100, 0, 0.3, 0.0)));
        }
        assert_eq!(c.active(), 2, "regressed widen undone: {reverted:?}");
        assert!(reverted.iter().any(|d| d.reason == "throughput-regression"));
    }

    #[test]
    fn fixed_sample_sequence_yields_identical_decision_sequences() {
        // The determinism contract: two controllers fed the same synthetic
        // load trace make the same decisions at the same ticks.
        let trace: Vec<ControlSample> = (0..200)
            .map(|i| match i % 10 {
                0..=3 => sample(1000 + i, (i % 7) * 30, 0.8, 0.05),
                4..=6 => sample(400, 0, 0.3, 0.2),
                _ => sample(20, 0, 0.01, 0.9),
            })
            .collect();
        let mut a = controller(8);
        let mut b = controller(8);
        let decisions_a: Vec<AdaptiveDecision> = trace.iter().flat_map(|s| a.observe(*s)).collect();
        let decisions_b: Vec<AdaptiveDecision> = trace.iter().flat_map(|s| b.observe(*s)).collect();
        assert_eq!(decisions_a, decisions_b);
        assert!(!decisions_a.is_empty(), "the trace exercises at least one rule");
        assert_eq!(a.active(), b.active());
        assert_eq!(a.poll_interval(), b.poll_interval());
        assert_eq!(a.policy(), b.policy());
    }

    #[test]
    fn auto_initial_width_stays_within_bounds() {
        let c = AdaptiveController::new(
            AdaptiveOptions::default(),
            8,
            Duration::from_micros(200),
            BackpressurePolicy::DropNewest,
        );
        assert!((1..=8).contains(&c.active()), "{}", c.active());
        // Explicit initial width is clamped to the allocation.
        let c = AdaptiveController::new(
            AdaptiveOptions { initial_active: 64, ..AdaptiveOptions::default() },
            4,
            Duration::from_micros(200),
            BackpressurePolicy::DropNewest,
        );
        assert_eq!(c.active(), 4);
    }

    #[test]
    fn runtime_applies_decisions_to_the_bus() {
        let bus = ShardedBus::new(4, 8, BackpressurePolicy::DropNewest);
        let rt = AdaptiveRuntime::new(
            AdaptiveOptions {
                initial_active: 4,
                control_interval: Duration::from_micros(100),
                window: 1,
                ..AdaptiveOptions::default()
            },
            4,
            Duration::from_micros(200),
            BackpressurePolicy::DropNewest,
            Duration::from_millis(100),
        );
        bus.set_active_lanes(rt.active());
        assert_eq!(bus.active_lanes(), 4);
        // Mark every consumer idle and give the interval time to elapse;
        // the idle rule must eventually park lanes on the real bus.
        let deadline = Instant::now() + Duration::from_secs(5);
        while bus.active_lanes() == 4 && Instant::now() < deadline {
            for shard in 0..4 {
                for _ in 0..4 {
                    rt.note_consumer_idle(shard);
                }
            }
            let _ = rt.control(&bus);
            std::thread::yield_now();
        }
        assert!(bus.active_lanes() < 4, "idle pipeline parks lanes");
        assert!(rt.decisions_total() > 0);
        assert_eq!(rt.decisions().len() as u64, rt.decisions_total());
    }
}
