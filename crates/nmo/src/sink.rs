//! Pluggable analysis sinks (the reporting seam of the profiler).
//!
//! The paper's profiling levels — temporal capacity, temporal bandwidth,
//! memory-region attribution, and per-tier latency distributions — are
//! implemented as [`AnalysisSink`]s registered on a
//! [`crate::session::ProfileSession`] instead of hard-wired steps of the
//! runtime.
//!
//! Sinks consume data in one of two ways:
//!
//! * **Streaming** (the primary path): during a
//!   [`crate::session::ProfileSession::run_streaming`] run the consumer
//!   thread feeds every [`SampleBatch`] to [`AnalysisSink::on_batch`] and
//!   signals completed windows via [`AnalysisSink::on_window_close`]; at the
//!   end [`AnalysisSink::finish`] assembles the report from the
//!   incrementally merged state.
//! * **Post-hoc** (the compatibility adapter): a plain
//!   [`crate::session::ProfileSession::run`] delivers no batches, so the
//!   default [`AnalysisSink::finish`] implementation falls back to
//!   [`AnalysisSink::analyze`] over the completed [`Profile`]. Existing
//!   sinks that only implement `analyze` therefore keep working unchanged
//!   on both paths.
//!
//! The shipped sinks are incremental aggregators: capacity merges RSS
//! tick batches (per memory node), bandwidth merges per-bucket traffic
//! deltas (per memory node), regions attributes each window's samples as it
//! closes, and latency folds each sample into per-data-source log2
//! histograms — a windowed merge instead of a deferred whole-run scan, so
//! analysis work is spread over the run and live readouts stay current.
//! Note that the *retained data* is not yet bounded: the final [`Profile`]
//! still records every decoded sample (and the region scatter keeps one
//! attributed point per sample), so memory grows with run length just as on
//! the post-hoc path; eviction/downsampling policies for indefinitely long
//! runs are future work (the latency histograms are already O(1) in run
//! length).

use std::collections::BTreeMap;
use std::sync::Arc;

use arch_sim::{Machine, RssPoint, MAX_MEM_NODES};

use crate::annotate::Annotations;
use crate::bandwidth::BandwidthSeries;
use crate::capacity::CapacitySeries;
use crate::latency::LatencyProfile;
use crate::regions::{attribute, RegionAccumulator, RegionProfile};
use crate::runtime::Profile;
use crate::stream::{BatchPayload, SampleBatch, Window};
use crate::NmoError;

/// The output of one analysis sink.
#[derive(Debug, Clone)]
pub enum AnalysisReport {
    /// A capacity-over-time series (level 1).
    Capacity(CapacitySeries),
    /// A bandwidth-over-time series (level 2).
    Bandwidth(BandwidthSeries),
    /// A region-attribution profile (level 3).
    Regions(RegionProfile),
    /// Per-data-source latency distributions (the tiered-memory view).
    Latency(LatencyProfile),
    /// A profile-guided tiering run: applied migrations plus before/after
    /// per-tier latency (from [`crate::tiering::HotPageTracker`]).
    Tiering(crate::tiering::TieringReport),
    /// Free-form textual output from a custom sink.
    Text(String),
}

impl AnalysisReport {
    /// Whether the report carries any data points / samples / text.
    pub fn is_empty(&self) -> bool {
        match self {
            AnalysisReport::Capacity(c) => c.points.is_empty(),
            AnalysisReport::Bandwidth(b) => b.points.is_empty(),
            AnalysisReport::Regions(r) => r.scatter.is_empty(),
            AnalysisReport::Latency(l) => l.is_empty(),
            AnalysisReport::Tiering(t) => t.is_empty(),
            AnalysisReport::Text(t) => t.is_empty(),
        }
    }
}

/// One sink's named output, as stored on the [`Profile`].
#[derive(Debug, Clone)]
pub struct AnalysisRecord {
    /// Name of the sink that produced the report.
    pub sink: String,
    /// The report itself.
    pub report: AnalysisReport,
}

/// Context handed to sinks when a streaming session starts. (Per-window
/// geometry travels on each batch's [`Window`], so it is not repeated here.)
#[derive(Debug, Clone)]
pub struct StreamContext {
    /// The session's annotation registry (tags/phases grow during the run).
    pub annotations: Arc<Annotations>,
    /// Total machine memory capacity in bytes, across every node (for
    /// utilisation figures).
    pub capacity_bytes: u64,
    /// Width of one bandwidth bucket, simulated nanoseconds.
    pub bucket_ns: u64,
    /// Number of memory nodes in the machine's topology.
    pub mem_nodes: usize,
    /// Virtual-memory page size, bytes (for per-page aggregation).
    pub page_bytes: u64,
    /// The live machine, for sinks that *act* on the run (e.g.
    /// [`crate::tiering::HotPageTracker`] applying page migrations).
    /// Always present on a session-driven stream; `None` on replays from a
    /// stored trace (the run is over — there is nothing left to actuate)
    /// and in hand-built test contexts.
    pub machine: Option<Arc<Machine>>,
}

impl StreamContext {
    /// A machine-less context for replaying a stored trace
    /// ([`crate::trace::TraceReader`]): the recorded geometry is restored,
    /// the annotation registry starts empty, and `machine` is `None` —
    /// sinks aggregate exactly as they did live, but nothing can actuate
    /// the (finished) run.
    pub fn for_replay(
        capacity_bytes: u64,
        bucket_ns: u64,
        mem_nodes: usize,
        page_bytes: u64,
    ) -> Self {
        StreamContext {
            annotations: Arc::new(Annotations::new()),
            capacity_bytes,
            bucket_ns,
            mem_nodes,
            page_bytes,
            machine: None,
        }
    }
}

/// A pluggable analysis over a profiling run.
///
/// Only [`AnalysisSink::name`] and [`AnalysisSink::analyze`] are required;
/// the streaming hooks default to no-ops and [`AnalysisSink::finish`]
/// defaults to the post-hoc `analyze` adapter, so pre-streaming sinks keep
/// compiling and behave exactly as before.
pub trait AnalysisSink: Send {
    /// Stable sink name (used in reports and error messages).
    fn name(&self) -> &'static str;

    /// Post-hoc analysis over the (backend-filled) profile. Also the
    /// fallback behaviour of [`AnalysisSink::finish`] when no batches were
    /// streamed.
    fn analyze(&mut self, machine: &Machine, profile: &Profile)
        -> Result<AnalysisReport, NmoError>;

    /// Streaming: a session with streaming delivery is starting. Sinks that
    /// aggregate incrementally latch the context here.
    fn on_stream_start(&mut self, _ctx: &StreamContext) {}

    /// Streaming: one window-stamped batch arrived. Called from the
    /// session's consumer thread, in bus order.
    fn on_batch(&mut self, _batch: &SampleBatch) {}

    /// Streaming: the producer watermark passed `window`; no further
    /// on-time data will arrive for it (late batches are still delivered
    /// through [`AnalysisSink::on_batch`] and counted by the session).
    fn on_window_close(&mut self, _window: Window) {}

    /// Produce the final report. The default adapter re-expresses the
    /// historical post-hoc path: it simply calls
    /// [`AnalysisSink::analyze`]. Streaming sinks override this to emit the
    /// incrementally merged result instead.
    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        self.analyze(machine, profile)
    }

    /// The sharded-pipeline seam: sinks that can aggregate per shard return
    /// themselves as a [`ShardableSink`] here. The default `None` is the
    /// serial-fallback adapter — a sharded session feeds such a sink every
    /// batch through a serialising mutex instead (per-lane order preserved,
    /// cross-lane interleaving unspecified), so pre-sharding sinks compile
    /// and run unchanged.
    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        None
    }
}

/// Type-erased state handed from a [`SinkShard`] back to its parent sink at
/// merge time.
pub type ShardState = Box<dyn std::any::Any + Send>;

/// One shard's worker for a [`ShardableSink`]: it consumes the batches of
/// exactly one bus lane (a disjoint, core-hashed subset of the stream) on
/// its own consumer thread, with no locks on the per-batch path.
pub trait SinkShard: Send {
    /// One batch from this shard's lane arrived.
    fn on_batch(&mut self, batch: &SampleBatch);

    /// The producer watermark closed `window` (broadcast to every lane,
    /// including lanes the adaptive controller has parked — a parked lane
    /// still has a live consumer, it just receives no new batches). Sinks
    /// that merge *per window* — because the parent acts on the merged
    /// state mid-run, like [`crate::tiering::HotPageTracker`] — return this
    /// shard's partial state for the window; cumulative sinks keep the
    /// default `None` and merge once at the end.
    fn on_window_close(&mut self, _window: Window) -> Option<ShardState> {
        None
    }

    /// Hand the accumulated state back for the final merge (called after
    /// the bus closed).
    fn finish(self: Box<Self>) -> ShardState;
}

/// A sink that scales with the sharded streaming pipeline: per-shard workers
/// aggregate disjoint lanes in parallel, and the parent merges their states
/// in **ascending shard index** — a fixed order, so a sharded run produces
/// the same report as a single-shard (or post-hoc) run wherever the
/// underlying aggregation is exact (sums, histograms, per-window
/// attribution).
///
/// # Worked example
///
/// A sink counting store samples, sharded. Each shard counts its own lane;
/// the parent sums the counts in shard order at the end:
///
/// ```
/// use std::sync::Arc;
///
/// use arch_sim::Machine;
/// use nmo::sink::{
///     AnalysisReport, AnalysisSink, ShardState, ShardableSink, SinkShard, StreamContext,
/// };
/// use nmo::stream::{BatchPayload, SampleBatch};
/// use nmo::{NmoError, Profile};
///
/// #[derive(Default)]
/// struct StoreCounter {
///     stores: u64,
/// }
///
/// struct StoreCounterShard {
///     stores: u64,
/// }
///
/// impl SinkShard for StoreCounterShard {
///     fn on_batch(&mut self, batch: &SampleBatch) {
///         if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
///             self.stores += samples.iter().filter(|s| s.is_store).count() as u64;
///         }
///     }
///
///     fn finish(self: Box<Self>) -> ShardState {
///         Box::new(self.stores)
///     }
/// }
///
/// impl AnalysisSink for StoreCounter {
///     fn name(&self) -> &'static str {
///         "store-counter"
///     }
///
///     fn analyze(&mut self, _m: &Machine, _p: &Profile) -> Result<AnalysisReport, NmoError> {
///         Ok(AnalysisReport::Text(format!("stores={}", self.stores)))
///     }
///
///     // Opt into sharding; without this override the session would fall
///     // back to feeding the sink serially.
///     fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
///         Some(self)
///     }
/// }
///
/// impl ShardableSink for StoreCounter {
///     fn make_shard(&mut self, _shard: usize, _ctx: &StreamContext) -> Box<dyn SinkShard> {
///         Box::new(StoreCounterShard { stores: 0 })
///     }
///
///     fn merge_final(&mut self, states: Vec<ShardState>) {
///         for state in states {
///             self.stores += *state.downcast::<u64>().expect("a StoreCounterShard state");
///         }
///     }
/// }
///
/// # fn main() {}
/// ```
pub trait ShardableSink {
    /// Create the worker for shard `shard` (called once per shard at stream
    /// start, after [`AnalysisSink::on_stream_start`] ran on the parent).
    fn make_shard(&mut self, shard: usize, ctx: &StreamContext) -> Box<dyn SinkShard>;

    /// Merge one window's per-shard states, ascending by shard index, and
    /// run the sink's window-close logic over the merged view. Only called
    /// for sinks whose shards return `Some` from
    /// [`SinkShard::on_window_close`]; the default does nothing.
    ///
    /// The merge always gathers one state from **every allocated shard**,
    /// even when the adaptive controller has narrowed the *active* width
    /// mid-run: parked lanes keep their consumers, receive every window
    /// close, and contribute (possibly empty) states. Implementations must
    /// therefore tolerate states that saw no batches for the window, and
    /// must not assume the distribution of work across shards is stable
    /// over time — only that the *union* over shards is the full stream.
    fn merge_window(&mut self, _window: Window, _states: Vec<ShardState>) {}

    /// Merge the shards' final states, ascending by shard index (called
    /// once, after every lane drained). As with
    /// [`ShardableSink::merge_window`], every allocated shard contributes a
    /// state regardless of how the active-shard set changed during the run.
    fn merge_final(&mut self, states: Vec<ShardState>);
}

/// Level 1: temporal capacity usage (paper Section VI-A, Figure 2), split
/// per memory node on tiered topologies.
///
/// Streaming: merges the RSS tick batches into a step-event list and
/// resamples at [`AnalysisSink::finish`]; post-hoc: scans the machine's
/// recorded RSS series.
#[derive(Debug, Clone)]
pub struct CapacitySink {
    /// Number of evenly spaced output samples.
    pub buckets: usize,
    events: Vec<RssPoint>,
    /// DRAM capacity and node count latched from the stream context; `None`
    /// until streaming starts (the post-hoc marker).
    stream_geometry: Option<(u64, usize)>,
}

impl CapacitySink {
    /// A capacity sink emitting `buckets` evenly spaced samples.
    pub fn new(buckets: usize) -> Self {
        CapacitySink { buckets, events: Vec::new(), stream_geometry: None }
    }
}

impl Default for CapacitySink {
    fn default() -> Self {
        CapacitySink::new(200)
    }
}

impl AnalysisSink for CapacitySink {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn analyze(
        &mut self,
        machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Capacity(CapacitySeries::from_events(
            &machine.rss_series(),
            profile.elapsed_ns,
            machine.config().total_mem_bytes(),
            self.buckets,
            machine.config().mem_nodes(),
        )))
    }

    fn on_stream_start(&mut self, ctx: &StreamContext) {
        self.stream_geometry = Some((ctx.capacity_bytes, ctx.mem_nodes));
    }

    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::Rss { points } = batch.payload() {
            self.events.extend_from_slice(points);
        }
    }

    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        let Some((capacity_bytes, nodes)) = self.stream_geometry else {
            return self.analyze(machine, profile);
        };
        let mut events = std::mem::take(&mut self.events);
        events.sort_by_key(|e| e.time_ns);
        Ok(AnalysisReport::Capacity(CapacitySeries::from_events(
            &events,
            profile.elapsed_ns,
            capacity_bytes,
            self.buckets,
            nodes,
        )))
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        Some(self)
    }
}

/// One shard's RSS event collector (see [`CapacitySink`]). RSS batches are
/// core-less and therefore all ride lane 0, but the shard machinery keeps
/// the sink uniform with the others (and correct if that routing changes).
struct CapacityShard {
    events: Vec<RssPoint>,
}

impl SinkShard for CapacityShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::Rss { points } = batch.payload() {
            self.events.extend_from_slice(points);
        }
    }

    fn finish(self: Box<Self>) -> ShardState {
        Box::new(self.events)
    }
}

impl ShardableSink for CapacitySink {
    fn make_shard(&mut self, _shard: usize, _ctx: &StreamContext) -> Box<dyn SinkShard> {
        Box::new(CapacityShard { events: Vec::new() })
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        // Shard order fixes the concatenation; `finish` sorts by timestamp
        // anyway, so the merged series equals the serial one.
        for state in states {
            // unwrap-ok: `merge_final` only receives states built by this
            // sink's own `make_shard`, which always boxes Vec<RssPoint>.
            let events = state.downcast::<Vec<RssPoint>>().expect("a CapacityShard state");
            self.events.extend(*events);
        }
    }
}

/// Level 2: temporal bandwidth usage (paper Section VI-B, Figure 3), split
/// per memory node on tiered topologies.
///
/// Streaming: merges bandwidth tick batches per bucket (deliveries for the
/// same bucket sum their bytes, per node — the windowed merge); post-hoc:
/// scans the machine's aggregated bucket series.
#[derive(Debug, Clone, Default)]
pub struct BandwidthSink {
    /// Merged bus bytes per bucket *index*, split per memory node (points
    /// are binned to the bucket containing their timestamp, so unaligned
    /// deliveries cannot fall between buckets).
    merged: BTreeMap<u64, [u64; MAX_MEM_NODES]>,
    /// Bucket width and node count latched from the stream context; `None`
    /// until streaming starts (the post-hoc marker).
    stream_geometry: Option<(u64, usize)>,
}

impl BandwidthSink {
    /// A fresh bandwidth sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnalysisSink for BandwidthSink {
    fn name(&self) -> &'static str {
        "bandwidth"
    }

    fn analyze(
        &mut self,
        machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Bandwidth(BandwidthSeries::from_buckets(
            &machine.bandwidth_series(),
            profile.counters.flops,
            machine.config().mem_nodes(),
        )))
    }

    fn on_stream_start(&mut self, ctx: &StreamContext) {
        self.stream_geometry = Some((ctx.bucket_ns.max(1), ctx.mem_nodes));
    }

    fn on_batch(&mut self, batch: &SampleBatch) {
        let Some((bucket_ns, _)) = self.stream_geometry else { return };
        if let BatchPayload::Bandwidth { points } = batch.payload() {
            for p in points {
                let merged = self.merged.entry(p.time_ns / bucket_ns).or_insert([0; MAX_MEM_NODES]);
                for (node, bytes) in p.by_node.iter().enumerate() {
                    merged[node] += bytes;
                }
            }
        }
    }

    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        let Some((bucket_ns, nodes)) = self.stream_geometry else {
            return self.analyze(machine, profile);
        };
        let points: Vec<arch_sim::BandwidthPoint> = match self.merged.keys().next_back() {
            None => Vec::new(),
            Some(&last) => (0..=last)
                .map(|i| {
                    let by_node = self.merged.get(&i).copied().unwrap_or([0; MAX_MEM_NODES]);
                    let bytes: u64 = by_node.iter().sum();
                    arch_sim::BandwidthPoint {
                        time_ns: i * bucket_ns,
                        bytes,
                        by_node,
                        gib_per_s: bytes as f64 / (1u64 << 30) as f64 / (bucket_ns as f64 * 1e-9),
                    }
                })
                .collect(),
        };
        Ok(AnalysisReport::Bandwidth(BandwidthSeries::from_buckets(
            &points,
            profile.counters.flops,
            nodes,
        )))
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        Some(self)
    }
}

/// One shard's per-bucket traffic merge (see [`BandwidthSink`]).
struct BandwidthShard {
    bucket_ns: u64,
    merged: BTreeMap<u64, [u64; MAX_MEM_NODES]>,
}

impl SinkShard for BandwidthShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::Bandwidth { points } = batch.payload() {
            for p in points {
                let merged =
                    self.merged.entry(p.time_ns / self.bucket_ns).or_insert([0; MAX_MEM_NODES]);
                for (node, bytes) in p.by_node.iter().enumerate() {
                    merged[node] += bytes;
                }
            }
        }
    }

    fn finish(self: Box<Self>) -> ShardState {
        Box::new(self.merged)
    }
}

impl ShardableSink for BandwidthSink {
    fn make_shard(&mut self, _shard: usize, ctx: &StreamContext) -> Box<dyn SinkShard> {
        Box::new(BandwidthShard { bucket_ns: ctx.bucket_ns.max(1), merged: BTreeMap::new() })
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        // Per-bucket sums are exact integers, so the shard merge equals the
        // serial merge regardless of how deliveries were split.
        for state in states {
            let merged = state
                .downcast::<BTreeMap<u64, [u64; MAX_MEM_NODES]>>()
                // unwrap-ok: states come from this sink's own `make_shard`,
                // which always boxes this exact map type.
                .expect("a BandwidthShard state");
            for (bucket, by_node) in merged.into_iter() {
                let entry = self.merged.entry(bucket).or_insert([0; MAX_MEM_NODES]);
                for (node, bytes) in by_node.iter().enumerate() {
                    entry[node] += bytes;
                }
            }
        }
    }
}

/// Level 3: memory-region attribution (paper Section VI-C, Figures 4–6).
///
/// Streaming: buffers each window's SPE samples and attributes them when the
/// window closes (so phases bracketing the window are usually final),
/// merging into a running [`RegionAccumulator`]; post-hoc: one attribution
/// scan over the profile's samples.
#[derive(Debug, Default)]
pub struct RegionSink {
    accum: RegionAccumulator,
    pending: BTreeMap<u64, Vec<crate::runtime::AddressSample>>,
    annotations: Option<Arc<Annotations>>,
}

impl RegionSink {
    /// A fresh region sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn ingest_window(&mut self, index: u64) {
        let Some(samples) = self.pending.remove(&index) else { return };
        let Some(ann) = &self.annotations else { return };
        self.accum.ingest(&samples, &ann.tags(), &ann.phases());
    }
}

impl AnalysisSink for RegionSink {
    fn name(&self) -> &'static str {
        "regions"
    }

    fn analyze(
        &mut self,
        _machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Regions(attribute(&profile.samples, &profile.tags, &profile.phases)))
    }

    fn on_stream_start(&mut self, ctx: &StreamContext) {
        self.annotations = Some(ctx.annotations.clone());
    }

    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            self.pending.entry(batch.window.index).or_default().extend_from_slice(samples);
        }
    }

    fn on_window_close(&mut self, window: Window) {
        self.ingest_window(window.index);
    }

    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        if self.annotations.is_none() {
            return self.analyze(machine, profile);
        }
        // Merge any windows that never saw a close signal.
        let open: Vec<u64> = self.pending.keys().copied().collect();
        for index in open {
            self.ingest_window(index);
        }
        let accum = std::mem::take(&mut self.accum);
        Ok(AnalysisReport::Regions(accum.finalize(&profile.tags)))
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        Some(self)
    }
}

/// One shard's region attribution (see [`RegionSink`]): buffers its lane's
/// samples per window, attributes them against the then-current tags/phases
/// when the window closes, and hands its accumulator back for the ordered
/// final merge.
struct RegionShard {
    annotations: Arc<Annotations>,
    accum: RegionAccumulator,
    pending: BTreeMap<u64, Vec<crate::runtime::AddressSample>>,
}

impl RegionShard {
    fn ingest_window(&mut self, index: u64) {
        if let Some(samples) = self.pending.remove(&index) {
            self.accum.ingest(&samples, &self.annotations.tags(), &self.annotations.phases());
        }
    }
}

impl SinkShard for RegionShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            self.pending.entry(batch.window.index).or_default().extend_from_slice(samples);
        }
    }

    fn on_window_close(&mut self, window: Window) -> Option<ShardState> {
        self.ingest_window(window.index);
        None
    }

    fn finish(mut self: Box<Self>) -> ShardState {
        let open: Vec<u64> = self.pending.keys().copied().collect();
        for index in open {
            self.ingest_window(index);
        }
        Box::new(self.accum)
    }
}

impl ShardableSink for RegionSink {
    fn make_shard(&mut self, _shard: usize, ctx: &StreamContext) -> Box<dyn SinkShard> {
        Box::new(RegionShard {
            annotations: ctx.annotations.clone(),
            accum: RegionAccumulator::new(),
            pending: BTreeMap::new(),
        })
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        // Per-sample attribution is independent, so counts equal the serial
        // path's; scatter order is shard-major (deterministic by the fixed
        // merge order, though different from the serial interleaving).
        for state in states {
            // unwrap-ok: states come from this sink's own `make_shard`,
            // which always boxes a RegionAccumulator.
            let accum = state.downcast::<RegionAccumulator>().expect("a RegionShard state");
            self.accum.merge(*accum);
        }
    }
}

/// Per-tier latency distributions (the paper's DDR-vs-CXL latency figures):
/// one streaming log2-bucket histogram per SPE data source, with
/// interpolated p50/p90/p99.
///
/// Streaming: folds every sample of every batch into the per-source
/// histograms as it arrives (O(1) state per source — nothing is buffered);
/// post-hoc: one scan over the profile's samples. The histograms are
/// order-independent, so both paths produce identical reports.
#[derive(Debug, Default)]
pub struct LatencySink {
    profile: LatencyProfile,
    /// Set when streaming delivery started (the post-hoc marker).
    streaming: bool,
}

impl LatencySink {
    /// A fresh latency sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl AnalysisSink for LatencySink {
    fn name(&self) -> &'static str {
        "latency"
    }

    fn analyze(
        &mut self,
        _machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Latency(LatencyProfile::from_samples(&profile.samples)))
    }

    fn on_stream_start(&mut self, _ctx: &StreamContext) {
        self.streaming = true;
    }

    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            for s in samples {
                self.profile.record(s.source, s.latency);
            }
        }
    }

    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        if !self.streaming {
            return self.analyze(machine, profile);
        }
        Ok(AnalysisReport::Latency(std::mem::take(&mut self.profile)))
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        Some(self)
    }
}

/// One shard's latency histograms (see [`LatencySink`]). Histogram buckets
/// are exact counters, so the shard merge is bit-identical to the serial
/// fold in any order.
struct LatencyShard {
    profile: LatencyProfile,
}

impl SinkShard for LatencyShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            for s in samples {
                self.profile.record(s.source, s.latency);
            }
        }
    }

    fn finish(self: Box<Self>) -> ShardState {
        Box::new(self.profile)
    }
}

impl ShardableSink for LatencySink {
    fn make_shard(&mut self, _shard: usize, _ctx: &StreamContext) -> Box<dyn SinkShard> {
        Box::new(LatencyShard { profile: LatencyProfile::new() })
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        for state in states {
            // unwrap-ok: states come from this sink's own `make_shard`,
            // which always boxes a LatencyProfile.
            let profile = state.downcast::<LatencyProfile>().expect("a LatencyShard state");
            self.profile.merge(&profile);
        }
    }
}

/// The sinks the session registers by default for `config`, mirroring the
/// behaviour of the historical `Profiler`: capacity when RSS tracking is on,
/// bandwidth when bandwidth tracking is on. Region attribution and latency
/// histograms are *not* default sinks — they stay lazy via
/// [`Profile::regions`] / [`Profile::latency`] (many callers, e.g. the
/// sensitivity sweeps, never read them and should not pay the per-sample
/// scans); register [`RegionSink`] / [`LatencySink`] explicitly to compute
/// and cache them at session finish.
pub(crate) fn default_sinks(config: &crate::config::NmoConfig) -> Vec<Box<dyn AnalysisSink>> {
    let mut sinks: Vec<Box<dyn AnalysisSink>> = Vec::new();
    if config.track_rss {
        sinks.push(Box::new(CapacitySink::default()));
    }
    if config.track_bandwidth {
        sinks.push(Box::new(BandwidthSink::default()));
    }
    sinks
}

/// Run every sink's [`AnalysisSink::finish`] over the profile, recording
/// the reports and mirroring the standard capacity/bandwidth series into
/// the legacy fields. On the post-hoc path `finish` falls through to
/// `analyze`, so this single entry point serves both modes.
pub(crate) fn run_sinks(
    machine: &Machine,
    profile: &mut Profile,
    sinks: &mut [Box<dyn AnalysisSink>],
) -> Result<(), NmoError> {
    for sink in sinks {
        let report = sink.finish(machine, profile)?;
        match &report {
            AnalysisReport::Capacity(c) => profile.capacity = c.clone(),
            AnalysisReport::Bandwidth(b) => profile.bandwidth = b.clone(),
            AnalysisReport::Regions(_)
            | AnalysisReport::Latency(_)
            | AnalysisReport::Tiering(_)
            | AnalysisReport::Text(_) => {}
        }
        profile.analyses.push(AnalysisRecord { sink: sink.name().to_string(), report });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NmoConfig;
    use crate::runtime::AddressSample;
    use arch_sim::{BandwidthPoint, DataSource, MachineConfig};

    #[test]
    fn default_sinks_follow_config_flags() {
        let names = |cfg: &NmoConfig| -> Vec<&'static str> {
            default_sinks(cfg).iter().map(|s| s.name()).collect()
        };
        assert!(names(&NmoConfig::default()).contains(&"bandwidth"));
        assert_eq!(names(&NmoConfig::paper_default(100)), vec!["capacity", "bandwidth"]);
        let off = NmoConfig { track_bandwidth: false, ..NmoConfig::default() };
        assert!(names(&off).is_empty());
    }

    #[test]
    fn sinks_populate_profile_and_analyses() {
        let machine = Machine::new(MachineConfig::small_test());
        let region = machine.alloc("x", 1 << 16).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..4_096u64 {
                e.load(region.start + i * 8, 8);
            }
        }
        let mut profile = Profile::empty("t", NmoConfig::paper_default(100));
        profile.elapsed_ns = machine.makespan_ns();
        profile.counters = machine.counters();
        let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![
            Box::new(CapacitySink::default()),
            Box::new(BandwidthSink::default()),
            Box::new(RegionSink::default()),
        ];
        run_sinks(&machine, &mut profile, &mut sinks).unwrap();
        assert_eq!(profile.analyses.len(), 3);
        assert!(profile.capacity.peak_bytes > 0);
        assert!(profile.bandwidth.total_bytes > 0);
        assert!(matches!(profile.analyses[2].report, AnalysisReport::Regions(_)));
        assert!(!profile.analyses[0].report.is_empty());
    }

    /// A pre-streaming sink that only implements `analyze` still works via
    /// the default `finish` adapter — the compile-compatibility guarantee.
    #[test]
    fn legacy_sink_works_through_default_finish_adapter() {
        struct Legacy;
        impl AnalysisSink for Legacy {
            fn name(&self) -> &'static str {
                "legacy"
            }
            fn analyze(
                &mut self,
                _machine: &Machine,
                profile: &Profile,
            ) -> Result<AnalysisReport, NmoError> {
                Ok(AnalysisReport::Text(format!("samples={}", profile.processed_samples)))
            }
        }
        let machine = Machine::new(MachineConfig::small_test());
        let mut profile = Profile::empty("t", NmoConfig::default());
        profile.processed_samples = 42;
        let mut sinks: Vec<Box<dyn AnalysisSink>> = vec![Box::new(Legacy)];
        run_sinks(&machine, &mut profile, &mut sinks).unwrap();
        assert!(matches!(&profile.analyses[0].report,
            AnalysisReport::Text(t) if t == "samples=42"));
    }

    fn stream_ctx(annotations: Arc<Annotations>) -> StreamContext {
        StreamContext {
            annotations,
            capacity_bytes: 1 << 30,
            bucket_ns: 1000,
            mem_nodes: 2,
            page_bytes: 4096,
            machine: None,
        }
    }

    #[test]
    fn capacity_sink_merges_rss_batches_incrementally() {
        let machine = Machine::new(MachineConfig::small_test());
        let mut profile = Profile::empty("t", NmoConfig::default());
        profile.elapsed_ns = 4_000;
        let mut sink = CapacitySink::new(4);
        sink.on_stream_start(&stream_ctx(Arc::new(Annotations::new())));
        let clock = crate::stream::WindowClock::new(1000);
        for (i, rss) in [(0u64, 1u64 << 20), (1, 3 << 20), (2, 2 << 20)] {
            sink.on_batch(&SampleBatch::new(
                "machine",
                None,
                clock.window(i),
                BatchPayload::Rss { points: vec![arch_sim::RssPoint::flat(i * 1000, rss)] },
            ));
        }
        let report = sink.finish(&machine, &profile).unwrap();
        match report {
            AnalysisReport::Capacity(c) => {
                assert_eq!(c.peak_bytes, 3 << 20);
                assert_eq!(c.peak_bytes_by_node[0], 3 << 20);
                assert_eq!(c.nodes, 2, "node count latched from the stream context");
                assert!(!c.points.is_empty());
            }
            other => panic!("expected capacity report, got {other:?}"),
        }
    }

    #[test]
    fn bandwidth_sink_merges_same_bucket_deliveries() {
        let machine = Machine::new(MachineConfig::small_test());
        // The sink bins by the stream context's bucket width (1000 ns in
        // the test context), not by point alignment.
        let bucket_ns = 1000u64;
        let mut profile = Profile::empty("t", NmoConfig::default());
        profile.counters.flops = 1 << 20;
        let mut sink = BandwidthSink::new();
        sink.on_stream_start(&stream_ctx(Arc::new(Annotations::new())));
        let clock = crate::stream::WindowClock::new(1000);
        let bp = |time_ns: u64, bytes: u64| {
            let mut by_node = [0u64; MAX_MEM_NODES];
            by_node[0] = bytes;
            BandwidthPoint {
                time_ns,
                bytes,
                by_node,
                gib_per_s: 0.0, // recomputed by the sink
            }
        };
        // Two deliveries into bucket 0 (one of them mid-bucket, i.e. not
        // aligned to a bucket boundary) plus one into bucket 2.
        for (seq, points) in [
            (0u64, vec![bp(0, 1 << 20)]),
            (1, vec![bp(bucket_ns / 2, 1 << 20), bp(2 * bucket_ns, 1 << 21)]),
        ] {
            sink.on_batch(&SampleBatch::new(
                "machine",
                None,
                clock.window(seq),
                BatchPayload::Bandwidth { points },
            ));
        }
        let report = sink.finish(&machine, &profile).unwrap();
        match report {
            AnalysisReport::Bandwidth(b) => {
                assert_eq!(b.total_bytes, (1 << 21) + (1 << 21), "unaligned bytes are kept");
                assert_eq!(b.total_bytes_by_node[0], b.total_bytes, "all traffic on node 0");
                assert_eq!(b.points.len(), 3, "gap bucket 1 is zero-filled");
                // Bucket 0 merged 2 × 1 MiB, bucket 2 carries 2 MiB: equal rates.
                assert!((b.points[0].gib_per_s - b.points[2].gib_per_s).abs() < 1e-9);
                assert_eq!(b.points[1].gib_per_s, 0.0);
                assert!(b.arithmetic_intensity.is_some());
            }
            other => panic!("expected bandwidth report, got {other:?}"),
        }
    }

    fn mk_sample(time_ns: u64, vaddr: u64) -> AddressSample {
        AddressSample {
            time_ns,
            vaddr,
            core: 0,
            is_store: false,
            latency: 1,
            source: DataSource::L1,
        }
    }

    #[test]
    fn region_sink_attributes_windows_as_they_close() {
        let machine = Machine::new(MachineConfig::small_test());
        let mut profile = Profile::empty("t", NmoConfig::default());
        let annotations = Arc::new(Annotations::new());
        annotations.tag_addr("obj", 0x1000, 0x2000);
        profile.tags = annotations.tags();
        let mut sink = RegionSink::new();
        sink.on_stream_start(&stream_ctx(annotations.clone()));
        let clock = crate::stream::WindowClock::new(1000);
        sink.on_batch(&SampleBatch::new(
            "spe",
            None,
            clock.window(0),
            BatchPayload::SpeSamples {
                samples: vec![mk_sample(10, 0x1100), mk_sample(20, 0x9000)],
                loss: Default::default(),
            },
        ));
        sink.on_window_close(clock.window(0));
        // A window that never closes is still merged at finish.
        sink.on_batch(&SampleBatch::new(
            "spe",
            None,
            clock.window(1),
            BatchPayload::SpeSamples {
                samples: vec![mk_sample(1500, 0x1200)],
                loss: Default::default(),
            },
        ));
        let report = sink.finish(&machine, &profile).unwrap();
        match report {
            AnalysisReport::Regions(r) => {
                assert_eq!(r.scatter.len(), 3);
                assert_eq!(r.untagged_samples, 1);
                let obj = r.per_tag.iter().find(|t| t.name == "obj").unwrap();
                assert_eq!(obj.samples, 2);
            }
            other => panic!("expected regions report, got {other:?}"),
        }
    }

    #[test]
    fn latency_sink_streaming_matches_post_hoc() {
        let machine = Machine::new(MachineConfig::small_test());
        let samples: Vec<AddressSample> = (0..300u64)
            .map(|i| {
                let source = match i % 4 {
                    0 => DataSource::L1,
                    1 => DataSource::Slc,
                    2 => DataSource::Dram(0),
                    _ => DataSource::RemoteDram(1),
                };
                AddressSample {
                    time_ns: i * 10,
                    vaddr: 0x1000 + i,
                    core: 0,
                    is_store: false,
                    latency: (10 + (i * 13) % 900) as u16,
                    source,
                }
            })
            .collect();

        // Post-hoc path: analyze over the filled profile.
        let mut profile = Profile::empty("t", NmoConfig::default());
        profile.samples = samples.clone();
        let mut post_hoc_sink = LatencySink::new();
        let post_hoc = match post_hoc_sink.finish(&machine, &profile).unwrap() {
            AnalysisReport::Latency(l) => l,
            other => panic!("expected latency report, got {other:?}"),
        };

        // Streaming path: batches in arbitrary chunks.
        let mut sink = LatencySink::new();
        sink.on_stream_start(&stream_ctx(Arc::new(Annotations::new())));
        let clock = crate::stream::WindowClock::new(1000);
        for (seq, chunk) in samples.chunks(17).enumerate() {
            sink.on_batch(&SampleBatch::new(
                "spe",
                None,
                clock.window(seq as u64),
                BatchPayload::SpeSamples { samples: chunk.to_vec(), loss: Default::default() },
            ));
        }
        let empty_profile = Profile::empty("t", NmoConfig::default());
        let streamed = match sink.finish(&machine, &empty_profile).unwrap() {
            AnalysisReport::Latency(l) => l,
            other => panic!("expected latency report, got {other:?}"),
        };

        assert_eq!(streamed, post_hoc, "histograms are order-independent");
        assert_eq!(streamed.per_source.len(), 4);
        assert_eq!(streamed.total_count(), 300);
    }

    /// Feeding the same batch stream through N sink shards (partitioned by
    /// core) and merging in shard order must reproduce the serial sink's
    /// report — the `ShardableSink` contract for every standard sink.
    #[test]
    fn sharded_sinks_merge_to_the_serial_reports() {
        let machine = Machine::new(MachineConfig::small_test());
        let annotations = Arc::new(Annotations::new());
        annotations.tag_addr("obj", 0x1000, 0x40_000);
        let ctx = stream_ctx(annotations.clone());
        let clock = crate::stream::WindowClock::new(1000);
        let shards = 4usize;

        // A deterministic multi-core batch stream: 16 cores, 12 windows.
        let mut batches = Vec::new();
        for window in 0..12u64 {
            for core in 0..16usize {
                let samples: Vec<AddressSample> = (0..25u64)
                    .map(|i| {
                        let n = window * 400 + core as u64 * 25 + i;
                        AddressSample {
                            time_ns: window * 1000 + i * 40,
                            vaddr: 0x1000 + (n % 600) * 0x40,
                            core,
                            is_store: n.is_multiple_of(3),
                            latency: (20 + (n * 17) % 700) as u16,
                            source: if n.is_multiple_of(5) {
                                DataSource::RemoteDram(1)
                            } else if n.is_multiple_of(2) {
                                DataSource::Dram(0)
                            } else {
                                DataSource::L1
                            },
                        }
                    })
                    .collect();
                batches.push(SampleBatch::new(
                    "spe",
                    Some(core),
                    clock.window(window),
                    BatchPayload::SpeSamples { samples, loss: Default::default() },
                ));
            }
        }

        let profile = Profile::empty("t", NmoConfig::default());

        // Serial reference.
        let mut serial = RegionSink::new();
        serial.on_stream_start(&ctx);
        let mut serial_lat = LatencySink::new();
        serial_lat.on_stream_start(&ctx);
        for b in &batches {
            serial.on_batch(b);
            serial_lat.on_batch(b);
        }
        for w in 0..12u64 {
            serial.on_window_close(clock.window(w));
        }
        let serial_regions = match serial.finish(&machine, &profile).unwrap() {
            AnalysisReport::Regions(r) => r,
            other => panic!("expected regions, got {other:?}"),
        };
        let serial_latency = match serial_lat.finish(&machine, &profile).unwrap() {
            AnalysisReport::Latency(l) => l,
            other => panic!("expected latency, got {other:?}"),
        };

        // Sharded: partition by core hash, merge in shard order.
        let mut region = RegionSink::new();
        region.on_stream_start(&ctx);
        let mut latency = LatencySink::new();
        latency.on_stream_start(&ctx);
        let mut region_shards: Vec<Box<dyn SinkShard>> =
            (0..shards).map(|s| region.as_shardable().unwrap().make_shard(s, &ctx)).collect();
        let mut latency_shards: Vec<Box<dyn SinkShard>> =
            (0..shards).map(|s| latency.as_shardable().unwrap().make_shard(s, &ctx)).collect();
        for b in &batches {
            let lane = b.core.expect("spe batches carry a core") % shards;
            region_shards[lane].on_batch(b);
            latency_shards[lane].on_batch(b);
        }
        for w in 0..12u64 {
            for shard in region_shards.iter_mut().chain(latency_shards.iter_mut()) {
                assert!(shard.on_window_close(clock.window(w)).is_none());
            }
        }
        let states: Vec<ShardState> = region_shards.into_iter().map(|s| s.finish()).collect();
        region.as_shardable().unwrap().merge_final(states);
        let states: Vec<ShardState> = latency_shards.into_iter().map(|s| s.finish()).collect();
        latency.as_shardable().unwrap().merge_final(states);

        let sharded_regions = match region.finish(&machine, &profile).unwrap() {
            AnalysisReport::Regions(r) => r,
            other => panic!("expected regions, got {other:?}"),
        };
        let sharded_latency = match latency.finish(&machine, &profile).unwrap() {
            AnalysisReport::Latency(l) => l,
            other => panic!("expected latency, got {other:?}"),
        };

        assert_eq!(sharded_latency, serial_latency, "histogram merge is exact");
        assert_eq!(sharded_regions.per_tag, serial_regions.per_tag);
        assert_eq!(sharded_regions.per_phase, serial_regions.per_phase);
        assert_eq!(sharded_regions.untagged_samples, serial_regions.untagged_samples);
        assert_eq!(sharded_regions.scatter.len(), serial_regions.scatter.len());
    }

    /// A legacy sink (no `as_shardable` override) reports `None` — the
    /// serial-fallback marker the session keys off.
    #[test]
    fn legacy_sinks_are_not_shardable() {
        struct Legacy;
        impl AnalysisSink for Legacy {
            fn name(&self) -> &'static str {
                "legacy"
            }
            fn analyze(
                &mut self,
                _machine: &Machine,
                _profile: &Profile,
            ) -> Result<AnalysisReport, NmoError> {
                Ok(AnalysisReport::Text(String::new()))
            }
        }
        assert!(Legacy.as_shardable().is_none());
        assert!(CapacitySink::default().as_shardable().is_some());
        assert!(BandwidthSink::default().as_shardable().is_some());
        assert!(RegionSink::default().as_shardable().is_some());
        assert!(LatencySink::default().as_shardable().is_some());
    }
}
