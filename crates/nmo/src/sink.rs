//! Pluggable analysis sinks (the reporting seam of the profiler).
//!
//! The paper's three profiling levels — temporal capacity, temporal
//! bandwidth, and memory-region attribution — are implemented as
//! [`AnalysisSink`]s registered on a [`crate::session::ProfileSession`]
//! instead of hard-wired steps of the runtime. After the workload finishes
//! and the backends have filled in the raw run data, the session invokes
//! every registered sink and records its [`AnalysisReport`] on the
//! [`Profile`]; the standard capacity/bandwidth reports are additionally
//! mirrored into the corresponding [`Profile`] fields so existing consumers
//! keep working.

use arch_sim::Machine;

use crate::bandwidth::BandwidthSeries;
use crate::capacity::CapacitySeries;
use crate::regions::{attribute, RegionProfile};
use crate::runtime::Profile;
use crate::NmoError;

/// The output of one analysis sink.
#[derive(Debug, Clone)]
pub enum AnalysisReport {
    /// A capacity-over-time series (level 1).
    Capacity(CapacitySeries),
    /// A bandwidth-over-time series (level 2).
    Bandwidth(BandwidthSeries),
    /// A region-attribution profile (level 3).
    Regions(RegionProfile),
    /// Free-form textual output from a custom sink.
    Text(String),
}

impl AnalysisReport {
    /// Whether the report carries any data points / samples / text.
    pub fn is_empty(&self) -> bool {
        match self {
            AnalysisReport::Capacity(c) => c.points.is_empty(),
            AnalysisReport::Bandwidth(b) => b.points.is_empty(),
            AnalysisReport::Regions(r) => r.scatter.is_empty(),
            AnalysisReport::Text(t) => t.is_empty(),
        }
    }
}

/// One sink's named output, as stored on the [`Profile`].
#[derive(Debug, Clone)]
pub struct AnalysisRecord {
    /// Name of the sink that produced the report.
    pub sink: String,
    /// The report itself.
    pub report: AnalysisReport,
}

/// A pluggable analysis over a completed profiling run.
pub trait AnalysisSink: Send {
    /// Stable sink name (used in reports and error messages).
    fn name(&self) -> &'static str;

    /// Produce this sink's analysis of the (backend-filled) profile.
    fn analyze(&mut self, machine: &Machine, profile: &Profile)
        -> Result<AnalysisReport, NmoError>;
}

/// Level 1: temporal capacity usage (paper Section VI-A, Figure 2).
#[derive(Debug, Clone, Copy)]
pub struct CapacitySink {
    /// Number of evenly spaced output samples.
    pub buckets: usize,
}

impl Default for CapacitySink {
    fn default() -> Self {
        CapacitySink { buckets: 200 }
    }
}

impl AnalysisSink for CapacitySink {
    fn name(&self) -> &'static str {
        "capacity"
    }

    fn analyze(
        &mut self,
        machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Capacity(CapacitySeries::from_events(
            &machine.rss_series(),
            profile.elapsed_ns,
            machine.config().dram.capacity_bytes,
            self.buckets,
        )))
    }
}

/// Level 2: temporal bandwidth usage (paper Section VI-B, Figure 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct BandwidthSink;

impl AnalysisSink for BandwidthSink {
    fn name(&self) -> &'static str {
        "bandwidth"
    }

    fn analyze(
        &mut self,
        machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Bandwidth(BandwidthSeries::from_buckets(
            &machine.bandwidth_series(),
            profile.counters.flops,
        )))
    }
}

/// Level 3: memory-region attribution (paper Section VI-C, Figures 4–6).
#[derive(Debug, Clone, Copy, Default)]
pub struct RegionSink;

impl AnalysisSink for RegionSink {
    fn name(&self) -> &'static str {
        "regions"
    }

    fn analyze(
        &mut self,
        _machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        Ok(AnalysisReport::Regions(attribute(&profile.samples, &profile.tags, &profile.phases)))
    }
}

/// The sinks the session registers by default for `config`, mirroring the
/// behaviour of the historical `Profiler`: capacity when RSS tracking is on,
/// bandwidth when bandwidth tracking is on. Region attribution is *not* a
/// default sink — it stays lazy via [`Profile::regions`] (many callers, e.g.
/// the sensitivity sweeps, never read it and should not pay the per-sample
/// attribution scan); register [`RegionSink`] explicitly to compute and
/// cache it at session finish.
pub(crate) fn default_sinks(config: &crate::config::NmoConfig) -> Vec<Box<dyn AnalysisSink>> {
    let mut sinks: Vec<Box<dyn AnalysisSink>> = Vec::new();
    if config.track_rss {
        sinks.push(Box::new(CapacitySink::default()));
    }
    if config.track_bandwidth {
        sinks.push(Box::new(BandwidthSink));
    }
    sinks
}

/// Run every sink over the profile, recording the reports and mirroring the
/// standard capacity/bandwidth series into the legacy fields.
pub(crate) fn run_sinks(
    machine: &Machine,
    profile: &mut Profile,
    sinks: &mut [Box<dyn AnalysisSink>],
) -> Result<(), NmoError> {
    for sink in sinks {
        let report = sink.analyze(machine, profile)?;
        match &report {
            AnalysisReport::Capacity(c) => profile.capacity = c.clone(),
            AnalysisReport::Bandwidth(b) => profile.bandwidth = b.clone(),
            AnalysisReport::Regions(_) | AnalysisReport::Text(_) => {}
        }
        profile.analyses.push(AnalysisRecord { sink: sink.name().to_string(), report });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NmoConfig;
    use arch_sim::MachineConfig;

    #[test]
    fn default_sinks_follow_config_flags() {
        let names = |cfg: &NmoConfig| -> Vec<&'static str> {
            default_sinks(cfg).iter().map(|s| s.name()).collect()
        };
        assert!(names(&NmoConfig::default()).contains(&"bandwidth"));
        assert_eq!(names(&NmoConfig::paper_default(100)), vec!["capacity", "bandwidth"]);
        let off = NmoConfig { track_bandwidth: false, ..NmoConfig::default() };
        assert!(names(&off).is_empty());
    }

    #[test]
    fn sinks_populate_profile_and_analyses() {
        let machine = Machine::new(MachineConfig::small_test());
        let region = machine.alloc("x", 1 << 16).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for i in 0..4_096u64 {
                e.load(region.start + i * 8, 8);
            }
        }
        let mut profile = Profile::empty("t", NmoConfig::paper_default(100));
        profile.elapsed_ns = machine.makespan_ns();
        profile.counters = machine.counters();
        let mut sinks: Vec<Box<dyn AnalysisSink>> =
            vec![Box::new(CapacitySink::default()), Box::new(BandwidthSink), Box::new(RegionSink)];
        run_sinks(&machine, &mut profile, &mut sinks).unwrap();
        assert_eq!(profile.analyses.len(), 3);
        assert!(profile.capacity.peak_bytes > 0);
        assert!(profile.bandwidth.total_bytes > 0);
        assert!(matches!(profile.analyses[2].report, AnalysisReport::Regions(_)));
        assert!(!profile.analyses[0].report.is_empty());
    }
}
