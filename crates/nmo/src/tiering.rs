//! Profile-guided dynamic page tiering: close the loop from SPE address
//! samples to page placement.
//!
//! PR 3's tiered topology *reports* where data lives and what each tier
//! costs; this module *acts* on it. A [`HotPageTracker`] aggregates SPE
//! samples into per-page access counts and tier-resolved latency (decayed
//! window over window, so heat tracks the current phase rather than the
//! whole run), a pluggable [`TieringPolicy`] turns the per-page view into
//! [`MigrationDecision`]s at every window close, and the decisions are
//! applied mid-run through [`arch_sim::Machine::migrate_page`] — the
//! simulated analogue of a tiered-memory daemon moving hot pages from a
//! CXL expander back into socket DDR with `move_pages(2)`.
//!
//! Two actuation paths share the same tracker:
//!
//! * **Streaming** — register the tracker as an analysis sink
//!   ([`crate::session::ProfileSessionBuilder::sink`]); during a
//!   [`crate::session::ProfileSession::run_streaming`] run it consumes
//!   batches on the consumer thread and applies decisions whenever the
//!   producer watermark closes a window.
//! * **Manual / deterministic** — drive the workload in chunks and call
//!   [`crate::session::ActiveSession::tiering_step`] between them; drains,
//!   window closes, and migrations then happen at fixed points of the
//!   *simulated* timeline, so two identically configured runs reproduce
//!   the same decisions bit for bit (see `tests/tiering.rs`).
//!
//! The [`TieringReport`] records the applied migration log plus the
//! before/after per-tier latency distributions — the "remote p99 drops
//! toward local after promotion" figure of `examples/hot_page_migration.rs`.

use std::collections::BTreeMap;
use std::sync::Arc;

use arch_sim::{Machine, MachineConfig, NodeId};

use crate::latency::{LatencyHistogram, LatencyProfile};
use crate::runtime::{AddressSample, Profile};
use crate::sink::{
    AnalysisReport, AnalysisSink, ShardState, ShardableSink, SinkShard, StreamContext,
};
use crate::stream::{BatchPayload, SampleBatch, Window};
use crate::NmoError;

/// One policy decision: move the page at `page_addr` to `dst_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationDecision {
    /// Base virtual address of the page to move.
    pub page_addr: u64,
    /// The memory node to move it to (0 = local DDR).
    pub dst_node: NodeId,
}

/// One migration that was actually applied to the machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppliedMigration {
    /// Index of the closed window whose statistics triggered the decision.
    pub window: u64,
    /// Simulated time the migration was applied at, nanoseconds.
    pub time_ns: u64,
    /// Base virtual address of the moved page.
    pub page_addr: u64,
    /// Node the page lived on before.
    pub from: NodeId,
    /// Node the page lives on now.
    pub to: NodeId,
    /// Page size in bytes.
    pub bytes: u64,
    /// Whether the source node was on the remote tier.
    pub from_remote: bool,
    /// Whether the destination node is on the remote tier.
    pub to_remote: bool,
}

impl AppliedMigration {
    /// Remote → local move.
    pub fn is_promotion(&self) -> bool {
        self.from_remote && !self.to_remote
    }

    /// Local → remote move.
    pub fn is_demotion(&self) -> bool {
        !self.from_remote && self.to_remote
    }
}

/// Decayed per-page statistics, as exposed to policies via [`TieringView`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PageStats {
    /// Base virtual address of the page.
    pub page_addr: u64,
    /// Decayed count of *all* sampled accesses to the page (cache hits
    /// included — overall hotness).
    pub heat: f64,
    /// Decayed count of DRAM-class sampled accesses (the traffic a
    /// migration would actually move between nodes).
    pub dram_heat: f64,
    /// The node that served the page's most recent DRAM-class sample.
    pub node: NodeId,
    /// Whether that node is on the remote tier.
    pub remote: bool,
    /// Decayed mean latency of the page's DRAM-class samples, cycles.
    pub mean_dram_latency: f64,
    /// Total (undecayed) samples observed for the page over the run.
    pub samples: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct PageState {
    heat: f64,
    dram_heat: f64,
    node: NodeId,
    remote: bool,
    lat_sum: f64,
    lat_count: f64,
    samples: u64,
}

impl PageState {
    fn stats(&self, page_addr: u64) -> PageStats {
        PageStats {
            page_addr,
            heat: self.heat,
            dram_heat: self.dram_heat,
            node: self.node,
            remote: self.remote,
            mean_dram_latency: if self.lat_count > 0.0 {
                self.lat_sum / self.lat_count
            } else {
                0.0
            },
            samples: self.samples,
        }
    }
}

/// The point-in-window view a [`TieringPolicy`] decides over.
#[derive(Debug)]
pub struct TieringView<'a> {
    pages: &'a BTreeMap<u64, PageState>,
    local_dram: &'a LatencyHistogram,
}

impl TieringView<'_> {
    /// Number of pages currently tracked.
    pub fn len(&self) -> usize {
        self.pages.len()
    }

    /// Whether no pages are tracked yet.
    pub fn is_empty(&self) -> bool {
        self.pages.is_empty()
    }

    /// Every tracked page, ascending by address.
    pub fn pages(&self) -> impl Iterator<Item = PageStats> + '_ {
        self.pages.iter().map(|(addr, st)| st.stats(*addr))
    }

    /// The `k` hottest remote-tier pages by DRAM heat (ties broken by
    /// ascending address, so decisions are deterministic).
    pub fn hottest_remote(&self, k: usize) -> Vec<PageStats> {
        let mut remote: Vec<PageStats> = self.pages().filter(|p| p.remote).collect();
        remote.sort_by(|a, b| {
            b.dram_heat
                .partial_cmp(&a.dram_heat)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.page_addr.cmp(&b.page_addr))
        });
        remote.truncate(k);
        remote
    }

    /// Median latency of local-DRAM fills observed so far (0.0 until any
    /// local fill was sampled) — the baseline for latency-ratio policies.
    pub fn local_dram_p50(&self) -> f64 {
        self.local_dram.p50()
    }
}

/// A pluggable hot-page tiering policy: turn the tracker's per-page view
/// into migration decisions at each window close.
///
/// # Worked example
///
/// A custom policy promoting every remote page whose decayed DRAM heat
/// crosses a fixed cutoff:
///
/// ```
/// use nmo::tiering::{MigrationDecision, TieringPolicy, TieringView};
///
/// struct HotterThan {
///     cutoff: f64,
/// }
///
/// impl TieringPolicy for HotterThan {
///     fn name(&self) -> &'static str {
///         "hotter-than"
///     }
///
///     fn decide(&mut self, _window: u64, view: &TieringView<'_>) -> Vec<MigrationDecision> {
///         view.hottest_remote(usize::MAX)
///             .into_iter()
///             .filter(|page| page.dram_heat > self.cutoff)
///             .map(|page| MigrationDecision { page_addr: page.page_addr, dst_node: 0 })
///             .collect()
///     }
/// }
///
/// // Plug it into a tracker exactly like the shipped policies:
/// let tracker = nmo::tiering::HotPageTracker::new(HotterThan { cutoff: 8.0 });
/// assert_eq!(tracker.policy_name(), "hotter-than");
/// ```
pub trait TieringPolicy: Send {
    /// Stable policy name (recorded in the [`TieringReport`]).
    fn name(&self) -> &'static str;

    /// Decide which pages to move after window `window_index` closed. The
    /// tracker applies the decisions (pages that are no-ops — already home,
    /// not resident — are skipped by the machine) and updates its own view.
    fn decide(&mut self, window_index: u64, view: &TieringView<'_>) -> Vec<MigrationDecision>;

    /// Feedback after the tracker applied this window's decisions: only the
    /// migrations the machine actually performed (no-ops are filtered out).
    /// Budgeted policies charge their budget here rather than in
    /// [`TieringPolicy::decide`], so skipped decisions cost nothing.
    fn on_applied(&mut self, _applied: &[AppliedMigration]) {}
}

impl TieringPolicy for Box<dyn TieringPolicy> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn decide(&mut self, window_index: u64, view: &TieringView<'_>) -> Vec<MigrationDecision> {
        (**self).decide(window_index, view)
    }

    fn on_applied(&mut self, applied: &[AppliedMigration]) {
        (**self).on_applied(applied)
    }
}

/// The null policy: track, report, never migrate (the control arm of the
/// example's comparison).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoMigration;

impl TieringPolicy for NoMigration {
    fn name(&self) -> &'static str {
        "no-migration"
    }

    fn decide(&mut self, _window: u64, _view: &TieringView<'_>) -> Vec<MigrationDecision> {
        Vec::new()
    }
}

/// Every `interval` closed windows, promote the `k` hottest remote pages
/// (by decayed DRAM heat) to the local node.
#[derive(Debug, Clone, Copy)]
pub struct TopKHot {
    /// How many pages to promote per decision point.
    pub k: usize,
    /// Decide every this many closed windows (1 = every window).
    pub interval: u64,
    /// Ignore pages whose decayed DRAM heat is below this floor (avoids
    /// paying migration cost for pages that merely appeared once).
    pub min_dram_heat: f64,
    /// Total promotion budget in pages (`None` = unlimited) — the bounded
    /// migration bandwidth a real tiering daemon works under. Once spent,
    /// the policy stops deciding.
    pub budget: Option<u64>,
    /// Promotions actually applied so far (charged against `budget` via
    /// [`TieringPolicy::on_applied`], so no-op decisions cost nothing).
    spent: u64,
}

impl TopKHot {
    /// Promote the `k` hottest remote pages every `interval` windows, with
    /// the default heat floor of 1.0 and no promotion budget.
    pub fn new(k: usize, interval: u64) -> Self {
        TopKHot { k, interval, min_dram_heat: 1.0, budget: None, spent: 0 }
    }

    /// Cap the total number of pages this policy will ever promote.
    pub fn with_budget(mut self, pages: u64) -> Self {
        self.budget = Some(pages);
        self
    }
}

impl TieringPolicy for TopKHot {
    fn name(&self) -> &'static str {
        "top-k-hot"
    }

    fn decide(&mut self, window_index: u64, view: &TieringView<'_>) -> Vec<MigrationDecision> {
        let interval = self.interval.max(1);
        if !(window_index + 1).is_multiple_of(interval) {
            return Vec::new();
        }
        let take = match self.budget {
            Some(budget) => (budget.saturating_sub(self.spent) as usize).min(self.k),
            None => self.k,
        };
        if take == 0 {
            return Vec::new();
        }
        view.hottest_remote(take)
            .into_iter()
            .filter(|p| p.dram_heat >= self.min_dram_heat)
            .map(|p| MigrationDecision { page_addr: p.page_addr, dst_node: 0 })
            .collect()
    }

    fn on_applied(&mut self, applied: &[AppliedMigration]) {
        self.spent += applied.len() as u64;
    }
}

/// Promote every remote page whose mean DRAM latency exceeds
/// `p50_ratio` times the local-DRAM median — the "this page costs more
/// than local memory would" rule, driven entirely by SPE's per-sample
/// latency (the measurement counter-based profilers cannot make).
#[derive(Debug, Clone, Copy)]
pub struct LatencyThreshold {
    /// Promote when `page mean latency > p50_ratio * local DRAM p50`.
    pub p50_ratio: f64,
    /// Ignore pages whose decayed DRAM heat is below this floor.
    pub min_dram_heat: f64,
}

impl LatencyThreshold {
    /// Promote remote pages costing more than `p50_ratio` times the local
    /// median, with the default heat floor of 1.0.
    pub fn new(p50_ratio: f64) -> Self {
        LatencyThreshold { p50_ratio, min_dram_heat: 1.0 }
    }
}

impl TieringPolicy for LatencyThreshold {
    fn name(&self) -> &'static str {
        "latency-threshold"
    }

    fn decide(&mut self, _window: u64, view: &TieringView<'_>) -> Vec<MigrationDecision> {
        let local_p50 = view.local_dram_p50();
        if local_p50 <= 0.0 {
            // No local baseline yet: nothing to compare against.
            return Vec::new();
        }
        let cutoff = local_p50 * self.p50_ratio;
        view.hottest_remote(usize::MAX)
            .into_iter()
            .filter(|p| p.dram_heat >= self.min_dram_heat && p.mean_dram_latency > cutoff)
            .map(|p| MigrationDecision { page_addr: p.page_addr, dst_node: 0 })
            .collect()
    }
}

/// The output of a tiering run: what moved, and what it did to the per-tier
/// latency distributions.
#[derive(Debug, Clone)]
pub struct TieringReport {
    /// Name of the policy that decided.
    pub policy: String,
    /// Distinct pages ever tracked over the run.
    pub pages_tracked: u64,
    /// Windows the tracker saw close.
    pub windows_closed: u64,
    /// The applied migration log, in application order.
    pub applied: Vec<AppliedMigration>,
    /// Latency distributions of samples observed *before* the first applied
    /// migration (the whole run when nothing migrated).
    pub before: LatencyProfile,
    /// Latency distributions of samples observed *after* the first applied
    /// migration (empty when nothing migrated). Includes the transition
    /// period while migrations were still being applied; use
    /// [`TieringReport::settled`] for the steady state.
    pub after: LatencyProfile,
    /// Latency distributions of samples observed after the *last* applied
    /// migration — the settled steady state the policy converged to (empty
    /// when nothing migrated).
    pub settled: LatencyProfile,
}

impl TieringReport {
    /// Whether the report carries any data at all.
    pub fn is_empty(&self) -> bool {
        self.applied.is_empty() && self.before.is_empty() && self.after.is_empty()
    }

    /// Applied migrations.
    pub fn migrations(&self) -> u64 {
        self.applied.len() as u64
    }

    /// Bytes moved remote → local.
    pub fn promoted_bytes(&self) -> u64 {
        self.applied.iter().filter(|m| m.is_promotion()).map(|m| m.bytes).sum()
    }

    /// Bytes moved local → remote.
    pub fn demoted_bytes(&self) -> u64 {
        self.applied.iter().filter(|m| m.is_demotion()).map(|m| m.bytes).sum()
    }
}

/// Heat below which a decayed page is dropped from the tracker (bounds the
/// tracked set to pages warm in the recent windows).
const EVICT_HEAT: f64 = 1.0 / 64.0;

/// The hot-page streaming aggregator and actuator (see the module docs).
///
/// As an [`AnalysisSink`] it consumes `SpeSamples` batches, decays its
/// per-page counters at every window close, asks its [`TieringPolicy`] for
/// decisions, and — when a machine handle is available (always, on a
/// streaming session) — applies them via [`Machine::migrate_page`]. On the
/// manual path, [`crate::session::ActiveSession::tiering_step`] drives the
/// same state machine synchronously.
pub struct HotPageTracker {
    policy: Box<dyn TieringPolicy>,
    /// Multiplier applied to every page's heat at each window close.
    decay: f64,
    page_bytes: u64,
    freq_hz: u64,
    configured: bool,
    /// Actuation target on the streaming path (latched at stream start).
    machine: Option<Arc<Machine>>,
    /// Set once streaming (or manual stepping) delivered data — the marker
    /// telling `finish` not to re-scan the profile.
    fed_incrementally: bool,
    pages: BTreeMap<u64, PageState>,
    /// Authoritative homes of pages this tracker migrated: late batches may
    /// still carry pre-migration samples, which must not flip the page's
    /// tier back in the view (and re-trigger decisions for it).
    pinned: BTreeMap<u64, (NodeId, bool)>,
    pages_tracked: u64,
    windows_closed: u64,
    local_dram: LatencyHistogram,
    /// Latency profiles segmented by migration activity: a new segment
    /// opens whenever a window close applies at least one migration, so
    /// segment 0 is "before any migration" and the last segment is the
    /// settled state after the final one. Bounded by the number of
    /// migration-applying closes, not by run length.
    segments: Vec<LatencyProfile>,
    applied: Vec<AppliedMigration>,
    last_seen_ns: u64,
}

impl std::fmt::Debug for HotPageTracker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HotPageTracker")
            .field("policy", &self.policy.name())
            .field("pages", &self.pages.len())
            .field("applied", &self.applied.len())
            .finish()
    }
}

impl HotPageTracker {
    /// A tracker deciding with `policy`, with the default half-life decay
    /// of 0.5 per window and a 64 KiB page size until configured from a
    /// machine (both actuation paths configure it automatically).
    pub fn new(policy: impl TieringPolicy + 'static) -> Self {
        HotPageTracker {
            policy: Box::new(policy),
            decay: 0.5,
            page_bytes: 64 * 1024,
            freq_hz: 1_000_000_000,
            configured: false,
            machine: None,
            fed_incrementally: false,
            pages: BTreeMap::new(),
            pinned: BTreeMap::new(),
            pages_tracked: 0,
            windows_closed: 0,
            local_dram: LatencyHistogram::new(),
            segments: vec![LatencyProfile::new()],
            applied: Vec::new(),
            last_seen_ns: 0,
        }
    }

    /// Override the per-window heat decay (clamped to `[0, 1]`; 1.0 never
    /// forgets, 0.0 considers only the last window).
    pub fn with_decay(mut self, decay: f64) -> Self {
        self.decay = decay.clamp(0.0, 1.0);
        self
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Migrations applied so far, in order.
    pub fn applied(&self) -> &[AppliedMigration] {
        &self.applied
    }

    /// Latch page geometry and clock frequency from a machine configuration
    /// (idempotent; called by both actuation paths).
    pub(crate) fn configure(&mut self, cfg: &MachineConfig) {
        if !self.configured {
            self.page_bytes = cfg.page_bytes;
            self.freq_hz = cfg.freq_hz;
            self.configured = true;
        }
    }

    /// Fold one decoded sample into the per-page state.
    pub fn observe(&mut self, s: &AddressSample) {
        let page_addr = s.vaddr & !(self.page_bytes - 1);
        let entry = self.pages.entry(page_addr).or_insert_with(|| {
            self.pages_tracked += 1;
            PageState::default()
        });
        entry.heat += 1.0;
        entry.samples += 1;
        if s.source.is_dram_class() {
            entry.dram_heat += 1.0;
            // A migrated page's home is pinned: a late batch carrying
            // pre-migration samples must not flip the tier back.
            let (node, remote) = match self.pinned.get(&page_addr) {
                Some(&(node, remote)) => (node, remote),
                None => (s.source.node().unwrap_or(0), s.source.is_remote()),
            };
            entry.node = node;
            entry.remote = remote;
            entry.lat_sum += s.latency as f64;
            entry.lat_count += 1.0;
            if !s.source.is_remote() {
                self.local_dram.record(s.latency);
            }
        }
        // unwrap-ok: `segments` starts as vec![one profile] and is only
        // ever pushed to, never drained.
        self.segments.last_mut().expect("segments never empty").record(s.source, s.latency);
        self.last_seen_ns = self.last_seen_ns.max(s.time_ns);
    }

    /// Fold every SPE sample of a batch into the tracker.
    pub fn ingest(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            for s in samples {
                self.observe(s);
            }
        }
    }

    /// Close one window: decide on the pre-decay heat, apply the decisions
    /// to `machine` (when present), then decay every page and evict the
    /// cold ones. Returns the migrations applied for this window.
    pub fn close_window(
        &mut self,
        window: Window,
        machine: Option<&Machine>,
    ) -> Vec<AppliedMigration> {
        self.windows_closed += 1;
        let decisions = {
            let view = TieringView { pages: &self.pages, local_dram: &self.local_dram };
            self.policy.decide(window.index, &view)
        };
        let mut applied = Vec::new();
        if let Some(machine) = machine {
            // Timestamp migrations at the close watermark: never before the
            // newest sample that informed the decision.
            let now_ns = window.end_ns.max(self.last_seen_ns);
            let now_cycles = machine.config().ns_to_cycles(now_ns);
            for decision in decisions {
                // An Err means an unknown node — a policy bug, not a data
                // race — so treat it like the not-migratable no-op.
                let outcome = machine
                    .migrate_page(decision.page_addr, decision.dst_node, now_cycles)
                    .unwrap_or_default();
                let Some(migration) = outcome else { continue };
                let topology = machine.topology();
                let done = AppliedMigration {
                    window: window.index,
                    time_ns: now_ns,
                    page_addr: migration.page_addr,
                    from: migration.from,
                    to: migration.to,
                    bytes: migration.bytes,
                    from_remote: topology.node(migration.from).is_remote(),
                    to_remote: topology.node(migration.to).is_remote(),
                };
                if let Some(state) = self.pages.get_mut(&migration.page_addr) {
                    state.node = migration.to;
                    state.remote = done.to_remote;
                }
                self.pinned.insert(migration.page_addr, (migration.to, done.to_remote));
                applied.push(done);
            }
        }
        if !applied.is_empty() {
            self.policy.on_applied(&applied);
            // Open a new latency segment: samples from here on ran against
            // the updated placement.
            self.segments.push(LatencyProfile::new());
        }
        self.applied.extend_from_slice(&applied);
        // Decay after deciding: decisions see the freshest heat.
        self.pages.retain(|_, st| {
            st.heat *= self.decay;
            st.dram_heat *= self.decay;
            st.lat_sum *= self.decay;
            st.lat_count *= self.decay;
            st.heat >= EVICT_HEAT
        });
        applied
    }

    /// The report assembled from everything observed so far.
    pub fn report(&self) -> TieringReport {
        let before = self.segments[0].clone();
        let mut after = LatencyProfile::new();
        for segment in &self.segments[1..] {
            after.merge(segment);
        }
        let settled = if self.segments.len() > 1 {
            // unwrap-ok: `segments` starts non-empty and only grows.
            self.segments.last().expect("segments never empty").clone()
        } else {
            LatencyProfile::new()
        };
        TieringReport {
            policy: self.policy.name().to_string(),
            pages_tracked: self.pages_tracked,
            windows_closed: self.windows_closed,
            applied: self.applied.clone(),
            before,
            after,
            settled,
        }
    }
}

/// One page's contribution from one shard's slice of one window (the unit
/// of the tracker's deterministic window-close merge).
#[derive(Debug, Clone, Copy, Default)]
struct PageDelta {
    heat: f64,
    dram_heat: f64,
    samples: u64,
    lat_sum: f64,
    lat_count: f64,
    /// Node/tier of the *last* DRAM-class sample this shard saw for the
    /// page (only meaningful when `saw_dram`).
    node: NodeId,
    remote: bool,
    saw_dram: bool,
}

/// One shard's per-window digest of the sample stream: per-page deltas plus
/// the latency contributions the tracker folds into its segments and
/// local-DRAM baseline at merge time.
#[derive(Debug, Default)]
struct TrackerDigest {
    pages: BTreeMap<u64, PageDelta>,
    local_dram: LatencyHistogram,
    latency: LatencyProfile,
    last_seen_ns: u64,
}

impl TrackerDigest {
    fn observe(&mut self, s: &AddressSample, page_bytes: u64) {
        let page_addr = s.vaddr & !(page_bytes - 1);
        let delta = self.pages.entry(page_addr).or_default();
        delta.heat += 1.0;
        delta.samples += 1;
        if s.source.is_dram_class() {
            delta.dram_heat += 1.0;
            delta.node = s.source.node().unwrap_or(0);
            delta.remote = s.source.is_remote();
            delta.saw_dram = true;
            delta.lat_sum += s.latency as f64;
            delta.lat_count += 1.0;
            if !s.source.is_remote() {
                self.local_dram.record(s.latency);
            }
        }
        self.latency.record(s.source, s.latency);
        self.last_seen_ns = self.last_seen_ns.max(s.time_ns);
    }

    /// Fold `other` into this digest (used for the shard's leftover windows
    /// at finish; ascending window order keeps it deterministic).
    fn absorb(&mut self, other: TrackerDigest) {
        for (page_addr, delta) in other.pages {
            let mine = self.pages.entry(page_addr).or_default();
            mine.heat += delta.heat;
            mine.dram_heat += delta.dram_heat;
            mine.samples += delta.samples;
            mine.lat_sum += delta.lat_sum;
            mine.lat_count += delta.lat_count;
            if delta.saw_dram {
                mine.node = delta.node;
                mine.remote = delta.remote;
                mine.saw_dram = true;
            }
        }
        self.local_dram.merge(&other.local_dram);
        self.latency.merge(&other.latency);
        self.last_seen_ns = self.last_seen_ns.max(other.last_seen_ns);
    }
}

/// One shard's worker for a sharded [`HotPageTracker`]: it digests its
/// lane's samples *per window* and hands each window's digest back at the
/// window close, so the parent tracker merges the shards in ascending shard
/// index and decides over the globally merged heat — sharded decisions are
/// therefore a deterministic function of the per-window sample sets, not of
/// cross-lane arrival timing.
struct TrackerShard {
    page_bytes: u64,
    pending: BTreeMap<u64, TrackerDigest>,
}

impl SinkShard for TrackerShard {
    fn on_batch(&mut self, batch: &SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
            let digest = self.pending.entry(batch.window.index).or_default();
            for s in samples {
                digest.observe(s, self.page_bytes);
            }
        }
    }

    fn on_window_close(&mut self, window: Window) -> Option<ShardState> {
        Some(Box::new(self.pending.remove(&window.index).unwrap_or_default()))
    }

    fn finish(self: Box<Self>) -> ShardState {
        // Late windows that never saw a close: fold them into one leftover
        // digest, ascending by window index.
        let mut leftover = TrackerDigest::default();
        for (_, digest) in self.pending {
            leftover.absorb(digest);
        }
        Box::new(leftover)
    }
}

impl HotPageTracker {
    /// Merge one digest into the tracker's live per-page state (pinned
    /// homes override the digest's tier view, exactly like
    /// [`HotPageTracker::observe`] does on the serial path).
    fn absorb_digest(&mut self, digest: TrackerDigest) {
        for (page_addr, delta) in digest.pages {
            let entry = self.pages.entry(page_addr).or_insert_with(|| {
                self.pages_tracked += 1;
                PageState::default()
            });
            entry.heat += delta.heat;
            entry.dram_heat += delta.dram_heat;
            entry.samples += delta.samples;
            entry.lat_sum += delta.lat_sum;
            entry.lat_count += delta.lat_count;
            if delta.saw_dram {
                let (node, remote) = match self.pinned.get(&page_addr) {
                    Some(&(node, remote)) => (node, remote),
                    None => (delta.node, delta.remote),
                };
                entry.node = node;
                entry.remote = remote;
            }
        }
        self.local_dram.merge(&digest.local_dram);
        // unwrap-ok: `segments` starts non-empty and only grows.
        self.segments.last_mut().expect("segments never empty").merge(&digest.latency);
        self.last_seen_ns = self.last_seen_ns.max(digest.last_seen_ns);
    }
}

impl ShardableSink for HotPageTracker {
    fn make_shard(&mut self, _shard: usize, ctx: &StreamContext) -> Box<dyn SinkShard> {
        let page_bytes = if self.configured { self.page_bytes } else { ctx.page_bytes };
        Box::new(TrackerShard { page_bytes, pending: BTreeMap::new() })
    }

    fn merge_window(&mut self, window: Window, states: Vec<ShardState>) {
        for state in states {
            // unwrap-ok: states come from this sink's own `make_shard`,
            // which always boxes a TrackerDigest.
            let digest = state.downcast::<TrackerDigest>().expect("a TrackerShard digest");
            self.absorb_digest(*digest);
        }
        let machine = self.machine.clone();
        self.close_window(window, machine.as_deref());
    }

    fn merge_final(&mut self, states: Vec<ShardState>) {
        for state in states {
            // unwrap-ok: states come from this sink's own `make_shard`,
            // which always boxes a TrackerDigest.
            let digest = state.downcast::<TrackerDigest>().expect("a TrackerShard digest");
            self.absorb_digest(*digest);
        }
    }
}

impl AnalysisSink for HotPageTracker {
    fn name(&self) -> &'static str {
        "tiering"
    }

    fn analyze(
        &mut self,
        machine: &Machine,
        profile: &Profile,
    ) -> Result<AnalysisReport, NmoError> {
        // Post-hoc: one scan over the decoded samples. No actuation — the
        // run is over; the report still carries the heat/latency view.
        self.configure(machine.config());
        for s in &profile.samples {
            self.observe(s);
        }
        Ok(AnalysisReport::Tiering(self.report()))
    }

    fn on_stream_start(&mut self, ctx: &StreamContext) {
        self.fed_incrementally = true;
        if let Some(machine) = &ctx.machine {
            self.configure(machine.config());
            self.machine = Some(machine.clone());
        } else if !self.configured {
            // Machine-less stream (a trace replay): latch the page size
            // from the recorded geometry so page aggregation is identical
            // to the live run the trace was captured from.
            self.page_bytes = ctx.page_bytes;
            self.configured = true;
        }
    }

    fn on_batch(&mut self, batch: &SampleBatch) {
        self.ingest(batch);
    }

    fn on_window_close(&mut self, window: Window) {
        let machine = self.machine.clone();
        self.close_window(window, machine.as_deref());
    }

    fn finish(&mut self, machine: &Machine, profile: &Profile) -> Result<AnalysisReport, NmoError> {
        if !self.fed_incrementally {
            return self.analyze(machine, profile);
        }
        Ok(AnalysisReport::Tiering(self.report()))
    }

    fn as_shardable(&mut self) -> Option<&mut dyn ShardableSink> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::WindowClock;
    use arch_sim::{DataSource, MachineConfig, PlacementPolicy};

    fn sample(vaddr: u64, source: DataSource, latency: u16, time_ns: u64) -> AddressSample {
        AddressSample { time_ns, vaddr, core: 0, is_store: false, latency, source }
    }

    fn fill_tracker(tracker: &mut HotPageTracker) {
        // Page 0x10000: very hot, remote, slow. Page 0x20000: lukewarm,
        // remote. Page 0x30000: hot but local. Page 0x40000: cache-served.
        for i in 0..32u64 {
            tracker.observe(&sample(0x10000 + i * 8, DataSource::RemoteDram(1), 900, i));
        }
        for i in 0..4u64 {
            tracker.observe(&sample(0x20000 + i * 8, DataSource::RemoteDram(1), 880, 100 + i));
        }
        for i in 0..16u64 {
            tracker.observe(&sample(0x30000 + i * 8, DataSource::Dram(0), 120, 200 + i));
        }
        for i in 0..8u64 {
            tracker.observe(&sample(0x40000 + i * 8, DataSource::L1, 4, 300 + i));
        }
    }

    #[test]
    fn tracker_aggregates_per_page_heat_and_latency() {
        let mut tracker = HotPageTracker::new(NoMigration);
        fill_tracker(&mut tracker);
        let view = TieringView { pages: &tracker.pages, local_dram: &tracker.local_dram };
        assert_eq!(view.len(), 4);
        let pages: Vec<PageStats> = view.pages().collect();
        assert_eq!(pages[0].page_addr, 0x10000);
        assert_eq!(pages[0].heat, 32.0);
        assert_eq!(pages[0].dram_heat, 32.0);
        assert!(pages[0].remote);
        assert!((pages[0].mean_dram_latency - 900.0).abs() < 1e-9);
        assert!(!pages[2].remote);
        assert_eq!(pages[3].dram_heat, 0.0, "cache hits carry no DRAM heat");
        let hottest = view.hottest_remote(1);
        assert_eq!(hottest.len(), 1);
        assert_eq!(hottest[0].page_addr, 0x10000);
        assert!(view.local_dram_p50() > 0.0);
    }

    #[test]
    fn decay_cools_and_evicts_pages() {
        let mut tracker = HotPageTracker::new(NoMigration).with_decay(0.5);
        fill_tracker(&mut tracker);
        let clock = WindowClock::new(1000);
        tracker.close_window(clock.window(0), None);
        assert!((tracker.pages[&0x10000].heat - 16.0).abs() < 1e-9);
        // Ten more closes decay the lukewarm page below the eviction floor.
        for w in 1..12 {
            tracker.close_window(clock.window(w), None);
        }
        assert!(!tracker.pages.contains_key(&0x20000), "cold page evicted");
        assert_eq!(tracker.report().pages_tracked, 4, "tracked count is historical");
        assert_eq!(tracker.report().windows_closed, 12);
    }

    #[test]
    fn top_k_hot_promotes_hottest_remote_pages_on_its_interval() {
        let mut policy = TopKHot::new(1, 2);
        let mut tracker = HotPageTracker::new(NoMigration);
        fill_tracker(&mut tracker);
        let view = TieringView { pages: &tracker.pages, local_dram: &tracker.local_dram };
        assert!(policy.decide(0, &view).is_empty(), "window 0 is off-interval");
        let decisions = policy.decide(1, &view);
        assert_eq!(decisions, vec![MigrationDecision { page_addr: 0x10000, dst_node: 0 }]);
        // The heat floor suppresses barely-seen pages.
        let mut strict = TopKHot { min_dram_heat: 16.0, ..TopKHot::new(8, 1) };
        let decisions = strict.decide(0, &view);
        assert_eq!(decisions.len(), 1, "only the hot page clears the floor");
        // A budget caps the total promotions ever *applied*; decisions the
        // machine no-ops cost nothing.
        let mut frugal = TopKHot::new(8, 1).with_budget(1);
        assert_eq!(frugal.decide(0, &view).len(), 1, "budget caps how many are proposed");
        assert_eq!(frugal.decide(1, &view).len(), 1, "un-applied decisions are free");
        frugal.on_applied(&[AppliedMigration {
            window: 1,
            time_ns: 0,
            page_addr: 0x10000,
            from: 1,
            to: 0,
            bytes: 4096,
            from_remote: true,
            to_remote: false,
        }]);
        assert!(frugal.decide(2, &view).is_empty(), "budget spent once applied");
    }

    #[test]
    fn latency_threshold_promotes_expensive_remote_pages() {
        let mut policy = LatencyThreshold::new(3.0);
        let mut tracker = HotPageTracker::new(NoMigration);
        fill_tracker(&mut tracker);
        let view = TieringView { pages: &tracker.pages, local_dram: &tracker.local_dram };
        let decisions = policy.decide(0, &view);
        // Both remote pages cost ~900c against a local p50 of ~120c.
        assert_eq!(decisions.len(), 2);
        assert!(decisions.iter().all(|d| d.dst_node == 0));

        // Without a local baseline the policy stays quiet.
        let mut cold = HotPageTracker::new(NoMigration);
        cold.observe(&sample(0x10000, DataSource::RemoteDram(1), 900, 1));
        let view = TieringView { pages: &cold.pages, local_dram: &cold.local_dram };
        assert!(policy.decide(0, &view).is_empty());
    }

    #[test]
    fn close_window_applies_decisions_to_the_machine() {
        let machine = Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.0,
        }));
        let page = machine.config().page_bytes;
        let region = machine.alloc("data", 4 * page).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            for p in 0..4u64 {
                e.store(region.start + p * page, 8);
            }
        }
        let mut tracker = HotPageTracker::new(TopKHot::new(2, 1));
        tracker.configure(machine.config());
        for i in 0..16u64 {
            tracker.observe(&sample(region.start + i % 8, DataSource::RemoteDram(1), 700, i));
            tracker.observe(&sample(
                region.start + page + (i % 8),
                DataSource::RemoteDram(1),
                700,
                i,
            ));
        }
        let clock = WindowClock::new(1000);
        let applied = tracker.close_window(clock.window(0), Some(&machine));
        assert_eq!(applied.len(), 2);
        assert!(applied.iter().all(|m| m.is_promotion() && !m.is_demotion()));
        assert_eq!(machine.migration_stats().promoted_pages, 2);
        assert_eq!(machine.vm().node_of(region.start), Some(0));
        assert_eq!(machine.vm().node_of(region.start + page), Some(0));
        // The tracker's own view follows the move: nothing remote remains
        // above the floor, so the next close applies nothing.
        let applied = tracker.close_window(clock.window(1), Some(&machine));
        assert!(applied.is_empty());
        // Samples after the first migration land in the `after` profile.
        tracker.observe(&sample(region.start, DataSource::Dram(0), 120, 5000));
        let report = tracker.report();
        assert_eq!(report.migrations(), 2);
        assert_eq!(report.promoted_bytes(), 2 * page);
        assert_eq!(report.demoted_bytes(), 0);
        assert_eq!(report.after.total_count(), 1);
        assert_eq!(report.settled, report.after, "one migration epoch: settled == after");
        assert!(report.before.total_count() > 0);
        assert!(!report.is_empty());
    }

    /// The sharded tracker contract: partitioning a per-window sample
    /// stream over N shards and merging digests in shard order at each
    /// window close must reproduce the serial tracker's state — same heat,
    /// same latency segments, and (with a machine attached) the same
    /// migration decisions.
    #[test]
    fn sharded_tracker_merge_matches_serial_ingestion() {
        use crate::stream::SampleBatch;

        let machine = || {
            Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
                local_fraction: 0.0,
            }))
        };
        let serial_machine = machine();
        let sharded_machine = machine();
        let page = serial_machine.config().page_bytes;
        let clock = WindowClock::new(1000);
        let shards = 4usize;

        // Touch 6 pages so they are resident (remote under TierSplit 0.0).
        let touch = |m: &Machine| {
            let region = m.alloc("data", 6 * page).unwrap();
            let mut e = m.attach(0).unwrap();
            for p in 0..6u64 {
                e.store(region.start + p * page, 8);
            }
            region.start
        };
        let serial_base = touch(&serial_machine);
        let sharded_base = touch(&sharded_machine);
        assert_eq!(serial_base, sharded_base, "identical machines place identically");

        // A deterministic windowed stream over 8 cores: page p is hammered
        // in proportion to its index, so the top-k choice is unambiguous.
        let batches_for = |base: u64| {
            let mut batches = Vec::new();
            for window in 0..4u64 {
                for core in 0..8usize {
                    let samples: Vec<AddressSample> = (0..12u64)
                        .map(|i| {
                            let p = (i + core as u64) % 6;
                            sample(
                                base + p * page + (i % 8) * 64,
                                DataSource::RemoteDram(1),
                                700 + (p * 10) as u16,
                                window * 1000 + i * 80,
                            )
                        })
                        .collect();
                    batches.push(SampleBatch::new(
                        "spe",
                        Some(core),
                        clock.window(window),
                        BatchPayload::SpeSamples { samples, loss: Default::default() },
                    ));
                }
            }
            batches
        };

        // Serial reference: ingest in stream order, close each window.
        let mut serial = HotPageTracker::new(TopKHot::new(2, 1));
        serial.configure(serial_machine.config());
        let mut serial_applied = Vec::new();
        for window in 0..4u64 {
            for b in batches_for(serial_base).iter().filter(|b| b.window.index == window) {
                serial.ingest(b);
            }
            serial_applied.extend(serial.close_window(clock.window(window), Some(&serial_machine)));
        }

        // Sharded: per-core lanes, window digests merged in shard order.
        let mut sharded = HotPageTracker::new(TopKHot::new(2, 1));
        sharded.configure(sharded_machine.config());
        sharded.machine = Some(Arc::new(sharded_machine));
        let ctx = StreamContext {
            annotations: Arc::new(crate::annotate::Annotations::new()),
            capacity_bytes: 1 << 30,
            bucket_ns: 1000,
            mem_nodes: 2,
            page_bytes: page,
            machine: None,
        };
        let mut workers: Vec<Box<dyn SinkShard>> =
            (0..shards).map(|s| ShardableSink::make_shard(&mut sharded, s, &ctx)).collect();
        for b in &batches_for(sharded_base) {
            workers[b.core.unwrap() % shards].on_batch(b);
        }
        for window in 0..4u64 {
            let states: Vec<ShardState> = workers
                .iter_mut()
                .map(|w| w.on_window_close(clock.window(window)).expect("tracker digests"))
                .collect();
            sharded.merge_window(clock.window(window), states);
        }

        assert!(!serial_applied.is_empty(), "the policy migrated something");
        assert_eq!(sharded.applied(), &serial_applied[..], "identical migration decisions");
        let (s, m) = (serial.report(), sharded.report());
        assert_eq!(s.before, m.before);
        assert_eq!(s.after, m.after);
        assert_eq!(s.settled, m.settled);
        assert_eq!(s.pages_tracked, m.pages_tracked);
        assert_eq!(s.windows_closed, m.windows_closed);
    }

    #[test]
    fn no_migration_policy_never_decides() {
        let mut tracker = HotPageTracker::new(NoMigration);
        fill_tracker(&mut tracker);
        let machine = Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::Interleave));
        let applied = tracker.close_window(WindowClock::new(1000).window(0), Some(&machine));
        assert!(applied.is_empty());
        assert_eq!(machine.migration_stats().migrations, 0);
        assert_eq!(tracker.report().policy, "no-migration");
    }
}
