//! [`ProfileSession`] — the backend-abstracted, `Result`-based entry point
//! of the profiler.
//!
//! A session is built fluently, owns its simulated machine, and drives the
//! full lifecycle:
//!
//! ```text
//! ProfileSession::builder()           configure machine / cores / config /
//!     ...                             backends / sinks / workload
//!     .build()?                       validate, construct the machine
//!     .run()?                         setup → start → run → verify → finish
//! ```
//!
//! Backends ([`crate::backend::SampleBackend`]) acquire the raw data (SPE
//! address samples, hardware counters); sinks
//! ([`crate::sink::AnalysisSink`]) turn the finished run into the paper's
//! analysis levels. When no backends or sinks are registered explicitly, the
//! session derives the paper's defaults from the [`NmoConfig`] flags, so
//! `ProfileSession` is a strict superset of the deprecated
//! [`crate::runtime::Profiler`] flow.
//!
//! For callers that drive the machine directly (attaching engines from their
//! own threads), [`ProfileSession::start`] returns an [`ActiveSession`]
//! handle whose [`ActiveSession::finish`] assembles the [`Profile`].

use std::sync::Arc;

use arch_sim::{FanoutObserver, Machine, MachineConfig, OpObserver};

use crate::annotate::Annotations;
use crate::backend::{CounterBackend, SampleBackend, SpeBackend};
use crate::config::NmoConfig;
use crate::runtime::Profile;
use crate::sink::{default_sinks, run_sinks, AnalysisSink};
use crate::workload::Workload;
use crate::NmoError;

/// Fluent configuration for a [`ProfileSession`].
pub struct ProfileSessionBuilder {
    machine_config: MachineConfig,
    config: NmoConfig,
    cores: Vec<usize>,
    backends: Vec<Box<dyn SampleBackend>>,
    sinks: Vec<Box<dyn AnalysisSink>>,
    workload: Option<Box<dyn Workload>>,
    default_backends: bool,
    default_sinks: bool,
}

impl Default for ProfileSessionBuilder {
    fn default() -> Self {
        ProfileSessionBuilder {
            machine_config: MachineConfig::ampere_altra_max(),
            config: NmoConfig::default(),
            cores: Vec::new(),
            backends: Vec::new(),
            sinks: Vec::new(),
            workload: None,
            default_backends: true,
            default_sinks: true,
        }
    }
}

impl std::fmt::Debug for ProfileSessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSessionBuilder")
            .field("machine", &self.machine_config.name)
            .field("cores", &self.cores)
            .field("backends", &self.backends.len())
            .field("sinks", &self.sinks.len())
            .field("workload", &self.workload.as_ref().map(|w| w.name()))
            .finish()
    }
}

impl ProfileSessionBuilder {
    /// The simulated platform to profile on (default: the paper's Ampere
    /// Altra Max preset).
    pub fn machine_config(mut self, machine_config: MachineConfig) -> Self {
        self.machine_config = machine_config;
        self
    }

    /// The NMO configuration (Table I) in force for the session.
    pub fn config(mut self, config: NmoConfig) -> Self {
        self.config = config;
        self
    }

    /// Base name for the profile and its report files (`NMO_NAME`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Profile exactly these cores (one workload thread per entry).
    pub fn cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores = cores.into_iter().collect();
        self
    }

    /// Profile cores `0..threads` (one workload thread per core).
    pub fn threads(self, threads: usize) -> Self {
        self.cores(0..threads)
    }

    /// Register a sample backend. When no backend is registered explicitly,
    /// the session derives the default set from the configuration
    /// ([`SpeBackend`] when SPE sampling is active, plus [`CounterBackend`]
    /// whenever collection is enabled).
    pub fn backend(mut self, backend: impl SampleBackend + 'static) -> Self {
        self.backends.push(Box::new(backend));
        self
    }

    /// Register an analysis sink. When no sink is registered explicitly, the
    /// session derives the default set from the configuration flags
    /// (capacity when RSS tracking is on, bandwidth when bandwidth tracking
    /// is on; region attribution stays lazy via `Profile::regions` unless
    /// [`crate::sink::RegionSink`] is registered here).
    pub fn sink(mut self, sink: impl AnalysisSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// The workload [`ProfileSession::run`] will drive.
    pub fn workload(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Disable the config-derived default backends (an empty backend list
    /// then collects nothing).
    pub fn no_default_backends(mut self) -> Self {
        self.default_backends = false;
        self
    }

    /// Disable the config-derived default sinks (an empty sink list then
    /// produces no analyses).
    pub fn no_default_sinks(mut self) -> Self {
        self.default_sinks = false;
        self
    }

    /// Validate the configuration and construct the session (including its
    /// simulated machine).
    pub fn build(mut self) -> Result<ProfileSession, NmoError> {
        self.machine_config.validate().map_err(NmoError::Sim)?;
        if self.cores.is_empty() {
            self.cores.push(0);
        }
        let mut seen = std::collections::HashSet::new();
        for &core in &self.cores {
            if core >= self.machine_config.num_cores {
                return Err(NmoError::Config(format!(
                    "core {core} does not exist on '{}' ({} cores)",
                    self.machine_config.name, self.machine_config.num_cores
                )));
            }
            if !seen.insert(core) {
                return Err(NmoError::Config(format!("core {core} listed more than once")));
            }
        }
        if self.default_backends && self.backends.is_empty() && self.config.enabled {
            if self.config.spe_active() {
                self.backends.push(Box::new(SpeBackend::new()));
            }
            self.backends.push(Box::new(CounterBackend::new()));
        }
        if self.default_sinks && self.sinks.is_empty() {
            self.sinks = default_sinks(&self.config);
        }
        Ok(ProfileSession {
            machine: Machine::new(self.machine_config),
            config: self.config,
            cores: self.cores,
            annotations: Arc::new(Annotations::new()),
            backends: self.backends,
            sinks: self.sinks,
            workload: self.workload,
        })
    }
}

/// A configured (but not yet collecting) profiling session.
///
/// The session owns the simulated machine; access it with
/// [`ProfileSession::machine`] for allocations or manual engine attachment.
pub struct ProfileSession {
    machine: Machine,
    config: NmoConfig,
    cores: Vec<usize>,
    annotations: Arc<Annotations>,
    backends: Vec<Box<dyn SampleBackend>>,
    sinks: Vec<Box<dyn AnalysisSink>>,
    workload: Option<Box<dyn Workload>>,
}

impl std::fmt::Debug for ProfileSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSession")
            .field("machine", &self.machine.config().name)
            .field("cores", &self.cores)
            .field("backends", &self.backends.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl ProfileSession {
    /// Start configuring a session.
    pub fn builder() -> ProfileSessionBuilder {
        ProfileSessionBuilder::default()
    }

    /// The simulated machine the session owns.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The annotation registry (share it with workload code).
    pub fn annotations(&self) -> Arc<Annotations> {
        self.annotations.clone()
    }

    /// The cores the session profiles.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// The configuration in force.
    pub fn config(&self) -> &NmoConfig {
        &self.config
    }

    /// Drive the registered workload end to end: `setup`, start collection,
    /// `run`, `verify`, and profile assembly.
    pub fn run(mut self) -> Result<Profile, NmoError> {
        let mut workload = self.workload.take().ok_or_else(|| {
            NmoError::Config(
                "ProfileSession::run requires a workload; use run_with for closures".into(),
            )
        })?;
        workload.setup(&self.machine, &self.annotations)?;
        let active = self.start()?;
        let report = workload.run(active.machine(), active.annotations_ref(), active.cores())?;
        if !workload.verify() {
            return Err(NmoError::Workload(format!(
                "workload '{}' failed verification",
                workload.name()
            )));
        }
        let mut profile = active.finish()?;
        profile.workload = Some(report);
        Ok(profile)
    }

    /// Drive a closure instead of a [`Workload`]: collection starts, the
    /// closure runs the work against the machine, and the profile is
    /// assembled when it returns.
    pub fn run_with<F>(self, body: F) -> Result<Profile, NmoError>
    where
        F: FnOnce(&Machine, &Annotations, &[usize]) -> Result<(), NmoError>,
    {
        let active = self.start()?;
        body(active.machine(), active.annotations_ref(), active.cores())?;
        active.finish()
    }

    /// Start collection manually and return the active handle. Use this when
    /// the caller attaches engines itself; call [`ActiveSession::finish`]
    /// when the work is done.
    pub fn start(mut self) -> Result<ActiveSession, NmoError> {
        // Gather per-core observers from every backend, preserving core order.
        let mut per_core: Vec<(usize, Vec<Box<dyn OpObserver>>)> =
            self.cores.iter().map(|&c| (c, Vec::new())).collect();
        for backend in &mut self.backends {
            for co in backend.start(&self.machine, &self.cores, &self.config)? {
                match per_core.iter_mut().find(|(c, _)| *c == co.core) {
                    Some((_, slot)) => slot.push(co.observer),
                    None => {
                        return Err(NmoError::backend(
                            backend.name(),
                            format!("returned an observer for unrequested core {}", co.core),
                        ))
                    }
                }
            }
        }
        let mut attached = Vec::new();
        for (core, mut observers) in per_core {
            let observer: Box<dyn OpObserver> = match observers.len() {
                0 => continue,
                1 => observers.pop().expect("len checked"),
                _ => Box::new(FanoutObserver::new(observers)),
            };
            self.machine.set_observer(core, observer).map_err(NmoError::Sim)?;
            attached.push(core);
        }
        Ok(ActiveSession { session: self, attached })
    }
}

/// A session that is actively collecting.
pub struct ActiveSession {
    session: ProfileSession,
    attached: Vec<usize>,
}

impl std::fmt::Debug for ActiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSession")
            .field("machine", &self.session.machine.config().name)
            .field("attached", &self.attached)
            .finish()
    }
}

impl ActiveSession {
    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.session.machine
    }

    /// The annotation registry as a shared handle.
    pub fn annotations(&self) -> Arc<Annotations> {
        self.session.annotations.clone()
    }

    /// The annotation registry by reference.
    pub fn annotations_ref(&self) -> &Annotations {
        &self.session.annotations
    }

    /// The profiled cores.
    pub fn cores(&self) -> &[usize] {
        &self.session.cores
    }

    /// `nmo_tag_addr` convenience wrapper.
    pub fn tag_addr(&self, name: &str, start: u64, end: u64) {
        self.session.annotations.tag_addr(name, start, end);
    }

    /// `nmo_start` convenience wrapper (timestamp in simulated nanoseconds).
    pub fn start_phase(&self, name: &str, now_ns: u64) {
        self.session.annotations.start(name, now_ns);
    }

    /// `nmo_stop` convenience wrapper.
    pub fn stop_phase(&self, now_ns: u64) {
        self.session.annotations.stop(now_ns);
    }

    /// Stop collection, drain the backends, run the sinks, and assemble the
    /// [`Profile`].
    pub fn finish(mut self) -> Result<Profile, NmoError> {
        for &core in &self.attached {
            // Dropping the observer box releases the backend's per-core
            // instrument; the final aux drain was published when the last
            // engine detached.
            let _ = self.session.machine.take_observer(core);
        }
        for backend in &mut self.session.backends {
            backend.stop(&self.session.machine)?;
        }
        let mut profile = crate::runtime::base_profile(
            &self.session.machine,
            &self.session.config,
            &self.session.annotations,
        );
        profile.backends = self.session.backends.iter().map(|b| b.name().to_string()).collect();
        for backend in &mut self.session.backends {
            backend.fill(&mut profile)?;
        }
        run_sinks(&self.session.machine, &mut profile, &mut self.session.sinks)?;
        Ok(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::AnalysisReport;
    use arch_sim::MachineConfig;

    fn small_session(period: u64, threads: usize) -> ProfileSession {
        ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(period))
            .threads(threads)
            .build()
            .unwrap()
    }

    fn stream_like(
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<(), NmoError> {
        let region = machine.alloc("data", 1 << 20)?;
        annotations.tag_addr("data", region.start, region.end());
        std::thread::scope(|s| {
            for &core in cores {
                let region = region.clone();
                s.spawn(move || {
                    let mut e = machine.attach(core).expect("attach");
                    for i in 0..20_000u64 {
                        e.load(region.start + (i % 10_000) * 8, 8);
                        e.store(region.start + (i % 10_000) * 8, 8);
                    }
                });
            }
        });
        Ok(())
    }

    #[test]
    fn builder_rejects_bad_cores() {
        let err = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .cores([0, 99])
            .build()
            .unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
        let err = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .cores([1, 1])
            .build()
            .unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
    }

    #[test]
    fn run_without_workload_is_a_config_error() {
        let err = small_session(100, 1).run().unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
    }

    #[test]
    fn default_backends_run_spe_and_counters_together() {
        let session = small_session(100, 2);
        let profile = session.run_with(stream_like).unwrap();
        assert_eq!(profile.backends, vec!["spe".to_string(), "counters".to_string()]);
        assert!(profile.processed_samples > 100);
        // The counter backend's mem_access agrees with the machine counter.
        let mem = profile.perf_count("mem_access").unwrap();
        assert_eq!(mem, profile.counters.mem_access);
        // Default sinks produced capacity and bandwidth; region attribution
        // stays lazy unless RegionSink is registered explicitly.
        assert_eq!(profile.analyses.len(), 2);
        assert!(profile.capacity.peak_bytes > 0);
        assert!(profile.bandwidth.total_bytes > 0);
        assert!(!profile.regions().scatter.is_empty());
    }

    #[test]
    fn explicit_region_sink_caches_attribution_on_the_profile() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(100))
            .threads(1)
            .sink(crate::sink::RegionSink)
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert!(profile.analyses.iter().any(|a| a.sink == "regions"
            && matches!(&a.report, AnalysisReport::Regions(r) if !r.scatter.is_empty())));
    }

    #[test]
    fn counter_only_session_samples_nothing_but_counts() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig { enabled: true, track_rss: true, ..NmoConfig::default() })
            .threads(1)
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert_eq!(profile.backends, vec!["counters".to_string()]);
        assert_eq!(profile.processed_samples, 0);
        assert!(profile.samples.is_empty());
        assert_eq!(profile.perf_count("mem_access"), Some(40_000));
        assert_eq!(profile.counters.observer_cycles, 0, "counting charges no cycles");
    }

    #[test]
    fn disabled_config_attaches_no_backends() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::default())
            .threads(1)
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert!(profile.backends.is_empty());
        assert_eq!(profile.processed_samples, 0);
        assert_eq!(profile.counters.observer_cycles, 0);
    }

    #[test]
    fn manual_start_finish_flow() {
        let session = small_session(50, 1);
        let active = session.start().unwrap();
        let region = active.machine().alloc("a", 1 << 16).unwrap();
        active.tag_addr("a", region.start, region.end());
        {
            let mut e = active.machine().attach(0).unwrap();
            active.start_phase("kernel", e.now_ns());
            for i in 0..10_000u64 {
                e.load(region.start + (i % 1_000) * 8, 8);
            }
            active.stop_phase(e.now_ns());
        }
        let profile = active.finish().unwrap();
        assert!(profile.processed_samples > 0);
        assert_eq!(profile.phases.len(), 1);
        assert!(!profile.phases[0].is_open());
    }

    #[test]
    fn explicit_backend_and_sink_registration_overrides_defaults() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(100))
            .threads(1)
            .backend(CounterBackend::new())
            .sink(crate::sink::BandwidthSink)
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert_eq!(profile.backends, vec!["counters".to_string()]);
        assert_eq!(profile.processed_samples, 0, "no SPE backend registered");
        assert_eq!(profile.analyses.len(), 1);
        assert!(profile.capacity.points.is_empty(), "no capacity sink registered");
    }

    #[test]
    fn workload_verification_failure_surfaces_as_error() {
        struct BadWorkload;
        impl Workload for BadWorkload {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn setup(&mut self, _m: &Machine, _a: &Annotations) -> Result<(), NmoError> {
                Ok(())
            }
            fn run(
                &mut self,
                _m: &Machine,
                _a: &Annotations,
                _c: &[usize],
            ) -> Result<crate::WorkloadReport, NmoError> {
                Ok(crate::WorkloadReport::default())
            }
            fn verify(&self) -> bool {
                false
            }
        }
        let err = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .threads(1)
            .workload(Box::new(BadWorkload))
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, NmoError::Workload(_)), "{err}");
    }
}
