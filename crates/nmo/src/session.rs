//! [`ProfileSession`] — the backend-abstracted, `Result`-based entry point
//! of the profiler.
//!
//! A session is built fluently, owns its simulated machine, and drives the
//! full lifecycle:
//!
//! ```text
//! ProfileSession::builder()           configure machine / cores / config /
//!     ...                             backends / sinks / workload
//!     .build()?                       validate, construct the machine
//!     .run()?                         setup → start → run → verify → finish
//! ```
//!
//! Backends ([`crate::backend::SampleBackend`]) acquire the raw data (SPE
//! address samples, hardware counters); sinks
//! ([`crate::sink::AnalysisSink`]) turn the finished run into the paper's
//! analysis levels. When no backends or sinks are registered explicitly, the
//! session derives the paper's defaults from the [`NmoConfig`] flags, so
//! `ProfileSession` is a strict superset of the deprecated
//! [`crate::runtime::Profiler`] flow.
//!
//! For callers that drive the machine directly (attaching engines from their
//! own threads), [`ProfileSession::start`] returns an [`ActiveSession`]
//! handle whose [`ActiveSession::finish`] assembles the [`Profile`].
//!
//! ## Streaming
//!
//! [`ProfileSession::run_streaming`] (and the manual
//! [`ProfileSession::start_streaming`]) turn the session into an online
//! pipeline: a *pump* thread periodically drains every backend into
//! window-stamped [`crate::stream::SampleBatch`]es on a bounded
//! [`crate::stream::EventBus`], and a *consumer* thread feeds them to the
//! sinks' streaming hooks as the workload runs. [`ActiveSession::poll_snapshot`]
//! exposes a live readout ([`StreamSnapshot`]) while collection is active —
//! the mode a long-running service is profiled in, where waiting for the
//! workload to exit is not an option.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use arch_sim::{FanoutObserver, Machine, MachineConfig, OpObserver};

use crate::annotate::Annotations;
use crate::backend::{CounterBackend, SampleBackend, ShardDrainer, SpeBackend};
use crate::config::NmoConfig;
use crate::runtime::Profile;
use crate::sink::{default_sinks, run_sinks, AnalysisSink, ShardState, SinkShard, StreamContext};
use crate::stream::adaptive::AdaptiveRuntime;
use crate::stream::{
    BatchPayload, BatchPool, BusEvent, BusRecv, EventBus, SampleBatch, ShardedBus, SnapshotState,
    StreamOptions, StreamSnapshot, StreamSource, StreamStats, WindowClock,
};
use crate::workload::Workload;
use crate::NmoError;

/// Fluent configuration for a [`ProfileSession`].
pub struct ProfileSessionBuilder {
    machine_config: MachineConfig,
    config: NmoConfig,
    cores: Vec<usize>,
    backends: Vec<Box<dyn SampleBackend>>,
    sinks: Vec<Box<dyn AnalysisSink>>,
    workload: Option<Box<dyn Workload>>,
    default_backends: bool,
    default_sinks: bool,
    stream_options: StreamOptions,
}

impl Default for ProfileSessionBuilder {
    fn default() -> Self {
        ProfileSessionBuilder {
            machine_config: MachineConfig::ampere_altra_max(),
            config: NmoConfig::default(),
            cores: Vec::new(),
            backends: Vec::new(),
            sinks: Vec::new(),
            workload: None,
            default_backends: true,
            default_sinks: true,
            stream_options: StreamOptions::default(),
        }
    }
}

impl std::fmt::Debug for ProfileSessionBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSessionBuilder")
            .field("machine", &self.machine_config.name)
            .field("cores", &self.cores)
            .field("backends", &self.backends.len())
            .field("sinks", &self.sinks.len())
            .field("workload", &self.workload.as_ref().map(|w| w.name()))
            .finish()
    }
}

impl ProfileSessionBuilder {
    /// The simulated platform to profile on (default: the paper's Ampere
    /// Altra Max preset).
    pub fn machine_config(mut self, machine_config: MachineConfig) -> Self {
        self.machine_config = machine_config;
        self
    }

    /// The NMO configuration (Table I) in force for the session.
    pub fn config(mut self, config: NmoConfig) -> Self {
        self.config = config;
        self
    }

    /// Base name for the profile and its report files (`NMO_NAME`).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.config.name = name.into();
        self
    }

    /// Profile exactly these cores (one workload thread per entry).
    pub fn cores(mut self, cores: impl IntoIterator<Item = usize>) -> Self {
        self.cores = cores.into_iter().collect();
        self
    }

    /// Profile cores `0..threads` (one workload thread per core).
    pub fn threads(self, threads: usize) -> Self {
        self.cores(0..threads)
    }

    /// Register a sample backend. When no backend is registered explicitly,
    /// the session derives the default set from the configuration
    /// ([`SpeBackend`] when SPE sampling is active, plus [`CounterBackend`]
    /// whenever collection is enabled).
    pub fn backend(mut self, backend: impl SampleBackend + 'static) -> Self {
        self.backends.push(Box::new(backend));
        self
    }

    /// Register an analysis sink. When no sink is registered explicitly, the
    /// session derives the default set from the configuration flags
    /// (capacity when RSS tracking is on, bandwidth when bandwidth tracking
    /// is on; region attribution stays lazy via `Profile::regions` unless
    /// [`crate::sink::RegionSink`] is registered here).
    pub fn sink(mut self, sink: impl AnalysisSink + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Record the run to an indexed binary trace under `dir` (one segment
    /// per shard): sugar for registering a
    /// [`crate::trace::TraceWriterSink`]. The stored trace replays through
    /// any sink via [`crate::trace::TraceReader`] — no re-simulation.
    pub fn trace_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.sinks.push(Box::new(crate::trace::TraceWriterSink::new(dir)));
        self
    }

    /// The workload [`ProfileSession::run`] will drive.
    pub fn workload(mut self, workload: Box<dyn Workload>) -> Self {
        self.workload = Some(workload);
        self
    }

    /// Disable the config-derived default backends (an empty backend list
    /// then collects nothing).
    pub fn no_default_backends(mut self) -> Self {
        self.default_backends = false;
        self
    }

    /// Disable the config-derived default sinks (an empty sink list then
    /// produces no analyses).
    pub fn no_default_sinks(mut self) -> Self {
        self.default_sinks = false;
        self
    }

    /// Tune the streaming pipeline (window width, bus capacity, pump
    /// interval, backpressure policy) used by
    /// [`ProfileSession::run_streaming`] /
    /// [`ProfileSession::start_streaming`].
    pub fn stream_options(mut self, options: StreamOptions) -> Self {
        self.stream_options = options;
        self
    }

    /// Validate the configuration and construct the session (including its
    /// simulated machine).
    pub fn build(mut self) -> Result<ProfileSession, NmoError> {
        self.machine_config.validate().map_err(NmoError::Sim)?;
        if self.cores.is_empty() {
            self.cores.push(0);
        }
        let mut seen = std::collections::HashSet::new();
        for &core in &self.cores {
            if core >= self.machine_config.num_cores {
                return Err(NmoError::Config(format!(
                    "core {core} does not exist on '{}' ({} cores)",
                    self.machine_config.name, self.machine_config.num_cores
                )));
            }
            if !seen.insert(core) {
                return Err(NmoError::Config(format!("core {core} listed more than once")));
            }
        }
        if self.default_backends && self.backends.is_empty() && self.config.enabled {
            if self.config.spe_active() {
                self.backends.push(Box::new(SpeBackend::new()));
            }
            self.backends.push(Box::new(CounterBackend::new()));
        }
        if self.default_sinks && self.sinks.is_empty() {
            self.sinks = default_sinks(&self.config);
        }
        Ok(ProfileSession {
            machine: Arc::new(Machine::new(self.machine_config)),
            config: self.config,
            cores: self.cores,
            annotations: Arc::new(Annotations::new()),
            backends: self.backends,
            sinks: self.sinks,
            workload: self.workload,
            stream_options: self.stream_options,
        })
    }
}

/// A configured (but not yet collecting) profiling session.
///
/// The session owns the simulated machine; access it with
/// [`ProfileSession::machine`] for allocations or manual engine attachment.
pub struct ProfileSession {
    machine: Arc<Machine>,
    config: NmoConfig,
    cores: Vec<usize>,
    annotations: Arc<Annotations>,
    backends: Vec<Box<dyn SampleBackend>>,
    sinks: Vec<Box<dyn AnalysisSink>>,
    workload: Option<Box<dyn Workload>>,
    stream_options: StreamOptions,
}

impl std::fmt::Debug for ProfileSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfileSession")
            .field("machine", &self.machine.config().name)
            .field("cores", &self.cores)
            .field("backends", &self.backends.len())
            .field("sinks", &self.sinks.len())
            .finish()
    }
}

impl ProfileSession {
    /// Start configuring a session.
    pub fn builder() -> ProfileSessionBuilder {
        ProfileSessionBuilder::default()
    }

    /// The simulated machine the session owns.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// The annotation registry (share it with workload code).
    pub fn annotations(&self) -> Arc<Annotations> {
        self.annotations.clone()
    }

    /// The cores the session profiles.
    pub fn cores(&self) -> &[usize] {
        &self.cores
    }

    /// The configuration in force.
    pub fn config(&self) -> &NmoConfig {
        &self.config
    }

    /// Drive the registered workload end to end: `setup`, start collection,
    /// `run`, `verify`, and profile assembly.
    pub fn run(mut self) -> Result<Profile, NmoError> {
        let mut workload = self.workload.take().ok_or_else(|| {
            NmoError::Config(
                "ProfileSession::run requires a workload; use run_with for closures".into(),
            )
        })?;
        workload.setup(&self.machine, &self.annotations)?;
        let active = self.start()?;
        let report = workload.run(active.machine(), active.annotations_ref(), active.cores())?;
        if !workload.verify() {
            return Err(NmoError::Workload(format!(
                "workload '{}' failed verification",
                workload.name()
            )));
        }
        let mut profile = active.finish()?;
        profile.workload = Some(report);
        Ok(profile)
    }

    /// Drive a closure instead of a [`Workload`]: collection starts, the
    /// closure runs the work against the machine, and the profile is
    /// assembled when it returns.
    pub fn run_with<F>(self, body: F) -> Result<Profile, NmoError>
    where
        F: FnOnce(&Machine, &Annotations, &[usize]) -> Result<(), NmoError>,
    {
        let active = self.start()?;
        body(active.machine(), active.annotations_ref(), active.cores())?;
        active.finish()
    }

    /// [`ProfileSession::run`], but through the online pipeline: backends
    /// stream window-stamped batches onto the event bus while the workload
    /// runs, sinks aggregate them incrementally, and the final [`Profile`]
    /// records the pipeline statistics in [`Profile::stream`]. The final
    /// capacity/bandwidth/region reports are equivalent to the post-hoc
    /// path's (same data, merged windowed instead of scanned whole).
    pub fn run_streaming(mut self) -> Result<Profile, NmoError> {
        let mut workload = self.workload.take().ok_or_else(|| {
            NmoError::Config(
                "ProfileSession::run_streaming requires a workload; use start_streaming + \
                 manual engines otherwise"
                    .into(),
            )
        })?;
        workload.setup(&self.machine, &self.annotations)?;
        let active = self.start_streaming()?;
        let report = workload.run(active.machine(), active.annotations_ref(), active.cores())?;
        if !workload.verify() {
            return Err(NmoError::Workload(format!(
                "workload '{}' failed verification",
                workload.name()
            )));
        }
        let mut profile = active.finish()?;
        profile.workload = Some(report);
        Ok(profile)
    }

    /// Drive a closure through the streaming pipeline (the
    /// [`ProfileSession::run_with`] analogue of
    /// [`ProfileSession::run_streaming`]).
    pub fn run_streaming_with<F>(self, body: F) -> Result<Profile, NmoError>
    where
        F: FnOnce(&Machine, &Annotations, &[usize]) -> Result<(), NmoError>,
    {
        let active = self.start_streaming()?;
        body(active.machine(), active.annotations_ref(), active.cores())?;
        active.finish()
    }

    /// Start collection with streaming delivery and return the active
    /// handle. The caller attaches engines itself (or drives a workload),
    /// polls [`ActiveSession::poll_snapshot`] for live readout, and calls
    /// [`ActiveSession::finish`] when done.
    ///
    /// The pipeline runs with [`StreamOptions::shards`] shards (`0` = auto:
    /// `min(profiled cores, available_parallelism)`; explicit values are
    /// clamped to the profiled core count). At one shard this is the
    /// classic serial pipeline — one pump thread, one consumer thread; at N
    /// shards it is N pump workers draining disjoint core sets onto N bus
    /// lanes, N shard consumers running [`SinkShard`] workers, and a
    /// deterministic (shard-index-ordered) merge back into the registered
    /// sinks. With [`StreamOptions::adaptive`] set, an
    /// [`crate::stream::adaptive::AdaptiveController`] additionally tunes
    /// the *active* shard count, drain cadence, and backpressure policy at
    /// runtime.
    pub fn start_streaming(self) -> Result<ActiveSession, NmoError> {
        let opts = self.stream_options.clone();
        let requested_shards = opts.shards;
        let cores = self.cores.len();
        let mut active = self.start()?;
        let mut backends = std::mem::take(&mut active.session.backends);
        let mut sinks = std::mem::take(&mut active.session.sinks);
        // Remember the backend names now — `fill` runs after the pump hands
        // the backends back, but the name list must survive a pump failure.
        active.backend_names = backends.iter().map(|b| b.name().to_string()).collect();

        let shards = match requested_shards {
            0 => {
                cores.min(std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)).max(1)
            }
            // Clamp explicit requests to the profiled core count: shards
            // beyond it would own zero cores (pump workers with nothing to
            // drain, lanes with no producer). The requested count is still
            // recorded in `StreamStats::shards_requested`.
            n => n.min(cores.max(1)),
        };

        let bus = ShardedBus::new(shards, opts.bus_capacity, opts.backpressure);
        // The adaptive controller tunes the *active* width within the
        // allocated shards; its initial width applies before any worker
        // spawns so the first routed batch already respects it.
        let adaptive = opts.adaptive.as_ref().map(|a| {
            AdaptiveRuntime::new(
                a.clone(),
                shards,
                opts.poll_interval,
                opts.backpressure,
                CONSUMER_RECV_TIMEOUT,
            )
        });
        if let Some(rt) = &adaptive {
            bus.set_active_lanes(rt.active());
        }
        let pool = BatchPool::new((opts.bus_capacity * shards).clamp(64, 4096));
        let stop = Arc::new(AtomicBool::new(false));
        let snapshot = Arc::new(Mutex::named(SnapshotState::default(), "session.snapshot"));
        let machine_cfg = active.session.machine.config();
        let ctx = StreamContext {
            annotations: active.session.annotations.clone(),
            capacity_bytes: machine_cfg.total_mem_bytes(),
            bucket_ns: machine_cfg.cycles_to_ns(machine_cfg.bandwidth_bucket_cycles).max(1),
            mem_nodes: machine_cfg.mem_nodes(),
            page_bytes: machine_cfg.page_bytes,
            machine: Some(active.session.machine.clone()),
        };

        let (pumps, consumers, merger) = if shards == 1 {
            // The classic serial pipeline. The adaptive controller still
            // runs when configured — with one allocated shard it can only
            // tune the drain cadence and backpressure policy.
            let pump = {
                let machine = active.session.machine.clone();
                let bus = bus.clone();
                let stop = stop.clone();
                let opts = opts.clone();
                let pool = pool.clone();
                let adaptive = adaptive.clone();
                std::thread::spawn(move || {
                    pump_loop(machine, backends, bus, stop, opts, pool, adaptive)
                })
            };
            let consumer = {
                let lane = bus.lane(0).clone();
                let snapshot = snapshot.clone();
                let pool = pool.clone();
                let adaptive = adaptive.clone();
                std::thread::spawn(move || {
                    consumer_loop(sinks, lane, snapshot, ctx, pool, adaptive)
                })
            };
            (vec![pump], vec![ConsumerHandle::Serial(consumer)], None)
        } else {
            // The sharded pipeline. Parent sinks see the stream start, then
            // hand out one worker per shard (legacy sinks keep `None` slots
            // and are fed serially through the merger mutex). A panicking
            // sink surfaces as a sink error here, mirroring the serial
            // path's catch in `consumer_loop` (dropping `active` unwinds
            // the backends cleanly — no pumps have been spawned yet).
            let started = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                for sink in &mut sinks {
                    sink.on_stream_start(&ctx);
                }
            }));
            if started.is_err() {
                return Err(NmoError::sink("stream-start", "sink panicked in on_stream_start"));
            }
            let mut shard_workers: Vec<ShardWorkerSet> =
                (0..shards).map(|_| Vec::with_capacity(sinks.len())).collect();
            for sink in &mut sinks {
                match sink.as_shardable() {
                    Some(shardable) => {
                        for (shard, workers) in shard_workers.iter_mut().enumerate() {
                            workers.push(Some(shardable.make_shard(shard, &ctx)));
                        }
                    }
                    None => {
                        for workers in shard_workers.iter_mut() {
                            workers.push(None);
                        }
                    }
                }
            }
            let merger = Arc::new(Mutex::named(
                MergerState {
                    sinks,
                    pending: std::collections::BTreeMap::new(),
                    legacy_close_counts: std::collections::BTreeMap::new(),
                },
                "session.merger",
            ));

            // Partition the backends' drain work: shardable backends hand
            // out per-shard workers; the rest stay on the coordinator.
            let mut per_shard_drainers: Vec<Vec<Box<dyn ShardDrainer>>> =
                (0..shards).map(|_| Vec::new()).collect();
            let mut classic = Vec::with_capacity(backends.len());
            let mut seeded_sources = Vec::new();
            for backend in &mut backends {
                let drainers = backend.shard_drainers(shards);
                classic.push(drainers.is_empty());
                if drainers.is_empty() {
                    // Coordinator-drained backend: its own source list.
                    seeded_sources.extend(backend.stream_sources());
                }
                for drainer in drainers {
                    // Worker-drained: each worker declares the sources it
                    // covers (its slice of the backend's core set).
                    seeded_sources.extend(drainer.sources());
                    let shard = drainer.shard();
                    per_shard_drainers[shard.min(shards - 1)].push(drainer);
                }
            }

            let coordinator = Arc::new(Mutex::named(
                CloseCoordinator::new(WindowClock::new(opts.window_ns), seeded_sources),
                "session.coordinator",
            ));
            let final_round = Arc::new(AtomicBool::new(false));
            let workers_done = Arc::new(AtomicUsize::new(0));

            // Shard `s`'s drainers live in shared slot `s` instead of being
            // owned by worker `s`: at active width `k`, worker `w < k`
            // drains every slot `s` with `s % k == w`, so parked workers'
            // cores keep flowing through the active ones (at full width the
            // assignment is the identity and each worker only ever touches
            // its own slot).
            let slots: Arc<DrainerSlots> = Arc::new(
                per_shard_drainers
                    .into_iter()
                    .map(|drainers| Mutex::named(drainers, "session.drainers"))
                    .collect(),
            );

            let mut pumps = Vec::with_capacity(shards);
            let mut backends_slot = Some((backends, classic));
            for shard in 0..shards {
                // The coordinator (shard 0) owns the backends: it drains the
                // non-shardable ones, runs the machine probes, and drives
                // the stop sequence.
                let owned = if shard == 0 { backends_slot.take() } else { None };
                let worker = PumpWorker {
                    shard,
                    machine: active.session.machine.clone(),
                    backends: owned,
                    slots: slots.clone(),
                    bus: bus.clone(),
                    coordinator: coordinator.clone(),
                    stop: stop.clone(),
                    final_round: final_round.clone(),
                    workers_done: workers_done.clone(),
                    total_workers: shards,
                    pool: pool.clone(),
                    opts: opts.clone(),
                    adaptive: adaptive.clone(),
                };
                pumps.push(std::thread::spawn(move || worker.run()));
            }

            let mut consumers = Vec::with_capacity(shards);
            for (shard, workers) in shard_workers.into_iter().enumerate() {
                let lane = bus.lane(shard).clone();
                let merger = merger.clone();
                let snapshot = snapshot.clone();
                let pool = pool.clone();
                let adaptive = adaptive.clone();
                consumers.push(ConsumerHandle::Shard(std::thread::spawn(move || {
                    shard_consumer_loop(
                        shard, shards, lane, workers, merger, snapshot, pool, adaptive,
                    )
                })));
            }
            (pumps, consumers, Some(merger))
        };

        active.streaming = Some(StreamingState {
            bus,
            stop,
            snapshot,
            pumps,
            consumers,
            merger,
            shards,
            requested_shards,
            adaptive,
        });
        Ok(active)
    }

    /// Start collection manually and return the active handle. Use this when
    /// the caller attaches engines itself; call [`ActiveSession::finish`]
    /// when the work is done.
    pub fn start(mut self) -> Result<ActiveSession, NmoError> {
        // Gather per-core observers from every backend, preserving core order.
        let mut per_core: Vec<(usize, Vec<Box<dyn OpObserver>>)> =
            self.cores.iter().map(|&c| (c, Vec::new())).collect();
        for backend in &mut self.backends {
            for co in backend.start(&self.machine, &self.cores, &self.config)? {
                match per_core.iter_mut().find(|(c, _)| *c == co.core) {
                    Some((_, slot)) => slot.push(co.observer),
                    None => {
                        return Err(NmoError::backend(
                            backend.name(),
                            format!("returned an observer for unrequested core {}", co.core),
                        ))
                    }
                }
            }
        }
        let mut attached = Vec::new();
        for (core, mut observers) in per_core {
            let observer: Box<dyn OpObserver> = match observers.len() {
                0 => continue,
                // unwrap-ok: this match arm only runs when len == 1.
                1 => observers.pop().expect("len checked"),
                _ => Box::new(FanoutObserver::new(observers)),
            };
            self.machine.set_observer(core, observer).map_err(NmoError::Sim)?;
            attached.push(core);
        }
        let manual_clock = WindowClock::new(self.stream_options.window_ns);
        Ok(ActiveSession {
            backend_names: self.backends.iter().map(|b| b.name().to_string()).collect(),
            session: self,
            attached,
            streaming: None,
            manual_clock,
            manual_closed_below: 0,
            manual_pool: BatchPool::new(64),
        })
    }
}

/// What a pump worker returns on join: the backends it borrowed for the run
/// (coordinator only), plus the first error any of its drain/stop calls
/// produced.
type PumpOutcome = (Option<CoordinatorBackends>, Result<(), NmoError>);

/// One consumer thread's join handle: the serial consumer owns the sinks
/// themselves; a shard consumer owns one `SinkShard` worker per shardable
/// sink (the parent sinks live in the merger).
enum ConsumerHandle {
    Serial(JoinHandle<Vec<Box<dyn AnalysisSink>>>),
    Shard(JoinHandle<ShardWorkerSet>),
}

/// One shard consumer's sink workers, index-aligned with the session's
/// sinks (`None` = legacy sink, fed serially through the merger).
type ShardWorkerSet = Vec<Option<Box<dyn SinkShard>>>;

/// The coordinator pump's cargo: the session's backends plus the flags
/// marking which of them it drains classically (no shard workers).
type CoordinatorBackends = (Vec<Box<dyn SampleBackend>>, Vec<bool>);

/// The shared drain-slot table of a sharded session: slot `s` holds shard
/// `s`'s [`ShardDrainer`]s. At active width `k`, pump worker `w < k` drains
/// every slot `s` with `s % k == w`; workers `w ≥ k` are parked. The
/// per-slot mutex makes the hand-off across a width change safe — two
/// workers transiently covering the same slot just drain it twice, and a
/// drain takes whatever the backend store holds (possibly nothing).
type DrainerSlots = Vec<Mutex<Vec<Box<dyn ShardDrainer>>>>;

/// How long a shard consumer waits on its lane before re-checking for
/// shutdown — also what one consumer idle tick is worth to the adaptive
/// controller's idle estimate.
const CONSUMER_RECV_TIMEOUT: Duration = Duration::from_millis(100);

/// Sinks plus in-flight per-window shard states, shared between the shard
/// consumers of a sharded session. Also the serialisation point for legacy
/// (non-shardable) sinks.
struct MergerState {
    sinks: Vec<Box<dyn AnalysisSink>>,
    /// `(sink index, window index)` → states delivered so far, tagged with
    /// their shard. When every shard has delivered, the states are merged
    /// in ascending shard order.
    pending: std::collections::BTreeMap<(usize, u64), Vec<(usize, ShardState)>>,
    /// Close signals seen per window for the legacy-sink path: legacy sinks
    /// receive a close only once every lane has processed its copy of the
    /// broadcast (so their on-time batches all arrived first).
    legacy_close_counts: std::collections::BTreeMap<u64, usize>,
}

/// The threads and shared state of a streaming session.
struct StreamingState {
    bus: Arc<ShardedBus>,
    stop: Arc<AtomicBool>,
    snapshot: Arc<Mutex<SnapshotState>>,
    pumps: Vec<JoinHandle<PumpOutcome>>,
    consumers: Vec<ConsumerHandle>,
    merger: Option<Arc<Mutex<MergerState>>>,
    /// Allocated shard count after resolution/clamping.
    shards: usize,
    /// Shard count the caller configured (0 = auto).
    requested_shards: usize,
    /// The adaptive controller, when the session runs adaptively.
    adaptive: Option<Arc<AdaptiveRuntime>>,
}

/// A session that is actively collecting.
pub struct ActiveSession {
    session: ProfileSession,
    attached: Vec<usize>,
    backend_names: Vec<String>,
    streaming: Option<StreamingState>,
    /// Window arithmetic of the manual actuation path
    /// ([`ActiveSession::tiering_step`]); unused while streaming (the pump
    /// owns the clock there).
    manual_clock: WindowClock,
    /// Windows below this index have been closed by `tiering_step`.
    manual_closed_below: u64,
    /// Batch-buffer pool of the manual drain path.
    manual_pool: Arc<BatchPool>,
}

impl std::fmt::Debug for ActiveSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveSession")
            .field("machine", &self.session.machine.config().name)
            .field("attached", &self.attached)
            .finish()
    }
}

impl ActiveSession {
    /// The simulated machine.
    pub fn machine(&self) -> &Machine {
        &self.session.machine
    }

    /// The annotation registry as a shared handle.
    pub fn annotations(&self) -> Arc<Annotations> {
        self.session.annotations.clone()
    }

    /// The annotation registry by reference.
    pub fn annotations_ref(&self) -> &Annotations {
        &self.session.annotations
    }

    /// The profiled cores.
    pub fn cores(&self) -> &[usize] {
        &self.session.cores
    }

    /// `nmo_tag_addr` convenience wrapper.
    pub fn tag_addr(&self, name: &str, start: u64, end: u64) {
        self.session.annotations.tag_addr(name, start, end);
    }

    /// `nmo_start` convenience wrapper (timestamp in simulated nanoseconds).
    pub fn start_phase(&self, name: &str, now_ns: u64) {
        self.session.annotations.start(name, now_ns);
    }

    /// `nmo_stop` convenience wrapper.
    pub fn stop_phase(&self, now_ns: u64) {
        self.session.annotations.stop(now_ns);
    }

    /// Live readout of a streaming session: the windows seen and closed so
    /// far, sample/batch counts, counter totals, bus accounting, and the
    /// machine's page-migration counters. Returns `None` on a non-streaming
    /// session.
    pub fn poll_snapshot(&self) -> Option<StreamSnapshot> {
        self.streaming.as_ref().map(|s| {
            // Read the controller state before taking the snapshot mutex:
            // `decisions()` locks the controller, and nesting it under
            // `session.snapshot` would add a needless lock-order edge.
            let decisions = s.adaptive.as_ref().map(|a| a.decisions()).unwrap_or_default();
            let active_shards = s.bus.active_lanes();
            s.snapshot.lock().snapshot(
                s.bus.stats(),
                &s.bus.lane_stats(),
                self.session.machine.migration_stats(),
                active_shards,
                decisions,
            )
        })
    }

    /// The manual actuator hook of profile-guided tiering: synchronously
    /// drain every backend into `tracker`, close every window the sample
    /// watermark has passed (each close runs the tracker's
    /// [`crate::tiering::TieringPolicy`]), and apply the resulting
    /// migrations to the machine via
    /// [`arch_sim::Machine::migrate_page`]. Returns the migrations applied
    /// by this step.
    ///
    /// Call it from the workload-driving thread between chunks of work
    /// (with no engine attached, so buffered SPE records flush first) —
    /// drains and decisions then happen at fixed points of the *simulated*
    /// timeline, which is what makes tiering runs reproducible (see
    /// `tests/tiering.rs`). Window width comes from
    /// [`ProfileSessionBuilder::stream_options`].
    ///
    /// On a streaming session this returns an error: there the registered
    /// tracker sink actuates by itself on the consumer thread.
    pub fn tiering_step(
        &mut self,
        tracker: &mut crate::tiering::HotPageTracker,
    ) -> Result<Vec<crate::tiering::AppliedMigration>, NmoError> {
        if self.streaming.is_some() {
            return Err(NmoError::Config(
                "tiering_step drives non-streaming sessions; a streaming session actuates \
                 through the registered HotPageTracker sink"
                    .into(),
            ));
        }
        let machine = self.session.machine.clone();
        tracker.configure(machine.config());
        let mut clock = self.manual_clock;
        for backend in &mut self.session.backends {
            for batch in backend.drain(&machine, &clock, &self.manual_pool)? {
                if let Some(t) = batch.max_time_ns() {
                    clock.observe(t);
                }
                tracker.ingest(&batch);
                self.manual_pool.recycle_batch(batch);
            }
        }
        let mut applied = Vec::new();
        let threshold = clock.index_of(clock.watermark_ns());
        while self.manual_closed_below < threshold {
            let window = clock.window(self.manual_closed_below);
            applied.extend(tracker.close_window(window, Some(&machine)));
            self.manual_closed_below += 1;
        }
        self.manual_clock = clock;
        Ok(applied)
    }

    /// Stop collection, drain the backends, run the sinks, and assemble the
    /// [`Profile`].
    pub fn finish(mut self) -> Result<Profile, NmoError> {
        for &core in &self.attached {
            // Dropping the observer box releases the backend's per-core
            // instrument; the final aux drain was published when the last
            // engine detached.
            let _ = self.session.machine.take_observer(core);
        }

        let mut stream_stats = None;
        match self.streaming.take() {
            Some(streaming) => {
                // The coordinator pump stops the backends itself (monitor
                // joins + final drains on every worker), publishes the
                // remainder, closes every window, and closes the bus —
                // which lets the consumers exit.
                streaming.stop.store(true, Ordering::Release);
                let mut backends = None;
                let mut pump_result: Result<(), NmoError> = Ok(());
                let mut pump_panicked = false;
                for pump in streaming.pumps {
                    match pump.join() {
                        Ok((owned, result)) => {
                            if owned.is_some() {
                                backends = owned;
                            }
                            if let Err(e) = result {
                                if pump_result.is_ok() {
                                    pump_result = Err(e);
                                }
                            }
                        }
                        Err(_) => pump_panicked = true,
                    }
                }
                // A dead coordinator never closed the lanes; close them here
                // so the consumers (joined below) can exit instead of
                // polling an open, silent bus forever. (Idempotent on the
                // clean path.)
                streaming.bus.close_all();

                let mut consumer_panicked = false;
                let mut shard_workers: Vec<(usize, ShardWorkerSet)> = Vec::new();
                for (shard, consumer) in streaming.consumers.into_iter().enumerate() {
                    match consumer {
                        ConsumerHandle::Serial(handle) => match handle.join() {
                            Ok(sinks) => self.session.sinks = sinks,
                            Err(_) => consumer_panicked = true,
                        },
                        ConsumerHandle::Shard(handle) => match handle.join() {
                            Ok(workers) => shard_workers.push((shard, workers)),
                            Err(_) => consumer_panicked = true,
                        },
                    }
                }

                if let Some(merger) = streaming.merger {
                    let mut merger = merger.lock();
                    let mut sinks = std::mem::take(&mut merger.sinks);
                    if !consumer_panicked && !pump_panicked {
                        // Merge any per-window states that never completed
                        // (defensive: the shutdown close-broadcast normally
                        // drains them), then the shards' final states —
                        // both in ascending shard order.
                        let leftovers = std::mem::take(&mut merger.pending);
                        for ((sink_index, index), mut states) in leftovers {
                            states.sort_by_key(|(shard, _)| *shard);
                            let window =
                                WindowClock::new(self.session.stream_options.window_ns.max(1))
                                    .window(index);
                            if let Some(shardable) = sinks[sink_index].as_shardable() {
                                shardable.merge_window(
                                    window,
                                    states.into_iter().map(|(_, s)| s).collect(),
                                );
                            }
                        }
                        shard_workers.sort_by_key(|(shard, _)| *shard);
                        let sink_count = sinks.len();
                        for sink_index in 0..sink_count {
                            let states: Vec<ShardState> = shard_workers
                                .iter_mut()
                                .filter_map(|(_, workers)| workers[sink_index].take())
                                .map(|worker| worker.finish())
                                .collect();
                            if states.is_empty() {
                                continue;
                            }
                            if let Some(shardable) = sinks[sink_index].as_shardable() {
                                shardable.merge_final(states);
                            }
                        }
                    }
                    self.session.sinks = sinks;
                }

                let backends = match backends {
                    Some((backends, _classic)) => backends,
                    None => {
                        return Err(NmoError::backend("stream-pump", "pump thread panicked"));
                    }
                };
                self.session.backends = backends;
                if pump_panicked {
                    return Err(NmoError::backend("stream-pump", "pump worker panicked"));
                }
                if consumer_panicked {
                    return Err(NmoError::sink("stream-consumer", "consumer thread panicked"));
                }
                pump_result?;
                // Controller state first, for the same lock-order reason as
                // in `poll_snapshot`.
                let adaptive_decisions =
                    streaming.adaptive.as_ref().map(|a| a.decisions_total()).unwrap_or(0);
                let state = streaming.snapshot.lock();
                let bus = streaming.bus.stats();
                stream_stats = Some(StreamStats {
                    windows_closed: state.windows_closed,
                    batches_published: state.batches,
                    batches_dropped: bus.dropped_batches,
                    items_dropped: bus.dropped_items,
                    late_batches: state.late_batches,
                    bus_high_watermark: bus.high_watermark,
                    shards: streaming.shards as u64,
                    shards_requested: streaming.requested_shards as u64,
                    active_shards: streaming.bus.active_lanes() as u64,
                    adaptive_decisions,
                });
            }
            None => {
                for backend in &mut self.session.backends {
                    backend.stop(&self.session.machine)?;
                }
            }
        }

        let mut profile = crate::runtime::base_profile(
            &self.session.machine,
            &self.session.config,
            &self.session.annotations,
        );
        profile.backends = self.backend_names.clone();
        profile.stream = stream_stats;
        for backend in &mut self.session.backends {
            backend.fill(&mut profile)?;
        }
        crate::runtime::warn_on_loss(&profile);
        run_sinks(&self.session.machine, &mut profile, &mut self.session.sinks)?;
        Ok(profile)
    }
}

/// Abandoning an active streaming session (e.g. a workload error unwinding
/// past `finish`) must not leave the pump and consumer threads spinning:
/// signal them to stop and close the bus so both exit; the backends close
/// their perf events when the pump drops them.
impl Drop for ActiveSession {
    fn drop(&mut self) {
        if let Some(streaming) = self.streaming.take() {
            streaming.stop.store(true, Ordering::Release);
            streaming.bus.close_all();
        }
    }
}

/// A source that has been quiet for this many pump ticks stops holding the
/// close watermark back (it is presumed done, not lagging — e.g. the RSS
/// probe after the allocation phase, or an SPE core whose thread exited).
/// At the default 200 µs pump interval this is a 50 ms wall-clock grace —
/// comfortably above one aux-watermark publication interval.
const SOURCE_IDLE_TICKS: u64 = 250;

/// The per-source watermarks a batch advances: per-core maxima for SPE
/// sample batches (each core's aux buffer publishes at its own cadence, so
/// the slowest core bounds what may close), the batch maximum otherwise.
fn source_marks(batch: &SampleBatch) -> Vec<(StreamSource, u64)> {
    let Some(max) = batch.max_time_ns() else { return Vec::new() };
    if let BatchPayload::SpeSamples { samples, .. } = batch.payload() {
        let mut per_core: std::collections::BTreeMap<usize, u64> =
            std::collections::BTreeMap::new();
        for s in samples {
            let entry = per_core.entry(s.core).or_insert(0);
            *entry = (*entry).max(s.time_ns);
        }
        per_core.into_iter().map(|(core, t)| ((batch.backend, Some(core)), t)).collect()
    } else {
        vec![((batch.backend, None), max)]
    }
}

/// Producer-side close bookkeeping, shared by every pump worker of a
/// session: the window clock, the set of windows awaiting closure, and a
/// per-source watermark — a window only closes once every recently active,
/// timestamp-carrying source has moved past it (e.g. the SPE aux watermark
/// publishes in bursts that lag the RSS probe, and closing on the global
/// maximum alone would make every SPE burst arrive late). In sharded mode
/// the workers mark their sources under the mutex after publishing; only
/// the coordinator closes windows (broadcasting the close to every lane).
struct CloseCoordinator {
    clock: WindowClock,
    open_windows: std::collections::BTreeSet<u64>,
    closed_below: u64,
    /// Per-source `(watermark_ns, last tick the source produced)`.
    sources: std::collections::BTreeMap<StreamSource, (u64, u64)>,
    tick: u64,
}

impl CloseCoordinator {
    /// Seed the watermark with every declared producer so nothing closes
    /// until each has delivered its first data (or sat out the idle grace).
    fn new(clock: WindowClock, seeded_sources: Vec<StreamSource>) -> Self {
        CloseCoordinator {
            clock,
            open_windows: std::collections::BTreeSet::new(),
            closed_below: 0,
            sources: seeded_sources.into_iter().map(|s| (s, (0, 0))).collect(),
            tick: 0,
        }
    }

    fn mark_source(&mut self, key: StreamSource, t_ns: u64) {
        let tick = self.tick;
        let entry = self.sources.entry(key).or_insert((0, tick));
        entry.0 = entry.0.max(t_ns);
        entry.1 = tick;
    }

    /// Register one published batch: advance the clock and its sources'
    /// watermarks, and track its window as open. Must be called *after* the
    /// batch was enqueued — the close threshold may only move once the data
    /// that justifies it is on a lane.
    fn note_published(&mut self, window_index: u64, marks: &[(StreamSource, u64)]) {
        for &(source, t_ns) in marks {
            self.clock.observe(t_ns);
            self.mark_source(source, t_ns);
        }
        if window_index >= self.closed_below {
            self.open_windows.insert(window_index);
        }
    }

    /// The window index below which every active source has delivered.
    fn close_threshold(&self) -> u64 {
        let active_min = self
            .sources
            .values()
            .filter(|(_, last_tick)| self.tick.saturating_sub(*last_tick) < SOURCE_IDLE_TICKS)
            .map(|(watermark, _)| self.clock.index_of(*watermark))
            .min();
        active_min.unwrap_or_else(|| self.clock.index_of(self.clock.watermark_ns()))
    }

    /// Close every open window every active producer has moved past — those
    /// can no longer receive on-time data. Close signals are broadcast to
    /// every lane (they bypass lane capacity, so this never blocks).
    fn close_ready_windows(&mut self, bus: &ShardedBus) {
        let threshold = self.close_threshold();
        while let Some(&index) = self.open_windows.iter().next() {
            if index >= threshold {
                break;
            }
            self.open_windows.remove(&index);
            bus.broadcast_close(self.clock.window(index));
            self.closed_below = self.closed_below.max(index + 1);
        }
    }

    /// Shutdown: close everything still open, ascending.
    fn close_remaining(&mut self, bus: &ShardedBus) {
        for index in std::mem::take(&mut self.open_windows) {
            bus.broadcast_close(self.clock.window(index));
            self.closed_below = self.closed_below.max(index + 1);
        }
    }
}

/// Publish a batch on the sharded bus and register it with the close
/// coordinator (in that order — see [`CloseCoordinator::note_published`]).
fn publish_batch(batch: SampleBatch, bus: &ShardedBus, coordinator: &Mutex<CloseCoordinator>) {
    let marks = source_marks(&batch);
    let window_index = batch.window.index;
    // Ordering rationale (pinned): publish-then-mark. The watermark may
    // only advance once the data justifying it is queued on a lane —
    // marking first would let a concurrent close-threshold computation
    // close the batch's window before the batch is visible to its shard
    // consumer, violating the close-after-on-time-data contract. Both
    // operations are mutex-protected (lane queue, coordinator), so the
    // program order here is the inter-thread order. Note this nests
    // bus-lock inside-then-before coordinator-lock; `close_ready_windows`
    // takes coordinator then bus, but `bus.publish` has released the lane
    // lock before `coordinator.lock()` runs (no lock is held across the
    // two calls), so no cycle exists — the `NMO_LOCK_CHECK` runtime
    // checker verifies exactly this in the stress suite.
    bus.publish(batch);
    coordinator.lock().note_published(window_index, &marks);
}

/// The serial producer (single-shard pipeline): one pump thread drains
/// every backend (plus the machine-level RSS/bandwidth probes) into
/// window-stamped batches, advances the watermark, and closes completed
/// windows. On stop: stop the backends (joining the SPE monitor), publish
/// the final remainder, close every open window, and close the bus.
fn pump_loop(
    machine: Arc<Machine>,
    mut backends: Vec<Box<dyn SampleBackend>>,
    bus: Arc<ShardedBus>,
    stop: Arc<AtomicBool>,
    opts: StreamOptions,
    pool: Arc<BatchPool>,
    adaptive: Option<Arc<AdaptiveRuntime>>,
) -> PumpOutcome {
    let seeded = backends.iter().flat_map(|b| b.stream_sources()).collect();
    let coordinator = Mutex::named(
        CloseCoordinator::new(WindowClock::new(opts.window_ns), seeded),
        "session.coordinator",
    );
    let mut rss_cursor = 0usize;
    let mut result: Result<(), NmoError> = Ok(());

    loop {
        coordinator.lock().tick += 1;
        let stopping = stop.load(Ordering::Acquire);
        if stopping {
            // Observers are detached by now; join the SPE monitor and run
            // the backends' final synchronous drains into their stores, so
            // the drain below sees everything.
            for backend in &mut backends {
                if let Err(e) = backend.stop(&machine) {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
            }
        }
        // Observer flushing is each backend's own job inside `drain` (the
        // SPE backend nudges its idle cores there); busy cores publish on
        // the aux watermark, or the workload thread calls
        // `Engine::flush_observer` itself.

        let clock = coordinator.lock().clock;
        for backend in &mut backends {
            match backend.drain(&machine, &clock, &pool) {
                Ok(batches) => {
                    for batch in batches {
                        publish_batch(batch, &bus, &coordinator);
                    }
                }
                Err(e) => {
                    if result.is_ok() {
                        result = Err(e);
                    }
                }
            }
        }

        // Machine probe: new RSS step events since the previous tick.
        let fresh = machine.rss_events_since(rss_cursor);
        if !fresh.is_empty() {
            rss_cursor += fresh.len();
            for (window, points) in clock.group_by_window(fresh, |p| p.time_ns) {
                publish_batch(
                    SampleBatch::new("machine", None, window, BatchPayload::Rss { points }),
                    &bus,
                    &coordinator,
                );
            }
        }

        if stopping {
            // Bandwidth buckets only become readable once the workload's
            // engines have returned their cores; deliver the full series as
            // the final tick, one batch per window.
            let bw = machine.bandwidth_series();
            for (window, points) in clock.group_by_window(bw, |p| p.time_ns) {
                publish_batch(
                    SampleBatch::new("machine", None, window, BatchPayload::Bandwidth { points }),
                    &bus,
                    &coordinator,
                );
            }
            coordinator.lock().close_remaining(&bus);
            bus.close_all();
            return (Some((backends, Vec::new())), result);
        }

        coordinator.lock().close_ready_windows(&bus);
        // With one allocated shard the controller can only tune the drain
        // cadence and the backpressure policy; rate-limited inside.
        if let Some(adaptive) = &adaptive {
            let _ = adaptive.control(&bus);
        }

        // Drain cadence: the pump samples the backends at the configured
        // wall-clock interval (the controller's current cadence when
        // adaptive); nothing signals "new simulated work".
        let poll = adaptive.as_ref().map(|a| a.poll_interval()).unwrap_or(opts.poll_interval);
        #[allow(clippy::disallowed_methods)]
        std::thread::sleep(poll);
    }
}

/// One pump worker of the sharded pipeline. The worker for shard 0 is the
/// *coordinator*: it owns the backends (draining the non-shardable ones),
/// runs the machine probes, closes ready windows, runs the adaptive
/// controller, and drives the shutdown sequence — stop the backends, signal
/// the final drain round, wait for every worker's final publish, deliver
/// the bandwidth series, close the remaining windows, and close every lane.
/// The other workers drain their share of the [`DrainerSlots`] table and
/// publish onto the bus; on an adaptive session a worker whose index is at
/// or beyond the active width is *parked* — it skips draining (its slots
/// are covered by the active workers) and just sleeps until widened back in
/// or until shutdown.
struct PumpWorker {
    shard: usize,
    machine: Arc<Machine>,
    /// `Some((backends, classic flags))` on the coordinator: `classic[i]`
    /// marks backends without shard workers, drained here.
    backends: Option<CoordinatorBackends>,
    /// The shared drain-slot table (one slot per allocated shard).
    slots: Arc<DrainerSlots>,
    bus: Arc<ShardedBus>,
    coordinator: Arc<Mutex<CloseCoordinator>>,
    stop: Arc<AtomicBool>,
    final_round: Arc<AtomicBool>,
    workers_done: Arc<AtomicUsize>,
    total_workers: usize,
    pool: Arc<BatchPool>,
    opts: StreamOptions,
    adaptive: Option<Arc<AdaptiveRuntime>>,
}

impl PumpWorker {
    fn run(mut self) -> PumpOutcome {
        let shard = self.shard;
        let final_round = self.final_round.clone();
        let workers_done = self.workers_done.clone();
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner()));
        match outcome {
            Ok(outcome) => outcome,
            Err(_) => {
                // Do not wedge the other threads: a dead coordinator can no
                // longer start the final round, and every worker owes the
                // done-counter its increment.
                if shard == 0 {
                    final_round.store(true, Ordering::Release);
                }
                workers_done.fetch_add(1, Ordering::AcqRel);
                (
                    None,
                    Err(NmoError::backend("stream-pump", format!("pump worker {shard} panicked"))),
                )
            }
        }
    }

    fn run_inner(&mut self) -> PumpOutcome {
        let is_coordinator = self.shard == 0;
        let mut rss_cursor = 0usize;
        let mut result: Result<(), NmoError> = Ok(());
        let record = |e: NmoError, result: &mut Result<(), NmoError>| {
            if result.is_ok() {
                *result = Err(e);
            }
        };

        loop {
            if is_coordinator {
                self.coordinator.lock().tick += 1;
            }
            if is_coordinator
                && self.stop.load(Ordering::Acquire)
                && !self.final_round.load(Ordering::Acquire)
            {
                // Observers are detached; join the SPE monitor and run the
                // backends' final synchronous drains into their stores,
                // then open the final drain round for every worker.
                if let Some((backends, _)) = self.backends.as_mut() {
                    for backend in backends.iter_mut() {
                        if let Err(e) = backend.stop(&self.machine) {
                            record(e, &mut result);
                        }
                    }
                }
                self.final_round.store(true, Ordering::Release);
            }
            let finishing = self.final_round.load(Ordering::Acquire);

            // Active width this tick: every allocated worker on a static
            // session, the controller's current width on an adaptive one.
            // Workers at or beyond the width are parked — their slots are
            // covered by the active set, so the data keeps flowing.
            let active = match &self.adaptive {
                Some(_) => self.bus.active_lanes(),
                None => self.total_workers,
            };
            let parked = self.shard >= active;

            let clock = self.coordinator.lock().clock;
            if !parked {
                // Drain every slot this worker covers at the current width
                // (`slot % active == shard`); at full width that is exactly
                // its own slot. Workers racing a width change may cover a
                // slot twice (harmless: the second drain finds the store
                // empty) or skip it for one tick (it is covered again next
                // tick, and the coordinator sweeps every slot at shutdown).
                let mut slot = self.shard;
                while slot < self.slots.len() {
                    let mut drainers = self.slots[slot].lock();
                    for drainer in drainers.iter_mut() {
                        match drainer.drain(&self.machine, &clock, &self.pool) {
                            Ok(batches) => {
                                for batch in batches {
                                    publish_batch(batch, &self.bus, &self.coordinator);
                                }
                            }
                            Err(e) => record(e, &mut result),
                        }
                    }
                    drop(drainers);
                    slot += active;
                }
            }
            if let Some((backends, classic)) = self.backends.as_mut() {
                for (backend, is_classic) in backends.iter_mut().zip(classic.iter()) {
                    if !is_classic {
                        continue;
                    }
                    match backend.drain(&self.machine, &clock, &self.pool) {
                        Ok(batches) => {
                            for batch in batches {
                                publish_batch(batch, &self.bus, &self.coordinator);
                            }
                        }
                        Err(e) => record(e, &mut result),
                    }
                }
                // Machine probe: new RSS step events since the previous
                // tick (coordinator only — the probe is machine-wide).
                let fresh = self.machine.rss_events_since(rss_cursor);
                if !fresh.is_empty() {
                    rss_cursor += fresh.len();
                    for (window, points) in clock.group_by_window(fresh, |p| p.time_ns) {
                        publish_batch(
                            SampleBatch::new("machine", None, window, BatchPayload::Rss { points }),
                            &self.bus,
                            &self.coordinator,
                        );
                    }
                }
            }

            if finishing {
                self.workers_done.fetch_add(1, Ordering::AcqRel);
                if !is_coordinator {
                    return (None, result);
                }
                // Coordinator: wait for every worker's final publish, then
                // deliver the bandwidth series, close what remains, and
                // close the lanes so the consumers can exit.
                while self.workers_done.load(Ordering::Acquire) < self.total_workers {
                    // Join-barrier poll at shutdown; not on the hot path.
                    #[allow(clippy::disallowed_methods)]
                    std::thread::sleep(Duration::from_millis(1));
                }
                // Final sweep: whatever width changes raced the final
                // round, drain every slot once more so no backend store
                // retains data (re-draining an empty store is free).
                for slot in self.slots.iter() {
                    let mut drainers = slot.lock();
                    for drainer in drainers.iter_mut() {
                        match drainer.drain(&self.machine, &clock, &self.pool) {
                            Ok(batches) => {
                                for batch in batches {
                                    publish_batch(batch, &self.bus, &self.coordinator);
                                }
                            }
                            Err(e) => record(e, &mut result),
                        }
                    }
                }
                let bw = self.machine.bandwidth_series();
                for (window, points) in clock.group_by_window(bw, |p| p.time_ns) {
                    publish_batch(
                        SampleBatch::new(
                            "machine",
                            None,
                            window,
                            BatchPayload::Bandwidth { points },
                        ),
                        &self.bus,
                        &self.coordinator,
                    );
                }
                self.coordinator.lock().close_remaining(&self.bus);
                self.bus.close_all();
                return (self.backends.take(), result);
            }

            if is_coordinator {
                self.coordinator.lock().close_ready_windows(&self.bus);
                // One control decision per control interval (rate-limited
                // inside; a no-op between intervals).
                if let Some(adaptive) = &self.adaptive {
                    let _ = adaptive.control(&self.bus);
                }
            }
            // Drain cadence, as in the serial pump above; adaptive sessions
            // follow the controller's current cadence.
            let poll = self
                .adaptive
                .as_ref()
                .map(|a| a.poll_interval())
                .unwrap_or(self.opts.poll_interval);
            #[allow(clippy::disallowed_methods)]
            std::thread::sleep(poll);
        }
    }
}

/// The consumer side of a streaming session: deliver bus events to the
/// sinks' streaming hooks (in bus order) and keep the shared snapshot state
/// current for [`ActiveSession::poll_snapshot`].
///
/// A panicking sink must not kill the thread outright: under
/// [`crate::stream::BackpressurePolicy::Block`] a dead consumer would leave
/// the pump wedged in `publish` forever (and `finish` wedged joining it).
/// Instead the panic is caught, the loop keeps draining (discarding) until
/// the bus closes, and the panic is rethrown so the join in
/// [`ActiveSession::finish`] surfaces it as an error.
fn consumer_loop(
    mut sinks: Vec<Box<dyn AnalysisSink>>,
    lane: Arc<EventBus>,
    snapshot: Arc<Mutex<SnapshotState>>,
    ctx: StreamContext,
    pool: Arc<BatchPool>,
    adaptive: Option<Arc<AdaptiveRuntime>>,
) -> Vec<Box<dyn AnalysisSink>> {
    let mut panic_payload = None;
    let dispatch = |sinks: &mut Vec<Box<dyn AnalysisSink>>,
                    event: &BusEvent,
                    panic_payload: &mut Option<Box<dyn std::any::Any + Send>>| {
        if panic_payload.is_some() {
            return;
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            for sink in sinks.iter_mut() {
                match event {
                    BusEvent::Batch(batch) => sink.on_batch(batch),
                    BusEvent::CloseWindow(window) => sink.on_window_close(*window),
                }
            }
        }));
        if let Err(payload) = result {
            *panic_payload = Some(payload);
        }
    };
    if let Err(payload) = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        for sink in &mut sinks {
            sink.on_stream_start(&ctx);
        }
    })) {
        panic_payload = Some(payload);
    }
    loop {
        match lane.recv_timeout(CONSUMER_RECV_TIMEOUT) {
            BusRecv::Event(event) => {
                {
                    let mut snap = snapshot.lock();
                    match &event {
                        BusEvent::Batch(batch) => snap.record_batch(batch, 0),
                        BusEvent::CloseWindow(window) => snap.record_close(*window, 1),
                    }
                }
                dispatch(&mut sinks, &event, &mut panic_payload);
                // The batch's buffers go back to the pool for the next
                // drain (the zero-copy recycle step).
                if let BusEvent::Batch(batch) = event {
                    pool.recycle_batch(batch);
                }
            }
            BusRecv::TimedOut => {
                if let Some(adaptive) = &adaptive {
                    adaptive.note_consumer_idle(0);
                }
            }
            BusRecv::Closed => match panic_payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => return sinks,
            },
        }
    }
}

/// One shard consumer of the sharded pipeline: it drains its lane, feeds
/// its [`SinkShard`] workers lock-free, serialises legacy sinks through the
/// merger mutex, and delivers per-window shard states to the merger (the
/// shard whose delivery completes a window performs that window's merge, in
/// ascending shard order, under the merger lock).
///
/// A panicking sink shard must not kill the thread outright: under
/// [`crate::stream::BackpressurePolicy::Block`] a dead consumer would leave
/// its lane's pump worker wedged in `publish` forever (and `finish` wedged
/// joining it). Instead the panic is caught, the loop keeps draining
/// (discarding) until the lane closes, and the panic is rethrown so the
/// join in [`ActiveSession::finish`] surfaces it as an error.
#[allow(clippy::too_many_arguments)] // thread spine wiring, built in one place
fn shard_consumer_loop(
    shard: usize,
    shard_count: usize,
    lane: Arc<EventBus>,
    mut workers: ShardWorkerSet,
    merger: Arc<Mutex<MergerState>>,
    snapshot: Arc<Mutex<SnapshotState>>,
    pool: Arc<BatchPool>,
    adaptive: Option<Arc<AdaptiveRuntime>>,
) -> ShardWorkerSet {
    let mut panic_payload: Option<Box<dyn std::any::Any + Send>> = None;
    loop {
        match lane.recv_timeout(CONSUMER_RECV_TIMEOUT) {
            BusRecv::Event(event) => {
                {
                    let mut snap = snapshot.lock();
                    match &event {
                        BusEvent::Batch(batch) => snap.record_batch(batch, shard),
                        BusEvent::CloseWindow(window) => snap.record_close(*window, shard_count),
                    }
                }
                if panic_payload.is_none() {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        dispatch_shard_event(shard, shard_count, &event, &mut workers, &merger);
                    }));
                    if let Err(payload) = result {
                        panic_payload = Some(payload);
                    }
                }
                if let BusEvent::Batch(batch) = event {
                    pool.recycle_batch(batch);
                }
            }
            BusRecv::TimedOut => {
                // An empty-lane timeout is the consumer idle signal the
                // adaptive controller's starvation rule runs on.
                if let Some(adaptive) = &adaptive {
                    adaptive.note_consumer_idle(shard);
                }
            }
            BusRecv::Closed => match panic_payload {
                Some(payload) => std::panic::resume_unwind(payload),
                None => return workers,
            },
        }
    }
}

fn dispatch_shard_event(
    shard: usize,
    shard_count: usize,
    event: &BusEvent,
    workers: &mut [Option<Box<dyn SinkShard>>],
    merger: &Mutex<MergerState>,
) {
    match event {
        BusEvent::Batch(batch) => {
            let mut any_legacy = false;
            for worker in workers.iter_mut() {
                match worker {
                    Some(worker) => worker.on_batch(batch),
                    None => any_legacy = true,
                }
            }
            if any_legacy {
                // Serial fallback: legacy sinks see every batch, serialised
                // under the merger lock (per-lane order preserved).
                let mut merger = merger.lock();
                let merger = &mut *merger;
                for (index, worker) in workers.iter().enumerate() {
                    if worker.is_none() {
                        merger.sinks[index].on_batch(batch);
                    }
                }
            }
        }
        BusEvent::CloseWindow(window) => {
            for (index, worker) in workers.iter_mut().enumerate() {
                let Some(worker) = worker else { continue };
                let Some(state) = worker.on_window_close(*window) else { continue };
                let mut merger = merger.lock();
                let merger = &mut *merger;
                let entry = merger.pending.entry((index, window.index)).or_default();
                entry.push((shard, state));
                if entry.len() == shard_count {
                    let mut states = std::mem::take(entry);
                    merger.pending.remove(&(index, window.index));
                    states.sort_by_key(|(s, _)| *s);
                    let states = states.into_iter().map(|(_, state)| state).collect();
                    merger.sinks[index]
                        .as_shardable()
                        // unwrap-ok: a `ShardWorker` is only constructed for
                        // sinks whose `as_shardable()` returned Some at
                        // session start; the sink set is immutable after.
                        .expect("shard workers only exist for shardable sinks")
                        .merge_window(*window, states);
                }
            }
            {
                // Legacy sinks get each close exactly once, and only after
                // every lane has processed its copy of the broadcast — by
                // then each lane's on-time batches for the window have been
                // forwarded (they precede the close in lane order), so the
                // PR 2 close-after-on-time-data contract holds for legacy
                // sinks under sharding too.
                let mut merger = merger.lock();
                let merger = &mut *merger;
                let seen = merger.legacy_close_counts.entry(window.index).or_insert(0);
                *seen += 1;
                if *seen == shard_count {
                    merger.legacy_close_counts.remove(&window.index);
                    for (index, worker) in workers.iter().enumerate() {
                        if worker.is_none() {
                            merger.sinks[index].on_window_close(*window);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::AnalysisReport;
    use arch_sim::MachineConfig;

    fn small_session(period: u64, threads: usize) -> ProfileSession {
        ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(period))
            .threads(threads)
            .build()
            .unwrap()
    }

    fn stream_like(
        machine: &Machine,
        annotations: &Annotations,
        cores: &[usize],
    ) -> Result<(), NmoError> {
        let region = machine.alloc("data", 1 << 20)?;
        annotations.tag_addr("data", region.start, region.end());
        std::thread::scope(|s| {
            for &core in cores {
                let region = region.clone();
                s.spawn(move || {
                    let mut e = machine.attach(core).expect("attach");
                    for i in 0..20_000u64 {
                        e.load(region.start + (i % 10_000) * 8, 8);
                        e.store(region.start + (i % 10_000) * 8, 8);
                    }
                });
            }
        });
        Ok(())
    }

    #[test]
    fn builder_rejects_bad_cores() {
        let err = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .cores([0, 99])
            .build()
            .unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
        let err = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .cores([1, 1])
            .build()
            .unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
    }

    #[test]
    fn run_without_workload_is_a_config_error() {
        let err = small_session(100, 1).run().unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
    }

    #[test]
    fn default_backends_run_spe_and_counters_together() {
        let session = small_session(100, 2);
        let profile = session.run_with(stream_like).unwrap();
        assert_eq!(profile.backends, vec!["spe".to_string(), "counters".to_string()]);
        assert!(profile.processed_samples > 100);
        // The counter backend's mem_access agrees with the machine counter.
        let mem = profile.perf_count("mem_access").unwrap();
        assert_eq!(mem, profile.counters.mem_access);
        // Default sinks produced capacity and bandwidth; region attribution
        // stays lazy unless RegionSink is registered explicitly.
        assert_eq!(profile.analyses.len(), 2);
        assert!(profile.capacity.peak_bytes > 0);
        assert!(profile.bandwidth.total_bytes > 0);
        assert!(!profile.regions().scatter.is_empty());
    }

    #[test]
    fn explicit_region_sink_caches_attribution_on_the_profile() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(100))
            .threads(1)
            .sink(crate::sink::RegionSink::default())
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert!(profile.analyses.iter().any(|a| a.sink == "regions"
            && matches!(&a.report, AnalysisReport::Regions(r) if !r.scatter.is_empty())));
    }

    #[test]
    fn counter_only_session_samples_nothing_but_counts() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig { enabled: true, track_rss: true, ..NmoConfig::default() })
            .threads(1)
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert_eq!(profile.backends, vec!["counters".to_string()]);
        assert_eq!(profile.processed_samples, 0);
        assert!(profile.samples.is_empty());
        assert_eq!(profile.perf_count("mem_access"), Some(40_000));
        assert_eq!(profile.counters.observer_cycles, 0, "counting charges no cycles");
    }

    #[test]
    fn disabled_config_attaches_no_backends() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::default())
            .threads(1)
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert!(profile.backends.is_empty());
        assert_eq!(profile.processed_samples, 0);
        assert_eq!(profile.counters.observer_cycles, 0);
    }

    #[test]
    fn manual_start_finish_flow() {
        let session = small_session(50, 1);
        let active = session.start().unwrap();
        let region = active.machine().alloc("a", 1 << 16).unwrap();
        active.tag_addr("a", region.start, region.end());
        {
            let mut e = active.machine().attach(0).unwrap();
            active.start_phase("kernel", e.now_ns());
            for i in 0..10_000u64 {
                e.load(region.start + (i % 1_000) * 8, 8);
            }
            active.stop_phase(e.now_ns());
        }
        let profile = active.finish().unwrap();
        assert!(profile.processed_samples > 0);
        assert_eq!(profile.phases.len(), 1);
        assert!(!profile.phases[0].is_open());
    }

    #[test]
    fn explicit_backend_and_sink_registration_overrides_defaults() {
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(100))
            .threads(1)
            .backend(CounterBackend::new())
            .sink(crate::sink::BandwidthSink::default())
            .build()
            .unwrap();
        let profile = session.run_with(stream_like).unwrap();
        assert_eq!(profile.backends, vec!["counters".to_string()]);
        assert_eq!(profile.processed_samples, 0, "no SPE backend registered");
        assert_eq!(profile.analyses.len(), 1);
        assert!(profile.capacity.points.is_empty(), "no capacity sink registered");
    }

    #[test]
    fn streaming_closure_run_matches_post_hoc_exactly_single_threaded() {
        // One thread → fully deterministic simulation, so the streaming
        // pipeline's windowed merge must reproduce the post-hoc scan exactly.
        let build = || {
            ProfileSession::builder()
                .machine_config(MachineConfig::small_test())
                .config(NmoConfig::paper_default(100))
                .threads(1)
                .sink(crate::sink::CapacitySink::default())
                .sink(crate::sink::BandwidthSink::default())
                .sink(crate::sink::RegionSink::default())
                .build()
                .unwrap()
        };
        let post_hoc = build().run_with(stream_like).unwrap();
        let streamed = build().run_streaming_with(stream_like).unwrap();

        assert_eq!(streamed.processed_samples, post_hoc.processed_samples);
        assert_eq!(streamed.samples, post_hoc.samples);
        assert_eq!(streamed.capacity, post_hoc.capacity);
        assert_eq!(streamed.bandwidth, post_hoc.bandwidth);
        let (r_s, r_p) = (streamed.regions(), post_hoc.regions());
        assert_eq!(r_s.per_tag, r_p.per_tag);
        assert_eq!(r_s.untagged_samples, r_p.untagged_samples);
        assert_eq!(r_s.per_phase, r_p.per_phase);

        assert!(post_hoc.stream.is_none());
        let stats = streamed.stream.expect("streaming run records pipeline stats");
        assert!(stats.batches_published > 0, "{stats:?}");
        assert!(stats.windows_closed > 0, "{stats:?}");
        assert_eq!(stats.batches_dropped, 0, "default bus must not drop: {stats:?}");
    }

    #[test]
    fn streaming_without_workload_is_a_config_error() {
        let err = small_session(100, 1).run_streaming().unwrap_err();
        assert!(matches!(err, NmoError::Config(_)), "{err}");
    }

    /// A sink that panics mid-stream must surface as an error, not wedge the
    /// session: under `Block` backpressure a dead consumer would otherwise
    /// leave the pump stuck in `publish` and `finish` stuck joining it.
    #[test]
    fn panicking_sink_surfaces_as_error_not_deadlock() {
        struct PanickingSink;
        impl crate::sink::AnalysisSink for PanickingSink {
            fn name(&self) -> &'static str {
                "boom"
            }
            fn analyze(
                &mut self,
                _machine: &Machine,
                _profile: &Profile,
            ) -> Result<crate::sink::AnalysisReport, NmoError> {
                Ok(crate::sink::AnalysisReport::Text(String::new()))
            }
            fn on_batch(&mut self, _batch: &SampleBatch) {
                panic!("sink exploded");
            }
        }
        let session = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(NmoConfig::paper_default(100))
            .threads(1)
            .sink(PanickingSink)
            .stream_options(crate::stream::StreamOptions {
                bus_capacity: 2,
                backpressure: crate::stream::BackpressurePolicy::Block,
                ..Default::default()
            })
            .build()
            .unwrap();
        let err = session.run_streaming_with(stream_like).unwrap_err();
        assert!(matches!(err, NmoError::Sink { .. }), "{err}");
    }

    #[test]
    fn poll_snapshot_is_none_without_streaming_and_live_with_it() {
        let active = small_session(100, 1).start().unwrap();
        assert!(active.poll_snapshot().is_none());
        drop(active.finish().unwrap());

        let active = small_session(100, 1).start_streaming().unwrap();
        let region = active.machine().alloc("data", 1 << 20).unwrap();
        active.tag_addr("data", region.start, region.end());
        {
            let mut e = active.machine().attach(0).unwrap();
            for i in 0..50_000u64 {
                e.load(region.start + (i % 10_000) * 8, 8);
            }
        }
        // Give the pump a few ticks to drain the detached core.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let snap = active.poll_snapshot().expect("streaming session has snapshots");
            if snap.spe_samples > 0 || std::time::Instant::now() > deadline {
                assert!(snap.spe_samples > 0, "pump never delivered: {snap:?}");
                break;
            }
            #[allow(clippy::disallowed_methods)] // test poll loop
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let profile = active.finish().unwrap();
        assert!(profile.processed_samples > 0);
    }

    #[test]
    fn workload_verification_failure_surfaces_as_error() {
        struct BadWorkload;
        impl Workload for BadWorkload {
            fn name(&self) -> &'static str {
                "bad"
            }
            fn setup(&mut self, _m: &Machine, _a: &Annotations) -> Result<(), NmoError> {
                Ok(())
            }
            fn run(
                &mut self,
                _m: &Machine,
                _a: &Annotations,
                _c: &[usize],
            ) -> Result<crate::WorkloadReport, NmoError> {
                Ok(crate::WorkloadReport::default())
            }
            fn verify(&self) -> bool {
                false
            }
        }
        let err = ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .threads(1)
            .workload(Box::new(BadWorkload))
            .build()
            .unwrap()
            .run()
            .unwrap_err();
        assert!(matches!(err, NmoError::Workload(_)), "{err}");
    }
}
