//! Level 1: temporal memory-capacity profiling (paper Section VI-A, Figure 2).
//!
//! NMO tracks the resident set size of the profiled application over time so
//! users can right-size node memory and spot phase behaviour (e.g. a large
//! initialisation footprint followed by a smaller execution footprint). In
//! the simulator residency is accounted on first touch of each 64 KiB page;
//! this module turns the raw step events into an evenly sampled series plus
//! summary statistics (peak usage, utilisation of the node's capacity).

use arch_sim::RssPoint;

/// One sample of the capacity-over-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Resident set size, GiB.
    pub rss_gib: f64,
}

/// The memory-capacity profile of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacitySeries {
    /// Evenly re-sampled capacity points.
    pub points: Vec<CapacityPoint>,
    /// Peak resident set size in bytes.
    pub peak_bytes: u64,
    /// Peak utilisation of the machine's memory capacity (0.0–1.0).
    pub peak_utilization: f64,
}

impl CapacitySeries {
    /// Build a series from raw first-touch/free step events.
    ///
    /// * `events` — step events from the machine (`time_ns`, `rss_bytes`).
    /// * `total_ns` — run duration used for the final sample.
    /// * `capacity_bytes` — machine memory capacity (for utilisation).
    /// * `buckets` — number of evenly spaced output samples (>= 1).
    pub fn from_events(
        events: &[RssPoint],
        total_ns: u64,
        capacity_bytes: u64,
        buckets: usize,
    ) -> Self {
        let buckets = buckets.max(1);
        let peak_bytes = events.iter().map(|e| e.rss_bytes).max().unwrap_or(0);
        let peak_utilization =
            if capacity_bytes == 0 { 0.0 } else { peak_bytes as f64 / capacity_bytes as f64 };

        let mut points = Vec::with_capacity(buckets + 1);
        let step = (total_ns.max(1)) as f64 / buckets as f64;
        let mut idx = 0usize;
        let mut current = 0u64;
        for b in 0..=buckets {
            let t_ns = (b as f64 * step) as u64;
            while idx < events.len() && events[idx].time_ns <= t_ns {
                current = events[idx].rss_bytes;
                idx += 1;
            }
            points.push(CapacityPoint {
                time_s: t_ns as f64 * 1e-9,
                rss_gib: current as f64 / (1u64 << 30) as f64,
            });
        }
        CapacitySeries { points, peak_bytes, peak_utilization }
    }

    /// Peak resident set size in GiB.
    pub fn peak_gib(&self) -> f64 {
        self.peak_bytes as f64 / (1u64 << 30) as f64
    }

    /// The saturation value: RSS at the end of the run, GiB.
    pub fn final_gib(&self) -> f64 {
        self.points.last().map(|p| p.rss_gib).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, rss: u64) -> RssPoint {
        RssPoint { time_ns, rss_bytes: rss }
    }

    #[test]
    fn resampling_produces_monotonic_step_function() {
        let events = vec![ev(0, 0), ev(100, 1 << 30), ev(500, 3 << 30), ev(900, 2 << 30)];
        let s = CapacitySeries::from_events(&events, 1000, 8 << 30, 10);
        assert_eq!(s.points.len(), 11);
        assert_eq!(s.peak_bytes, 3 << 30);
        assert!((s.peak_utilization - 3.0 / 8.0).abs() < 1e-12);
        // At t=0 only the rss=0 event has happened; by the t=100 bucket the
        // 1 GiB allocation is resident; after the last event it is 2 GiB.
        assert_eq!(s.points[0].rss_gib, 0.0);
        assert_eq!(s.points[1].rss_gib, 1.0);
        assert!((s.final_gib() - 2.0).abs() < 1e-12);
        // Peak appears somewhere in the middle.
        assert!(s.points.iter().any(|p| (p.rss_gib - 3.0).abs() < 1e-12));
    }

    #[test]
    fn empty_events_give_flat_zero() {
        let s = CapacitySeries::from_events(&[], 1_000_000, 1 << 30, 4);
        assert_eq!(s.peak_bytes, 0);
        assert_eq!(s.peak_utilization, 0.0);
        assert!(s.points.iter().all(|p| p.rss_gib == 0.0));
    }

    #[test]
    fn single_bucket_minimum() {
        let events = vec![ev(10, 1 << 20)];
        let s = CapacitySeries::from_events(&events, 100, 1 << 30, 0);
        assert_eq!(s.points.len(), 2);
        assert!(s.final_gib() > 0.0);
    }

    #[test]
    fn utilisation_guard_against_zero_capacity() {
        let s = CapacitySeries::from_events(&[ev(0, 100)], 10, 0, 2);
        assert_eq!(s.peak_utilization, 0.0);
    }
}
