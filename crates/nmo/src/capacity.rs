//! Level 1: temporal memory-capacity profiling (paper Section VI-A, Figure 2).
//!
//! NMO tracks the resident set size of the profiled application over time so
//! users can right-size node memory and spot phase behaviour (e.g. a large
//! initialisation footprint followed by a smaller execution footprint). In
//! the simulator residency is accounted on first touch of each 64 KiB page;
//! this module turns the raw step events into an evenly sampled series plus
//! summary statistics (peak usage, utilisation of the node's capacity).
//!
//! On a tiered-memory machine each step event also carries the per-node
//! residency split, so the series shows how much of the working set landed
//! on the local DDR versus the remote/CXL tier — the capacity view of the
//! paper's tiering experiments.

use arch_sim::{RssPoint, MAX_MEM_NODES};

/// One sample of the capacity-over-time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CapacityPoint {
    /// Simulated time, seconds.
    pub time_s: f64,
    /// Resident set size, GiB (all nodes).
    pub rss_gib: f64,
    /// Resident set size per memory node, GiB.
    pub rss_by_node_gib: [f64; MAX_MEM_NODES],
}

/// The memory-capacity profile of a run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CapacitySeries {
    /// Evenly re-sampled capacity points.
    pub points: Vec<CapacityPoint>,
    /// Peak resident set size in bytes.
    pub peak_bytes: u64,
    /// Peak resident set size per memory node, bytes (each node's own peak;
    /// they need not be simultaneous).
    pub peak_bytes_by_node: [u64; MAX_MEM_NODES],
    /// Peak utilisation of the machine's memory capacity (0.0–1.0).
    pub peak_utilization: f64,
    /// Number of memory nodes the series was built for (the meaningful
    /// prefix of the per-node arrays).
    pub nodes: usize,
}

const GIB: f64 = (1u64 << 30) as f64;

impl CapacitySeries {
    /// Build a series from raw first-touch/free step events.
    ///
    /// * `events` — step events from the machine (`time_ns`, `rss_bytes`,
    ///   per-node split).
    /// * `total_ns` — run duration used for the final sample.
    /// * `capacity_bytes` — machine memory capacity (for utilisation).
    /// * `buckets` — number of evenly spaced output samples (>= 1).
    /// * `nodes` — number of memory nodes in the topology.
    pub fn from_events(
        events: &[RssPoint],
        total_ns: u64,
        capacity_bytes: u64,
        buckets: usize,
        nodes: usize,
    ) -> Self {
        let buckets = buckets.max(1);
        let nodes = nodes.clamp(1, MAX_MEM_NODES);
        let peak_bytes = events.iter().map(|e| e.rss_bytes).max().unwrap_or(0);
        let mut peak_bytes_by_node = [0u64; MAX_MEM_NODES];
        for e in events {
            for (node, peak) in peak_bytes_by_node.iter_mut().enumerate() {
                *peak = (*peak).max(e.rss_by_node[node]);
            }
        }
        let peak_utilization =
            if capacity_bytes == 0 { 0.0 } else { peak_bytes as f64 / capacity_bytes as f64 };

        let mut points = Vec::with_capacity(buckets + 1);
        let step = (total_ns.max(1)) as f64 / buckets as f64;
        let mut idx = 0usize;
        let mut current = 0u64;
        let mut current_by_node = [0u64; MAX_MEM_NODES];
        for b in 0..=buckets {
            let t_ns = (b as f64 * step) as u64;
            while idx < events.len() && events[idx].time_ns <= t_ns {
                current = events[idx].rss_bytes;
                current_by_node = events[idx].rss_by_node;
                idx += 1;
            }
            let mut rss_by_node_gib = [0f64; MAX_MEM_NODES];
            for (node, bytes) in current_by_node.iter().enumerate() {
                rss_by_node_gib[node] = *bytes as f64 / GIB;
            }
            points.push(CapacityPoint {
                time_s: t_ns as f64 * 1e-9,
                rss_gib: current as f64 / GIB,
                rss_by_node_gib,
            });
        }
        CapacitySeries { points, peak_bytes, peak_bytes_by_node, peak_utilization, nodes }
    }

    /// Peak resident set size in GiB.
    pub fn peak_gib(&self) -> f64 {
        self.peak_bytes as f64 / GIB
    }

    /// Peak resident set size of one node, GiB.
    pub fn peak_gib_on(&self, node: usize) -> f64 {
        self.peak_bytes_by_node.get(node).map(|b| *b as f64 / GIB).unwrap_or(0.0)
    }

    /// The saturation value: RSS at the end of the run, GiB.
    pub fn final_gib(&self) -> f64 {
        self.points.last().map(|p| p.rss_gib).unwrap_or(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time_ns: u64, rss: u64) -> RssPoint {
        RssPoint::flat(time_ns, rss)
    }

    #[test]
    fn resampling_produces_monotonic_step_function() {
        let events = vec![ev(0, 0), ev(100, 1 << 30), ev(500, 3 << 30), ev(900, 2 << 30)];
        let s = CapacitySeries::from_events(&events, 1000, 8 << 30, 10, 1);
        assert_eq!(s.points.len(), 11);
        assert_eq!(s.peak_bytes, 3 << 30);
        assert!((s.peak_utilization - 3.0 / 8.0).abs() < 1e-12);
        // At t=0 only the rss=0 event has happened; by the t=100 bucket the
        // 1 GiB allocation is resident; after the last event it is 2 GiB.
        assert_eq!(s.points[0].rss_gib, 0.0);
        assert_eq!(s.points[1].rss_gib, 1.0);
        assert!((s.final_gib() - 2.0).abs() < 1e-12);
        // Peak appears somewhere in the middle.
        assert!(s.points.iter().any(|p| (p.rss_gib - 3.0).abs() < 1e-12));
        // Single-node events put everything on node 0.
        assert_eq!(s.peak_bytes_by_node[0], 3 << 30);
        assert!((s.peak_gib_on(0) - 3.0).abs() < 1e-12);
        assert_eq!(s.peak_bytes_by_node[1], 0);
    }

    #[test]
    fn per_node_split_is_resampled() {
        let mk = |time_ns: u64, local: u64, remote: u64| {
            let mut rss_by_node = [0u64; MAX_MEM_NODES];
            rss_by_node[0] = local;
            rss_by_node[1] = remote;
            RssPoint { time_ns, rss_bytes: local + remote, rss_by_node }
        };
        let events = vec![mk(0, 1 << 30, 0), mk(400, 2 << 30, 1 << 30), mk(800, 2 << 30, 3 << 30)];
        let s = CapacitySeries::from_events(&events, 1000, 16 << 30, 5, 2);
        assert_eq!(s.nodes, 2);
        assert_eq!(s.peak_bytes, 5 << 30);
        assert_eq!(s.peak_bytes_by_node[0], 2 << 30);
        assert_eq!(s.peak_bytes_by_node[1], 3 << 30);
        let last = s.points.last().unwrap();
        assert!((last.rss_gib - 5.0).abs() < 1e-12);
        assert!((last.rss_by_node_gib[0] - 2.0).abs() < 1e-12);
        assert!((last.rss_by_node_gib[1] - 3.0).abs() < 1e-12);
        // The split always sums to the total.
        for p in &s.points {
            let sum: f64 = p.rss_by_node_gib.iter().sum();
            assert!((sum - p.rss_gib).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_events_give_flat_zero() {
        let s = CapacitySeries::from_events(&[], 1_000_000, 1 << 30, 4, 1);
        assert_eq!(s.peak_bytes, 0);
        assert_eq!(s.peak_utilization, 0.0);
        assert!(s.points.iter().all(|p| p.rss_gib == 0.0));
    }

    #[test]
    fn single_bucket_minimum() {
        let events = vec![ev(10, 1 << 20)];
        let s = CapacitySeries::from_events(&events, 100, 1 << 30, 0, 1);
        assert_eq!(s.points.len(), 2);
        assert!(s.final_gib() > 0.0);
    }

    #[test]
    fn utilisation_guard_against_zero_capacity() {
        let s = CapacitySeries::from_events(&[ev(0, 100)], 10, 0, 2, 1);
        assert_eq!(s.peak_utilization, 0.0);
    }
}
