//! Architecture-agnostic source annotations (paper Section III-B).
//!
//! NMO exposes a small C API for tagging memory objects and execution phases:
//!
//! ```c
//! nmo_tag_addr("data_a", addr0_start, addr0_end);
//! nmo_start("kernel0");
//! /* ... kernel ... */
//! nmo_stop();
//! ```
//!
//! The Rust equivalent is the [`Annotations`] registry: `tag_addr` registers
//! a named address range, `start`/`stop` bracket named execution phases with
//! simulated-time timestamps. The registry is thread-safe: any worker thread
//! may open or close phases (phases are tracked per thread, mirroring the
//! behaviour of the C API under OpenMP where the annotation is typically
//! issued by the master thread outside the parallel region).

use parking_lot::Mutex;

/// A named address range tag (`nmo_tag_addr`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddrTag {
    /// Tag name (e.g. `"a"`, `"normals"`).
    pub name: String,
    /// First address of the range.
    pub start: u64,
    /// One-past-the-end address of the range.
    pub end: u64,
}

impl AddrTag {
    /// Whether `addr` falls inside the tag.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Size of the tagged range in bytes.
    pub fn len(&self) -> u64 {
        self.end.saturating_sub(self.start)
    }

    /// True when the tag covers no bytes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A named execution phase (`nmo_start` .. `nmo_stop`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Phase {
    /// Phase name (e.g. `"triad"`, `"computation loop"`).
    pub name: String,
    /// Phase start, simulated nanoseconds.
    pub start_ns: u64,
    /// Phase end, simulated nanoseconds (`u64::MAX` while still open).
    pub end_ns: u64,
}

impl Phase {
    /// Whether the phase is still open.
    pub fn is_open(&self) -> bool {
        self.end_ns == u64::MAX
    }

    /// Whether a timestamp falls inside the phase.
    pub fn contains_ns(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns < self.end_ns
    }

    /// Phase duration (0 while open).
    pub fn duration_ns(&self) -> u64 {
        if self.is_open() {
            0
        } else {
            self.end_ns - self.start_ns
        }
    }
}

#[derive(Debug, Default)]
struct Inner {
    tags: Vec<AddrTag>,
    phases: Vec<Phase>,
    open_stack: Vec<usize>,
}

/// Thread-safe annotation registry.
#[derive(Debug)]
pub struct Annotations {
    inner: Mutex<Inner>,
}

impl Default for Annotations {
    fn default() -> Self {
        Self::new()
    }
}

impl Annotations {
    /// Create an empty registry.
    pub fn new() -> Self {
        Annotations { inner: Mutex::named(Inner::default(), "annotations.inner") }
    }

    /// `nmo_tag_addr`: register a named address range.
    pub fn tag_addr(&self, name: &str, start: u64, end: u64) {
        let mut inner = self.inner.lock();
        inner.tags.push(AddrTag { name: name.to_string(), start, end: end.max(start) });
    }

    /// `nmo_start`: open a named phase at simulated time `now_ns`.
    pub fn start(&self, name: &str, now_ns: u64) {
        let mut inner = self.inner.lock();
        let idx = inner.phases.len();
        inner.phases.push(Phase { name: name.to_string(), start_ns: now_ns, end_ns: u64::MAX });
        inner.open_stack.push(idx);
    }

    /// `nmo_stop`: close the most recently opened phase at `now_ns`.
    /// Returns the closed phase, or `None` if no phase was open.
    pub fn stop(&self, now_ns: u64) -> Option<Phase> {
        let mut inner = self.inner.lock();
        let idx = inner.open_stack.pop()?;
        let phase = &mut inner.phases[idx];
        phase.end_ns = now_ns.max(phase.start_ns);
        Some(phase.clone())
    }

    /// All registered tags.
    pub fn tags(&self) -> Vec<AddrTag> {
        self.inner.lock().tags.clone()
    }

    /// All phases (open phases keep `end_ns == u64::MAX`).
    pub fn phases(&self) -> Vec<Phase> {
        self.inner.lock().phases.clone()
    }

    /// Find the tag containing `addr`.
    ///
    /// **Overlap precedence (pinned):** tags are scanned in *reverse
    /// registration order* and the first match wins — i.e. when ranges
    /// overlap, the **most recently registered** containing tag takes
    /// precedence. This makes nested tagging natural (`tag_addr` the whole
    /// arena, then re-tag a sub-object later and the sub-object wins) and
    /// means re-registering a name after `free`/`alloc` shadows the stale
    /// range. Empty ranges (`start == end`) contain no address and never
    /// match.
    pub fn tag_of(&self, addr: u64) -> Option<AddrTag> {
        let inner = self.inner.lock();
        inner.tags.iter().rev().find(|t| t.contains(addr)).cloned()
    }

    /// Number of open phases.
    pub fn open_phases(&self) -> usize {
        self.inner.lock().open_stack.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_registration_and_lookup() {
        let a = Annotations::new();
        a.tag_addr("a", 0x1000, 0x2000);
        a.tag_addr("b", 0x2000, 0x3000);
        assert_eq!(a.tags().len(), 2);
        assert_eq!(a.tag_of(0x1800).unwrap().name, "a");
        assert_eq!(a.tag_of(0x2000).unwrap().name, "b");
        assert!(a.tag_of(0x5000).is_none());
        assert_eq!(a.tags()[0].len(), 0x1000);
    }

    #[test]
    fn innermost_tag_wins_on_overlap() {
        let a = Annotations::new();
        a.tag_addr("whole", 0x1000, 0x9000);
        a.tag_addr("inner", 0x2000, 0x3000);
        assert_eq!(a.tag_of(0x2500).unwrap().name, "inner");
        assert_eq!(a.tag_of(0x4000).unwrap().name, "whole");
    }

    /// Pins the documented overlap rule: reverse scan, first match — the
    /// most recently registered containing tag wins, at every overlap shape.
    #[test]
    fn overlap_precedence_is_latest_registration_first_match() {
        let a = Annotations::new();
        a.tag_addr("first", 0x1000, 0x5000);
        a.tag_addr("second", 0x3000, 0x7000); // partial overlap with "first"
        a.tag_addr("third", 0x3800, 0x4000); // nested inside both

        // Non-overlapping parts resolve to their sole owner.
        assert_eq!(a.tag_of(0x1500).unwrap().name, "first");
        assert_eq!(a.tag_of(0x6000).unwrap().name, "second");
        // In the first/second overlap the later registration wins.
        assert_eq!(a.tag_of(0x3400).unwrap().name, "second");
        // In the triple overlap the latest registration wins.
        assert_eq!(a.tag_of(0x3900).unwrap().name, "third");
        // Identical ranges: the later duplicate shadows the earlier one.
        a.tag_addr("dup_old", 0x8000, 0x8100);
        a.tag_addr("dup_new", 0x8000, 0x8100);
        assert_eq!(a.tag_of(0x8050).unwrap().name, "dup_new");
        // Boundary semantics are half-open: `end` belongs to the next tag.
        assert_eq!(a.tag_of(0x7000), None);
        assert_eq!(a.tag_of(0x4fff).unwrap().name, "second");
    }

    /// An empty range (`start == end`) matches nothing — even when a later
    /// empty tag sits exactly on an address covered by an earlier real tag,
    /// the reverse scan skips it rather than shadowing the real tag.
    #[test]
    fn empty_range_never_matches_nor_shadows() {
        let a = Annotations::new();
        a.tag_addr("real", 0x1000, 0x2000);
        a.tag_addr("empty", 0x1800, 0x1800);
        assert!(a.tags()[1].is_empty());
        assert_eq!(a.tag_of(0x1800).unwrap().name, "real", "empty tag cannot shadow");
        // An empty tag with nothing underneath matches nothing at all.
        let b = Annotations::new();
        b.tag_addr("only_empty", 0x5000, 0x5000);
        assert_eq!(b.tag_of(0x5000), None);
        // end < start is clamped to empty at registration, same outcome.
        b.tag_addr("inverted", 0x9000, 0x8000);
        assert!(b.tags()[1].is_empty());
        assert_eq!(b.tag_of(0x8800), None);
    }

    #[test]
    fn phase_bracketing_is_stack_like() {
        let a = Annotations::new();
        a.start("outer", 100);
        a.start("inner", 200);
        assert_eq!(a.open_phases(), 2);
        let inner = a.stop(300).unwrap();
        assert_eq!(inner.name, "inner");
        assert_eq!(inner.duration_ns(), 100);
        let outer = a.stop(500).unwrap();
        assert_eq!(outer.name, "outer");
        assert_eq!(outer.duration_ns(), 400);
        assert!(a.stop(600).is_none(), "no phase open anymore");
        assert_eq!(a.open_phases(), 0);
    }

    #[test]
    fn open_phase_reported_as_open() {
        let a = Annotations::new();
        a.start("kernel0", 50);
        let phases = a.phases();
        assert!(phases[0].is_open());
        assert!(phases[0].contains_ns(1_000_000));
        a.stop(60);
        let phases = a.phases();
        assert!(!phases[0].is_open());
        assert!(!phases[0].contains_ns(61));
    }

    #[test]
    fn stop_never_ends_before_start() {
        let a = Annotations::new();
        a.start("p", 100);
        let p = a.stop(10).unwrap();
        assert_eq!(p.end_ns, 100);
        assert_eq!(p.duration_ns(), 0);
    }

    #[test]
    fn empty_tag_is_empty() {
        let a = Annotations::new();
        a.tag_addr("z", 0x10, 0x10);
        assert!(a.tags()[0].is_empty());
        assert!(!a.tags()[0].contains(0x10));
    }
}
