//! The streaming data plane: time windows, sample batches, and the sharded
//! event bus connecting backends to analysis sinks.
//!
//! The paper's SPE flow is inherently streaming — a monitor thread drains
//! the aux buffer periodically and all three analysis levels are windowed
//! over time — so the profiler's core seam is a produce/consume pipeline
//! rather than a post-hoc scan. On many-core machines (the paper's 128-core
//! Ampere Altra Max) a single pump/consumer pair cannot keep up with every
//! core sampling at the densest periods, so the pipeline shards:
//!
//! ```text
//! pump workers ──SampleBatch──▶ ShardedBus ──▶ shard consumers ──▶ merge
//!  (disjoint        │            N lanes,          │            (ordered by
//!   core sets)      │            per-lane          │             shard index,
//!                   └ stamped    backpressure      └ SinkShard   deterministic)
//!                     + pooled   + drop accounting   aggregation
//! ```
//!
//! * A [`SampleBatch`] carries one window's worth of data from one source:
//!   decoded SPE records, hardware-counter deltas, or RSS/bandwidth ticks.
//!   Its buffers come from (and return to) a [`BatchPool`], so the steady
//!   state of the hot path allocates nothing.
//! * The [`ShardedBus`] partitions batches over N single-producer lanes by
//!   core hash ([`ShardedBus::lane_for_core`]); each lane is a bounded
//!   [`EventBus`] with explicit backpressure: when a consumer falls behind,
//!   batches are either dropped (and counted — the analogue of SPE aux
//!   truncation) or the producer blocks, depending on
//!   [`BackpressurePolicy`]. Per-lane accounting rolls up into one
//!   [`BusStats`] via [`ShardedBus::stats`].
//! * [`Window`]s close monotonically once the producer-side watermark passes
//!   them (window-close signals are broadcast to every lane); late batches
//!   are still delivered (and counted) so final reports stay complete.
//!
//! [`crate::session::ProfileSession::run_streaming`] wires the pipeline up;
//! [`crate::sink::AnalysisSink`] consumes it through its streaming hooks,
//! and [`crate::sink::ShardableSink`] through per-shard workers with a
//! deterministic merge.
//!
//! The pipeline's shape is tunable at runtime: the optional [`adaptive`]
//! controller ([`StreamOptions::adaptive`]) moves the *active* lane count
//! within the allocated shards ([`ShardedBus::set_active_lanes`]), the
//! drain cadence, and the backpressure policy
//! ([`EventBus::set_policy`]) against a loss/overhead budget.

pub mod adaptive;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use arch_sim::{BandwidthPoint, DataSource, MigrationStats, RssPoint};
use spe::SpeStatsSnapshot;

use crate::runtime::AddressSample;

/// One time window of the streaming pipeline (half-open, `[start, end)`
/// simulated nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Window {
    /// Window index (`start_ns / width`).
    pub index: u64,
    /// Inclusive start, simulated nanoseconds.
    pub start_ns: u64,
    /// Exclusive end, simulated nanoseconds.
    pub end_ns: u64,
}

impl Window {
    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// Whether a timestamp falls inside the window.
    pub fn contains_ns(&self, t_ns: u64) -> bool {
        t_ns >= self.start_ns && t_ns < self.end_ns
    }
}

/// The producer-side window arithmetic: a fixed width plus the high-water
/// mark of simulated time observed so far. Backends use it to stamp drained
/// data with windows; the pump uses the watermark to close windows.
#[derive(Debug, Clone, Copy)]
pub struct WindowClock {
    width_ns: u64,
    watermark_ns: u64,
}

impl WindowClock {
    /// A clock with the given window width (clamped to at least 1 ns).
    pub fn new(width_ns: u64) -> Self {
        WindowClock { width_ns: width_ns.max(1), watermark_ns: 0 }
    }

    /// Window width in nanoseconds.
    pub fn width_ns(&self) -> u64 {
        self.width_ns
    }

    /// Highest simulated time observed so far.
    pub fn watermark_ns(&self) -> u64 {
        self.watermark_ns
    }

    /// The window index a timestamp falls into.
    pub fn index_of(&self, t_ns: u64) -> u64 {
        t_ns / self.width_ns
    }

    /// The window with the given index.
    pub fn window(&self, index: u64) -> Window {
        Window { index, start_ns: index * self.width_ns, end_ns: (index + 1) * self.width_ns }
    }

    /// The window containing a timestamp.
    pub fn window_containing(&self, t_ns: u64) -> Window {
        self.window(self.index_of(t_ns))
    }

    /// The window containing the current watermark.
    pub fn current(&self) -> Window {
        self.window_containing(self.watermark_ns)
    }

    /// Advance the watermark (monotonic).
    pub fn observe(&mut self, t_ns: u64) {
        self.watermark_ns = self.watermark_ns.max(t_ns);
    }

    /// Group timestamped items by the window containing them, ascending by
    /// window index (the stamping step every batch producer shares).
    pub fn group_by_window<T>(
        &self,
        items: impl IntoIterator<Item = T>,
        time_ns: impl Fn(&T) -> u64,
    ) -> Vec<(Window, Vec<T>)> {
        let mut by_window: std::collections::BTreeMap<u64, Vec<T>> =
            std::collections::BTreeMap::new();
        for item in items {
            by_window.entry(self.index_of(time_ns(&item))).or_default().push(item);
        }
        by_window.into_iter().map(|(index, group)| (self.window(index), group)).collect()
    }
}

/// Identity of one timestamped batch producer: a backend name plus an
/// optional core (per-core producers like SPE publish at independent
/// cadences, so the window-close watermark must track each one).
pub type StreamSource = (&'static str, Option<usize>);

/// One hardware-counter reading inside a [`BatchPayload::CounterDeltas`]
/// batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Event name (`mem_access`, `ld_retired`, ...).
    pub event: String,
    /// Increase since the previous drain.
    pub delta: u64,
    /// Cumulative count at this drain.
    pub total: u64,
}

/// The data carried by one [`SampleBatch`].
#[derive(Debug, Clone)]
pub enum BatchPayload {
    /// Decoded SPE address samples, plus the per-drain SPE loss statistics
    /// (the [`SpeStatsSnapshot::delta`] since the previous drain; attached
    /// to the last batch of a drain, zero on the others).
    SpeSamples {
        /// The decoded samples, all inside the batch's window.
        samples: Vec<AddressSample>,
        /// Per-drain loss statistics delta.
        loss: SpeStatsSnapshot,
    },
    /// `perf stat`-style counter deltas since the previous drain.
    CounterDeltas {
        /// One entry per tracked hardware event.
        deltas: Vec<CounterDelta>,
    },
    /// Resident-set-size step events (level 1 ticks).
    Rss {
        /// New RSS step events since the previous drain.
        points: Vec<RssPoint>,
    },
    /// Memory-bandwidth bucket ticks (level 2 ticks).
    Bandwidth {
        /// Bandwidth buckets; deliveries for the same `time_ns` merge by
        /// summing bytes.
        points: Vec<BandwidthPoint>,
    },
}

/// One unit of streaming delivery: a window-stamped chunk of data from one
/// backend (or the machine probe).
///
/// Construct batches with [`SampleBatch::new`]: the payload is scanned once
/// there and its maximum timestamp cached, so the consumer-side watermark
/// checks (`max_time_ns` is read on every delivery) never re-scan the
/// sample slice. The payload is therefore immutable after construction.
#[derive(Debug, Clone)]
pub struct SampleBatch {
    /// Name of the producing backend (`"spe"`, `"counters"`, `"machine"`).
    pub backend: &'static str,
    /// Core the data belongs to, when per-core.
    pub core: Option<usize>,
    /// Monotonic publication sequence number (stamped by the bus on
    /// publish).
    pub seq: u64,
    /// The time window the data belongs to.
    pub window: Window,
    /// The data itself (immutable — `max_time_ns` is cached over it).
    payload: BatchPayload,
    /// Highest item timestamp, computed once at construction.
    max_time_ns: Option<u64>,
}

impl SampleBatch {
    /// Build a batch, scanning the payload once to cache its maximum item
    /// timestamp.
    pub fn new(
        backend: &'static str,
        core: Option<usize>,
        window: Window,
        payload: BatchPayload,
    ) -> Self {
        let max_time_ns = match &payload {
            BatchPayload::SpeSamples { samples, .. } => samples.iter().map(|s| s.time_ns).max(),
            BatchPayload::CounterDeltas { .. } => None,
            BatchPayload::Rss { points } => points.iter().map(|p| p.time_ns).max(),
            BatchPayload::Bandwidth { points } => points.iter().map(|p| p.time_ns).max(),
        };
        SampleBatch { backend, core, seq: 0, window, payload, max_time_ns }
    }

    /// The batch's data.
    pub fn payload(&self) -> &BatchPayload {
        &self.payload
    }

    /// Consume the batch, returning its payload (the recycling path back
    /// into a [`BatchPool`]).
    pub fn into_payload(self) -> BatchPayload {
        self.payload
    }

    /// Number of items (samples / deltas / points) in the batch.
    pub fn len(&self) -> usize {
        match &self.payload {
            BatchPayload::SpeSamples { samples, .. } => samples.len(),
            BatchPayload::CounterDeltas { deltas } => deltas.len(),
            BatchPayload::Rss { points } => points.len(),
            BatchPayload::Bandwidth { points } => points.len(),
        }
    }

    /// Whether the batch carries no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Highest simulated timestamp carried by the batch's items, if any
    /// carry timestamps (cached at construction — no payload scan).
    pub fn max_time_ns(&self) -> Option<u64> {
        self.max_time_ns
    }
}

/// What the bus does when a producer finds it full.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackpressurePolicy {
    /// Drop the incoming batch and count it (the SPE aux-truncation
    /// analogue; the profiled application never stalls). Default.
    #[default]
    DropNewest,
    /// Block the producer until the consumer makes room (lossless, but the
    /// pump — never the profiled cores — stalls).
    Block,
}

/// Point-in-time bus accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BusStats {
    /// Events accepted onto the bus.
    pub published: u64,
    /// Batches dropped because the bus was full.
    pub dropped_batches: u64,
    /// Items (samples/points/deltas) inside dropped batches.
    pub dropped_items: u64,
    /// Highest queue occupancy observed.
    pub high_watermark: u64,
    /// Configured capacity.
    pub capacity: u64,
    /// Events currently queued.
    pub queued: u64,
}

/// An event travelling over the bus: a data batch or a window-close signal.
#[derive(Debug, Clone)]
pub enum BusEvent {
    /// A window-stamped data batch.
    Batch(SampleBatch),
    /// All producers have passed this window; it will receive no further
    /// on-time data. (Late batches are still delivered and counted.)
    CloseWindow(Window),
}

/// Result of a blocking receive on the bus.
#[derive(Debug)]
pub enum BusRecv {
    /// An event arrived.
    Event(BusEvent),
    /// The timeout elapsed with the bus empty (but still open).
    TimedOut,
    /// The bus is closed and fully drained.
    Closed,
}

struct BusQueue {
    queue: VecDeque<BusEvent>,
    high_watermark: u64,
}

/// Bounded multi-producer/single-consumer queue with drop accounting
/// (see the module docs).
///
/// Window-close signals bypass the capacity check: they are tiny, bounded
/// in number by the run's window count, and dropping one would wedge the
/// consumer's window tracking.
pub struct EventBus {
    inner: Mutex<BusQueue>,
    readable: Condvar,
    writable: Condvar,
    capacity: usize,
    /// [`BackpressurePolicy`] as a `u8` (`DropNewest = 0`, `Block = 1`):
    /// runtime-switchable by the adaptive controller, re-read on every
    /// publish attempt and on every wakeup of a blocked producer.
    policy: AtomicU8,
    closed: AtomicBool,
    published: AtomicU64,
    dropped_batches: AtomicU64,
    dropped_items: AtomicU64,
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("capacity", &self.capacity)
            .field("policy", &self.policy())
            .field("closed", &self.closed.load(Ordering::Relaxed)) // relaxed-ok: Debug snapshot
            .finish()
    }
}

impl EventBus {
    /// Create a bus holding at most `capacity` events (minimum 1).
    pub fn bounded(capacity: usize, policy: BackpressurePolicy) -> Arc<EventBus> {
        Arc::new(EventBus {
            inner: Mutex::named(
                BusQueue { queue: VecDeque::new(), high_watermark: 0 },
                "bus.inner",
            ),
            readable: Condvar::new(),
            writable: Condvar::new(),
            capacity: capacity.max(1),
            policy: AtomicU8::new(policy as u8),
            closed: AtomicBool::new(false),
            published: AtomicU64::new(0),
            dropped_batches: AtomicU64::new(0),
            dropped_items: AtomicU64::new(0),
        })
    }

    /// Producer side: enqueue an event. Returns `false` when the event was
    /// dropped (bus full under [`BackpressurePolicy::DropNewest`], or bus
    /// closed). A [`BackpressurePolicy::Block`] wait relies on the consumer
    /// always draining the bus — the session's consumer thread guarantees
    /// this even when a sink panics (see `consumer_loop`).
    pub fn publish(&self, event: BusEvent) -> bool {
        let is_batch = matches!(event, BusEvent::Batch(_));
        let items = match &event {
            BusEvent::Batch(b) => b.len() as u64,
            BusEvent::CloseWindow(_) => 0,
        };
        let mut inner = self.inner.lock();
        if is_batch {
            while inner.queue.len() >= self.capacity {
                if self.is_closed() {
                    break;
                }
                if matches!(self.policy(), BackpressurePolicy::DropNewest) {
                    drop(inner);
                    // relaxed-ok: drop-accounting counters read by `stats()`
                    // for reporting; no data is published through them.
                    self.dropped_batches.fetch_add(1, Ordering::Relaxed);
                    self.dropped_items.fetch_add(items, Ordering::Relaxed); // relaxed-ok: as above
                    return false;
                }
                // Block: re-check the closed flag at least every 10 ms so a
                // blocked producer cannot outlive a closed bus.
                let deadline = std::time::Instant::now() + Duration::from_millis(10);
                let _ = self.writable.wait_until(&mut inner, deadline);
            }
        }
        if self.is_closed() {
            drop(inner);
            if is_batch {
                // relaxed-ok: drop-accounting counters, as above.
                self.dropped_batches.fetch_add(1, Ordering::Relaxed);
                self.dropped_items.fetch_add(items, Ordering::Relaxed); // relaxed-ok: as above
            }
            return false;
        }
        inner.queue.push_back(event);
        let occupancy = inner.queue.len() as u64;
        inner.high_watermark = inner.high_watermark.max(occupancy);
        drop(inner);
        // relaxed-ok: publish counter for `stats()`; the event itself was
        // handed over under `inner`'s mutex, which carries the ordering.
        self.published.fetch_add(1, Ordering::Relaxed);
        self.readable.notify_one();
        true
    }

    /// Consumer side: dequeue the next event, waiting up to `timeout`.
    /// Queued events are still delivered after [`EventBus::close`];
    /// [`BusRecv::Closed`] is only returned once the queue is empty.
    pub fn recv_timeout(&self, timeout: Duration) -> BusRecv {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.inner.lock();
        loop {
            if let Some(event) = inner.queue.pop_front() {
                drop(inner);
                self.writable.notify_one();
                return BusRecv::Event(event);
            }
            if self.is_closed() {
                return BusRecv::Closed;
            }
            if self.readable.wait_until(&mut inner, deadline).timed_out() && inner.queue.is_empty()
            {
                return if self.is_closed() { BusRecv::Closed } else { BusRecv::TimedOut };
            }
        }
    }

    /// Close the bus: producers start failing, the consumer drains what is
    /// queued and then sees [`BusRecv::Closed`].
    pub fn close(&self) {
        // Ordering rationale (pinned): Release pairs with the Acquire in
        // `is_closed` so everything the closer did before closing (final
        // batches, coordinator bookkeeping) is visible to a producer or
        // consumer that observes `closed == true`. Taking `inner` before
        // notifying closes the race with a waiter that checked the flag and
        // is about to block: it either sees the flag under the lock or gets
        // the notification after releasing it — it cannot sleep through the
        // close. Verified at runtime by the `NMO_LOCK_CHECK` stress run.
        self.closed.store(true, Ordering::Release);
        let _guard = self.inner.lock();
        self.readable.notify_all();
        self.writable.notify_all();
    }

    /// The current backpressure policy.
    pub fn policy(&self) -> BackpressurePolicy {
        // relaxed-ok: policy hint — a producer acting on a just-replaced
        // policy for one more publish is indistinguishable from the switch
        // landing one event later; no data travels through this flag.
        match self.policy.load(Ordering::Relaxed) {
            0 => BackpressurePolicy::DropNewest,
            _ => BackpressurePolicy::Block,
        }
    }

    /// Switch the backpressure policy at runtime (the adaptive controller's
    /// actuation seam). Takes effect on the next publish attempt; a
    /// producer blocked mid-wait re-reads the policy on wakeup, and the
    /// notify below wakes it immediately rather than at its next 10 ms
    /// re-check.
    pub fn set_policy(&self, policy: BackpressurePolicy) {
        self.policy.store(policy as u8, Ordering::Relaxed); // relaxed-ok: see policy()
        let _guard = self.inner.lock();
        self.writable.notify_all();
    }

    /// Whether the bus has been closed.
    pub fn is_closed(&self) -> bool {
        // Acquire pairs with the Release store in `close` (see there).
        self.closed.load(Ordering::Acquire)
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> BusStats {
        let inner = self.inner.lock();
        BusStats {
            // relaxed-ok: reporting snapshot of the accounting counters; a
            // mid-run snapshot tolerates skew, the final one is quiescent.
            published: self.published.load(Ordering::Relaxed),
            dropped_batches: self.dropped_batches.load(Ordering::Relaxed), // relaxed-ok: as above
            dropped_items: self.dropped_items.load(Ordering::Relaxed),     // relaxed-ok: as above
            high_watermark: inner.high_watermark,
            capacity: self.capacity as u64,
            queued: inner.queue.len() as u64,
        }
    }
}

/// A pool of recycled batch buffers: the zero-copy seam of the hot path.
///
/// Every pump drain used to allocate a fresh `Vec` for the decoded samples
/// (plus a scratch `Vec<u8>` per aux-record read); at the paper's densest
/// sampling periods on 128 cores that is thousands of allocations per
/// second on the hot path. The pool recycles both kinds of buffer: the
/// consumer hands a finished [`SampleBatch`] back via
/// [`BatchPool::recycle_batch`], and the next drain reuses its capacity via
/// [`BatchPool::samples`] / [`BatchPool::bytes`].
///
/// The pool is bounded (`max_pooled` buffers of each kind); beyond that,
/// recycled buffers are simply dropped, so a burst cannot pin memory
/// forever.
#[derive(Debug)]
pub struct BatchPool {
    samples: Mutex<Vec<Vec<AddressSample>>>,
    bytes: Mutex<Vec<Vec<u8>>>,
    max_pooled: usize,
    reused: AtomicU64,
    allocated: AtomicU64,
}

/// Point-in-time pool accounting (how effective recycling is).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffer requests served from the pool.
    pub reused: u64,
    /// Buffer requests that had to allocate fresh.
    pub allocated: u64,
}

impl BatchPool {
    /// A pool retaining at most `max_pooled` buffers of each kind.
    pub fn new(max_pooled: usize) -> Arc<BatchPool> {
        Arc::new(BatchPool {
            samples: Mutex::named(Vec::new(), "pool.samples"),
            bytes: Mutex::named(Vec::new(), "pool.bytes"),
            max_pooled: max_pooled.max(1),
            reused: AtomicU64::new(0),
            allocated: AtomicU64::new(0),
        })
    }

    fn count(&self, reused: bool) {
        if reused {
            // relaxed-ok: recycling-effectiveness counters for `stats()`.
            self.reused.fetch_add(1, Ordering::Relaxed);
        } else {
            self.allocated.fetch_add(1, Ordering::Relaxed); // relaxed-ok: as above
        }
    }

    /// An empty sample buffer, recycled when available.
    pub fn samples(&self) -> Vec<AddressSample> {
        let buf = self.samples.lock().pop();
        self.count(buf.is_some());
        buf.unwrap_or_default()
    }

    /// An empty byte scratch buffer, recycled when available.
    pub fn bytes(&self) -> Vec<u8> {
        let buf = self.bytes.lock().pop();
        self.count(buf.is_some());
        buf.unwrap_or_default()
    }

    /// An empty byte scratch buffer with at least `min_capacity` reserved.
    /// Recycled buffers usually already carry the capacity from their last
    /// use, so steady-state callers (e.g. the trace writer's block scratch)
    /// pay the allocation once per pooled buffer, not once per use.
    pub fn bytes_with_capacity(&self, min_capacity: usize) -> Vec<u8> {
        let mut buf = self.bytes();
        buf.reserve(min_capacity);
        buf
    }

    /// Return a sample buffer to the pool (cleared, capacity kept).
    pub fn recycle_samples(&self, mut buf: Vec<AddressSample>) {
        buf.clear();
        let mut pool = self.samples.lock();
        if pool.len() < self.max_pooled {
            pool.push(buf);
        }
    }

    /// Return a byte scratch buffer to the pool (cleared, capacity kept).
    pub fn recycle_bytes(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut pool = self.bytes.lock();
        if pool.len() < self.max_pooled {
            pool.push(buf);
        }
    }

    /// Recycle a consumed batch's buffers back into the pool.
    pub fn recycle_batch(&self, batch: SampleBatch) {
        if let BatchPayload::SpeSamples { samples, .. } = batch.into_payload() {
            self.recycle_samples(samples);
        }
    }

    /// Current accounting snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            // relaxed-ok: reporting snapshot, as for `BusStats`.
            reused: self.reused.load(Ordering::Relaxed),
            allocated: self.allocated.load(Ordering::Relaxed), // relaxed-ok: as above
        }
    }
}

/// The sharded event bus: N single-producer lanes partitioned by core hash.
///
/// Each pump worker drains a disjoint core set and publishes to the lane its
/// cores hash to, so lanes are effectively single-producer/single-consumer
/// and scale with core count instead of funnelling every core through one
/// queue. Batches without a core (counter deltas, machine probes) ride on
/// lane 0. Window-close signals are broadcast to every lane
/// ([`ShardedBus::broadcast_close`]) so shard consumers can close their
/// partial windows; per-lane drop/backpressure accounting rolls up into one
/// [`BusStats`] ([`ShardedBus::stats`]) and stays inspectable per lane
/// ([`ShardedBus::lane_stats`]).
///
/// The *active* lane count ([`ShardedBus::active_lanes`]) can move at
/// runtime within `1..=shards()`: new batches only route onto active lanes,
/// while parked lanes keep their consumers subscribed, still drain whatever
/// they hold, and still receive window-close broadcasts — so narrowing or
/// widening mid-run never strands data or wedges window bookkeeping.
pub struct ShardedBus {
    lanes: Vec<Arc<EventBus>>,
    /// Lanes new batches may route onto (`1..=lanes.len()`).
    active: AtomicUsize,
    seq: AtomicU64,
}

impl std::fmt::Debug for ShardedBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedBus")
            .field("lanes", &self.lanes.len())
            .field("active", &self.active_lanes())
            .finish()
    }
}

impl ShardedBus {
    /// A bus with `shards` lanes of `capacity_per_lane` events each
    /// (both clamped to at least 1).
    pub fn new(
        shards: usize,
        capacity_per_lane: usize,
        policy: BackpressurePolicy,
    ) -> Arc<ShardedBus> {
        let shards = shards.max(1);
        Arc::new(ShardedBus {
            lanes: (0..shards).map(|_| EventBus::bounded(capacity_per_lane, policy)).collect(),
            active: AtomicUsize::new(shards),
            seq: AtomicU64::new(0),
        })
    }

    /// Number of lanes (== allocated shard count).
    pub fn shards(&self) -> usize {
        self.lanes.len()
    }

    /// Number of currently active lanes (≤ [`ShardedBus::shards`]).
    pub fn active_lanes(&self) -> usize {
        // relaxed-ok: routing hint — a producer routing by a stale width
        // lands the batch on a lane whose consumer is subscribed either
        // way; the batch itself travels through the lane's mutex.
        self.active.load(Ordering::Relaxed).clamp(1, self.lanes.len())
    }

    /// Set the active lane count (clamped to `1..=shards()`) — the adaptive
    /// controller's width actuation seam. Parked lanes drain what they hold
    /// and keep receiving close broadcasts; they just get no new batches.
    pub fn set_active_lanes(&self, active: usize) {
        let clamped = active.clamp(1, self.lanes.len());
        self.active.store(clamped, Ordering::Relaxed); // relaxed-ok: see active_lanes()
    }

    /// Switch every lane's backpressure policy
    /// (see [`EventBus::set_policy`]).
    pub fn set_policy(&self, policy: BackpressurePolicy) {
        for lane in &self.lanes {
            lane.set_policy(policy);
        }
    }

    /// The lane a batch from `core` is partitioned onto (core-hash
    /// partitioning over the *active* lanes; core-less batches ride
    /// lane 0).
    pub fn lane_for_core(&self, core: Option<usize>) -> usize {
        core.map(|c| c % self.active_lanes()).unwrap_or(0)
    }

    /// One lane's queue (the consumer side of shard `lane`).
    pub fn lane(&self, lane: usize) -> &Arc<EventBus> {
        &self.lanes[lane]
    }

    /// Producer side: stamp the batch with the global sequence number and
    /// enqueue it on its core's lane. Returns `false` when the lane dropped
    /// it (see [`EventBus::publish`]).
    pub fn publish(&self, mut batch: SampleBatch) -> bool {
        // relaxed-ok: sequence allocator — only uniqueness/atomicity of the
        // ticket matters; the stamped batch is published via the lane's
        // mutex-protected queue, which provides the happens-before edge.
        batch.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let lane = self.lane_for_core(batch.core);
        self.lanes[lane].publish(BusEvent::Batch(batch))
    }

    /// Broadcast a window-close signal to every lane (close signals bypass
    /// lane capacity, so a broadcast never blocks or drops).
    pub fn broadcast_close(&self, window: Window) {
        for lane in &self.lanes {
            lane.publish(BusEvent::CloseWindow(window));
        }
    }

    /// Close every lane: producers start failing, consumers drain what is
    /// queued and then see [`BusRecv::Closed`].
    pub fn close_all(&self) {
        for lane in &self.lanes {
            lane.close();
        }
    }

    /// Per-lane accounting, ascending by lane index.
    pub fn lane_stats(&self) -> Vec<BusStats> {
        self.lanes.iter().map(|l| l.stats()).collect()
    }

    /// The roll-up across every lane: counts sum; `high_watermark` is the
    /// worst single lane (the number backpressure tuning cares about).
    pub fn stats(&self) -> BusStats {
        let mut rolled = BusStats::default();
        for lane in &self.lanes {
            let s = lane.stats();
            rolled.published += s.published;
            rolled.dropped_batches += s.dropped_batches;
            rolled.dropped_items += s.dropped_items;
            rolled.high_watermark = rolled.high_watermark.max(s.high_watermark);
            rolled.capacity += s.capacity;
            rolled.queued += s.queued;
        }
        rolled
    }
}

/// Tuning knobs for a streaming session
/// (see [`crate::session::ProfileSessionBuilder::stream_options`]).
#[derive(Debug, Clone)]
pub struct StreamOptions {
    /// Window width in simulated nanoseconds (default 1 ms).
    pub window_ns: u64,
    /// Event-bus capacity in events *per lane* (default 1024).
    pub bus_capacity: usize,
    /// Wall-clock interval between pump drains (default 200 µs).
    pub poll_interval: Duration,
    /// What producers do when the bus is full.
    pub backpressure: BackpressurePolicy,
    /// Number of pipeline shards (pump workers, bus lanes, and shard
    /// consumers). `0` (the default) resolves to
    /// `min(profiled cores, available_parallelism)` at session start; `1`
    /// runs the classic serial pipeline. Explicit values are clamped to the
    /// profiled core count — extra shards would own zero cores and lanes
    /// with no producer (see [`StreamStats::shards_requested`]).
    pub shards: usize,
    /// Adaptive controller configuration: `Some` lets the pipeline tune its
    /// own active shard count, drain cadence, and backpressure policy at
    /// runtime (see [`adaptive`]); `None` (the default) keeps the static
    /// configuration above.
    pub adaptive: Option<adaptive::AdaptiveOptions>,
}

impl Default for StreamOptions {
    fn default() -> Self {
        StreamOptions {
            window_ns: 1_000_000,
            bus_capacity: 1024,
            poll_interval: Duration::from_micros(200),
            backpressure: BackpressurePolicy::default(),
            shards: 0,
            adaptive: None,
        }
    }
}

/// Summary of the streaming pipeline over one run, recorded on
/// [`crate::runtime::Profile::stream`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Windows closed by the watermark.
    pub windows_closed: u64,
    /// Batches accepted onto the bus.
    pub batches_published: u64,
    /// Batches dropped by backpressure.
    pub batches_dropped: u64,
    /// Items inside dropped batches.
    pub items_dropped: u64,
    /// Batches that arrived for an already-closed window.
    pub late_batches: u64,
    /// Highest bus occupancy observed (worst single lane when sharded).
    pub bus_high_watermark: u64,
    /// Number of pipeline shards the run allocated (1 = the serial
    /// pipeline), after clamping to the profiled core count.
    pub shards: u64,
    /// Shard count the caller asked for via [`StreamOptions::shards`]
    /// before resolution/clamping (`0` = auto). Differs from `shards` when
    /// the request over-provisioned the machine.
    pub shards_requested: u64,
    /// Active shard count when the run finished (< `shards` when the
    /// adaptive controller parked lanes; == `shards` on static runs).
    pub active_shards: u64,
    /// Decisions the adaptive controller made over the run (0 on static
    /// runs).
    pub adaptive_decisions: u64,
}

impl StreamStats {
    /// Fraction of published-or-dropped batches the bus dropped under
    /// backpressure (0.0 when nothing was attempted) — the pipeline's own
    /// loss channel, guarded by the same warning threshold as SPE loss.
    pub fn bus_drop_fraction(&self) -> f64 {
        let attempted = self.batches_published + self.batches_dropped;
        if attempted == 0 {
            return 0.0;
        }
        self.batches_dropped as f64 / attempted as f64
    }
}

/// Live per-window accounting inside a [`StreamSnapshot`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSummary {
    /// The window.
    pub window: Window,
    /// Batches delivered for the window so far.
    pub batches: u64,
    /// SPE samples delivered for the window so far.
    pub samples: u64,
    /// Whether the window has been closed by the watermark.
    pub closed: bool,
}

/// Live per-shard accounting inside a [`StreamSnapshot`]: what one shard
/// consumer has processed so far, plus its lane's bus accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardSummary {
    /// Shard (= lane) index.
    pub shard: usize,
    /// Batches this shard's consumer has processed.
    pub batches: u64,
    /// SPE samples this shard's consumer has processed.
    pub spe_samples: u64,
    /// This shard's lane accounting at snapshot time.
    pub lane: BusStats,
}

/// A point-in-time view of a streaming session, returned by
/// [`crate::session::ActiveSession::poll_snapshot`].
#[derive(Debug, Clone, Default)]
pub struct StreamSnapshot {
    /// Per-window accounting, ascending by window index.
    pub windows: Vec<WindowSummary>,
    /// Per-shard accounting, ascending by shard index (one entry when the
    /// pipeline runs serially).
    pub per_shard: Vec<ShardSummary>,
    /// Windows closed so far.
    pub windows_closed: u64,
    /// Batches consumed so far.
    pub batches: u64,
    /// SPE samples consumed so far.
    pub spe_samples: u64,
    /// Latest cumulative hardware-counter totals seen.
    pub counter_totals: Vec<(String, u64)>,
    /// SPE samples consumed so far per data source, ascending by source —
    /// the live per-tier readout (how much traffic each cache level and
    /// memory node is serving *right now*).
    pub samples_by_source: Vec<(DataSource, u64)>,
    /// Highest RSS seen so far, bytes.
    pub rss_peak_bytes: u64,
    /// Highest simulated timestamp seen so far.
    pub last_time_ns: u64,
    /// Bus accounting at snapshot time.
    pub bus: BusStats,
    /// Page-migration counters at snapshot time — the live readout of a
    /// profile-guided tiering run (how many pages have been promoted or
    /// demoted *so far*).
    pub migrations: MigrationStats,
    /// Active shard count at snapshot time (tracks the adaptive
    /// controller's width; equals `per_shard.len()` on static runs).
    pub active_shards: usize,
    /// The adaptive controller's decision log so far (empty on static
    /// runs) — what changed, when, and why.
    pub adaptive: Vec<adaptive::AdaptiveDecision>,
}

impl StreamSnapshot {
    /// The closed, non-empty windows (live readout of completed windows).
    pub fn closed_windows(&self) -> impl Iterator<Item = &WindowSummary> {
        self.windows.iter().filter(|w| w.closed && (w.samples > 0 || w.batches > 0))
    }

    /// Samples seen so far for one data source.
    pub fn samples_from(&self, source: DataSource) -> u64 {
        self.samples_by_source.iter().find(|(s, _)| *s == source).map(|(_, n)| *n).unwrap_or(0)
    }

    /// Samples seen so far from DRAM-class sources, split `(local, remote)`
    /// — the live tier balance.
    pub fn dram_tier_counts(&self) -> (u64, u64) {
        let mut local = 0;
        let mut remote = 0;
        for (source, n) in &self.samples_by_source {
            match source {
                DataSource::Dram(_) => local += n,
                DataSource::RemoteDram(_) => remote += n,
                _ => {}
            }
        }
        (local, remote)
    }
}

/// Consumer-thread bookkeeping behind [`StreamSnapshot`] (shared with
/// [`crate::session::ActiveSession::poll_snapshot`] via a mutex).
#[derive(Debug, Default)]
pub(crate) struct SnapshotState {
    pub(crate) windows: Vec<WindowSummary>,
    /// `(batches, spe_samples)` per shard, grown on demand.
    pub(crate) per_shard: Vec<(u64, u64)>,
    /// Close signals seen per window (closes are broadcast to every lane;
    /// a window only counts as closed once every lane processed its copy).
    close_counts: std::collections::BTreeMap<u64, usize>,
    pub(crate) windows_closed: u64,
    pub(crate) batches: u64,
    pub(crate) spe_samples: u64,
    pub(crate) late_batches: u64,
    pub(crate) counter_totals: Vec<(String, u64)>,
    pub(crate) samples_by_source: Vec<(DataSource, u64)>,
    pub(crate) rss_peak_bytes: u64,
    pub(crate) last_time_ns: u64,
}

impl SnapshotState {
    fn summary_mut(&mut self, window: Window) -> &mut WindowSummary {
        match self.windows.binary_search_by_key(&window.index, |w| w.window.index) {
            Ok(i) => &mut self.windows[i],
            Err(i) => {
                self.windows
                    .insert(i, WindowSummary { window, batches: 0, samples: 0, closed: false });
                &mut self.windows[i]
            }
        }
    }

    pub(crate) fn record_batch(&mut self, batch: &SampleBatch, shard: usize) {
        self.batches += 1;
        if self.per_shard.len() <= shard {
            self.per_shard.resize(shard + 1, (0, 0));
        }
        self.per_shard[shard].0 += 1;
        if let BatchPayload::SpeSamples { samples, .. } = &batch.payload {
            self.per_shard[shard].1 += samples.len() as u64;
        }
        if let Some(t) = batch.max_time_ns() {
            self.last_time_ns = self.last_time_ns.max(t);
        }
        match &batch.payload {
            BatchPayload::SpeSamples { samples, .. } => {
                self.spe_samples += samples.len() as u64;
                for s in samples {
                    match self.samples_by_source.binary_search_by_key(&s.source, |(src, _)| *src) {
                        Ok(i) => self.samples_by_source[i].1 += 1,
                        Err(i) => self.samples_by_source.insert(i, (s.source, 1)),
                    }
                }
            }
            BatchPayload::CounterDeltas { deltas } => {
                for d in deltas {
                    match self.counter_totals.iter_mut().find(|(n, _)| *n == d.event) {
                        Some((_, total)) => *total = d.total,
                        None => self.counter_totals.push((d.event.clone(), d.total)),
                    }
                }
            }
            BatchPayload::Rss { points } => {
                for p in points {
                    self.rss_peak_bytes = self.rss_peak_bytes.max(p.rss_bytes);
                }
            }
            BatchPayload::Bandwidth { .. } => {}
        }
        let summary = self.summary_mut(batch.window);
        summary.batches += 1;
        if let BatchPayload::SpeSamples { samples, .. } = &batch.payload {
            summary.samples += samples.len() as u64;
        }
        // Bandwidth ticks are exempt from late accounting: the machine's
        // buckets only become readable once the cores detach, so their
        // end-of-run delivery into long-closed windows is by design, not a
        // lagging producer.
        if summary.closed && !matches!(batch.payload, BatchPayload::Bandwidth { .. }) {
            self.late_batches += 1;
        }
    }

    /// Register one lane's close signal for `window`; the window counts as
    /// closed once `expected_closes` lanes (the broadcast fan-out) have
    /// delivered theirs. Extra signals beyond that are ignored.
    pub(crate) fn record_close(&mut self, window: Window, expected_closes: usize) {
        let seen = self.close_counts.entry(window.index).or_insert(0);
        *seen += 1;
        if *seen < expected_closes.max(1) {
            return;
        }
        // Broadcast complete: drop the counter so a long-lived session's
        // close bookkeeping stays bounded by in-flight windows, not by run
        // length.
        self.close_counts.remove(&window.index);
        let summary = self.summary_mut(window);
        if !summary.closed {
            summary.closed = true;
            self.windows_closed += 1;
        }
    }

    pub(crate) fn snapshot(
        &self,
        bus: BusStats,
        lanes: &[BusStats],
        migrations: MigrationStats,
        active_shards: usize,
        adaptive: Vec<adaptive::AdaptiveDecision>,
    ) -> StreamSnapshot {
        let per_shard = (0..lanes.len().max(self.per_shard.len()))
            .map(|shard| {
                let (batches, spe_samples) = self.per_shard.get(shard).copied().unwrap_or((0, 0));
                ShardSummary {
                    shard,
                    batches,
                    spe_samples,
                    lane: lanes.get(shard).copied().unwrap_or_default(),
                }
            })
            .collect();
        StreamSnapshot {
            windows: self.windows.clone(),
            per_shard,
            windows_closed: self.windows_closed,
            batches: self.batches,
            spe_samples: self.spe_samples,
            counter_totals: self.counter_totals.clone(),
            samples_by_source: self.samples_by_source.clone(),
            rss_peak_bytes: self.rss_peak_bytes,
            last_time_ns: self.last_time_ns,
            bus,
            migrations,
            active_shards,
            adaptive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_from(window: Window, n: usize, source: DataSource) -> SampleBatch {
        SampleBatch::new(
            "test",
            None,
            window,
            BatchPayload::SpeSamples {
                samples: vec![
                    AddressSample {
                        time_ns: window.start_ns,
                        vaddr: 0x1000,
                        core: 0,
                        is_store: false,
                        latency: 1,
                        source,
                    };
                    n
                ],
                loss: SpeStatsSnapshot::default(),
            },
        )
    }

    fn batch(window: Window, n: usize) -> SampleBatch {
        batch_from(window, n, DataSource::L1)
    }

    #[test]
    fn window_clock_arithmetic() {
        let mut clock = WindowClock::new(1000);
        assert_eq!(clock.index_of(0), 0);
        assert_eq!(clock.index_of(999), 0);
        assert_eq!(clock.index_of(1000), 1);
        let w = clock.window_containing(2500);
        assert_eq!(w.index, 2);
        assert_eq!(w.start_ns, 2000);
        assert_eq!(w.end_ns, 3000);
        assert!(w.contains_ns(2000) && w.contains_ns(2999) && !w.contains_ns(3000));
        clock.observe(4200);
        clock.observe(100); // monotonic
        assert_eq!(clock.watermark_ns(), 4200);
        assert_eq!(clock.current().index, 4);
        // Zero width is clamped.
        assert_eq!(WindowClock::new(0).width_ns(), 1);
    }

    #[test]
    fn bus_delivers_in_order_and_counts() {
        let bus = EventBus::bounded(8, BackpressurePolicy::DropNewest);
        let clock = WindowClock::new(1000);
        for i in 0..3u64 {
            assert!(bus.publish(BusEvent::Batch(batch(clock.window(i), 2))));
        }
        bus.close();
        let mut seen = Vec::new();
        loop {
            match bus.recv_timeout(Duration::from_millis(50)) {
                BusRecv::Event(BusEvent::Batch(b)) => seen.push(b.window.index),
                BusRecv::Event(BusEvent::CloseWindow(_)) => {}
                BusRecv::Closed => break,
                BusRecv::TimedOut => panic!("queued events must be drained before Closed"),
            }
        }
        assert_eq!(seen, vec![0, 1, 2]);
        let stats = bus.stats();
        assert_eq!(stats.published, 3);
        assert_eq!(stats.dropped_batches, 0);
        assert_eq!(stats.queued, 0);
        assert!(stats.high_watermark >= 1);
    }

    #[test]
    fn full_bus_drops_newest_and_accounts_items() {
        let bus = EventBus::bounded(2, BackpressurePolicy::DropNewest);
        let clock = WindowClock::new(1000);
        assert!(bus.publish(BusEvent::Batch(batch(clock.window(0), 5))));
        assert!(bus.publish(BusEvent::Batch(batch(clock.window(1), 5))));
        assert!(!bus.publish(BusEvent::Batch(batch(clock.window(2), 7))));
        // Close signals bypass the capacity limit.
        assert!(bus.publish(BusEvent::CloseWindow(clock.window(0))));
        let stats = bus.stats();
        assert_eq!(stats.dropped_batches, 1);
        assert_eq!(stats.dropped_items, 7);
        assert_eq!(stats.published, 3);
    }

    #[test]
    fn blocking_policy_waits_for_the_consumer() {
        let bus = EventBus::bounded(1, BackpressurePolicy::Block);
        let clock = WindowClock::new(1000);
        assert!(bus.publish(BusEvent::Batch(batch(clock.window(0), 1))));
        let bus2 = bus.clone();
        let producer = std::thread::spawn(move || {
            // Blocks until the consumer pops the first batch.
            bus2.publish(BusEvent::Batch(batch(WindowClock::new(1000).window(1), 1)))
        });
        #[allow(clippy::disallowed_methods)] // test: let the producer block first
        std::thread::sleep(Duration::from_millis(20));
        match bus.recv_timeout(Duration::from_secs(5)) {
            BusRecv::Event(BusEvent::Batch(b)) => assert_eq!(b.window.index, 0),
            other => panic!("expected first batch, got {other:?}"),
        }
        assert!(producer.join().unwrap(), "blocked producer completes after space frees");
        assert_eq!(bus.stats().dropped_batches, 0);
    }

    #[test]
    fn closed_bus_rejects_and_unblocks() {
        let bus = EventBus::bounded(1, BackpressurePolicy::Block);
        bus.close();
        let clock = WindowClock::new(1000);
        assert!(!bus.publish(BusEvent::Batch(batch(clock.window(0), 3))));
        assert_eq!(bus.stats().dropped_batches, 1);
        assert!(matches!(bus.recv_timeout(Duration::from_millis(5)), BusRecv::Closed));
    }

    #[test]
    fn snapshot_state_tracks_windows_and_late_batches() {
        let clock = WindowClock::new(1000);
        let mut state = SnapshotState::default();
        state.record_batch(&batch(clock.window(0), 3), 0);
        state.record_batch(&batch(clock.window(1), 2), 0);
        state.record_close(clock.window(0), 1);
        state.record_close(clock.window(0), 1); // idempotent
        state.record_batch(&batch(clock.window(0), 1), 0); // late
        let snap =
            state.snapshot(BusStats::default(), &[], MigrationStats::default(), 1, Vec::new());
        assert_eq!(snap.windows_closed, 1);
        assert_eq!(snap.spe_samples, 6);
        assert_eq!(snap.batches, 3);
        assert_eq!(state.late_batches, 1);
        assert_eq!(snap.closed_windows().count(), 1);
        assert_eq!(snap.windows.len(), 2);
        assert!(snap.windows[0].closed && !snap.windows[1].closed);
    }

    #[test]
    fn snapshot_state_tracks_per_source_counts() {
        let clock = WindowClock::new(1000);
        let mut state = SnapshotState::default();
        state.record_batch(&batch_from(clock.window(0), 5, DataSource::L1), 0);
        state.record_batch(&batch_from(clock.window(0), 3, DataSource::Dram(0)), 1);
        state.record_batch(&batch_from(clock.window(1), 2, DataSource::RemoteDram(1)), 0);
        state.record_batch(&batch_from(clock.window(1), 4, DataSource::Dram(0)), 1);
        let snap =
            state.snapshot(BusStats::default(), &[], MigrationStats::default(), 2, Vec::new());
        assert_eq!(snap.samples_from(DataSource::L1), 5);
        assert_eq!(snap.samples_from(DataSource::Dram(0)), 7);
        assert_eq!(snap.samples_from(DataSource::RemoteDram(1)), 2);
        assert_eq!(snap.samples_from(DataSource::Slc), 0);
        assert_eq!(snap.dram_tier_counts(), (7, 2));
        // Sources stay sorted ascending.
        let sources: Vec<DataSource> = snap.samples_by_source.iter().map(|(s, _)| *s).collect();
        let mut sorted = sources.clone();
        sorted.sort();
        assert_eq!(sources, sorted);
        // Per-shard counts surfaced in the snapshot, ascending by shard.
        assert_eq!(snap.per_shard.len(), 2);
        assert_eq!(snap.per_shard[0].batches, 2);
        assert_eq!(snap.per_shard[0].spe_samples, 7);
        assert_eq!(snap.per_shard[1].spe_samples, 7);
    }

    #[test]
    fn batch_caches_max_time_at_construction() {
        let clock = WindowClock::new(1000);
        let samples = vec![
            AddressSample {
                time_ns: 120,
                vaddr: 0x1000,
                core: 0,
                is_store: false,
                latency: 1,
                source: DataSource::L1,
            },
            AddressSample {
                time_ns: 990,
                vaddr: 0x1008,
                core: 0,
                is_store: true,
                latency: 2,
                source: DataSource::L1,
            },
        ];
        let batch = SampleBatch::new(
            "spe",
            Some(0),
            clock.window(0),
            BatchPayload::SpeSamples { samples, loss: SpeStatsSnapshot::default() },
        );
        assert_eq!(batch.max_time_ns(), Some(990));
        assert_eq!(batch.len(), 2);
        let counters = SampleBatch::new(
            "counters",
            None,
            clock.window(0),
            BatchPayload::CounterDeltas { deltas: Vec::new() },
        );
        assert_eq!(counters.max_time_ns(), None, "counter deltas carry no timestamps");
    }

    #[test]
    fn sharded_bus_partitions_by_core_and_rolls_up_stats() {
        let bus = ShardedBus::new(4, 2, BackpressurePolicy::DropNewest);
        assert_eq!(bus.shards(), 4);
        assert_eq!(bus.lane_for_core(Some(0)), 0);
        assert_eq!(bus.lane_for_core(Some(5)), 1);
        assert_eq!(bus.lane_for_core(Some(7)), 3);
        assert_eq!(bus.lane_for_core(None), 0, "core-less batches ride lane 0");

        let clock = WindowClock::new(1000);
        let core_batch = |core: usize, n: usize| {
            SampleBatch::new(
                "spe",
                Some(core),
                clock.window(0),
                BatchPayload::SpeSamples {
                    samples: vec![
                        AddressSample {
                            time_ns: 10,
                            vaddr: 0x1000,
                            core,
                            is_store: false,
                            latency: 1,
                            source: DataSource::L1,
                        };
                        n
                    ],
                    loss: SpeStatsSnapshot::default(),
                },
            )
        };
        // Fill lane 1 (cores 1 and 5) to capacity, then overflow it.
        assert!(bus.publish(core_batch(1, 1)));
        assert!(bus.publish(core_batch(5, 1)));
        assert!(!bus.publish(core_batch(1, 3)), "lane 1 is full");
        // Lane 2 is unaffected by lane 1's backpressure.
        assert!(bus.publish(core_batch(2, 1)));

        let lanes = bus.lane_stats();
        assert_eq!(lanes.len(), 4);
        assert_eq!(lanes[1].published, 2);
        assert_eq!(lanes[1].dropped_batches, 1);
        assert_eq!(lanes[1].dropped_items, 3);
        assert_eq!(lanes[2].published, 1);
        assert_eq!(lanes[0].published, 0);

        let rolled = bus.stats();
        assert_eq!(rolled.published, 3);
        assert_eq!(rolled.dropped_batches, 1);
        assert_eq!(rolled.dropped_items, 3);
        assert_eq!(rolled.capacity, 4 * 2);

        // Sequence numbers are globally unique and ascending per lane.
        let mut seqs = Vec::new();
        bus.broadcast_close(clock.window(0));
        bus.close_all();
        for lane in 0..4 {
            let mut closes = 0;
            loop {
                match bus.lane(lane).recv_timeout(Duration::from_millis(50)) {
                    BusRecv::Event(BusEvent::Batch(b)) => seqs.push(b.seq),
                    BusRecv::Event(BusEvent::CloseWindow(w)) => {
                        assert_eq!(w.index, 0);
                        closes += 1;
                    }
                    BusRecv::Closed => break,
                    BusRecv::TimedOut => panic!("lane {lane} must drain then close"),
                }
            }
            assert_eq!(closes, 1, "every lane sees the broadcast close");
        }
        seqs.sort_unstable();
        seqs.dedup();
        assert_eq!(seqs.len(), 3, "published batches carry distinct sequence numbers");
    }

    #[test]
    fn active_lane_routing_narrows_and_widens() {
        let bus = ShardedBus::new(4, 8, BackpressurePolicy::DropNewest);
        assert_eq!(bus.active_lanes(), 4, "all lanes active by default");
        assert_eq!(bus.lane_for_core(Some(7)), 3);

        bus.set_active_lanes(2);
        assert_eq!(bus.active_lanes(), 2);
        assert_eq!(bus.lane_for_core(Some(7)), 1, "routing narrows to active lanes");
        assert_eq!(bus.lane_for_core(Some(2)), 0);
        assert_eq!(bus.lane_for_core(None), 0, "core-less batches still ride lane 0");

        // Clamped at both ends.
        bus.set_active_lanes(0);
        assert_eq!(bus.active_lanes(), 1);
        bus.set_active_lanes(64);
        assert_eq!(bus.active_lanes(), 4);

        // A policy switch reaches every lane.
        bus.set_policy(BackpressurePolicy::Block);
        for lane in 0..4 {
            assert_eq!(bus.lane(lane).policy(), BackpressurePolicy::Block);
        }
    }

    #[test]
    fn policy_switch_reaches_a_blocked_producer() {
        let bus = EventBus::bounded(1, BackpressurePolicy::Block);
        let clock = WindowClock::new(1000);
        assert!(bus.publish(BusEvent::Batch(batch(clock.window(0), 1))));
        let bus2 = bus.clone();
        let producer = std::thread::spawn(move || {
            // Blocks on the full bus under Block...
            bus2.publish(BusEvent::Batch(batch(WindowClock::new(1000).window(1), 2)))
        });
        #[allow(clippy::disallowed_methods)] // test: let the producer block first
        std::thread::sleep(Duration::from_millis(20));
        // ...until the policy flips mid-wait: the producer must wake, see
        // DropNewest, and drop instead of staying blocked.
        bus.set_policy(BackpressurePolicy::DropNewest);
        assert!(!producer.join().unwrap(), "mid-wait switch to DropNewest drops the publish");
        let stats = bus.stats();
        assert_eq!(stats.dropped_batches, 1);
        assert_eq!(stats.dropped_items, 2);
        assert_eq!(stats.published, 1, "the queued batch is untouched");
    }

    #[test]
    fn batch_pool_recycles_buffers() {
        let pool = BatchPool::new(4);
        let mut samples = pool.samples();
        samples.reserve(128);
        let cap = samples.capacity();
        assert!(cap >= 128);
        pool.recycle_samples(samples);
        let reused = pool.samples();
        assert!(reused.is_empty());
        assert!(reused.capacity() >= cap, "capacity survives the recycle round-trip");
        assert_eq!(pool.stats().reused, 1);
        assert_eq!(pool.stats().allocated, 1);

        // Batch recycling feeds sample buffers back too.
        let clock = WindowClock::new(1000);
        let batch = SampleBatch::new(
            "spe",
            Some(0),
            clock.window(0),
            BatchPayload::SpeSamples { samples: reused, loss: SpeStatsSnapshot::default() },
        );
        pool.recycle_batch(batch);
        assert!(pool.samples().capacity() >= cap);

        // The pool is bounded: recycles beyond `max_pooled` are dropped.
        for _ in 0..16 {
            pool.recycle_bytes(vec![0u8; 8]);
        }
        let pooled: usize = (0..16).filter(|_| pool.bytes().capacity() > 0).count();
        assert!(pooled <= 4, "at most max_pooled byte buffers retained, got {pooled}");
    }
}
