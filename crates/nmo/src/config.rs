//! NMO configuration: the environment variables of Table I plus a
//! programmatic builder.
//!
//! | Option            | Description                    | Default |
//! |-------------------|--------------------------------|---------|
//! | `NMO_ENABLE`      | Enable profile collection      | off     |
//! | `NMO_NAME`        | Base name of output files      | "nmo"   |
//! | `NMO_MODE`        | Profile collection mode        | none    |
//! | `NMO_PERIOD`      | Sampling period                | 0       |
//! | `NMO_TRACK_RSS`   | Capture working set size       | off     |
//! | `NMO_BUFSIZE`     | Ring buffer size \[MiB\]       | 1       |
//! | `NMO_AUXBUFSIZE`  | Aux buffer size \[MiB\]        | 1       |
//!
//! NMO is designed for transparent, preload-style activation, so everything
//! can be driven from the environment; library users can instead construct a
//! [`NmoConfig`] directly or with [`NmoConfig::builder`].

use spe::{OverheadModel, SpeConfig};

/// Profile collection mode (`NMO_MODE`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// No collection (default).
    #[default]
    None,
    /// Sample load instructions only.
    Load,
    /// Sample store instructions only.
    Store,
    /// Sample both loads and stores (the mode used throughout the paper).
    LoadStore,
}

impl Mode {
    /// Parse the `NMO_MODE` value. Unknown strings fall back to `None`.
    pub fn parse(s: &str) -> Mode {
        match s.trim().to_ascii_lowercase().as_str() {
            "load" | "loads" | "l" => Mode::Load,
            "store" | "stores" | "s" => Mode::Store,
            "mem" | "loadstore" | "load_store" | "ls" | "all" => Mode::LoadStore,
            _ => Mode::None,
        }
    }

    /// Whether this mode requires SPE sampling.
    pub fn uses_spe(self) -> bool {
        self != Mode::None
    }
}

/// Complete NMO configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct NmoConfig {
    /// Master enable (`NMO_ENABLE`).
    pub enabled: bool,
    /// Base name for output files (`NMO_NAME`).
    pub name: String,
    /// Collection mode (`NMO_MODE`).
    pub mode: Mode,
    /// SPE sampling period in operations (`NMO_PERIOD`). 0 disables sampling.
    pub period: u64,
    /// Track resident set size over time (`NMO_TRACK_RSS`).
    pub track_rss: bool,
    /// Ring buffer size in MiB (`NMO_BUFSIZE`).
    pub bufsize_mib: u64,
    /// Aux buffer size in MiB (`NMO_AUXBUFSIZE`).
    pub auxbufsize_mib: u64,
    /// Explicit aux-buffer size in machine pages, overriding
    /// `auxbufsize_mib` when set. The environment variable only offers MiB
    /// granularity (16 pages of 64 KiB per MiB); the Figure 9 sweep needs
    /// buffers as small as 2 pages, which this field expresses.
    pub auxbuf_pages_override: Option<u64>,
    /// Minimum-latency filter in cycles (0 = keep everything).
    pub min_latency: u64,
    /// Aux-watermark override in bytes (`NMO_AUXWATERMARK`): how much SPE
    /// data accumulates before the kernel publishes a `PERF_RECORD_AUX`
    /// record and wakes the monitor. `None` keeps the kernel default of
    /// half the aux buffer. Streaming sessions set a small value (e.g. a
    /// few KiB) so samples reach the pipeline with bounded lag; the extra
    /// watermark interrupts are charged by the overhead model like any
    /// others.
    pub aux_watermark_bytes: Option<u64>,
    /// Track memory bandwidth over time.
    pub track_bandwidth: bool,
    /// Warn (stderr) when the fraction of selected SPE samples lost to
    /// collisions/filters/truncation exceeds this threshold
    /// (`NMO_LOSS_WARN`; 0 disables the warning). The paper's sensitivity
    /// study shows accuracy collapsing once loss grows, so surfacing it
    /// loudly beats silently under-reporting.
    pub loss_warn_threshold: f64,
    /// Overhead/cost model used by the simulated SPE driver.
    pub overhead: OverheadModel,
}

impl Default for NmoConfig {
    fn default() -> Self {
        NmoConfig {
            enabled: false,
            name: "nmo".to_string(),
            mode: Mode::None,
            period: 0,
            track_rss: false,
            bufsize_mib: 1,
            auxbufsize_mib: 1,
            auxbuf_pages_override: None,
            min_latency: 0,
            aux_watermark_bytes: None,
            track_bandwidth: true,
            loss_warn_threshold: 0.1,
            overhead: OverheadModel::default(),
        }
    }
}

/// Builder for [`NmoConfig`].
#[derive(Debug, Default, Clone)]
pub struct NmoConfigBuilder {
    cfg: NmoConfig,
}

impl NmoConfigBuilder {
    /// Enable collection.
    pub fn enabled(mut self, on: bool) -> Self {
        self.cfg.enabled = on;
        self
    }

    /// Set the output base name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Set the collection mode.
    pub fn mode(mut self, mode: Mode) -> Self {
        self.cfg.mode = mode;
        self
    }

    /// Set the SPE sampling period.
    pub fn period(mut self, period: u64) -> Self {
        self.cfg.period = period;
        self
    }

    /// Track RSS over time.
    pub fn track_rss(mut self, on: bool) -> Self {
        self.cfg.track_rss = on;
        self
    }

    /// Track bandwidth over time.
    pub fn track_bandwidth(mut self, on: bool) -> Self {
        self.cfg.track_bandwidth = on;
        self
    }

    /// Ring buffer size in MiB.
    pub fn bufsize_mib(mut self, mib: u64) -> Self {
        self.cfg.bufsize_mib = mib;
        self
    }

    /// Aux buffer size in MiB.
    pub fn auxbufsize_mib(mut self, mib: u64) -> Self {
        self.cfg.auxbufsize_mib = mib;
        self
    }

    /// Aux buffer size in machine pages (used by the Figure 9 sweep, which
    /// needs sub-MiB buffers the environment variable cannot express).
    pub fn auxbuf_pages(mut self, pages: u64) -> Self {
        self.cfg.auxbuf_pages_override = Some(pages);
        self
    }

    /// Minimum-latency filter.
    pub fn min_latency(mut self, cycles: u64) -> Self {
        self.cfg.min_latency = cycles;
        self
    }

    /// SPE data-loss warning threshold (fraction of selected samples; 0
    /// disables the warning).
    pub fn loss_warn_threshold(mut self, fraction: f64) -> Self {
        self.cfg.loss_warn_threshold = fraction;
        self
    }

    /// Aux-watermark override in bytes (streaming freshness knob; see
    /// [`NmoConfig::aux_watermark_bytes`]).
    pub fn aux_watermark_bytes(mut self, bytes: u64) -> Self {
        self.cfg.aux_watermark_bytes = Some(bytes);
        self
    }

    /// Override the SPE overhead model.
    pub fn overhead(mut self, model: OverheadModel) -> Self {
        self.cfg.overhead = model;
        self
    }

    /// Finish building.
    pub fn build(self) -> NmoConfig {
        self.cfg
    }
}

impl NmoConfig {
    /// Start building a configuration.
    pub fn builder() -> NmoConfigBuilder {
        NmoConfigBuilder::default()
    }

    /// The configuration the paper uses for its sensitivity study: loads and
    /// stores sampled at `period`, RSS and bandwidth tracking on.
    pub fn paper_default(period: u64) -> Self {
        NmoConfig {
            enabled: true,
            mode: Mode::LoadStore,
            period,
            track_rss: true,
            track_bandwidth: true,
            ..Default::default()
        }
    }

    /// Read the configuration from environment variables (Table I).
    pub fn from_env() -> Self {
        Self::from_lookup(|k| std::env::var(k).ok())
    }

    /// Read the configuration from an arbitrary lookup function (testable
    /// version of [`NmoConfig::from_env`]).
    pub fn from_lookup(lookup: impl Fn(&str) -> Option<String>) -> Self {
        let mut cfg = NmoConfig::default();
        if let Some(v) = lookup("NMO_ENABLE") {
            cfg.enabled = parse_bool(&v);
        }
        if let Some(v) = lookup("NMO_NAME") {
            if !v.trim().is_empty() {
                cfg.name = v.trim().to_string();
            }
        }
        if let Some(v) = lookup("NMO_MODE") {
            cfg.mode = Mode::parse(&v);
        }
        if let Some(v) = lookup("NMO_PERIOD") {
            cfg.period = v.trim().parse().unwrap_or(0);
        }
        if let Some(v) = lookup("NMO_TRACK_RSS") {
            cfg.track_rss = parse_bool(&v);
        }
        if let Some(v) = lookup("NMO_BUFSIZE") {
            cfg.bufsize_mib = v.trim().parse().unwrap_or(1).max(1);
        }
        if let Some(v) = lookup("NMO_AUXBUFSIZE") {
            cfg.auxbufsize_mib = v.trim().parse().unwrap_or(1).max(1);
        }
        if let Some(v) = lookup("NMO_LOSS_WARN") {
            cfg.loss_warn_threshold = v.trim().parse().unwrap_or(cfg.loss_warn_threshold).max(0.0);
        }
        if let Some(v) = lookup("NMO_AUXWATERMARK") {
            cfg.aux_watermark_bytes = v.trim().parse().ok().filter(|b| *b > 0);
        }
        cfg
    }

    /// Whether SPE sampling should be set up.
    pub fn spe_active(&self) -> bool {
        self.enabled && self.mode.uses_spe() && self.period > 0
    }

    /// The SPE configuration implied by this NMO configuration.
    pub fn spe_config(&self) -> SpeConfig {
        let mut spe = SpeConfig::loads_stores(self.period.max(1));
        spe.sample_loads = matches!(self.mode, Mode::Load | Mode::LoadStore);
        spe.sample_stores = matches!(self.mode, Mode::Store | Mode::LoadStore);
        spe.min_latency = self.min_latency;
        spe.aux_watermark = self.aux_watermark_bytes.unwrap_or(0);
        spe
    }

    /// Ring buffer size in data pages for the given machine page size
    /// (the `(N+1)`-page mmap excludes the metadata page).
    pub fn ring_pages(&self, page_bytes: u64) -> u64 {
        ((self.bufsize_mib << 20) / page_bytes).next_power_of_two().max(1)
    }

    /// Aux buffer size in pages for the given machine page size.
    pub fn aux_pages(&self, page_bytes: u64) -> u64 {
        if let Some(pages) = self.auxbuf_pages_override {
            return pages.next_power_of_two().max(1);
        }
        ((self.auxbufsize_mib << 20) / page_bytes).next_power_of_two().max(1)
    }

    /// Table I as structured data: `(variable, description, default)`.
    pub fn table1() -> Vec<(&'static str, &'static str, &'static str)> {
        vec![
            ("NMO_ENABLE", "Enable profile collection", "off"),
            ("NMO_NAME", "Base name of output files", "\"nmo\""),
            ("NMO_MODE", "Profile collection mode", "none"),
            ("NMO_PERIOD", "Sampling period", "0"),
            ("NMO_TRACK_RSS", "Capture working set size", "off"),
            ("NMO_BUFSIZE", "Ring buffer size [MiB]", "1"),
            ("NMO_AUXBUFSIZE", "Aux buffer size [MiB]", "1"),
        ]
    }
}

fn parse_bool(s: &str) -> bool {
    matches!(s.trim().to_ascii_lowercase().as_str(), "1" | "true" | "yes" | "on")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn defaults_match_table1() {
        let cfg = NmoConfig::default();
        assert!(!cfg.enabled);
        assert_eq!(cfg.name, "nmo");
        assert_eq!(cfg.mode, Mode::None);
        assert_eq!(cfg.period, 0);
        assert!(!cfg.track_rss);
        assert_eq!(cfg.bufsize_mib, 1);
        assert_eq!(cfg.auxbufsize_mib, 1);
        assert_eq!(NmoConfig::table1().len(), 7);
    }

    #[test]
    fn env_parsing() {
        let env: HashMap<&str, &str> = [
            ("NMO_ENABLE", "1"),
            ("NMO_NAME", "triad"),
            ("NMO_MODE", "mem"),
            ("NMO_PERIOD", "4096"),
            ("NMO_TRACK_RSS", "yes"),
            ("NMO_BUFSIZE", "2"),
            ("NMO_AUXBUFSIZE", "4"),
        ]
        .into_iter()
        .collect();
        let cfg = NmoConfig::from_lookup(|k| env.get(k).map(|v| v.to_string()));
        assert!(cfg.enabled);
        assert_eq!(cfg.name, "triad");
        assert_eq!(cfg.mode, Mode::LoadStore);
        assert_eq!(cfg.period, 4096);
        assert!(cfg.track_rss);
        assert_eq!(cfg.bufsize_mib, 2);
        assert_eq!(cfg.auxbufsize_mib, 4);
        assert!(cfg.spe_active());
    }

    #[test]
    fn loss_warn_threshold_default_and_env() {
        assert!((NmoConfig::default().loss_warn_threshold - 0.1).abs() < 1e-12);
        let cfg = NmoConfig::from_lookup(|k| (k == "NMO_LOSS_WARN").then(|| "0.25".to_string()));
        assert!((cfg.loss_warn_threshold - 0.25).abs() < 1e-12);
        let cfg = NmoConfig::from_lookup(|k| (k == "NMO_LOSS_WARN").then(|| "-3".to_string()));
        assert_eq!(cfg.loss_warn_threshold, 0.0, "negative values clamp to disabled");
        let cfg = NmoConfig::from_lookup(|k| (k == "NMO_LOSS_WARN").then(|| "junk".to_string()));
        assert!((cfg.loss_warn_threshold - 0.1).abs() < 1e-12);
        let cfg = NmoConfig::builder().loss_warn_threshold(0.02).build();
        assert!((cfg.loss_warn_threshold - 0.02).abs() < 1e-12);
    }

    #[test]
    fn env_garbage_falls_back_to_defaults() {
        let env: HashMap<&str, &str> =
            [("NMO_ENABLE", "maybe"), ("NMO_PERIOD", "not-a-number"), ("NMO_MODE", "bogus")]
                .into_iter()
                .collect();
        let cfg = NmoConfig::from_lookup(|k| env.get(k).map(|v| v.to_string()));
        assert!(!cfg.enabled);
        assert_eq!(cfg.period, 0);
        assert_eq!(cfg.mode, Mode::None);
        assert!(!cfg.spe_active());
    }

    #[test]
    fn mode_parse_variants() {
        assert_eq!(Mode::parse("load"), Mode::Load);
        assert_eq!(Mode::parse("STORES"), Mode::Store);
        assert_eq!(Mode::parse("Mem"), Mode::LoadStore);
        assert_eq!(Mode::parse("none"), Mode::None);
        assert_eq!(Mode::parse(""), Mode::None);
        assert!(Mode::LoadStore.uses_spe());
        assert!(!Mode::None.uses_spe());
    }

    #[test]
    fn aux_watermark_override_reaches_the_spe_attr() {
        let cfg = NmoConfig::builder().enabled(true).mode(Mode::LoadStore).period(100).build();
        assert_eq!(cfg.spe_config().to_attr().aux_watermark, 0, "kernel default");
        let cfg = NmoConfig { aux_watermark_bytes: Some(4096), ..cfg };
        assert_eq!(cfg.spe_config().to_attr().aux_watermark, 4096);
        let env = NmoConfig::from_lookup(|k| (k == "NMO_AUXWATERMARK").then(|| "8192".to_string()));
        assert_eq!(env.aux_watermark_bytes, Some(8192));
        let env = NmoConfig::from_lookup(|k| (k == "NMO_AUXWATERMARK").then(|| "0".to_string()));
        assert_eq!(env.aux_watermark_bytes, None, "zero means kernel default");
    }

    #[test]
    fn spe_config_reflects_mode_and_period() {
        let cfg = NmoConfig::builder().enabled(true).mode(Mode::Load).period(2048).build();
        let spe = cfg.spe_config();
        assert!(spe.sample_loads);
        assert!(!spe.sample_stores);
        assert_eq!(spe.sample_period, 2048);

        let cfg = NmoConfig::paper_default(1000);
        assert!(cfg.spe_active());
        assert!(cfg.spe_config().sample_stores);
    }

    #[test]
    fn buffer_sizing_in_64k_pages() {
        let cfg = NmoConfig::default();
        // 1 MiB of 64 KiB pages = 16 pages.
        assert_eq!(cfg.ring_pages(64 * 1024), 16);
        assert_eq!(cfg.aux_pages(64 * 1024), 16);
        let cfg = NmoConfig::builder().auxbufsize_mib(4).build();
        assert_eq!(cfg.aux_pages(64 * 1024), 64);
        // The page-count override expresses sub-MiB buffers exactly.
        let cfg = NmoConfig::builder().auxbuf_pages(32).build();
        assert_eq!(cfg.aux_pages(64 * 1024), 32);
        let cfg = NmoConfig::builder().auxbuf_pages(2).build();
        assert_eq!(cfg.aux_pages(64 * 1024), 2);
    }

    #[test]
    fn spe_inactive_without_period_or_mode() {
        let cfg = NmoConfig::builder().enabled(true).mode(Mode::LoadStore).period(0).build();
        assert!(!cfg.spe_active());
        let cfg = NmoConfig::builder().enabled(true).mode(Mode::None).period(100).build();
        assert!(!cfg.spe_active());
        let cfg = NmoConfig::builder().enabled(false).mode(Mode::LoadStore).period(100).build();
        assert!(!cfg.spe_active());
    }
}
