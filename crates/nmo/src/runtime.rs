//! The assembled profiling result ([`Profile`]) and the deprecated
//! [`Profiler`] shim.
//!
//! The runtime machinery described in paper Section IV — per-core SPE event
//! setup, the monitoring thread, packet decoding — lives in
//! [`crate::backend::SpeBackend`]; profile assembly is orchestrated by
//! [`crate::session::ProfileSession`]. This module defines the data the
//! session produces and keeps the historical `Profiler` entry point alive as
//! a thin, `#[deprecated]` wrapper over the backend so old call sites keep
//! compiling while they migrate.

use std::sync::Arc;

use arch_sim::{DataSource, Machine, MachineCounters, MemLevel, MigrationStats};
use spe::SpeStatsSnapshot;

use crate::annotate::{AddrTag, Annotations, Phase};
use crate::backend::{SampleBackend, SpeBackend};
use crate::bandwidth::BandwidthSeries;
use crate::capacity::CapacitySeries;
use crate::config::NmoConfig;
use crate::latency::LatencyProfile;
use crate::regions::{attribute, RegionProfile};
use crate::sink::{default_sinks, run_sinks, AnalysisRecord};
use crate::stream::StreamStats;
use crate::workload::WorkloadReport;
use crate::NmoError;

/// One decoded SPE address sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSample {
    /// Sample time in perf-clock nanoseconds (after timescale conversion).
    pub time_ns: u64,
    /// Sampled virtual data address.
    pub vaddr: u64,
    /// Core the sample was collected on.
    pub core: usize,
    /// Whether the sampled operation was a store.
    pub is_store: bool,
    /// Latency reported by SPE, cycles.
    pub latency: u16,
    /// The memory-system source that served the access, from the SPE
    /// data-source packet (carries the node id for DRAM-class fills).
    pub source: DataSource,
}

impl AddressSample {
    /// The memory-level class of the serving source.
    pub fn level(&self) -> MemLevel {
        self.source.level()
    }
}

/// The complete result of one profiled run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Base name (from `NMO_NAME`).
    pub name: String,
    /// Configuration in force.
    pub config: NmoConfig,
    /// Names of the sample backends that ran under the session.
    pub backends: Vec<String>,
    /// Decoded address samples, sorted by time.
    pub samples: Vec<AddressSample>,
    /// Number of successfully decoded samples.
    pub processed_samples: u64,
    /// Number of records skipped because of invalid header bytes or zero fields.
    pub skipped_packets: u64,
    /// Number of `PERF_RECORD_AUX` records consumed.
    pub aux_records: u64,
    /// AUX records carrying the collision flag.
    pub collision_flagged_records: u64,
    /// AUX records carrying the truncation flag.
    pub truncated_flagged_records: u64,
    /// Aggregated SPE statistics over all profiled cores.
    pub spe: SpeStatsSnapshot,
    /// Per-core SPE statistics.
    pub per_core_spe: Vec<(usize, SpeStatsSnapshot)>,
    /// `perf stat`-style counts collected by the counter backend
    /// (`(event name, count)` pairs; empty when the backend did not run).
    pub perf_counts: Vec<(String, u64)>,
    /// Machine-wide hardware counters at the end of the run.
    pub counters: MachineCounters,
    /// Page-migration counters at the end of the run (non-zero when a
    /// tiering policy moved pages between memory nodes mid-run).
    pub migrations: MigrationStats,
    /// Capacity-over-time series (level 1).
    pub capacity: CapacitySeries,
    /// Bandwidth-over-time series (level 2).
    pub bandwidth: BandwidthSeries,
    /// Outputs of every analysis sink registered on the session.
    pub analyses: Vec<AnalysisRecord>,
    /// Registered address tags.
    pub tags: Vec<AddrTag>,
    /// Recorded execution phases.
    pub phases: Vec<Phase>,
    /// Report of the workload the session drove, if any.
    pub workload: Option<WorkloadReport>,
    /// Streaming-pipeline statistics, when the run used
    /// [`crate::session::ProfileSession::run_streaming`] (windows closed,
    /// batches delivered/dropped, late batches).
    pub stream: Option<StreamStats>,
    /// Simulated execution time, cycles (makespan across cores).
    pub elapsed_cycles: u64,
    /// Simulated execution time, nanoseconds.
    pub elapsed_ns: u64,
}

impl Profile {
    /// An empty profile carrying only a name and configuration (the starting
    /// point backends and sinks fill in).
    pub fn empty(name: impl Into<String>, config: NmoConfig) -> Self {
        Profile {
            name: name.into(),
            config,
            backends: Vec::new(),
            samples: Vec::new(),
            processed_samples: 0,
            skipped_packets: 0,
            aux_records: 0,
            collision_flagged_records: 0,
            truncated_flagged_records: 0,
            spe: SpeStatsSnapshot::default(),
            per_core_spe: Vec::new(),
            perf_counts: Vec::new(),
            counters: MachineCounters::default(),
            migrations: MigrationStats::default(),
            capacity: CapacitySeries::default(),
            bandwidth: BandwidthSeries::default(),
            analyses: Vec::new(),
            tags: Vec::new(),
            phases: Vec::new(),
            workload: None,
            stream: None,
            elapsed_cycles: 0,
            elapsed_ns: 0,
        }
    }

    /// Region-based attribution of the address samples (level 3).
    ///
    /// When a [`crate::sink::RegionSink`] ran on the session its stored
    /// report is returned; otherwise the attribution is computed on demand.
    pub fn regions(&self) -> RegionProfile {
        for record in &self.analyses {
            if let crate::sink::AnalysisReport::Regions(r) = &record.report {
                return r.clone();
            }
        }
        attribute(&self.samples, &self.tags, &self.phases)
    }

    /// Attach a manually driven tiering report (from
    /// [`crate::tiering::HotPageTracker::report`]) so [`Profile::summary`],
    /// the CSV reports, and [`Profile::tiering`] can see it — the
    /// manual-actuation analogue of registering the tracker as a sink.
    pub fn attach_tiering(&mut self, report: crate::tiering::TieringReport) {
        self.analyses.push(AnalysisRecord {
            sink: "tiering".to_string(),
            report: crate::sink::AnalysisReport::Tiering(report),
        });
    }

    /// The profile-guided tiering report, when a
    /// [`crate::tiering::HotPageTracker`] ran on the session: the applied
    /// migration log plus the before/after per-tier latency distributions.
    pub fn tiering(&self) -> Option<&crate::tiering::TieringReport> {
        self.analyses.iter().find_map(|a| match &a.report {
            crate::sink::AnalysisReport::Tiering(t) => Some(t),
            _ => None,
        })
    }

    /// Per-data-source latency distributions (the tiered-memory view).
    ///
    /// When a [`crate::sink::LatencySink`] ran on the session its stored
    /// report is returned; otherwise the histograms are computed on demand
    /// from the decoded samples.
    pub fn latency(&self) -> LatencyProfile {
        for record in &self.analyses {
            if let crate::sink::AnalysisReport::Latency(l) = &record.report {
                return l.clone();
            }
        }
        LatencyProfile::from_samples(&self.samples)
    }

    /// The count collected by the counter backend for `event`, if any.
    pub fn perf_count(&self, event: &str) -> Option<u64> {
        self.perf_counts.iter().find(|(n, _)| n == event).map(|(_, v)| *v)
    }

    /// Accuracy per Eq. (1) against a baseline `mem_access` count.
    pub fn accuracy_against(&self, mem_counted: u64) -> f64 {
        crate::analysis::accuracy(mem_counted, self.processed_samples, self.config.period)
    }

    /// Total sample collisions as NMO counts them (hardware collisions plus
    /// aux-buffer drops flagged `PERF_AUX_FLAG_COLLISION`).
    pub fn collisions(&self) -> u64 {
        self.spe.collisions + self.spe.truncated_records
    }

    /// Fraction of selected SPE samples lost before reaching the aux buffer
    /// (collisions + filters + truncation; paper §SPE limitations). 0.0 when
    /// SPE did not run.
    pub fn loss_fraction(&self) -> f64 {
        self.spe.loss_fraction()
    }
}

/// Emit a stderr warning when the run lost more SPE samples than the
/// configured threshold ([`NmoConfig::loss_warn_threshold`], `NMO_LOSS_WARN`)
/// — the accuracy-collapse regime of the paper's Figures 8–9. The same
/// threshold guards the streaming pipeline's own loss channel: batches the
/// event bus dropped under backpressure (data that was decoded but never
/// reached the sinks).
pub(crate) fn warn_on_loss(profile: &Profile) {
    let threshold = profile.config.loss_warn_threshold;
    let loss = profile.loss_fraction();
    if threshold > 0.0 && profile.spe.samples_selected > 0 && loss > threshold {
        eprintln!(
            "[nmo] warning: profile '{}' lost {:.1}% of selected SPE samples \
             (threshold {:.1}%): {} collisions, {} truncated of {} selected — consider a \
             larger NMO_AUXBUFSIZE or a longer NMO_PERIOD",
            profile.name,
            loss * 100.0,
            threshold * 100.0,
            profile.spe.collisions,
            profile.spe.truncated_records,
            profile.spe.samples_selected,
        );
    }
    if let Some(stream) = &profile.stream {
        let dropped = stream.bus_drop_fraction();
        if threshold > 0.0 && dropped > threshold {
            eprintln!(
                "[nmo] warning: profile '{}' dropped {:.1}% of streamed batches \
                 (threshold {:.1}%): {} of {} batches ({} items) lost to bus backpressure — \
                 consider a larger bus_capacity, more shards, or Block backpressure",
                profile.name,
                dropped * 100.0,
                threshold * 100.0,
                stream.batches_dropped,
                stream.batches_published + stream.batches_dropped,
                stream.items_dropped,
            );
        }
    }
}

/// Assemble the machine-derived base of a profile: counters, elapsed time,
/// and annotations. Backends and sinks fill in the rest.
pub(crate) fn base_profile(
    machine: &Machine,
    config: &NmoConfig,
    annotations: &Annotations,
) -> Profile {
    let counters = machine.counters();
    let elapsed_cycles = counters.cycles;
    let mut profile = Profile::empty(config.name.clone(), config.clone());
    profile.counters = counters;
    profile.migrations = machine.migration_stats();
    profile.elapsed_cycles = elapsed_cycles;
    profile.elapsed_ns = machine.config().cycles_to_ns(elapsed_cycles);
    profile.tags = annotations.tags();
    profile.phases = annotations.phases();
    profile
}

/// The historical NMO profiler bound to a borrowed machine.
///
/// Lifecycle: [`Profiler::new`] → [`Profiler::enable`] → run the workload →
/// [`Profiler::finish`]. New code should use
/// [`crate::session::ProfileSession`], which owns its machine, supports
/// multiple backends and pluggable sinks, and returns `Result` everywhere;
/// this type remains as a thin shim over [`SpeBackend`].
pub struct Profiler<'m> {
    machine: &'m Machine,
    config: NmoConfig,
    annotations: Arc<Annotations>,
    backend: SpeBackend,
    attached: Vec<usize>,
}

impl<'m> Profiler<'m> {
    /// Create a profiler for `machine` with the given configuration.
    #[deprecated(
        since = "0.2.0",
        note = "use nmo::ProfileSession::builder() — it owns the machine, runs multiple \
                backends, and reports errors as Result instead of panicking"
    )]
    pub fn new(machine: &'m Machine, config: NmoConfig) -> Self {
        Profiler {
            machine,
            config,
            annotations: Arc::new(Annotations::new()),
            backend: SpeBackend::new(),
            attached: Vec::new(),
        }
    }

    /// The annotation registry (share it with workload code).
    pub fn annotations(&self) -> Arc<Annotations> {
        self.annotations.clone()
    }

    /// `nmo_tag_addr` convenience wrapper.
    pub fn tag_addr(&self, name: &str, start: u64, end: u64) {
        self.annotations.tag_addr(name, start, end);
    }

    /// `nmo_start` convenience wrapper (timestamp in simulated nanoseconds).
    pub fn start_phase(&self, name: &str, now_ns: u64) {
        self.annotations.start(name, now_ns);
    }

    /// `nmo_stop` convenience wrapper.
    pub fn stop_phase(&self, now_ns: u64) {
        self.annotations.stop(now_ns);
    }

    /// The configuration in force.
    pub fn config(&self) -> &NmoConfig {
        &self.config
    }

    /// Set up profiling on the given cores (opens one SPE event per core when
    /// sampling is active) and start the monitoring thread.
    pub fn enable(&mut self, cores: &[usize]) -> Result<(), NmoError> {
        if !self.config.enabled {
            return Ok(());
        }
        for co in self.backend.start(self.machine, cores, &self.config)? {
            self.machine.set_observer(co.core, co.observer).map_err(NmoError::Sim)?;
            self.attached.push(co.core);
        }
        Ok(())
    }

    /// Stop profiling, drain all buffers, and assemble the [`Profile`].
    pub fn finish(mut self) -> Profile {
        for &core in &self.attached {
            let _ = self.machine.take_observer(core);
        }
        // The SPE backend's stop/fill paths only fail when the monitor thread
        // itself panicked; the historical API has no error channel, so that
        // (unreachable in practice) case degrades to an empty sample set.
        let _ = self.backend.stop(self.machine);
        let mut profile = base_profile(self.machine, &self.config, &self.annotations);
        if !self.attached.is_empty() {
            profile.backends = vec![self.backend.name().to_string()];
        }
        let _ = self.backend.fill(&mut profile);
        warn_on_loss(&profile);
        let mut sinks = default_sinks(&self.config);
        let _ = run_sinks(self.machine, &mut profile, &mut sinks);
        profile
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ProfileSession;
    use arch_sim::MachineConfig;
    use spe::OverheadModel;

    fn fast_overhead() -> OverheadModel {
        OverheadModel {
            record_write_cycles: 10,
            interrupt_cycles: 100,
            drain_cycles_per_byte: 0.05,
            drain_service_latency_cycles: 100,
            min_functional_aux_pages: 4,
        }
    }

    fn run_stream_like(machine: &Machine, cores: &[usize], elems_per_core: u64) {
        let region = machine.alloc("data", 64 << 20).unwrap();
        std::thread::scope(|s| {
            for (i, &core) in cores.iter().enumerate() {
                let region = region.clone();
                s.spawn(move || {
                    let mut e = machine.attach(core).unwrap();
                    let base = region.start + (i as u64) * elems_per_core * 8;
                    for k in 0..elems_per_core {
                        e.load(base + k * 8, 8);
                        e.store(base + k * 8, 8);
                    }
                });
            }
        });
    }

    fn session(config: NmoConfig, threads: usize) -> ProfileSession {
        ProfileSession::builder()
            .machine_config(MachineConfig::small_test())
            .config(config)
            .threads(threads)
            .build()
            .unwrap()
    }

    #[test]
    fn end_to_end_sampling_produces_samples() {
        let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(100) };
        let profile = session(cfg, 2)
            .run_with(|machine, _ann, cores| {
                run_stream_like(machine, cores, 50_000);
                Ok(())
            })
            .unwrap();

        assert!(profile.processed_samples > 0);
        assert_eq!(profile.processed_samples as usize, profile.samples.len());
        // ~2 cores * 100k ops / period 100 = ~2000 samples expected.
        assert!(profile.processed_samples > 1000, "{}", profile.processed_samples);
        assert!(profile.spe.records_written >= profile.processed_samples);
        assert!(profile.elapsed_cycles > 0);
        assert!(profile.counters.mem_access >= 200_000);
        // Samples are time-sorted and carry plausible addresses.
        assert!(profile.samples.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
        assert!(profile.samples.iter().all(|s| s.vaddr >= arch_sim::vm::HEAP_BASE));
        // Accuracy against the machine's own mem_access counter is high with
        // a fast drain model.
        let acc = profile.accuracy_against(profile.counters.mem_access);
        assert!(acc > 0.85, "accuracy {acc}");
        // The counter backend ran alongside SPE and agrees with the machine.
        assert_eq!(profile.perf_count("mem_access"), Some(profile.counters.mem_access));
    }

    #[test]
    fn disabled_session_collects_nothing_and_costs_nothing() {
        let profile = session(NmoConfig::default(), 1)
            .run_with(|machine, _ann, cores| {
                run_stream_like(machine, cores, 10_000);
                Ok(())
            })
            .unwrap();
        assert_eq!(profile.processed_samples, 0);
        assert_eq!(profile.counters.observer_cycles, 0);
        assert!(profile.samples.is_empty());
        assert!(profile.perf_counts.is_empty());
    }

    #[test]
    fn capacity_and_bandwidth_series_populated() {
        let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(1000) };
        let profile = session(cfg, 1)
            .run_with(|machine, _ann, cores| {
                run_stream_like(machine, cores, 100_000);
                Ok(())
            })
            .unwrap();
        assert!(profile.capacity.peak_bytes > 0);
        assert!(!profile.capacity.points.is_empty());
        assert!(profile.bandwidth.total_bytes > 0);
        assert!(profile.bandwidth.peak_gib_per_s > 0.0);
    }

    #[test]
    fn annotations_flow_into_profile_and_regions() {
        let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(50) };
        let profile = session(cfg, 1)
            .run_with(|machine, annotations, _cores| {
                let region = machine.alloc("a", 1 << 20)?;
                annotations.tag_addr("a", region.start, region.end());
                let mut e = machine.attach(0)?;
                annotations.start("kernel0", e.now_ns());
                for k in 0..20_000u64 {
                    e.load(region.start + (k % 10_000) * 8, 8);
                }
                annotations.stop(e.now_ns());
                Ok(())
            })
            .unwrap();
        assert_eq!(profile.tags.len(), 1);
        assert_eq!(profile.phases.len(), 1);
        assert!(!profile.phases[0].is_open());
        let regions = profile.regions();
        assert!(regions.per_tag.iter().any(|t| t.name == "a" && t.samples > 0));
        assert_eq!(regions.untagged_samples, 0);
        let in_phase = regions.per_phase.iter().find(|(n, _)| n == "kernel0");
        assert!(in_phase.is_some_and(|(_, n)| *n > 0));
    }

    #[test]
    fn profiling_overhead_is_visible_but_bounded() {
        // Run the same work twice: once bare, once profiled; the profiled run
        // must be slower but not absurdly so.
        let baseline = {
            let machine = Machine::new(MachineConfig::small_test());
            run_stream_like(&machine, &[0], 200_000);
            machine.counters().cycles
        };
        let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(100) };
        let profiled = session(cfg, 1)
            .run_with(|machine, _ann, cores| {
                run_stream_like(machine, cores, 200_000);
                Ok(())
            })
            .unwrap()
            .elapsed_cycles;
        assert!(profiled > baseline, "profiled {profiled} vs baseline {baseline}");
        let overhead = crate::analysis::time_overhead(baseline, profiled);
        assert!(overhead < 0.5, "overhead unexpectedly large: {overhead}");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_profiler_shim_still_works() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(100) };
        let mut profiler = Profiler::new(&machine, cfg);
        profiler.enable(&[0]).unwrap();
        run_stream_like(&machine, &[0], 20_000);
        let profile = profiler.finish();
        assert!(profile.processed_samples > 0);
        assert_eq!(profile.backends, vec!["spe".to_string()]);
        assert!(profile.capacity.peak_bytes > 0);
    }
}
