//! The NMO runtime: per-core SPE setup, the monitoring thread, packet
//! decoding, and profile assembly (paper Section IV).
//!
//! The runtime mirrors the implementation described in the paper:
//!
//! * one SPE perf event is opened per profiled core (`perf_event_open`, PMU
//!   type `0x2c`) with a ring buffer of `(N+1)` 64 KiB pages and an aux
//!   buffer sized by `NMO_AUXBUFSIZE`;
//! * a monitoring thread polls the events (epoll in the original); each
//!   `PERF_RECORD_AUX` record points at newly written SPE data in the aux
//!   buffer;
//! * each 64-byte SPE record is decoded by checking the `0xb2`/`0x71` header
//!   bytes and reading the virtual address at offset 31 and the timestamp at
//!   offset 56; invalid records (e.g. mangled by collisions) are skipped;
//! * timestamps are converted from the SPE timer to the perf clock using the
//!   `time_zero`/`time_shift`/`time_mult` fields of the metadata page;
//! * when profiling stops, the buffers are drained one final time.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use arch_sim::{Machine, MachineCounters, MemLevel, TimeConv};
use perf_sub::poll::PollTimeout;
use perf_sub::records::Record;
use perf_sub::PerfEvent;
use spe::packet::{decode_nmo_fields, SpeRecord, SPE_RECORD_BYTES};
use spe::{SpeDriver, SpeStats, SpeStatsSnapshot};

use crate::annotate::{AddrTag, Annotations, Phase};
use crate::bandwidth::BandwidthSeries;
use crate::capacity::CapacitySeries;
use crate::config::NmoConfig;
use crate::regions::{attribute, RegionProfile};
use crate::NmoError;

/// One decoded SPE address sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressSample {
    /// Sample time in perf-clock nanoseconds (after timescale conversion).
    pub time_ns: u64,
    /// Sampled virtual data address.
    pub vaddr: u64,
    /// Core the sample was collected on.
    pub core: usize,
    /// Whether the sampled operation was a store.
    pub is_store: bool,
    /// Latency reported by SPE, cycles.
    pub latency: u16,
    /// Memory level that served the access.
    pub level: MemLevel,
}

/// Shared store the monitoring thread decodes samples into.
#[derive(Debug, Default)]
struct SampleStore {
    samples: Mutex<Vec<AddressSample>>,
    processed: AtomicU64,
    skipped: AtomicU64,
    aux_records: AtomicU64,
    collision_flagged: AtomicU64,
    truncated_flagged: AtomicU64,
}

struct CoreSpe {
    core: usize,
    event: Arc<PerfEvent>,
    stats: Arc<SpeStats>,
}

/// The complete result of one profiled run.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Base name (from `NMO_NAME`).
    pub name: String,
    /// Configuration in force.
    pub config: NmoConfig,
    /// Decoded address samples, sorted by time.
    pub samples: Vec<AddressSample>,
    /// Number of successfully decoded samples.
    pub processed_samples: u64,
    /// Number of records skipped because of invalid header bytes or zero fields.
    pub skipped_packets: u64,
    /// Number of `PERF_RECORD_AUX` records consumed.
    pub aux_records: u64,
    /// AUX records carrying the collision flag.
    pub collision_flagged_records: u64,
    /// AUX records carrying the truncation flag.
    pub truncated_flagged_records: u64,
    /// Aggregated SPE statistics over all profiled cores.
    pub spe: SpeStatsSnapshot,
    /// Per-core SPE statistics.
    pub per_core_spe: Vec<(usize, SpeStatsSnapshot)>,
    /// Machine-wide hardware counters at the end of the run.
    pub counters: MachineCounters,
    /// Capacity-over-time series (level 1).
    pub capacity: CapacitySeries,
    /// Bandwidth-over-time series (level 2).
    pub bandwidth: BandwidthSeries,
    /// Registered address tags.
    pub tags: Vec<AddrTag>,
    /// Recorded execution phases.
    pub phases: Vec<Phase>,
    /// Simulated execution time, cycles (makespan across cores).
    pub elapsed_cycles: u64,
    /// Simulated execution time, nanoseconds.
    pub elapsed_ns: u64,
}

impl Profile {
    /// Region-based attribution of the address samples (level 3).
    pub fn regions(&self) -> RegionProfile {
        attribute(&self.samples, &self.tags, &self.phases)
    }

    /// Accuracy per Eq. (1) against a baseline `mem_access` count.
    pub fn accuracy_against(&self, mem_counted: u64) -> f64 {
        crate::analysis::accuracy(mem_counted, self.processed_samples, self.config.period)
    }

    /// Total sample collisions as NMO counts them (hardware collisions plus
    /// aux-buffer drops flagged `PERF_AUX_FLAG_COLLISION`).
    pub fn collisions(&self) -> u64 {
        self.spe.collisions + self.spe.truncated_records
    }
}

/// The NMO profiler bound to a simulated machine.
///
/// Lifecycle: [`Profiler::new`] → [`Profiler::enable`] → run the workload →
/// [`Profiler::finish`].
pub struct Profiler<'m> {
    machine: &'m Machine,
    config: NmoConfig,
    annotations: Arc<Annotations>,
    cores: Vec<CoreSpe>,
    store: Arc<SampleStore>,
    monitor: Option<JoinHandle<()>>,
}

impl<'m> Profiler<'m> {
    /// Create a profiler for `machine` with the given configuration.
    pub fn new(machine: &'m Machine, config: NmoConfig) -> Self {
        Profiler {
            machine,
            config,
            annotations: Arc::new(Annotations::new()),
            cores: Vec::new(),
            store: Arc::new(SampleStore::default()),
            monitor: None,
        }
    }

    /// The annotation registry (share it with workload code).
    pub fn annotations(&self) -> Arc<Annotations> {
        self.annotations.clone()
    }

    /// `nmo_tag_addr` convenience wrapper.
    pub fn tag_addr(&self, name: &str, start: u64, end: u64) {
        self.annotations.tag_addr(name, start, end);
    }

    /// `nmo_start` convenience wrapper (timestamp in simulated nanoseconds).
    pub fn start_phase(&self, name: &str, now_ns: u64) {
        self.annotations.start(name, now_ns);
    }

    /// `nmo_stop` convenience wrapper.
    pub fn stop_phase(&self, now_ns: u64) {
        self.annotations.stop(now_ns);
    }

    /// The configuration in force.
    pub fn config(&self) -> &NmoConfig {
        &self.config
    }

    /// Set up profiling on the given cores (opens one SPE event per core when
    /// sampling is active) and start the monitoring thread.
    pub fn enable(&mut self, cores: &[usize]) -> Result<(), NmoError> {
        if !self.config.enabled {
            return Ok(());
        }
        if self.config.spe_active() {
            let page_bytes = self.machine.config().page_bytes;
            let ring_pages = self.config.ring_pages(page_bytes);
            let aux_pages = self.config.aux_pages(page_bytes);
            let spe_cfg = self.config.spe_config();
            for &core in cores {
                let (event, stats) = SpeDriver::open_on(
                    self.machine,
                    core,
                    spe_cfg,
                    ring_pages,
                    aux_pages,
                    self.config.overhead,
                )
                .map_err(NmoError::Perf)?;
                self.cores.push(CoreSpe { core, event, stats });
            }
            self.spawn_monitor();
        }
        Ok(())
    }

    fn spawn_monitor(&mut self) {
        let events: Vec<(usize, Arc<PerfEvent>)> =
            self.cores.iter().map(|c| (c.core, c.event.clone())).collect();
        let store = self.store.clone();
        self.monitor = Some(std::thread::spawn(move || {
            monitor_loop(&events, &store);
        }));
    }

    /// Stop profiling, drain all buffers, and assemble the [`Profile`].
    pub fn finish(mut self) -> Profile {
        // Remove the SPE observers from the cores (the final aux drain was
        // published when the last engine detached).
        for c in &self.cores {
            let _ = self.machine.take_observer(c.core);
            c.event.close();
        }
        if let Some(handle) = self.monitor.take() {
            let _ = handle.join();
        }
        // Final synchronous drain in case the monitor exited early.
        for c in &self.cores {
            drain_event(c.core, &c.event, &self.store);
        }

        let counters = self.machine.counters();
        let elapsed_cycles = counters.cycles;
        let elapsed_ns = self.machine.config().cycles_to_ns(elapsed_cycles);

        let mut per_core_spe = Vec::new();
        let mut merged = SpeStatsSnapshot::default();
        for c in &self.cores {
            let snap = c.stats.snapshot();
            merged.merge(&snap);
            per_core_spe.push((c.core, snap));
        }

        let capacity = if self.config.track_rss {
            CapacitySeries::from_events(
                &self.machine.rss_series(),
                elapsed_ns,
                self.machine.config().dram.capacity_bytes,
                200,
            )
        } else {
            CapacitySeries::default()
        };
        let bandwidth = if self.config.track_bandwidth {
            BandwidthSeries::from_buckets(&self.machine.bandwidth_series(), counters.flops)
        } else {
            BandwidthSeries::default()
        };

        let mut samples = std::mem::take(&mut *self.store.samples.lock());
        samples.sort_by_key(|s| s.time_ns);

        Profile {
            name: self.config.name.clone(),
            config: self.config.clone(),
            samples,
            processed_samples: self.store.processed.load(Ordering::Relaxed),
            skipped_packets: self.store.skipped.load(Ordering::Relaxed),
            aux_records: self.store.aux_records.load(Ordering::Relaxed),
            collision_flagged_records: self.store.collision_flagged.load(Ordering::Relaxed),
            truncated_flagged_records: self.store.truncated_flagged.load(Ordering::Relaxed),
            spe: merged,
            per_core_spe,
            counters,
            capacity,
            bandwidth,
            tags: self.annotations.tags(),
            phases: self.annotations.phases(),
            elapsed_cycles,
            elapsed_ns,
        }
    }
}

fn monitor_loop(events: &[(usize, Arc<PerfEvent>)], store: &Arc<SampleStore>) {
    loop {
        let mut any_ready = false;
        let mut all_closed = true;
        for (core, event) in events {
            match event.waker().try_wait() {
                PollTimeout::Ready => {
                    any_ready = true;
                    drain_event(*core, event, store);
                }
                PollTimeout::Closed => {
                    drain_event(*core, event, store);
                }
                PollTimeout::TimedOut => {}
            }
            if !event.waker().is_closed() {
                all_closed = false;
            }
        }
        if all_closed {
            for (core, event) in events {
                drain_event(*core, event, store);
            }
            return;
        }
        if !any_ready {
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// Drain every pending ring-buffer record of one event, decoding aux data
/// into address samples.
fn drain_event(core: usize, event: &Arc<PerfEvent>, store: &Arc<SampleStore>) {
    let (time_zero, time_shift, time_mult) = event.meta().clock();
    while let Ok(Some(record)) = event.next_record() {
        let aux = match record {
            Record::Aux(a) => a,
            Record::ItraceStart(_) | Record::Lost(_) => continue,
        };
        store.aux_records.fetch_add(1, Ordering::Relaxed);
        if aux.collision() {
            store.collision_flagged.fetch_add(1, Ordering::Relaxed);
        }
        if aux.truncated() {
            store.truncated_flagged.fetch_add(1, Ordering::Relaxed);
        }
        let Some(aux_buf) = event.aux() else { continue };
        let data = aux_buf.read_at(aux.aux_offset, aux.aux_size);
        let mut samples = Vec::with_capacity(data.len() / SPE_RECORD_BYTES);
        for chunk in data.chunks_exact(SPE_RECORD_BYTES) {
            // The NMO decode: validate the 0xb2 / 0x71 header bytes, read the
            // 64-bit address and timestamp, skip the record otherwise.
            match decode_nmo_fields(chunk) {
                Some((vaddr, ticks)) => {
                    let time_ns =
                        TimeConv::apply_mmap_triple(ticks, time_zero, time_shift, time_mult);
                    // Opportunistic full decode for the richer fields.
                    let (is_store, latency, level) = match SpeRecord::decode(chunk) {
                        Some(rec) => (rec.is_store, rec.latency, rec.level),
                        None => (false, 0, MemLevel::L1),
                    };
                    samples.push(AddressSample { time_ns, vaddr, core, is_store, latency, level });
                }
                None => {
                    store.skipped.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        store.processed.fetch_add(samples.len() as u64, Ordering::Relaxed);
        store.samples.lock().extend(samples);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MachineConfig;
    use spe::OverheadModel;

    fn fast_overhead() -> OverheadModel {
        OverheadModel {
            record_write_cycles: 10,
            interrupt_cycles: 100,
            drain_cycles_per_byte: 0.05,
            drain_service_latency_cycles: 100,
            min_functional_aux_pages: 4,
        }
    }

    fn run_stream_like(machine: &Machine, cores: &[usize], elems_per_core: u64) {
        let region = machine.alloc("data", 64 << 20).unwrap();
        std::thread::scope(|s| {
            for (i, &core) in cores.iter().enumerate() {
                let region = region.clone();
                s.spawn(move || {
                    let mut e = machine.attach(core).unwrap();
                    let base = region.start + (i as u64) * elems_per_core * 8;
                    for k in 0..elems_per_core {
                        e.load(base + k * 8, 8);
                        e.store(base + k * 8, 8);
                    }
                });
            }
        });
    }

    #[test]
    fn end_to_end_sampling_produces_samples() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = NmoConfig {
            overhead: fast_overhead(),
            ..NmoConfig::paper_default(100)
        };
        let mut profiler = Profiler::new(&machine, cfg);
        profiler.enable(&[0, 1]).unwrap();
        run_stream_like(&machine, &[0, 1], 50_000);
        let profile = profiler.finish();

        assert!(profile.processed_samples > 0);
        assert_eq!(profile.processed_samples as usize, profile.samples.len());
        // ~2 cores * 100k ops / period 100 = ~2000 samples expected.
        assert!(profile.processed_samples > 1000, "{}", profile.processed_samples);
        assert!(profile.spe.records_written >= profile.processed_samples);
        assert!(profile.elapsed_cycles > 0);
        assert!(profile.counters.mem_access >= 200_000);
        // Samples are time-sorted and carry plausible addresses.
        assert!(profile.samples.windows(2).all(|w| w[0].time_ns <= w[1].time_ns));
        assert!(profile.samples.iter().all(|s| s.vaddr >= arch_sim::vm::HEAP_BASE));
        // Accuracy against the machine's own mem_access counter is high with
        // a fast drain model.
        let acc = profile.accuracy_against(profile.counters.mem_access);
        assert!(acc > 0.85, "accuracy {acc}");
    }

    #[test]
    fn disabled_profiler_collects_nothing_and_costs_nothing() {
        let machine = Machine::new(MachineConfig::small_test());
        let mut profiler = Profiler::new(&machine, NmoConfig::default());
        profiler.enable(&[0]).unwrap();
        run_stream_like(&machine, &[0], 10_000);
        let profile = profiler.finish();
        assert_eq!(profile.processed_samples, 0);
        assert_eq!(profile.counters.observer_cycles, 0);
        assert!(profile.samples.is_empty());
    }

    #[test]
    fn capacity_and_bandwidth_series_populated() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = NmoConfig {
            overhead: fast_overhead(),
            ..NmoConfig::paper_default(1000)
        };
        let mut profiler = Profiler::new(&machine, cfg);
        profiler.enable(&[0]).unwrap();
        run_stream_like(&machine, &[0], 100_000);
        let profile = profiler.finish();
        assert!(profile.capacity.peak_bytes > 0);
        assert!(!profile.capacity.points.is_empty());
        assert!(profile.bandwidth.total_bytes > 0);
        assert!(profile.bandwidth.peak_gib_per_s > 0.0);
    }

    #[test]
    fn annotations_flow_into_profile_and_regions() {
        let machine = Machine::new(MachineConfig::small_test());
        let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(50) };
        let mut profiler = Profiler::new(&machine, cfg);
        let region = machine.alloc("a", 1 << 20).unwrap();
        profiler.tag_addr("a", region.start, region.end());
        profiler.enable(&[0]).unwrap();
        {
            let mut e = machine.attach(0).unwrap();
            profiler.start_phase("kernel0", e.now_ns());
            for k in 0..20_000u64 {
                e.load(region.start + (k % 10_000) * 8, 8);
            }
            profiler.stop_phase(e.now_ns());
        }
        let profile = profiler.finish();
        assert_eq!(profile.tags.len(), 1);
        assert_eq!(profile.phases.len(), 1);
        assert!(!profile.phases[0].is_open());
        let regions = profile.regions();
        assert!(regions.per_tag.iter().any(|t| t.name == "a" && t.samples > 0));
        assert_eq!(regions.untagged_samples, 0);
        let in_phase = regions.per_phase.iter().find(|(n, _)| n == "kernel0");
        assert!(in_phase.is_some_and(|(_, n)| *n > 0));
    }

    #[test]
    fn profiling_overhead_is_visible_but_bounded() {
        // Run the same work twice on two fresh machines: once bare, once
        // profiled; the profiled run must be slower but not absurdly so.
        let work = |machine: &Machine| {
            run_stream_like(machine, &[0], 200_000);
            machine.counters().cycles
        };
        let baseline = {
            let machine = Machine::new(MachineConfig::small_test());
            work(&machine)
        };
        let profiled = {
            let machine = Machine::new(MachineConfig::small_test());
            let cfg = NmoConfig { overhead: fast_overhead(), ..NmoConfig::paper_default(100) };
            let mut profiler = Profiler::new(&machine, cfg);
            profiler.enable(&[0]).unwrap();
            let c = work(&machine);
            let _ = profiler.finish();
            c
        };
        assert!(profiled > baseline, "profiled {profiled} vs baseline {baseline}");
        let overhead = crate::analysis::time_overhead(baseline, profiled);
        assert!(overhead < 0.5, "overhead unexpectedly large: {overhead}");
    }
}
