//! Per-data-source latency-distribution profiling (the paper's tiered-memory
//! latency figures).
//!
//! SPE's headline advantage over counter-based profilers is that every
//! sample carries the measured load-to-use *latency* and the *data source*
//! that served it, so the profiler can build a latency distribution per
//! memory tier — cache hits, local-DDR fills, and remote/CXL fills separate
//! into distinct modes, exactly the view the paper (and BSC's tooling)
//! builds on the CXL-emulated NUMA testbed. This module provides the
//! streaming-friendly histogram behind that figure:
//!
//! * [`LatencyHistogram`] — fixed-size log2 buckets over the 16-bit SPE
//!   latency counter, O(1) insert, order-independent merge, and
//!   interpolated percentiles (p50/p90/p99).
//! * [`LatencyProfile`] — one histogram per [`DataSource`], plus local- and
//!   remote-tier rollups for the DDR-vs-CXL comparison.
//!
//! The histograms are order-independent, so the streaming path (recording
//! batch by batch) lands on bit-identical results to the post-hoc scan of
//! `Profile::samples`.

use arch_sim::DataSource;

use crate::runtime::AddressSample;

/// Number of log2 latency buckets: bucket `i` covers `[2^i, 2^(i+1))`
/// cycles (bucket 0 also holds latency 0), which spans the full range of
/// the 16-bit SPE latency counter.
pub const LATENCY_BUCKETS: usize = 16;

/// A streaming log2-bucket histogram over SPE latencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyHistogram {
    buckets: [u64; LATENCY_BUCKETS],
    count: u64,
    sum: u64,
    min: u16,
    max: u16,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram { buckets: [0; LATENCY_BUCKETS], count: 0, sum: 0, min: u16::MAX, max: 0 }
    }
}

fn bucket_of(latency: u16) -> usize {
    if latency == 0 {
        0
    } else {
        (15 - latency.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Inclusive value range covered by bucket `i`.
fn bucket_bounds(i: usize) -> (f64, f64) {
    let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
    let hi = ((1u64 << (i + 1)) - 1) as f64;
    (lo, hi)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency observation.
    pub fn record(&mut self, latency: u16) {
        self.buckets[bucket_of(latency)] += 1;
        self.count += 1;
        self.sum += latency as u64;
        self.min = self.min.min(latency);
        self.max = self.max.max(latency);
    }

    /// Merge another histogram into this one (order-independent).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency in cycles (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest observed latency (0 when empty).
    pub fn min(&self) -> u16 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest observed latency (0 when empty).
    pub fn max(&self) -> u16 {
        self.max
    }

    /// Raw bucket counts (bucket `i` covers `[2^i, 2^(i+1))` cycles).
    pub fn buckets(&self) -> &[u64; LATENCY_BUCKETS] {
        &self.buckets
    }

    /// Approximate `p`-th percentile (`p` in `[0, 1]`), linearly
    /// interpolated inside the containing log2 bucket.
    ///
    /// Edge cases are pinned (and unit-tested) rather than left to the
    /// interpolation:
    ///
    /// * an empty histogram returns `0.0` for every `p`;
    /// * rank 1 returns the observed minimum and rank `count` the observed
    ///   maximum exactly — so a single-observation histogram returns that
    ///   observation for every `p`, and `p = 0.0` / `p = 1.0` are always
    ///   the true extremes (historically these interpolated across the
    ///   whole containing power-of-two bucket);
    /// * interior ranks interpolate within their bucket, with the bucket
    ///   bounds tightened to the observed min/max so the result can never
    ///   leave the observed range.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        if rank <= 1 {
            return self.min() as f64;
        }
        if rank >= self.count {
            return self.max as f64;
        }
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let (lo, hi) = bucket_bounds(i);
                let lo = lo.max(self.min() as f64);
                let hi = hi.min(self.max as f64);
                let frac = (rank - seen) as f64 / c as f64;
                return (lo + frac * (hi - lo)).clamp(self.min() as f64, self.max as f64);
            }
            seen += c;
        }
        self.max as f64
    }

    /// Median latency (interpolated).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 90th-percentile latency (interpolated).
    pub fn p90(&self) -> f64 {
        self.percentile(0.90)
    }

    /// 99th-percentile latency (interpolated).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

/// Latency distributions keyed by the SPE data source, the per-tier view of
/// a profiled run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LatencyProfile {
    /// One histogram per observed data source, ascending by source (caches
    /// first, then DRAM nodes, then remote nodes).
    pub per_source: Vec<(DataSource, LatencyHistogram)>,
}

impl LatencyProfile {
    /// An empty profile.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a profile by scanning decoded samples (the post-hoc path).
    pub fn from_samples(samples: &[AddressSample]) -> Self {
        let mut profile = Self::new();
        for s in samples {
            profile.record(s.source, s.latency);
        }
        profile
    }

    /// Record one observation.
    pub fn record(&mut self, source: DataSource, latency: u16) {
        match self.per_source.binary_search_by_key(&source, |(s, _)| *s) {
            Ok(i) => self.per_source[i].1.record(latency),
            Err(i) => {
                let mut hist = LatencyHistogram::new();
                hist.record(latency);
                self.per_source.insert(i, (source, hist));
            }
        }
    }

    /// Merge another profile into this one.
    pub fn merge(&mut self, other: &LatencyProfile) {
        for (source, hist) in &other.per_source {
            match self.per_source.binary_search_by_key(source, |(s, _)| *s) {
                Ok(i) => self.per_source[i].1.merge(hist),
                Err(i) => self.per_source.insert(i, (*source, *hist)),
            }
        }
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.per_source.is_empty()
    }

    /// Total observations across every source.
    pub fn total_count(&self) -> u64 {
        self.per_source.iter().map(|(_, h)| h.count()).sum()
    }

    /// The histogram for one source, if observed.
    pub fn get(&self, source: DataSource) -> Option<&LatencyHistogram> {
        self.per_source
            .binary_search_by_key(&source, |(s, _)| *s)
            .ok()
            .map(|i| &self.per_source[i].1)
    }

    /// Rollup of every local-tier DRAM source ([`DataSource::Dram`]).
    pub fn local_dram(&self) -> LatencyHistogram {
        self.rollup(|s| matches!(s, DataSource::Dram(_)))
    }

    /// Rollup of every remote-tier DRAM source ([`DataSource::RemoteDram`]).
    pub fn remote_dram(&self) -> LatencyHistogram {
        self.rollup(|s| matches!(s, DataSource::RemoteDram(_)))
    }

    fn rollup(&self, keep: impl Fn(DataSource) -> bool) -> LatencyHistogram {
        let mut out = LatencyHistogram::new();
        for (source, hist) in &self.per_source {
            if keep(*source) {
                out.merge(hist);
            }
        }
        out
    }

    /// Whether the DRAM-class latencies are bimodal across tiers: both
    /// tiers were observed and the remote-tier median sits strictly above
    /// the local-tier median (the paper's DDR-vs-CXL signature).
    pub fn dram_tiers_bimodal(&self) -> bool {
        let (local, remote) = (self.local_dram(), self.remote_dram());
        local.count() > 0 && remote.count() > 0 && remote.p50() > local.p50()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arch_sim::MemLevel;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(255), 7);
        assert_eq!(bucket_of(256), 8);
        assert_eq!(bucket_of(u16::MAX), 15);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = LatencyHistogram::new();
        for lat in [4u16, 4, 4, 100, 100, 1000] {
            h.record(lat);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.min(), 4);
        assert_eq!(h.max(), 1000);
        assert!((h.mean() - (4.0 * 3.0 + 200.0 + 1000.0) / 6.0).abs() < 1e-9);
        // The median rank lands in the bucket holding the three 4s.
        assert!(h.p50() < 10.0, "p50 {}", h.p50());
        assert!(h.p99() > 500.0, "p99 {}", h.p99());
    }

    #[test]
    fn empty_histogram_is_benign() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        // Pinned: every percentile of an empty histogram is 0.0.
        for p in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(h.percentile(p), 0.0, "p={p}");
        }
    }

    #[test]
    fn single_sample_percentiles_are_exact() {
        // Pinned: with one observation every percentile *is* that
        // observation — no interpolation across the containing log2 bucket
        // (330 lives in [256, 511]; the old interpolation returned bucket
        // geometry rather than the sample).
        for value in [0u16, 1, 330, 1000, u16::MAX] {
            let mut h = LatencyHistogram::new();
            h.record(value);
            for p in [0.0, 0.5, 0.9, 0.99, 1.0] {
                assert_eq!(h.percentile(p), value as f64, "value={value} p={p}");
            }
        }
    }

    #[test]
    fn single_bucket_percentiles_stay_inside_the_observed_range() {
        // Two observations sharing one log2 bucket ([256, 511]): the
        // extremes are exact and interior ranks never leave [min, max].
        let mut h = LatencyHistogram::new();
        h.record(300);
        h.record(400);
        assert_eq!(h.p50(), 300.0, "rank 1 is the observed minimum");
        assert_eq!(h.p99(), 400.0, "rank count is the observed maximum");
        let mut many = LatencyHistogram::new();
        for v in [300u16, 320, 340, 360, 380, 400] {
            many.record(v);
        }
        for p in [0.0, 0.3, 0.5, 0.7, 0.9, 1.0] {
            let v = many.percentile(p);
            assert!((300.0..=400.0).contains(&v), "p={p} -> {v}");
        }
        assert_eq!(many.percentile(0.0), 300.0);
        assert_eq!(many.percentile(1.0), 400.0);
    }

    #[test]
    fn extreme_ranks_are_exact_even_in_lone_sample_buckets() {
        // A lone sample in the minimum bucket used to interpolate to the
        // bucket's upper bound; rank 1 must return the true minimum.
        let mut h = LatencyHistogram::new();
        h.record(4);
        h.record(100);
        h.record(110);
        assert_eq!(h.percentile(0.0), 4.0);
        assert!(h.p50() >= 4.0 && h.p50() <= 110.0);
        assert_eq!(h.percentile(1.0), 110.0);
        assert_eq!(h.p99(), 110.0, "p99 of 3 samples is the maximum");
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let mut h = LatencyHistogram::new();
        for lat in [330u16, 331, 335, 340, 350, 900, 910, 920, 990, 1000] {
            h.record(lat);
        }
        let (p10, p50, p90, p99) = (h.percentile(0.1), h.p50(), h.p90(), h.p99());
        assert!(p10 <= p50 && p50 <= p90 && p90 <= p99, "{p10} {p50} {p90} {p99}");
        assert!(p10 >= h.min() as f64);
        assert!(p99 <= h.max() as f64);
    }

    #[test]
    fn merge_is_order_independent() {
        let observations: Vec<u16> = (0..1000u32).map(|i| ((i * 37) % 5000) as u16).collect();
        let mut whole = LatencyHistogram::new();
        for &o in &observations {
            whole.record(o);
        }
        let mut merged = LatencyHistogram::new();
        for chunk in observations.chunks(13) {
            let mut part = LatencyHistogram::new();
            for &o in chunk {
                part.record(o);
            }
            merged.merge(&part);
        }
        assert_eq!(whole, merged);
    }

    fn sample(source: DataSource, latency: u16) -> AddressSample {
        AddressSample { time_ns: 1, vaddr: 0x1000, core: 0, is_store: false, latency, source }
    }

    #[test]
    fn profile_separates_sources_and_rolls_up_tiers() {
        let samples = vec![
            sample(DataSource::L1, 4),
            sample(DataSource::Dram(0), 330),
            sample(DataSource::Dram(0), 340),
            sample(DataSource::RemoteDram(1), 990),
            sample(DataSource::RemoteDram(1), 1010),
            sample(DataSource::RemoteDram(1), 980),
        ];
        let p = LatencyProfile::from_samples(&samples);
        assert_eq!(p.per_source.len(), 3);
        assert_eq!(p.total_count(), 6);
        assert_eq!(p.get(DataSource::Dram(0)).unwrap().count(), 2);
        assert_eq!(p.get(DataSource::L2), None);
        assert_eq!(p.local_dram().count(), 2);
        assert_eq!(p.remote_dram().count(), 3);
        assert!(p.dram_tiers_bimodal(), "remote p50 above local p50");
        // Sources are sorted: caches before DRAM nodes before remote nodes.
        let order: Vec<DataSource> = p.per_source.iter().map(|(s, _)| *s).collect();
        assert_eq!(order, vec![DataSource::L1, DataSource::Dram(0), DataSource::RemoteDram(1)]);
        assert!(order.iter().all(|s| s.level() <= MemLevel::Dram));
    }

    #[test]
    fn profile_streaming_merge_matches_post_hoc() {
        let samples: Vec<AddressSample> = (0..500u64)
            .map(|i| {
                let source = match i % 3 {
                    0 => DataSource::L1,
                    1 => DataSource::Dram(0),
                    _ => DataSource::RemoteDram(1),
                };
                sample(source, ((i * 7) % 2000) as u16)
            })
            .collect();
        let post_hoc = LatencyProfile::from_samples(&samples);
        let mut streamed = LatencyProfile::new();
        for chunk in samples.chunks(19) {
            streamed.merge(&LatencyProfile::from_samples(chunk));
        }
        assert_eq!(post_hoc, streamed);
    }

    #[test]
    fn unimodal_profile_is_not_bimodal() {
        let p = LatencyProfile::from_samples(&[
            sample(DataSource::Dram(0), 330),
            sample(DataSource::Dram(0), 335),
        ]);
        assert!(!p.dram_tiers_bimodal(), "no remote tier observed");
        assert!(LatencyProfile::new().is_empty());
    }
}
