//! # perf-sub — a user-space model of the Linux `perf_event` subsystem
//!
//! NMO (the paper's profiler) is written against the Linux perf ABI: it opens
//! an event with `perf_event_open`, mmaps a ring buffer whose first page is a
//! `perf_event_mmap_page` metadata page, mmaps an aux buffer for ARM SPE
//! data, polls the file descriptor, and reads `PERF_RECORD_AUX` records that
//! describe where in the aux buffer new SPE data landed.
//!
//! Real SPE hardware (and the kernel driver for PMU type `0x2c`) are not
//! available here, so this crate reproduces the *ABI surface* in user space:
//! the same attribute fields, buffer layouts, record formats, flag bits, and
//! clock-conversion fields. The `spe` crate plays the role of the kernel
//! driver + hardware, producing data into these structures; the `nmo` crate
//! plays the role of the profiler, consuming them exactly as described in
//! Section IV of the paper.
//!
//! The crate has no dependency on the machine simulator: it is a pure
//! data-plane substrate (attributes, buffers, records, counters, wakeups).

#![warn(missing_docs)]

pub mod attr;
pub mod count;
pub mod event;
pub mod mmap;
pub mod poll;
pub mod records;

pub use attr::{PerfEventAttr, PERF_TYPE_ARM_SPE, PERF_TYPE_HARDWARE};
pub use count::CountingEvent;
pub use event::{EventId, PerfEvent, RecordDrain};
pub use mmap::{AuxBuffer, MetadataPage, RingBuffer, PAGE_SIZE_64K};
pub use poll::{PollTimeout, Waker};
pub use records::{
    AuxRecord, ItraceStartRecord, LostRecord, Record, RecordHeader, PERF_AUX_FLAG_COLLISION,
    PERF_AUX_FLAG_PARTIAL, PERF_AUX_FLAG_TRUNCATED, PERF_RECORD_AUX, PERF_RECORD_ITRACE_START,
    PERF_RECORD_LOST,
};

/// Errors produced by the perf substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PerfError {
    /// The attribute combination is not supported (mirrors EINVAL).
    InvalidAttr(String),
    /// A buffer size was not valid (must be a power-of-two number of pages).
    InvalidBufferSize(String),
    /// Attempted to read past the available data.
    WouldBlock,
    /// The record stream contained malformed data.
    CorruptRecord(String),
}

impl std::fmt::Display for PerfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PerfError::InvalidAttr(m) => write!(f, "invalid perf_event_attr: {m}"),
            PerfError::InvalidBufferSize(m) => write!(f, "invalid buffer size: {m}"),
            PerfError::WouldBlock => write!(f, "no data available (EAGAIN)"),
            PerfError::CorruptRecord(m) => write!(f, "corrupt record: {m}"),
        }
    }
}

impl std::error::Error for PerfError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, PerfError>;
