//! Perf record framing: the records NMO reads from the data ring buffer.
//!
//! For an ARM SPE event the kernel does not place samples in the ring buffer
//! directly; it places `PERF_RECORD_AUX` records whose `aux_offset` and
//! `aux_size` fields locate newly written SPE data inside the aux buffer, and
//! whose `flags` field reports truncation, partial data, and *collisions*
//! (the paper counts `PERF_AUX_FLAG_COLLISION` to quantify dropped records,
//! Section VII). `PERF_RECORD_LOST` reports dropped ring-buffer records and
//! `PERF_RECORD_ITRACE_START` marks the start of AUX tracing.
//!
//! Records are serialised in the perf byte layout: an 8-byte
//! `perf_event_header { type: u32, misc: u16, size: u16 }` followed by the
//! type-specific payload, all little-endian.

use crate::{PerfError, Result};

/// `PERF_RECORD_LOST`.
pub const PERF_RECORD_LOST: u32 = 2;
/// `PERF_RECORD_AUX`.
pub const PERF_RECORD_AUX: u32 = 11;
/// `PERF_RECORD_ITRACE_START`.
pub const PERF_RECORD_ITRACE_START: u32 = 12;

/// Aux data was truncated because the buffer was full.
pub const PERF_AUX_FLAG_TRUNCATED: u64 = 0x01;
/// Aux data is partial (snapshot mode).
pub const PERF_AUX_FLAG_PARTIAL: u64 = 0x04;
/// A sample collision occurred while the data was collected.
pub const PERF_AUX_FLAG_COLLISION: u64 = 0x08;

/// The common 8-byte record header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordHeader {
    /// Record type (`PERF_RECORD_*`).
    pub type_: u32,
    /// Miscellaneous flags (unused here).
    pub misc: u16,
    /// Total record size in bytes, header included.
    pub size: u16,
}

impl RecordHeader {
    /// Serialise to the 8-byte perf layout.
    pub fn to_bytes(&self) -> [u8; 8] {
        let mut out = [0u8; 8];
        out[0..4].copy_from_slice(&self.type_.to_le_bytes());
        out[4..6].copy_from_slice(&self.misc.to_le_bytes());
        out[6..8].copy_from_slice(&self.size.to_le_bytes());
        out
    }

    /// Parse from bytes.
    pub fn from_bytes(b: &[u8]) -> Result<Self> {
        if b.len() < 8 {
            return Err(PerfError::CorruptRecord("short header".into()));
        }
        Ok(RecordHeader {
            type_: u32::from_le_bytes([b[0], b[1], b[2], b[3]]),
            misc: u16::from_le_bytes([b[4], b[5]]),
            size: u16::from_le_bytes([b[6], b[7]]),
        })
    }
}

/// `PERF_RECORD_AUX`: new data landed in the aux buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxRecord {
    /// Monotonic byte offset of the new data within the aux buffer.
    pub aux_offset: u64,
    /// Length of the new data in bytes.
    pub aux_size: u64,
    /// `PERF_AUX_FLAG_*` bits.
    pub flags: u64,
}

impl AuxRecord {
    /// Whether the aux data was truncated.
    pub fn truncated(&self) -> bool {
        self.flags & PERF_AUX_FLAG_TRUNCATED != 0
    }

    /// Whether a sample collision was observed.
    pub fn collision(&self) -> bool {
        self.flags & PERF_AUX_FLAG_COLLISION != 0
    }
}

/// `PERF_RECORD_LOST`: the kernel dropped `lost` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LostRecord {
    /// Event identifier.
    pub id: u64,
    /// Number of records lost.
    pub lost: u64,
}

/// `PERF_RECORD_ITRACE_START`: AUX tracing started for a task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ItraceStartRecord {
    /// Process id.
    pub pid: u32,
    /// Thread id.
    pub tid: u32,
}

/// Any record NMO can encounter in the data ring buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Record {
    /// New aux data available.
    Aux(AuxRecord),
    /// Records were lost.
    Lost(LostRecord),
    /// AUX tracing started.
    ItraceStart(ItraceStartRecord),
}

impl Record {
    /// The record's header (type + size).
    pub fn header(&self) -> RecordHeader {
        match self {
            Record::Aux(_) => RecordHeader { type_: PERF_RECORD_AUX, misc: 0, size: 32 },
            Record::Lost(_) => RecordHeader { type_: PERF_RECORD_LOST, misc: 0, size: 24 },
            Record::ItraceStart(_) => {
                RecordHeader { type_: PERF_RECORD_ITRACE_START, misc: 0, size: 16 }
            }
        }
    }

    /// Serialise into the perf byte layout.
    pub fn to_bytes(&self) -> Vec<u8> {
        let header = self.header();
        let mut out = Vec::with_capacity(header.size as usize);
        out.extend_from_slice(&header.to_bytes());
        match self {
            Record::Aux(a) => {
                out.extend_from_slice(&a.aux_offset.to_le_bytes());
                out.extend_from_slice(&a.aux_size.to_le_bytes());
                out.extend_from_slice(&a.flags.to_le_bytes());
            }
            Record::Lost(l) => {
                out.extend_from_slice(&l.id.to_le_bytes());
                out.extend_from_slice(&l.lost.to_le_bytes());
            }
            Record::ItraceStart(s) => {
                out.extend_from_slice(&s.pid.to_le_bytes());
                out.extend_from_slice(&s.tid.to_le_bytes());
            }
        }
        debug_assert_eq!(out.len(), header.size as usize);
        out
    }

    /// Parse a record from bytes (which must be exactly one record).
    pub fn from_bytes(b: &[u8]) -> Result<Self> {
        let header = RecordHeader::from_bytes(b)?;
        if b.len() < header.size as usize {
            return Err(PerfError::CorruptRecord("short record body".into()));
        }
        let body = &b[8..header.size as usize];
        let u64_at = |off: usize| -> Result<u64> {
            body.get(off..off + 8)
                // unwrap-ok: the slice is exactly 8 bytes by construction
                // of the `get(off..off + 8)` range.
                .map(|s| u64::from_le_bytes(s.try_into().unwrap()))
                .ok_or_else(|| PerfError::CorruptRecord("short field".into()))
        };
        match header.type_ {
            PERF_RECORD_AUX => Ok(Record::Aux(AuxRecord {
                aux_offset: u64_at(0)?,
                aux_size: u64_at(8)?,
                flags: u64_at(16)?,
            })),
            PERF_RECORD_LOST => Ok(Record::Lost(LostRecord { id: u64_at(0)?, lost: u64_at(8)? })),
            PERF_RECORD_ITRACE_START => {
                if body.len() < 8 {
                    return Err(PerfError::CorruptRecord("short itrace body".into()));
                }
                Ok(Record::ItraceStart(ItraceStartRecord {
                    // unwrap-ok: `body.len() >= 8` checked above; the
                    // slice is exactly 4 bytes.
                    pid: u32::from_le_bytes(body[0..4].try_into().unwrap()),
                    // unwrap-ok: same — exactly 4 bytes of a checked body.
                    tid: u32::from_le_bytes(body[4..8].try_into().unwrap()),
                }))
            }
            other => Err(PerfError::CorruptRecord(format!("unknown record type {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = RecordHeader { type_: PERF_RECORD_AUX, misc: 3, size: 32 };
        assert_eq!(RecordHeader::from_bytes(&h.to_bytes()).unwrap(), h);
        assert!(RecordHeader::from_bytes(&[0u8; 4]).is_err());
    }

    #[test]
    fn aux_record_roundtrip_and_flags() {
        let rec = Record::Aux(AuxRecord {
            aux_offset: 0xdead_beef,
            aux_size: 4096,
            flags: PERF_AUX_FLAG_TRUNCATED | PERF_AUX_FLAG_COLLISION,
        });
        let bytes = rec.to_bytes();
        assert_eq!(bytes.len(), 32);
        let back = Record::from_bytes(&bytes).unwrap();
        assert_eq!(back, rec);
        if let Record::Aux(a) = back {
            assert!(a.truncated());
            assert!(a.collision());
        } else {
            panic!("wrong variant");
        }
    }

    #[test]
    fn lost_and_itrace_roundtrip() {
        for rec in [
            Record::Lost(LostRecord { id: 7, lost: 199 }),
            Record::ItraceStart(ItraceStartRecord { pid: 1234, tid: 5678 }),
        ] {
            let back = Record::from_bytes(&rec.to_bytes()).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn unknown_type_rejected() {
        let mut bytes = Record::Aux(AuxRecord { aux_offset: 0, aux_size: 0, flags: 0 }).to_bytes();
        bytes[0] = 99;
        assert!(Record::from_bytes(&bytes).is_err());
    }

    #[test]
    fn flag_values_match_kernel_abi() {
        assert_eq!(PERF_AUX_FLAG_TRUNCATED, 0x01);
        assert_eq!(PERF_AUX_FLAG_PARTIAL, 0x04);
        assert_eq!(PERF_AUX_FLAG_COLLISION, 0x08);
        assert_eq!(PERF_RECORD_AUX, 11);
        assert_eq!(PERF_RECORD_LOST, 2);
    }
}
