//! The mmap'd buffers of a perf event: metadata page, data ring buffer, and
//! aux buffer.
//!
//! Section IV-A of the paper describes the buffer mechanism NMO relies on:
//!
//! * the ring buffer is `(N+1)` pages — one `perf_event_mmap_page` metadata
//!   page followed by `N` data pages written by the kernel and read by the
//!   profiler in a producer/consumer fashion;
//! * for ARM SPE the detailed sample data (packets) lands in a separate *aux
//!   buffer*; the ring buffer only carries `PERF_RECORD_AUX` metadata records
//!   (`aux_offset`, `aux_size`, `flags`) pointing into it;
//! * `aux_watermark` controls how much new aux data accumulates before a
//!   metadata record is published (and pollers woken);
//! * the metadata page carries `time_zero`, `time_shift`, `time_mult` used to
//!   convert SPE timestamps to the perf clock.
//!
//! On the paper's testbed pages are 64 KiB, which is why buffer sizes in the
//! aux-buffer sensitivity study (Figure 9) are quoted in 64 KiB pages.

use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::records::Record;
use crate::{PerfError, Result};

/// Page size used for perf buffers on the paper's ARM testbed (64 KiB).
pub const PAGE_SIZE_64K: u64 = 64 * 1024;

/// The `perf_event_mmap_page` fields NMO reads.
#[derive(Debug, Default)]
pub struct MetadataPage {
    /// Offset added when converting device timestamps to perf-clock ns.
    pub time_zero: AtomicU64,
    /// Right-shift applied after multiplying by `time_mult`.
    pub time_shift: AtomicU64,
    /// Multiplier for device-timestamp conversion.
    pub time_mult: AtomicU64,
    /// Producer position in the data ring buffer (bytes, monotonic).
    pub data_head: AtomicU64,
    /// Consumer position in the data ring buffer (bytes, monotonic).
    pub data_tail: AtomicU64,
    /// Producer position in the aux buffer (bytes, monotonic).
    pub aux_head: AtomicU64,
    /// Consumer position in the aux buffer (bytes, monotonic).
    pub aux_tail: AtomicU64,
}

impl MetadataPage {
    /// Publish the clock-conversion triple (done by the "kernel" at event
    /// creation; read by NMO when decoding timestamps).
    pub fn set_clock(&self, time_zero: u64, time_shift: u16, time_mult: u32) {
        // relaxed-ok: written once at event creation, before any drainer
        // thread can hold a reference — publication happens via the
        // `Arc<PerfEvent>` handoff, not through these cells.
        self.time_zero.store(time_zero, Ordering::Relaxed);
        self.time_shift.store(time_shift as u64, Ordering::Relaxed); // relaxed-ok: as above
        self.time_mult.store(time_mult as u64, Ordering::Relaxed); // relaxed-ok: as above
    }

    /// Read the clock-conversion triple.
    pub fn clock(&self) -> (u64, u16, u32) {
        (
            // relaxed-ok: set once before the event handle is shared; see
            // `set_clock`.
            self.time_zero.load(Ordering::Relaxed),
            self.time_shift.load(Ordering::Relaxed) as u16, // relaxed-ok: as above
            self.time_mult.load(Ordering::Relaxed) as u32,  // relaxed-ok: as above
        )
    }
}

struct RingInner {
    buf: Vec<u8>,
    head: u64,
    tail: u64,
    lost: u64,
}

/// The data ring buffer: carries framed perf records (for SPE events, mostly
/// `PERF_RECORD_AUX`).
pub struct RingBuffer {
    inner: Mutex<RingInner>,
    capacity: u64,
}

impl std::fmt::Debug for RingBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBuffer").field("capacity", &self.capacity).finish()
    }
}

impl RingBuffer {
    /// Create a ring buffer with `pages` data pages of `page_bytes` each.
    /// The page count must be a power of two (kernel requirement).
    pub fn new(pages: u64, page_bytes: u64) -> Result<Self> {
        if pages == 0 || !pages.is_power_of_two() {
            return Err(PerfError::InvalidBufferSize(format!(
                "ring buffer data pages must be a power of two, got {pages}"
            )));
        }
        let capacity = pages * page_bytes;
        Ok(RingBuffer {
            inner: Mutex::named(
                RingInner { buf: vec![0u8; capacity as usize], head: 0, tail: 0, lost: 0 },
                "perf.ring",
            ),
            capacity,
        })
    }

    /// Total data capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently unconsumed.
    pub fn unconsumed(&self) -> u64 {
        let inner = self.inner.lock();
        inner.head - inner.tail
    }

    /// Current producer position (monotonic bytes, never wraps).
    pub fn head(&self) -> u64 {
        self.inner.lock().head
    }

    /// Current consumer position (monotonic bytes, never wraps).
    pub fn tail(&self) -> u64 {
        self.inner.lock().tail
    }

    /// Number of records dropped because the buffer was full.
    pub fn lost(&self) -> u64 {
        self.inner.lock().lost
    }

    /// Producer side: append a record. Returns `false` (and counts a loss) if
    /// there is not enough free space, mirroring the kernel's behaviour of
    /// dropping records when user space does not keep up.
    pub fn write_record(&self, record: &Record, meta: &MetadataPage) -> bool {
        let bytes = record.to_bytes();
        let mut inner = self.inner.lock();
        let free = self.capacity - (inner.head - inner.tail);
        if (bytes.len() as u64) > free {
            inner.lost += 1;
            return false;
        }
        let cap = self.capacity as usize;
        let start = (inner.head % self.capacity) as usize;
        for (i, b) in bytes.iter().enumerate() {
            inner.buf[(start + i) % cap] = *b;
        }
        inner.head += bytes.len() as u64;
        meta.data_head.store(inner.head, Ordering::Release);
        true
    }

    /// Consumer side: read the next record, if any, advancing the tail.
    pub fn read_record(&self, meta: &MetadataPage) -> Result<Option<Record>> {
        let mut inner = self.inner.lock();
        if inner.head == inner.tail {
            return Ok(None);
        }
        let cap = self.capacity as usize;
        let start = (inner.tail % self.capacity) as usize;
        // Peek the 8-byte header to learn the record size.
        let mut header = [0u8; 8];
        for (i, h) in header.iter_mut().enumerate() {
            *h = inner.buf[(start + i) % cap];
        }
        let size = u16::from_le_bytes([header[6], header[7]]) as usize;
        if size < 8 || (size as u64) > inner.head - inner.tail {
            return Err(PerfError::CorruptRecord(format!(
                "record size {size} out of range (unconsumed {})",
                inner.head - inner.tail
            )));
        }
        let mut bytes = vec![0u8; size];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = inner.buf[(start + i) % cap];
        }
        let record = Record::from_bytes(&bytes)?;
        inner.tail += size as u64;
        meta.data_tail.store(inner.tail, Ordering::Release);
        Ok(Some(record))
    }
}

struct AuxInner {
    buf: Vec<u8>,
    /// Producer offset (monotonic bytes).
    head: u64,
    /// Consumer offset (monotonic bytes).
    tail: u64,
    /// Bytes dropped because the buffer was full (truncation).
    truncated_bytes: u64,
    /// Number of write attempts that hit a full buffer.
    truncation_events: u64,
}

/// The aux buffer: raw ARM SPE packet data written by the "hardware" and read
/// by the profiler at the offsets carried in `PERF_RECORD_AUX` records.
pub struct AuxBuffer {
    inner: Mutex<AuxInner>,
    capacity: u64,
    pages: u64,
}

impl std::fmt::Debug for AuxBuffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AuxBuffer")
            .field("capacity", &self.capacity)
            .field("pages", &self.pages)
            .finish()
    }
}

impl AuxBuffer {
    /// Create an aux buffer of `pages` pages of `page_bytes` each (power of two).
    pub fn new(pages: u64, page_bytes: u64) -> Result<Self> {
        if pages == 0 || !pages.is_power_of_two() {
            return Err(PerfError::InvalidBufferSize(format!(
                "aux buffer pages must be a power of two, got {pages}"
            )));
        }
        let capacity = pages * page_bytes;
        Ok(AuxBuffer {
            inner: Mutex::named(
                AuxInner {
                    buf: vec![0u8; capacity as usize],
                    head: 0,
                    tail: 0,
                    truncated_bytes: 0,
                    truncation_events: 0,
                },
                "perf.aux",
            ),
            capacity,
            pages,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Number of pages.
    pub fn pages(&self) -> u64 {
        self.pages
    }

    /// Current producer offset (monotonic).
    pub fn head(&self) -> u64 {
        self.inner.lock().head
    }

    /// Current consumer offset (monotonic).
    pub fn tail(&self) -> u64 {
        self.inner.lock().tail
    }

    /// Bytes written but not yet consumed.
    pub fn unconsumed(&self) -> u64 {
        let inner = self.inner.lock();
        inner.head - inner.tail
    }

    /// Free space in bytes.
    pub fn free(&self) -> u64 {
        self.capacity - self.unconsumed()
    }

    /// Total bytes dropped due to a full buffer.
    pub fn truncated_bytes(&self) -> u64 {
        self.inner.lock().truncated_bytes
    }

    /// Number of writes that found the buffer full.
    pub fn truncation_events(&self) -> u64 {
        self.inner.lock().truncation_events
    }

    /// Producer side: write `data` at the head. Returns the monotonic offset
    /// at which the data begins, or `Err(())`-like `None` if there was not
    /// enough space (the data is dropped and counted as truncated, which is
    /// what SPE does when the aux buffer fills faster than it is drained).
    pub fn write(&self, data: &[u8], meta: &MetadataPage) -> Option<u64> {
        let mut inner = self.inner.lock();
        let free = self.capacity - (inner.head - inner.tail);
        if (data.len() as u64) > free {
            inner.truncated_bytes += data.len() as u64;
            inner.truncation_events += 1;
            return None;
        }
        let cap = self.capacity as usize;
        let offset = inner.head;
        let start = (offset % self.capacity) as usize;
        for (i, b) in data.iter().enumerate() {
            inner.buf[(start + i) % cap] = *b;
        }
        inner.head += data.len() as u64;
        meta.aux_head.store(inner.head, Ordering::Release);
        Some(offset)
    }

    /// Consumer side: copy `len` bytes starting at monotonic offset `offset`.
    pub fn read_at(&self, offset: u64, len: u64) -> Vec<u8> {
        let mut out = Vec::new();
        self.read_into(offset, len, &mut out);
        out
    }

    /// Consumer side: copy `len` bytes starting at monotonic offset `offset`
    /// into `out` (cleared first). The zero-allocation read path: callers on
    /// the drain hot loop reuse one scratch buffer across reads instead of
    /// allocating per aux record.
    pub fn read_into(&self, offset: u64, len: u64, out: &mut Vec<u8>) {
        let inner = self.inner.lock();
        let cap = self.capacity as usize;
        let start = (offset % self.capacity) as usize;
        out.clear();
        out.reserve(len as usize);
        // Copy contiguous runs instead of a byte-at-a-time modulo walk.
        let mut remaining = len as usize;
        let mut pos = start;
        while remaining > 0 {
            let run = remaining.min(cap - pos);
            out.extend_from_slice(&inner.buf[pos..pos + run]);
            remaining -= run;
            pos = (pos + run) % cap;
        }
    }

    /// Consumer side: advance the tail to monotonic offset `new_tail`,
    /// releasing space for the producer.
    pub fn advance_tail(&self, new_tail: u64, meta: &MetadataPage) {
        let mut inner = self.inner.lock();
        if new_tail > inner.tail && new_tail <= inner.head {
            inner.tail = new_tail;
            meta.aux_tail.store(new_tail, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::{AuxRecord, Record};

    #[test]
    fn ring_buffer_rejects_non_power_of_two() {
        assert!(RingBuffer::new(3, 4096).is_err());
        assert!(RingBuffer::new(0, 4096).is_err());
        assert!(RingBuffer::new(8, 4096).is_ok());
        assert!(AuxBuffer::new(6, 4096).is_err());
        assert!(AuxBuffer::new(16, 4096).is_ok());
    }

    #[test]
    fn ring_roundtrip_records() {
        let meta = MetadataPage::default();
        let rb = RingBuffer::new(1, 4096).unwrap();
        let rec = Record::Aux(AuxRecord { aux_offset: 128, aux_size: 640, flags: 0 });
        assert!(rb.write_record(&rec, &meta));
        assert!(rb.unconsumed() > 0);
        let back = rb.read_record(&meta).unwrap().unwrap();
        assert_eq!(back, rec);
        assert!(rb.read_record(&meta).unwrap().is_none());
        assert_eq!(meta.data_head.load(Ordering::Relaxed), meta.data_tail.load(Ordering::Relaxed));
    }

    #[test]
    fn ring_wraps_around() {
        let meta = MetadataPage::default();
        let rb = RingBuffer::new(1, 128).unwrap();
        // Each AUX record is 32 bytes; write/read many times to force wrap.
        for i in 0..100u64 {
            let rec = Record::Aux(AuxRecord { aux_offset: i * 64, aux_size: 64, flags: 0 });
            assert!(rb.write_record(&rec, &meta));
            let back = rb.read_record(&meta).unwrap().unwrap();
            assert_eq!(back, rec);
        }
        assert_eq!(rb.lost(), 0);
    }

    #[test]
    fn ring_drops_when_full() {
        let meta = MetadataPage::default();
        let rb = RingBuffer::new(1, 128).unwrap();
        let rec = Record::Aux(AuxRecord { aux_offset: 0, aux_size: 64, flags: 0 });
        let mut wrote = 0;
        for _ in 0..100 {
            if rb.write_record(&rec, &meta) {
                wrote += 1;
            }
        }
        assert!(wrote < 100);
        assert_eq!(rb.lost(), 100 - wrote);
    }

    #[test]
    fn aux_write_read_roundtrip() {
        let meta = MetadataPage::default();
        let aux = AuxBuffer::new(1, 4096).unwrap();
        let data: Vec<u8> = (0..255u8).collect();
        let off = aux.write(&data, &meta).unwrap();
        assert_eq!(off, 0);
        assert_eq!(aux.read_at(off, data.len() as u64), data);
        assert_eq!(aux.unconsumed(), 255);
        aux.advance_tail(off + data.len() as u64, &meta);
        assert_eq!(aux.unconsumed(), 0);
        assert_eq!(meta.aux_tail.load(Ordering::Relaxed), 255);
    }

    /// `read_into` reuses the caller's scratch buffer (the drain hot path's
    /// zero-allocation read) and agrees with `read_at` across a wrap.
    #[test]
    fn aux_read_into_reuses_scratch_across_wrap() {
        let meta = MetadataPage::default();
        let aux = AuxBuffer::new(1, 256).unwrap();
        let mut scratch = Vec::new();
        let mut expected_cap = 0usize;
        for round in 0..10u8 {
            let data: Vec<u8> = (0..96u8).map(|i| i.wrapping_add(round)).collect();
            let off = aux.write(&data, &meta).unwrap();
            aux.read_into(off, data.len() as u64, &mut scratch);
            assert_eq!(scratch, data);
            assert_eq!(scratch, aux.read_at(off, data.len() as u64));
            assert!(scratch.capacity() >= expected_cap, "scratch capacity never shrinks");
            expected_cap = scratch.capacity();
            aux.advance_tail(off + data.len() as u64, &meta);
        }
    }

    #[test]
    fn aux_truncates_when_full() {
        let meta = MetadataPage::default();
        let aux = AuxBuffer::new(1, 256).unwrap();
        let chunk = vec![0xabu8; 64];
        let mut accepted = 0;
        for _ in 0..10 {
            if aux.write(&chunk, &meta).is_some() {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 4, "256-byte buffer fits four 64-byte records");
        assert_eq!(aux.truncation_events(), 6);
        assert_eq!(aux.truncated_bytes(), 6 * 64);
        // Draining frees space again.
        aux.advance_tail(aux.head(), &meta);
        assert!(aux.write(&chunk, &meta).is_some());
    }

    #[test]
    fn aux_wraparound_read_is_correct() {
        let meta = MetadataPage::default();
        let aux = AuxBuffer::new(1, 128).unwrap();
        // Fill and drain 96 bytes, then write 64 bytes that wrap the boundary.
        let first = vec![1u8; 96];
        let off1 = aux.write(&first, &meta).unwrap();
        aux.advance_tail(off1 + 96, &meta);
        let second: Vec<u8> = (0..64u8).collect();
        let off2 = aux.write(&second, &meta).unwrap();
        assert_eq!(off2, 96);
        assert_eq!(aux.read_at(off2, 64), second);
    }

    #[test]
    fn metadata_clock_roundtrip() {
        let meta = MetadataPage::default();
        meta.set_clock(1234, 20, 41943);
        assert_eq!(meta.clock(), (1234, 20, 41943));
    }
}
