//! The perf "file descriptor": an opened event with its mmap'd buffers.
//!
//! For ARM SPE, NMO opens one event per core (Section IV-A: "this
//! configuration process is done on a per-core basis"), mmaps a ring buffer
//! of `(N+1)` 64 KiB pages and an aux buffer whose size is controlled by the
//! `NMO_AUXBUFSIZE` environment variable, and then polls for
//! `PERF_RECORD_AUX` records.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use crate::attr::PerfEventAttr;
use crate::mmap::{AuxBuffer, MetadataPage, RingBuffer};
use crate::poll::Waker;
use crate::records::Record;
use crate::{PerfError, Result};

/// Identifier of an opened event (unique per process, like an fd number).
pub type EventId = u64;

static NEXT_ID: AtomicU64 = AtomicU64::new(3);

/// An opened perf event with its buffers.
///
/// The struct is designed to be shared (`Arc<PerfEvent>`) between the
/// producer side (the SPE driver, running on the profiled core) and the
/// consumer side (the NMO monitoring thread).
#[derive(Debug)]
pub struct PerfEvent {
    id: EventId,
    attr: PerfEventAttr,
    cpu: usize,
    meta: MetadataPage,
    ring: RingBuffer,
    aux: Option<AuxBuffer>,
    waker: Waker,
    enabled: AtomicBool,
}

impl PerfEvent {
    /// Open an event on `cpu` with a ring buffer of `ring_pages` data pages.
    ///
    /// The aux buffer is mapped separately via [`PerfEvent::mmap_aux`], as in
    /// the real ABI (a second `mmap` call on the same fd).
    pub fn open(attr: PerfEventAttr, cpu: usize, ring_pages: u64, page_bytes: u64) -> Result<Self> {
        attr.validate()?;
        let ring = RingBuffer::new(ring_pages, page_bytes)?;
        Ok(PerfEvent {
            // relaxed-ok: unique-id allocator — only atomicity of the
            // counter matters, not ordering against other memory.
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            attr,
            cpu,
            meta: MetadataPage::default(),
            ring,
            aux: None,
            waker: Waker::new(),
            enabled: AtomicBool::new(!attr.disabled),
        })
    }

    /// Map an aux buffer of `aux_pages` pages onto this event.
    pub fn mmap_aux(&mut self, aux_pages: u64, page_bytes: u64) -> Result<()> {
        if !self.attr.is_spe() {
            return Err(PerfError::InvalidAttr(
                "aux buffers are only meaningful for AUX-capable PMUs (SPE)".into(),
            ));
        }
        self.aux = Some(AuxBuffer::new(aux_pages, page_bytes)?);
        Ok(())
    }

    /// The event id (fd number analogue).
    pub fn id(&self) -> EventId {
        self.id
    }

    /// The attribute block the event was opened with.
    pub fn attr(&self) -> &PerfEventAttr {
        &self.attr
    }

    /// The CPU this event is bound to.
    pub fn cpu(&self) -> usize {
        self.cpu
    }

    /// The metadata page.
    pub fn meta(&self) -> &MetadataPage {
        &self.meta
    }

    /// The data ring buffer.
    pub fn ring(&self) -> &RingBuffer {
        &self.ring
    }

    /// The aux buffer, if mapped.
    pub fn aux(&self) -> Option<&AuxBuffer> {
        self.aux.as_ref()
    }

    /// The readiness waker (epoll analogue).
    pub fn waker(&self) -> &Waker {
        &self.waker
    }

    /// Enable the event (ioctl `PERF_EVENT_IOC_ENABLE`).
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Disable the event (ioctl `PERF_EVENT_IOC_DISABLE`).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether the event is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Effective aux watermark in bytes: the attribute value, or half the aux
    /// buffer when the attribute is 0 (kernel default).
    pub fn effective_aux_watermark(&self) -> u64 {
        let aux_capacity = self.aux.as_ref().map(|a| a.capacity()).unwrap_or(0);
        if self.attr.aux_watermark != 0 {
            self.attr.aux_watermark.min(aux_capacity.max(1))
        } else {
            (aux_capacity / 2).max(1)
        }
    }

    /// Producer side: publish a record into the ring buffer and wake pollers.
    pub fn publish(&self, record: Record) -> bool {
        let ok = self.ring.write_record(&record, &self.meta);
        self.waker.wake();
        ok
    }

    /// Consumer side: read the next record from the ring buffer.
    pub fn next_record(&self) -> Result<Option<Record>> {
        self.ring.read_record(&self.meta)
    }

    /// Consumer side: drain every currently pending record as an iterator.
    ///
    /// This is the streaming read path of the profiler's monitor loop: each
    /// `next()` consumes one framed record and advances the ring tail, so a
    /// single pass empties everything published up to that point. A corrupt
    /// record stops the iteration; inspect [`RecordDrain::error`] afterwards
    /// to distinguish "empty" from "corrupt".
    pub fn drain(&self) -> RecordDrain<'_> {
        RecordDrain { event: self, error: None, drained: 0 }
    }

    /// Number of records the producer dropped because the ring buffer was
    /// full (the consumer did not keep up).
    pub fn lost_records(&self) -> u64 {
        self.ring.lost()
    }

    /// Close the event: disable it and unblock any pollers.
    pub fn close(&self) {
        self.disable();
        self.waker.close();
    }

    /// Convenience constructor returning an `Arc` so both sides can share it.
    pub fn open_shared(
        attr: PerfEventAttr,
        cpu: usize,
        ring_pages: u64,
        aux_pages: u64,
        page_bytes: u64,
    ) -> Result<Arc<Self>> {
        let mut ev = Self::open(attr, cpu, ring_pages, page_bytes)?;
        if attr.is_spe() {
            ev.mmap_aux(aux_pages, page_bytes)?;
        }
        Ok(Arc::new(ev))
    }
}

/// Draining iterator over an event's pending ring-buffer records (see
/// [`PerfEvent::drain`]).
#[derive(Debug)]
pub struct RecordDrain<'a> {
    event: &'a PerfEvent,
    error: Option<PerfError>,
    drained: u64,
}

impl RecordDrain<'_> {
    /// The corrupt-record error that terminated the drain, if any.
    pub fn error(&self) -> Option<&PerfError> {
        self.error.as_ref()
    }

    /// Number of records consumed by this drain so far.
    pub fn drained(&self) -> u64 {
        self.drained
    }
}

impl Iterator for RecordDrain<'_> {
    type Item = Record;

    fn next(&mut self) -> Option<Record> {
        if self.error.is_some() {
            return None;
        }
        match self.event.next_record() {
            Ok(Some(record)) => {
                self.drained += 1;
                Some(record)
            }
            Ok(None) => None,
            Err(e) => {
                self.error = Some(e);
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::PerfEventAttr;
    use crate::records::{AuxRecord, Record};

    #[test]
    fn open_spe_event_with_buffers() {
        let ev = PerfEvent::open_shared(PerfEventAttr::arm_spe_loads_stores(4096), 3, 8, 16, 4096)
            .unwrap();
        assert_eq!(ev.cpu(), 3);
        assert!(ev.is_enabled());
        assert!(ev.aux().is_some());
        assert_eq!(ev.aux().unwrap().capacity(), 16 * 4096);
        assert_eq!(
            ev.effective_aux_watermark(),
            8 * 4096,
            "default watermark is half the aux buffer"
        );
    }

    #[test]
    fn aux_mmap_rejected_for_counting_events() {
        let mut ev = PerfEvent::open(PerfEventAttr::counting(0x13), 0, 8, 4096).unwrap();
        assert!(ev.mmap_aux(8, 4096).is_err());
    }

    #[test]
    fn publish_wakes_and_delivers() {
        let ev = PerfEvent::open_shared(PerfEventAttr::arm_spe_loads_stores(4096), 0, 8, 16, 4096)
            .unwrap();
        let rec = Record::Aux(AuxRecord { aux_offset: 0, aux_size: 128, flags: 0 });
        assert!(ev.publish(rec));
        assert_eq!(ev.waker().wakeups(), 1);
        assert_eq!(ev.next_record().unwrap(), Some(rec));
        assert_eq!(ev.next_record().unwrap(), None);
    }

    #[test]
    fn explicit_watermark_capped_at_capacity() {
        let attr =
            PerfEventAttr { aux_watermark: 1 << 30, ..PerfEventAttr::arm_spe_loads_stores(1000) };
        let ev = PerfEvent::open_shared(attr, 0, 8, 4, 4096).unwrap();
        assert_eq!(ev.effective_aux_watermark(), 4 * 4096);
    }

    #[test]
    fn ids_are_unique() {
        let a = PerfEvent::open(PerfEventAttr::counting(0x11), 0, 1, 4096).unwrap();
        let b = PerfEvent::open(PerfEventAttr::counting(0x11), 0, 1, 4096).unwrap();
        assert_ne!(a.id(), b.id());
    }

    #[test]
    fn drain_consumes_all_pending_records_in_order() {
        let ev = PerfEvent::open_shared(PerfEventAttr::arm_spe_loads_stores(4096), 0, 8, 16, 4096)
            .unwrap();
        for i in 0..5u64 {
            assert!(ev.publish(Record::Aux(AuxRecord {
                aux_offset: i * 64,
                aux_size: 64,
                flags: 0
            })));
        }
        let mut drain = ev.drain();
        let offsets: Vec<u64> = drain
            .by_ref()
            .map(|r| match r {
                Record::Aux(a) => a.aux_offset,
                other => panic!("unexpected record {other:?}"),
            })
            .collect();
        assert_eq!(offsets, vec![0, 64, 128, 192, 256]);
        assert_eq!(drain.drained(), 5);
        assert!(drain.error().is_none());
        assert_eq!(ev.drain().count(), 0, "second drain finds nothing");
    }

    #[test]
    fn drain_across_ring_wrap_around_loses_nothing() {
        // One 128-byte page holds four 32-byte AUX records; drain between
        // bursts so the monotonic head/tail arithmetic wraps many times.
        let mut ev = PerfEvent::open(PerfEventAttr::arm_spe_loads_stores(4096), 0, 1, 128).unwrap();
        ev.mmap_aux(4, 128).unwrap();
        let mut seen = 0u64;
        for burst in 0..50u64 {
            for i in 0..4u64 {
                assert!(ev.publish(Record::Aux(AuxRecord {
                    aux_offset: (burst * 4 + i) * 64,
                    aux_size: 64,
                    flags: 0
                })));
            }
            for record in ev.drain() {
                match record {
                    Record::Aux(a) => {
                        assert_eq!(a.aux_offset, seen * 64, "records arrive in publish order");
                        seen += 1;
                    }
                    other => panic!("unexpected record {other:?}"),
                }
            }
        }
        assert_eq!(seen, 200);
        assert_eq!(ev.lost_records(), 0);
        assert_eq!(ev.ring().head(), ev.ring().tail());
        assert!(ev.ring().head() > ev.ring().capacity(), "head is monotonic past a wrap");
    }

    #[test]
    fn lost_records_counted_when_consumer_stalls() {
        let ev = PerfEvent::open(PerfEventAttr::arm_spe_loads_stores(4096), 0, 1, 128).unwrap();
        let mut accepted = 0u64;
        for i in 0..20u64 {
            if ev.publish(Record::Aux(AuxRecord { aux_offset: i * 64, aux_size: 64, flags: 0 })) {
                accepted += 1;
            }
        }
        assert!(accepted < 20);
        assert_eq!(ev.lost_records(), 20 - accepted);
        // Whatever was accepted is still fully drainable.
        assert_eq!(ev.drain().count() as u64, accepted);
        // After draining, the producer has room again and loss stops growing.
        let lost_before = ev.lost_records();
        assert!(ev.publish(Record::Aux(AuxRecord { aux_offset: 0, aux_size: 64, flags: 0 })));
        assert_eq!(ev.lost_records(), lost_before);
    }

    #[test]
    fn close_disables_and_unblocks() {
        let ev = PerfEvent::open_shared(PerfEventAttr::arm_spe_loads_stores(4096), 0, 8, 4, 4096)
            .unwrap();
        ev.close();
        assert!(!ev.is_enabled());
        assert!(ev.waker().is_closed());
    }
}
