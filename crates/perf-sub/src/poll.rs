//! Pollable wakeups.
//!
//! NMO's monitoring thread uses `epoll` on the perf file descriptor to sleep
//! until the kernel signals that new data (a `PERF_RECORD_AUX` record) is
//! available. [`Waker`] models that readiness notification: the producer
//! (the SPE driver) calls [`Waker::wake`], the consumer (the NMO monitor
//! thread) blocks in [`Waker::wait_timeout`] or polls [`Waker::try_wait`].

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Result of a wait call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollTimeout {
    /// The waker was signalled (data is ready).
    Ready,
    /// The timeout elapsed with no signal.
    TimedOut,
    /// The event was closed (no more data will ever arrive).
    Closed,
}

struct WakerState {
    pending: Mutex<bool>,
    condvar: Condvar,
    closed: AtomicBool,
    wakeups: AtomicU64,
}

impl Default for WakerState {
    fn default() -> Self {
        WakerState {
            pending: Mutex::named(false, "poll.pending"),
            condvar: Condvar::new(),
            closed: AtomicBool::new(false),
            wakeups: AtomicU64::new(0),
        }
    }
}

/// A cloneable readiness-notification handle (epoll-like).
#[derive(Clone, Default)]
pub struct Waker {
    state: Arc<WakerState>,
}

impl std::fmt::Debug for Waker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Waker")
            // relaxed-ok: Debug snapshot — values are informational only.
            .field("wakeups", &self.state.wakeups.load(Ordering::Relaxed))
            .field("closed", &self.state.closed.load(Ordering::Relaxed)) // relaxed-ok: as above
            .finish()
    }
}

impl Waker {
    /// Create a new waker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signal readiness (producer side). Idempotent until consumed.
    pub fn wake(&self) {
        // relaxed-ok: interrupt-count statistic; the actual wakeup handoff
        // is the mutex-protected `pending` flag below.
        self.state.wakeups.fetch_add(1, Ordering::Relaxed);
        let mut pending = self.state.pending.lock();
        *pending = true;
        self.state.condvar.notify_all();
    }

    /// Mark the event closed; all current and future waits return
    /// [`PollTimeout::Closed`] once pending wakeups are drained.
    pub fn close(&self) {
        self.state.closed.store(true, Ordering::Release);
        let _pending = self.state.pending.lock();
        self.state.condvar.notify_all();
    }

    /// Whether the event has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.closed.load(Ordering::Acquire)
    }

    /// Total number of wake calls so far (used to quantify interrupt counts).
    pub fn wakeups(&self) -> u64 {
        // relaxed-ok: reporting read of a statistic.
        self.state.wakeups.load(Ordering::Relaxed)
    }

    /// Non-blocking poll: consume a pending wakeup if one exists.
    pub fn try_wait(&self) -> PollTimeout {
        let mut pending = self.state.pending.lock();
        if *pending {
            *pending = false;
            PollTimeout::Ready
        } else if self.is_closed() {
            PollTimeout::Closed
        } else {
            PollTimeout::TimedOut
        }
    }

    /// Block until woken or `timeout` elapses.
    pub fn wait_timeout(&self, timeout: Duration) -> PollTimeout {
        let mut pending = self.state.pending.lock();
        if *pending {
            *pending = false;
            return PollTimeout::Ready;
        }
        if self.is_closed() {
            return PollTimeout::Closed;
        }
        let deadline = std::time::Instant::now() + timeout;
        loop {
            let timed_out = self.state.condvar.wait_until(&mut pending, deadline).timed_out();
            if *pending {
                *pending = false;
                return PollTimeout::Ready;
            }
            if self.is_closed() {
                return PollTimeout::Closed;
            }
            if timed_out {
                return PollTimeout::TimedOut;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn wake_before_wait_is_not_lost() {
        let w = Waker::new();
        w.wake();
        assert_eq!(w.try_wait(), PollTimeout::Ready);
        assert_eq!(w.try_wait(), PollTimeout::TimedOut);
    }

    #[test]
    fn wait_times_out() {
        let w = Waker::new();
        assert_eq!(w.wait_timeout(Duration::from_millis(10)), PollTimeout::TimedOut);
    }

    #[test]
    fn cross_thread_wakeup() {
        let w = Waker::new();
        let w2 = w.clone();
        let handle = std::thread::spawn(move || {
            #[allow(clippy::disallowed_methods)] // test: delayed producer
            std::thread::sleep(Duration::from_millis(20));
            w2.wake();
        });
        assert_eq!(w.wait_timeout(Duration::from_secs(5)), PollTimeout::Ready);
        handle.join().unwrap();
        assert_eq!(w.wakeups(), 1);
    }

    #[test]
    fn close_unblocks_waiters() {
        let w = Waker::new();
        let w2 = w.clone();
        let handle = std::thread::spawn(move || {
            #[allow(clippy::disallowed_methods)] // test: delayed producer
            std::thread::sleep(Duration::from_millis(20));
            w2.close();
        });
        assert_eq!(w.wait_timeout(Duration::from_secs(5)), PollTimeout::Closed);
        handle.join().unwrap();
        assert!(w.is_closed());
    }

    #[test]
    fn pending_wakeup_consumed_before_closed_reported() {
        let w = Waker::new();
        w.wake();
        w.close();
        assert_eq!(w.try_wait(), PollTimeout::Ready);
        assert_eq!(w.try_wait(), PollTimeout::Closed);
    }
}
