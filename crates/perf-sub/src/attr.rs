//! `perf_event_attr` — the attribute block passed to `perf_event_open`.
//!
//! Section IV-A of the paper: NMO sets the `type` field to `0x2c` (the ARM
//! SPE PMU type on the test system), encodes the sampled operation types into
//! the `config` field (e.g. `0x600000001` selects loads + stores with
//! timestamps enabled), sets `sample_period` from `NMO_PERIOD`, and uses
//! `aux_watermark` to control how often `PERF_RECORD_AUX` metadata is
//! published into the ring buffer.

use crate::{PerfError, Result};

/// Generic hardware PMU type (`PERF_TYPE_HARDWARE`), used for counting events
/// such as `mem_access` in the `perf stat` baseline.
pub const PERF_TYPE_HARDWARE: u32 = 0;

/// The dynamic PMU type of the ARM SPE device on the paper's testbed.
pub const PERF_TYPE_ARM_SPE: u32 = 0x2c;

/// `config` bit enabling SPE timestamps (bit 0, as in the paper's example
/// value `0x600000001`).
pub const SPE_CONFIG_TS_ENABLE: u64 = 1 << 0;
/// `config` bit selecting load sampling (the `2` nibble of `0x6_0000_0001`).
pub const SPE_CONFIG_LOAD_FILTER: u64 = 1 << 33;
/// `config` bit selecting store sampling (the `4` nibble of `0x6_0000_0001`).
pub const SPE_CONFIG_STORE_FILTER: u64 = 1 << 34;
/// `config` bit selecting branch sampling (excluded by NMO because of known
/// sampling-bias errata on Neoverse N1).
pub const SPE_CONFIG_BRANCH_FILTER: u64 = 1 << 35;
/// `config` field selecting loads + stores + timestamps — the value quoted in
/// the paper (`0x600000001`).
pub const SPE_CONFIG_LOADS_AND_STORES: u64 =
    SPE_CONFIG_TS_ENABLE | SPE_CONFIG_LOAD_FILTER | SPE_CONFIG_STORE_FILTER;

/// Counting-event configs for `PERF_TYPE_HARDWARE` (ARM PMU event numbers).
pub mod hw_config {
    /// ARM `mem_access` event (loads + stores), used for the accuracy baseline.
    pub const MEM_ACCESS: u64 = 0x13;
    /// CPU cycles.
    pub const CPU_CYCLES: u64 = 0x11;
    /// Retired instructions.
    pub const INSTRUCTIONS: u64 = 0x08;
    /// Retired load instructions (`LD_RETIRED`).
    pub const LD_RETIRED: u64 = 0x06;
    /// Retired store instructions (`ST_RETIRED`).
    pub const ST_RETIRED: u64 = 0x07;
    /// Retired branches (`BR_RETIRED`).
    pub const BR_RETIRED: u64 = 0x21;
}

/// The subset of `perf_event_attr` NMO uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PerfEventAttr {
    /// PMU type (`0x2c` for ARM SPE, `0` for generic hardware counters).
    pub type_: u32,
    /// PMU-specific configuration bits.
    pub config: u64,
    /// Sampling period in operations (SPE interval-counter reload value).
    pub sample_period: u64,
    /// Aux-buffer watermark in bytes: when at least this much new aux data has
    /// accumulated, the kernel publishes a `PERF_RECORD_AUX` record and wakes
    /// pollers. 0 means "half the aux buffer" (kernel default).
    pub aux_watermark: u64,
    /// Exclude kernel-mode samples.
    pub exclude_kernel: bool,
    /// Start disabled (enabled later via ioctl in real perf; via
    /// [`crate::PerfEvent::enable`] here).
    pub disabled: bool,
    /// Minimum total latency filter for SPE samples (0 = no filter).
    pub min_latency: u64,
}

impl Default for PerfEventAttr {
    fn default() -> Self {
        PerfEventAttr {
            type_: PERF_TYPE_HARDWARE,
            config: 0,
            sample_period: 0,
            aux_watermark: 0,
            exclude_kernel: true,
            disabled: false,
            min_latency: 0,
        }
    }
}

impl PerfEventAttr {
    /// Attribute block for ARM SPE sampling of loads and stores at the given
    /// period, as NMO builds it (Section IV-A).
    pub fn arm_spe_loads_stores(sample_period: u64) -> Self {
        PerfEventAttr {
            type_: PERF_TYPE_ARM_SPE,
            config: SPE_CONFIG_LOADS_AND_STORES,
            sample_period,
            ..Default::default()
        }
    }

    /// Attribute block for a `perf stat`-style counting event.
    pub fn counting(config: u64) -> Self {
        PerfEventAttr { type_: PERF_TYPE_HARDWARE, config, ..Default::default() }
    }

    /// Whether this attribute selects the ARM SPE PMU.
    pub fn is_spe(&self) -> bool {
        self.type_ == PERF_TYPE_ARM_SPE
    }

    /// Whether load sampling is selected.
    pub fn samples_loads(&self) -> bool {
        self.config & SPE_CONFIG_LOAD_FILTER != 0
    }

    /// Whether store sampling is selected.
    pub fn samples_stores(&self) -> bool {
        self.config & SPE_CONFIG_STORE_FILTER != 0
    }

    /// Whether branch sampling is selected.
    pub fn samples_branches(&self) -> bool {
        self.config & SPE_CONFIG_BRANCH_FILTER != 0
    }

    /// Whether SPE timestamp packets are enabled.
    pub fn timestamps_enabled(&self) -> bool {
        self.config & SPE_CONFIG_TS_ENABLE != 0
    }

    /// Validate the attribute combination (mirrors the kernel's EINVAL checks
    /// that matter for NMO).
    pub fn validate(&self) -> Result<()> {
        if self.is_spe() {
            if self.sample_period == 0 {
                return Err(PerfError::InvalidAttr(
                    "SPE events require a non-zero sample_period".into(),
                ));
            }
            if !self.samples_loads() && !self.samples_stores() && !self.samples_branches() {
                return Err(PerfError::InvalidAttr(
                    "SPE events must sample at least one operation type".into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_value_selects_loads_and_stores() {
        // The paper quotes 0x600000001 for "all loads and stores".
        assert_eq!(SPE_CONFIG_LOADS_AND_STORES, 0x6_0000_0001);
        let attr = PerfEventAttr::arm_spe_loads_stores(4096);
        assert!(attr.is_spe());
        assert!(attr.samples_loads());
        assert!(attr.samples_stores());
        assert!(!attr.samples_branches());
        assert!(attr.timestamps_enabled());
        assert_eq!(attr.type_, 0x2c);
        attr.validate().unwrap();
    }

    #[test]
    fn spe_without_period_is_invalid() {
        let attr = PerfEventAttr::arm_spe_loads_stores(0);
        assert!(matches!(attr.validate(), Err(PerfError::InvalidAttr(_))));
    }

    #[test]
    fn spe_without_op_types_is_invalid() {
        let attr = PerfEventAttr {
            type_: PERF_TYPE_ARM_SPE,
            config: SPE_CONFIG_TS_ENABLE,
            sample_period: 1000,
            ..Default::default()
        };
        assert!(attr.validate().is_err());
    }

    #[test]
    fn counting_attr_is_valid() {
        let attr = PerfEventAttr::counting(hw_config::MEM_ACCESS);
        assert!(!attr.is_spe());
        attr.validate().unwrap();
    }
}
