//! Counting events (`perf stat` style).
//!
//! The paper's accuracy baseline runs the application under `perf stat -e
//! mem_access` to obtain the true number of loads and stores (Section VII,
//! Eq. 1). [`CountingEvent`] models such an event: the "kernel" side (the
//! simulated machine / driver) adds to it while it is enabled, the profiler
//! reads it afterwards.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use crate::attr::PerfEventAttr;

/// A free-running counting event.
#[derive(Debug)]
pub struct CountingEvent {
    attr: PerfEventAttr,
    value: AtomicU64,
    enabled: AtomicBool,
}

impl CountingEvent {
    /// Create a counting event from its attribute block.
    pub fn new(attr: PerfEventAttr) -> Self {
        CountingEvent { attr, value: AtomicU64::new(0), enabled: AtomicBool::new(!attr.disabled) }
    }

    /// The attribute block this event was opened with.
    pub fn attr(&self) -> &PerfEventAttr {
        &self.attr
    }

    /// Enable counting.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Release);
    }

    /// Disable counting.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Release);
    }

    /// Whether the event is currently counting.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Acquire)
    }

    /// Producer side: add `n` occurrences (ignored while disabled).
    pub fn add(&self, n: u64) {
        if self.is_enabled() {
            // relaxed-ok: pure occurrence counter — the count itself is the
            // payload; `enabled` carries the Acquire/Release pairing.
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Read the current count.
    pub fn read(&self) -> u64 {
        // relaxed-ok: reporting read; a `perf stat`-style count tolerates
        // the race with in-flight adds by design.
        self.value.load(Ordering::Relaxed)
    }

    /// Reset the count to zero (between trials).
    pub fn reset(&self) {
        // relaxed-ok: trial boundaries are externally synchronised.
        self.value.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{hw_config, PerfEventAttr};

    #[test]
    fn counts_only_while_enabled() {
        let ev = CountingEvent::new(PerfEventAttr::counting(hw_config::MEM_ACCESS));
        assert!(ev.is_enabled());
        ev.add(10);
        ev.disable();
        ev.add(5);
        ev.enable();
        ev.add(1);
        assert_eq!(ev.read(), 11);
        ev.reset();
        assert_eq!(ev.read(), 0);
    }

    #[test]
    fn starts_disabled_when_attr_says_so() {
        let attr =
            PerfEventAttr { disabled: true, ..PerfEventAttr::counting(hw_config::CPU_CYCLES) };
        let ev = CountingEvent::new(attr);
        assert!(!ev.is_enabled());
        ev.add(100);
        assert_eq!(ev.read(), 0);
    }
}
