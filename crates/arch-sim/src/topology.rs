//! The multi-node memory system: per-node latency and bandwidth contention.
//!
//! Each [`MemNode`] models one memory node — the socket-local DDR, or a
//! CXL-style remote expander — as a shared resource with an idle latency and
//! a peak throughput of `peak_bytes_per_cycle`. Each line fill or write-back
//! reserves `bytes / peak` cycles of node time; when requests arrive faster
//! than the node drains, a *busy frontier* runs ahead of the requesting
//! core's clock and the difference appears as queueing delay added to the
//! idle latency. This reproduces the behaviours the paper's experiments
//! depend on:
//!
//! * bandwidth-bound workloads (STREAM at high thread counts) see inflated
//!   memory latencies, which lengthens the tracked lifetime of SPE samples
//!   and therefore increases sample collisions,
//! * the achievable GiB/s saturates near the configured peak, and
//! * on a tiered topology, accesses homed on the remote node form a second,
//!   slower mode in the latency distribution — the DDR-vs-CXL comparison of
//!   the paper's evaluation.
//!
//! Each node's frontier is kept in micro-cycles (1/1024 cycle) in an atomic
//! so that all cores share it without locking; nodes contend independently
//! (a saturated CXL node does not slow down DDR traffic).

use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::{MemNodeConfig, MemTopologyConfig};
use crate::op::NodeId;

const FRAC: u64 = 1024;

/// One shared memory node (DDR channel group or CXL expander).
#[derive(Debug)]
pub struct MemNode {
    id: NodeId,
    cfg: MemNodeConfig,
    /// Node busy frontier in micro-cycles (1/1024 of a core cycle).
    busy_until: AtomicU64,
    /// Total bytes read from the node.
    read_bytes: AtomicU64,
    /// Total bytes written back to the node.
    write_bytes: AtomicU64,
    /// Total number of accesses served by the node.
    accesses: AtomicU64,
    /// Cycles per byte on the node's link, in micro-cycles.
    microcycles_per_byte: u64,
}

/// Outcome of one memory-node access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeAccess {
    /// Total latency of the access in cycles (idle latency + queueing delay).
    pub latency_cycles: u64,
    /// Queueing delay component in cycles.
    pub queue_cycles: u64,
}

impl MemNode {
    /// Create a memory node from its configuration.
    pub fn new(id: NodeId, cfg: MemNodeConfig) -> Self {
        let microcycles_per_byte = (FRAC as f64 / cfg.peak_bytes_per_cycle).round() as u64;
        MemNode {
            id,
            cfg,
            busy_until: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            write_bytes: AtomicU64::new(0),
            accesses: AtomicU64::new(0),
            microcycles_per_byte: microcycles_per_byte.max(1),
        }
    }

    /// The node's id in the topology.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Whether the node is on the remote (CXL-style) tier.
    pub fn is_remote(&self) -> bool {
        self.cfg.remote
    }

    /// Access the node at simulated time `now_cycles`, transferring `bytes`
    /// (a line fill and possibly a write-back). `write_back_bytes` counts
    /// separately toward write traffic.
    pub fn access(&self, now_cycles: u64, read_bytes: u32, write_back_bytes: u32) -> NodeAccess {
        let total_bytes = read_bytes as u64 + write_back_bytes as u64;
        // relaxed-ok: traffic counters — monotone sums read only by the
        // reporting getters below; no other data is published through them.
        self.read_bytes.fetch_add(read_bytes as u64, Ordering::Relaxed);
        // relaxed-ok: traffic counter, as above.
        self.write_bytes.fetch_add(write_back_bytes as u64, Ordering::Relaxed);
        // relaxed-ok: traffic counter, as above.
        self.accesses.fetch_add(1, Ordering::Relaxed);

        let now_micro = now_cycles.saturating_mul(FRAC);
        let reserve = total_bytes * self.microcycles_per_byte;

        // Advance the busy frontier: new_frontier = max(frontier, now) + reserve.
        // relaxed-ok: the frontier is a self-contained monotone max in
        // simulated time — the CAS loop only needs atomicity of the value
        // itself; no memory is published through it.
        let mut prev = self.busy_until.load(Ordering::Relaxed);
        loop {
            let start = prev.max(now_micro);
            let next = start + reserve;
            // relaxed-ok: as above — value-only CAS, no release payload.
            match self.busy_until.compare_exchange_weak(
                prev,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let queue_micro = start - now_micro;
                    let queue_cycles = (queue_micro / FRAC).min(self.cfg.max_queue_cycles);
                    return NodeAccess {
                        latency_cycles: self.cfg.latency_cycles + queue_cycles,
                        queue_cycles,
                    };
                }
                Err(actual) => prev = actual,
            }
        }
    }

    /// Total bytes read from the node so far.
    pub fn read_bytes(&self) -> u64 {
        // relaxed-ok: reporting read of a stats counter; a slightly stale
        // value is fine mid-run and exact at join points.
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes written back to the node so far.
    pub fn write_bytes(&self) -> u64 {
        // relaxed-ok: reporting read of a stats counter, as above.
        self.write_bytes.load(Ordering::Relaxed)
    }

    /// Total number of accesses served so far.
    pub fn accesses(&self) -> u64 {
        // relaxed-ok: reporting read of a stats counter, as above.
        self.accesses.load(Ordering::Relaxed)
    }

    /// The configured idle latency, in cycles.
    pub fn idle_latency(&self) -> u64 {
        self.cfg.latency_cycles
    }

    /// The configured per-access core occupancy, in cycles.
    pub fn occupancy(&self) -> u64 {
        self.cfg.occupancy_cycles
    }

    /// The node's capacity, bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// Reset traffic counters and the busy frontier (between trials).
    pub fn reset(&self) {
        // relaxed-ok: trial boundaries are externally synchronised (the
        // caller joins all simulated cores before resetting).
        self.busy_until.store(0, Ordering::Relaxed);
        // relaxed-ok: as above — quiescent at trial boundaries.
        self.read_bytes.store(0, Ordering::Relaxed);
        // relaxed-ok: as above.
        self.write_bytes.store(0, Ordering::Relaxed);
        // relaxed-ok: as above.
        self.accesses.store(0, Ordering::Relaxed);
    }
}

/// The machine's memory nodes, indexed by [`NodeId`].
#[derive(Debug)]
pub struct MemTopology {
    nodes: Vec<MemNode>,
}

impl MemTopology {
    /// Build the topology from its (validated) configuration.
    pub fn from_config(cfg: &MemTopologyConfig) -> Self {
        MemTopology {
            nodes: cfg
                .nodes
                .iter()
                .enumerate()
                .map(|(id, node)| MemNode::new(id as NodeId, *node))
                .collect(),
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the topology has no nodes (never the case on a validated
    /// machine).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node with the given id.
    ///
    /// # Panics
    /// Panics when `id` is out of range; placement never produces one.
    pub fn node(&self, id: NodeId) -> &MemNode {
        &self.nodes[id as usize]
    }

    /// The node with the given id, if it exists.
    pub fn get(&self, id: NodeId) -> Option<&MemNode> {
        self.nodes.get(id as usize)
    }

    /// All nodes, ascending by id.
    pub fn nodes(&self) -> &[MemNode] {
        &self.nodes
    }

    /// Total bytes read across all nodes.
    pub fn read_bytes(&self) -> u64 {
        self.nodes.iter().map(MemNode::read_bytes).sum()
    }

    /// Total bytes written back across all nodes.
    pub fn write_bytes(&self) -> u64 {
        self.nodes.iter().map(MemNode::write_bytes).sum()
    }

    /// Total accesses across all nodes.
    pub fn accesses(&self) -> u64 {
        self.nodes.iter().map(MemNode::accesses).sum()
    }

    /// Total capacity across all nodes, bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.nodes.iter().map(MemNode::capacity_bytes).sum()
    }

    /// Move `bytes` of page data from node `from` to node `to` at simulated
    /// time `now_cycles`: the source link serves a read, the destination a
    /// write, and both busy frontiers advance, so a migration storm shows up
    /// as queueing delay on subsequent demand traffic exactly like any other
    /// bandwidth consumer. Returns the combined transfer latency in cycles
    /// (the slower of the two links, including queueing).
    ///
    /// # Panics
    /// Panics when either node id is out of range (validated by
    /// [`crate::Machine::migrate_page`] before the page is re-homed).
    pub fn transfer_page(&self, from: NodeId, to: NodeId, now_cycles: u64, bytes: u32) -> u64 {
        let read = self.node(from).access(now_cycles, bytes, 0);
        let write = self.node(to).access(now_cycles, 0, bytes);
        read.latency_cycles.max(write.latency_cycles)
    }

    /// Reset every node's counters and busy frontier (between trials).
    pub fn reset(&self) {
        for node in &self.nodes {
            node.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementPolicy;

    fn cfg() -> MemNodeConfig {
        MemNodeConfig {
            latency_cycles: 100,
            peak_bytes_per_cycle: 64.0, // one line per cycle
            occupancy_cycles: 4,
            max_queue_cycles: 1000,
            capacity_bytes: 1 << 30,
            remote: false,
        }
    }

    #[test]
    fn idle_access_sees_base_latency() {
        let d = MemNode::new(0, cfg());
        let a = d.access(1_000_000, 64, 0);
        assert_eq!(a.queue_cycles, 0);
        assert_eq!(a.latency_cycles, 100);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let d = MemNode::new(0, cfg());
        // 100 accesses at the same instant: the node serialises them at one
        // line per cycle, so the last one queues for ~99 cycles.
        let mut max_queue = 0;
        for _ in 0..100 {
            let a = d.access(0, 64, 0);
            max_queue = max_queue.max(a.queue_cycles);
        }
        assert!(max_queue >= 90, "expected significant queueing, got {max_queue}");
        assert!(max_queue <= 100);
    }

    #[test]
    fn queue_delay_is_capped() {
        let d = MemNode::new(0, cfg());
        for _ in 0..10_000 {
            let a = d.access(0, 64, 0);
            assert!(a.queue_cycles <= 1000);
        }
    }

    #[test]
    fn traffic_counters_accumulate() {
        let d = MemNode::new(0, cfg());
        d.access(0, 64, 0);
        d.access(0, 64, 64);
        assert_eq!(d.read_bytes(), 128);
        assert_eq!(d.write_bytes(), 64);
        assert_eq!(d.accesses(), 2);
        d.reset();
        assert_eq!(d.read_bytes(), 0);
        assert_eq!(d.accesses(), 0);
    }

    #[test]
    fn idle_gaps_drain_the_queue() {
        let d = MemNode::new(0, cfg());
        for _ in 0..100 {
            d.access(0, 64, 0);
        }
        // Far in the future the node is idle again.
        let a = d.access(1_000_000, 64, 0);
        assert_eq!(a.queue_cycles, 0);
    }

    #[test]
    fn topology_nodes_contend_independently() {
        let local = cfg();
        let remote = MemNodeConfig {
            latency_cycles: 400,
            peak_bytes_per_cycle: 16.0,
            remote: true,
            ..local
        };
        let topo = MemTopology::from_config(&MemTopologyConfig::tiered(
            local,
            remote,
            PlacementPolicy::Interleave,
        ));
        assert_eq!(topo.len(), 2);
        assert!(!topo.node(0).is_remote());
        assert!(topo.node(1).is_remote());
        assert!(topo.node(1).idle_latency() > topo.node(0).idle_latency());

        // Saturate the remote node; the local node stays idle.
        for _ in 0..1000 {
            topo.node(1).access(0, 64, 0);
        }
        let local_acc = topo.node(0).access(0, 64, 0);
        assert_eq!(local_acc.queue_cycles, 0, "local node unaffected by remote pressure");
        let remote_acc = topo.node(1).access(0, 64, 0);
        assert!(remote_acc.queue_cycles > 0, "remote node is congested");

        assert_eq!(topo.accesses(), 1002);
        assert_eq!(topo.read_bytes(), 1002 * 64);
        assert_eq!(topo.total_capacity_bytes(), 2 << 30);
        topo.reset();
        assert_eq!(topo.accesses(), 0);
    }

    #[test]
    fn transfer_page_charges_both_links() {
        let local = cfg();
        let remote = MemNodeConfig {
            latency_cycles: 400,
            peak_bytes_per_cycle: 16.0,
            remote: true,
            ..local
        };
        let topo = MemTopology::from_config(&MemTopologyConfig::tiered(
            local,
            remote,
            PlacementPolicy::Interleave,
        ));
        let latency = topo.transfer_page(1, 0, 0, 4096);
        assert!(latency >= 400, "bounded below by the slower (remote) link: {latency}");
        assert_eq!(topo.node(1).read_bytes(), 4096);
        assert_eq!(topo.node(0).write_bytes(), 4096);
        assert_eq!(topo.read_bytes(), 4096);
        assert_eq!(topo.write_bytes(), 4096);
        // A migration storm congests the links it uses.
        for _ in 0..200 {
            topo.transfer_page(1, 0, 0, 4096);
        }
        let after = topo.node(1).access(0, 64, 0);
        assert!(after.queue_cycles > 0, "demand traffic queues behind the storm");
    }

    #[test]
    fn out_of_range_node_lookup() {
        let topo = MemTopology::from_config(&MemTopologyConfig::single(cfg()));
        assert!(topo.get(0).is_some());
        assert!(topo.get(7).is_none());
    }
}
