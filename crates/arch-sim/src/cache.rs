//! Set-associative cache model with LRU replacement.
//!
//! The model tracks only tags (no data): the workloads perform their real
//! computation on host memory, and the cache model exists to classify each
//! access into the level that would have served it and to account bus traffic.
//! Write-allocate, write-back behaviour is approximated: stores allocate
//! lines like loads, and dirty evictions generate write-back bus traffic at
//! the level that evicts to DRAM.

use crate::config::CacheLevelConfig;

/// Result of a cache lookup-and-fill operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheAccess {
    /// Whether the line was present before the access.
    pub hit: bool,
    /// Whether a dirty line was evicted to make room (write-back traffic).
    pub dirty_eviction: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic LRU stamp; larger is more recent.
    lru: u64,
}

/// A single set-associative cache (one level, one shard).
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    sets: u64,
    ways: u32,
    line_shift: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Build a cache with the given geometry.
    pub fn new(cfg: &CacheLevelConfig) -> Self {
        let sets = cfg.sets();
        Cache {
            lines: vec![Line::default(); (sets * cfg.ways as u64) as usize],
            sets,
            ways: cfg.ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Build a shard of a larger cache: same geometry divided across
    /// `shards` independent units, where this unit handles the sets whose
    /// index modulo `shards` equals `shard_index`.
    pub fn new_shard(cfg: &CacheLevelConfig, shards: usize) -> Self {
        let sets = cfg.sets() / shards as u64;
        Cache {
            lines: vec![Line::default(); (sets * cfg.ways as u64) as usize],
            sets,
            ways: cfg.ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    fn set_index(&self, addr: u64) -> u64 {
        (addr >> self.line_shift) & (self.sets - 1)
    }

    fn tag(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Look up `addr`, filling the line on a miss. `write` marks the line dirty.
    pub fn access(&mut self, addr: u64, write: bool) -> CacheAccess {
        self.stamp += 1;
        let set = self.set_index(addr) as usize;
        let tag = self.tag(addr);
        let base = set * self.ways as usize;
        let ways = &mut self.lines[base..base + self.ways as usize];

        // Hit path.
        for line in ways.iter_mut() {
            if line.valid && line.tag == tag {
                line.lru = self.stamp;
                line.dirty |= write;
                self.hits += 1;
                return CacheAccess { hit: true, dirty_eviction: false };
            }
        }

        // Miss: choose victim (invalid first, else LRU).
        self.misses += 1;
        let mut victim = 0usize;
        let mut best = u64::MAX;
        for (i, line) in ways.iter().enumerate() {
            if !line.valid {
                victim = i;
                break;
            }
            if line.lru < best {
                best = line.lru;
                victim = i;
            }
        }
        let dirty_eviction = ways[victim].valid && ways[victim].dirty;
        ways[victim] = Line { tag, valid: true, dirty: write, lru: self.stamp };
        CacheAccess { hit: false, dirty_eviction }
    }

    /// Probe without modifying state: is the line present?
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr) as usize;
        let tag = self.tag(addr);
        let base = set * self.ways as usize;
        self.lines[base..base + self.ways as usize].iter().any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate the whole cache (used between experiment trials).
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Number of sets in this cache (or shard).
    pub fn sets(&self) -> u64 {
        self.sets
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheLevelConfig;

    fn tiny() -> CacheLevelConfig {
        // 4 sets x 2 ways x 64 B lines = 512 B.
        CacheLevelConfig {
            size_bytes: 512,
            line_bytes: 64,
            ways: 2,
            latency_cycles: 1,
            occupancy_cycles: 1,
        }
    }

    #[test]
    fn miss_then_hit() {
        let mut c = Cache::new(&tiny());
        assert!(!c.access(0x1000, false).hit);
        assert!(c.access(0x1000, false).hit);
        assert!(c.access(0x1038, false).hit, "same 64B line");
        assert!(!c.access(0x1040, false).hit, "next line misses");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_replacement_within_set() {
        let mut c = Cache::new(&tiny());
        // Three addresses mapping to the same set (set stride = 4 sets * 64 B = 256 B).
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, false);
        c.access(b, false);
        // Touch `a` so `b` becomes LRU.
        c.access(a, false);
        c.access(d, false); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = Cache::new(&tiny());
        let a = 0x0000;
        let b = 0x0100;
        let d = 0x0200;
        c.access(a, true); // dirty
        c.access(b, false);
        c.access(d, false); // evicts a (LRU), which is dirty
        let e = 0x0300;
        // After a/b/d, the set holds b? Let's check via one more access: evicting
        // the oldest of (b, d)... verify at least that some access reported a
        // dirty eviction when `a` was displaced.
        // Re-run deterministically:
        let mut c = Cache::new(&tiny());
        c.access(a, true);
        c.access(b, false);
        let r = c.access(d, false);
        assert!(r.dirty_eviction, "dirty LRU line must report write-back");
        let r2 = c.access(e, false);
        assert!(!r2.dirty_eviction, "clean LRU line must not report write-back");
    }

    #[test]
    fn flush_clears_everything() {
        let mut c = Cache::new(&tiny());
        c.access(0x1000, true);
        assert!(c.probe(0x1000));
        c.flush();
        assert!(!c.probe(0x1000));
    }

    #[test]
    fn shard_has_fraction_of_sets() {
        let cfg = CacheLevelConfig {
            size_bytes: 16 * 1024 * 1024,
            line_bytes: 64,
            ways: 16,
            latency_cycles: 1,
            occupancy_cycles: 1,
        };
        let full = Cache::new(&cfg);
        let shard = Cache::new_shard(&cfg, 16);
        assert_eq!(full.sets(), shard.sets() * 16);
    }

    #[test]
    fn working_set_larger_than_cache_misses() {
        let mut c = Cache::new(&tiny());
        // Stream through 64 KiB twice; second pass still misses because the
        // working set exceeds the 512 B capacity.
        let mut second_pass_hits = 0;
        for pass in 0..2 {
            for addr in (0..65536u64).step_by(64) {
                let r = c.access(addr, false);
                if pass == 1 && r.hit {
                    second_pass_hits += 1;
                }
            }
        }
        assert_eq!(second_pass_hits, 0);
    }
}
