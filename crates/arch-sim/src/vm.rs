//! Virtual address space, named allocations, resident-set-size tracking, and
//! first-touch page placement onto the memory topology.
//!
//! Workloads allocate named regions ("a", "b", "c", "normals", ...) from a
//! simulated 64 KiB-page address space. NMO's capacity profiler (Figure 2 of
//! the paper) needs the resident set size over time; residency is accounted
//! on *first touch* of each page, which in the simulator is detected on the
//! cold-miss path of the cache hierarchy (a never-touched page can never be
//! cached).
//!
//! On a multi-node memory topology the first touch also *homes* the page:
//! the configured [`PlacementPolicy`] assigns each newly resident page a
//! memory node (local DDR, or a CXL-style remote node), and every later
//! DRAM-class access to the page is served by that node — exactly the
//! first-touch NUMA behaviour the paper's tiered experiments rely on.

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::config::{PlacementPolicy, MAX_MEM_NODES};
use crate::op::NodeId;
use crate::{Result, SimError};

/// Base virtual address of the simulated heap. Chosen to look like a typical
/// Linux arm64 mmap region so plotted addresses resemble the paper's figures.
pub const HEAP_BASE: u64 = 0xffff_0000_0000;

/// Sentinel for a page that has not been homed yet.
const NODE_UNASSIGNED: u8 = u8::MAX;

/// A named, contiguous allocation in the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Name supplied at allocation time (matches NMO address tags).
    pub name: String,
    /// First virtual address of the region.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `addr` lies inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

/// The home of one touched page, as resolved by [`AddressSpace::place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageHome {
    /// The memory node the page lives on.
    pub node: NodeId,
    /// Whether this access was the first touch of the page (the page just
    /// became resident and was homed by the placement policy).
    pub first_touch: bool,
}

/// One applied page migration, as returned by [`AddressSpace::migrate_page`].
///
/// The address space only knows node *ids*; whether a move is a promotion
/// or demotion depends on the nodes' tier (remote) flags, which live on the
/// topology — [`crate::Machine::migrate_page`] classifies the direction in
/// its [`crate::MigrationStats`] accounting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageMigration {
    /// Base virtual address of the migrated page.
    pub page_addr: u64,
    /// The node the page was homed on before the migration.
    pub from: NodeId,
    /// The node the page is homed on now.
    pub to: NodeId,
    /// Size of the moved page in bytes.
    pub bytes: u64,
}

#[derive(Debug)]
struct RegionState {
    region: Region,
    /// One bit per page: has the page been touched?
    touched: Vec<u64>,
    /// The home node of each page (NODE_UNASSIGNED until first touch).
    nodes: Vec<u8>,
    touched_pages: u64,
    /// Touched pages per memory node (released on free).
    touched_by_node: [u64; MAX_MEM_NODES],
    freed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    /// Regions keyed by start address for range lookup.
    regions: BTreeMap<u64, RegionState>,
    next_free: u64,
    resident_pages: u64,
    peak_resident_pages: u64,
    /// Resident pages per memory node.
    resident_by_node: [u64; MAX_MEM_NODES],
    /// Pages assigned a home so far (placement-policy state).
    pages_assigned: u64,
    /// Pages assigned to node 0 so far (TierSplit state).
    local_assigned: u64,
    /// Pages assigned to remote nodes so far (TierSplit round-robin state).
    remote_assigned: u64,
}

/// The simulated process address space.
#[derive(Debug)]
pub struct AddressSpace {
    page_bytes: u64,
    page_shift: u32,
    capacity_bytes: u64,
    num_nodes: usize,
    placement: PlacementPolicy,
    inner: RwLock<Inner>,
}

impl AddressSpace {
    /// Create a single-node address space with the given page size and
    /// physical capacity (every page homed on node 0).
    pub fn new(page_bytes: u64, capacity_bytes: u64) -> Self {
        Self::with_placement(page_bytes, capacity_bytes, 1, PlacementPolicy::LocalOnly)
    }

    /// Create an address space placing pages over `num_nodes` memory nodes
    /// per `placement`.
    pub fn with_placement(
        page_bytes: u64,
        capacity_bytes: u64,
        num_nodes: usize,
        placement: PlacementPolicy,
    ) -> Self {
        AddressSpace {
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            capacity_bytes,
            num_nodes: num_nodes.clamp(1, MAX_MEM_NODES),
            placement,
            inner: RwLock::named(Inner { next_free: HEAP_BASE, ..Default::default() }, "vm.inner"),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Number of memory nodes pages are placed on.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The placement policy in force.
    pub fn placement(&self) -> PlacementPolicy {
        self.placement
    }

    /// Allocate `len` bytes under `name`. Returns the region descriptor.
    pub fn alloc(&self, name: &str, len: u64) -> Result<Region> {
        let mut inner = self.inner.write();
        if inner.regions.values().any(|r| r.region.name == name && !r.freed) {
            return Err(SimError::DuplicateRegion(name.to_string()));
        }
        let len_rounded = len.div_ceil(self.page_bytes) * self.page_bytes;
        let start = inner.next_free;
        let end = start.checked_add(len_rounded).ok_or(SimError::OutOfAddressSpace)?;
        // Leave a guard page between allocations so regions are visually
        // separated in address-scatter plots, like distinct mmap segments.
        inner.next_free = end + self.page_bytes;
        let region = Region { name: name.to_string(), start, len };
        let pages = (len_rounded >> self.page_shift) as usize;
        inner.regions.insert(
            start,
            RegionState {
                region: region.clone(),
                touched: vec![0u64; pages.div_ceil(64)],
                nodes: vec![NODE_UNASSIGNED; pages],
                touched_pages: 0,
                touched_by_node: [0; MAX_MEM_NODES],
                freed: false,
            },
        );
        Ok(region)
    }

    /// Free a region by name. Its resident pages are returned to the system.
    pub fn free(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        let mut found = false;
        let mut released = 0;
        let mut released_by_node = [0u64; MAX_MEM_NODES];
        for st in inner.regions.values_mut() {
            if st.region.name == name && !st.freed {
                st.freed = true;
                released += st.touched_pages;
                for (node, count) in st.touched_by_node.iter_mut().enumerate() {
                    released_by_node[node] += *count;
                    *count = 0;
                }
                st.touched_pages = 0;
                st.touched.iter_mut().for_each(|w| *w = 0);
                st.nodes.iter_mut().for_each(|n| *n = NODE_UNASSIGNED);
                found = true;
            }
        }
        inner.resident_pages = inner.resident_pages.saturating_sub(released);
        for (node, count) in released_by_node.iter().enumerate() {
            inner.resident_by_node[node] = inner.resident_by_node[node].saturating_sub(*count);
        }
        found
    }

    /// Pick the home node for a page just being touched, advancing the
    /// placement-policy counters.
    fn assign_node(
        &self,
        pages_assigned: &mut u64,
        local_assigned: &mut u64,
        remote_assigned: &mut u64,
    ) -> NodeId {
        let nodes = self.num_nodes as u64;
        let node = if nodes <= 1 {
            0
        } else {
            match self.placement {
                PlacementPolicy::LocalOnly => 0,
                PlacementPolicy::Interleave => (*pages_assigned % nodes) as NodeId,
                PlacementPolicy::TierSplit { local_fraction } => {
                    let frac = local_fraction.clamp(0.0, 1.0);
                    let target_local = frac * (*pages_assigned + 1) as f64;
                    if (*local_assigned as f64) < target_local {
                        *local_assigned += 1;
                        0
                    } else {
                        let remote = 1 + (*remote_assigned % (nodes - 1)) as NodeId;
                        *remote_assigned += 1;
                        remote
                    }
                }
            }
        };
        *pages_assigned += 1;
        node
    }

    /// Resolve the home of `addr`'s page, homing the page per the placement
    /// policy if this is its first touch. Returns `None` for addresses
    /// outside every live region (such accesses are served by node 0 and do
    /// not count toward residency).
    pub fn place(&self, addr: u64) -> Option<PageHome> {
        let mut inner = self.inner.write();
        let Inner {
            regions,
            resident_pages,
            peak_resident_pages,
            resident_by_node,
            pages_assigned,
            local_assigned,
            remote_assigned,
            next_free: _,
        } = &mut *inner;
        // Find the region containing addr: last region starting at or below addr.
        let (_, st) = regions.range_mut(..=addr).next_back()?;
        if st.freed || !st.region.contains(addr) {
            return None;
        }
        let page = ((addr - st.region.start) >> self.page_shift) as usize;
        let (word, bit) = (page / 64, page % 64);
        if st.touched[word] & (1 << bit) != 0 {
            return Some(PageHome { node: st.nodes[page], first_touch: false });
        }
        let node = self.assign_node(pages_assigned, local_assigned, remote_assigned);
        st.touched[word] |= 1 << bit;
        st.touched_pages += 1;
        st.touched_by_node[node as usize] += 1;
        st.nodes[page] = node;
        *resident_pages += 1;
        resident_by_node[node as usize] += 1;
        *peak_resident_pages = (*peak_resident_pages).max(*resident_pages);
        Some(PageHome { node, first_touch: true })
    }

    /// Record a touch of `addr`; returns true if this was the first touch of
    /// its page (i.e. the page just became resident). Equivalent to
    /// [`AddressSpace::place`] ignoring the home node.
    pub fn touch(&self, addr: u64) -> bool {
        self.place(addr).map(|h| h.first_touch).unwrap_or(false)
    }

    /// Re-home the resident page containing `addr` onto `dst`, updating the
    /// per-node residency accounting. Returns `None` (and changes nothing)
    /// when the address lies outside every live region, the page has never
    /// been touched (an unmapped page cannot be migrated), `dst` is not a
    /// node pages are placed on, or the page already lives on `dst`.
    ///
    /// Migration does not disturb the placement-policy counters: pages
    /// first-touched after a migration are still placed as if no migration
    /// had happened, exactly like Linux `move_pages(2)` versus the NUMA
    /// memory policy.
    pub fn migrate_page(&self, addr: u64, dst: NodeId) -> Option<PageMigration> {
        if dst as usize >= self.num_nodes {
            return None;
        }
        let mut inner = self.inner.write();
        let Inner { regions, resident_by_node, .. } = &mut *inner;
        let (_, st) = regions.range_mut(..=addr).next_back()?;
        if st.freed || !st.region.contains(addr) {
            return None;
        }
        let page = ((addr - st.region.start) >> self.page_shift) as usize;
        let (word, bit) = (page / 64, page % 64);
        if st.touched[word] & (1 << bit) == 0 {
            return None;
        }
        let from = st.nodes[page];
        if from == dst {
            return None;
        }
        st.nodes[page] = dst;
        st.touched_by_node[from as usize] -= 1;
        st.touched_by_node[dst as usize] += 1;
        resident_by_node[from as usize] -= 1;
        resident_by_node[dst as usize] += 1;
        let page_addr = st.region.start + ((page as u64) << self.page_shift);
        Some(PageMigration { page_addr, from, to: dst, bytes: self.page_bytes })
    }

    /// The home node of `addr`'s page, if the page is resident.
    pub fn node_of(&self, addr: u64) -> Option<NodeId> {
        let inner = self.inner.read();
        let (_, st) = inner.regions.range(..=addr).next_back()?;
        if st.freed || !st.region.contains(addr) {
            return None;
        }
        let page = ((addr - st.region.start) >> self.page_shift) as usize;
        let node = st.nodes[page];
        (node != NODE_UNASSIGNED).then_some(node)
    }

    /// Current resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.inner.read().resident_pages * self.page_bytes
    }

    /// Current resident set size per memory node, bytes.
    pub fn rss_bytes_by_node(&self) -> [u64; MAX_MEM_NODES] {
        self.rss_snapshot().1
    }

    /// Consistent `(total, per-node)` RSS reading under one lock
    /// acquisition — the per-node split always sums to the total, even
    /// while other cores are first-touching pages concurrently.
    pub fn rss_snapshot(&self) -> (u64, [u64; MAX_MEM_NODES]) {
        let inner = self.inner.read();
        let mut by_node = [0u64; MAX_MEM_NODES];
        for (node, pages) in inner.resident_by_node.iter().enumerate() {
            by_node[node] = pages * self.page_bytes;
        }
        (inner.resident_pages * self.page_bytes, by_node)
    }

    /// Peak resident set size in bytes.
    pub fn peak_rss_bytes(&self) -> u64 {
        self.inner.read().peak_resident_pages * self.page_bytes
    }

    /// Fraction of physical capacity currently resident (0.0–1.0+).
    pub fn utilization(&self) -> f64 {
        self.rss_bytes() as f64 / self.capacity_bytes as f64
    }

    /// Look up the region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<Region> {
        let inner = self.inner.read();
        inner
            .regions
            .range(..=addr)
            .next_back()
            .filter(|(_, st)| !st.freed && st.region.contains(addr))
            .map(|(_, st)| st.region.clone())
    }

    /// Snapshot of all live regions.
    pub fn regions(&self) -> Vec<Region> {
        self.inner
            .read()
            .regions
            .values()
            .filter(|st| !st.freed)
            .map(|st| st.region.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_disjoint_page_aligned_regions() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 10_000).unwrap();
        let b = vm.alloc("b", 10_000).unwrap();
        assert_eq!(a.start % 4096, 0);
        assert_eq!(b.start % 4096, 0);
        assert!(b.start >= a.start + 12288, "page-rounded plus guard page");
        assert!(!a.contains(b.start));
    }

    #[test]
    fn duplicate_names_rejected() {
        let vm = AddressSpace::new(4096, 1 << 30);
        vm.alloc("a", 100).unwrap();
        assert!(matches!(vm.alloc("a", 100), Err(SimError::DuplicateRegion(_))));
        // After freeing, the name can be reused.
        assert!(vm.free("a"));
        vm.alloc("a", 100).unwrap();
    }

    #[test]
    fn first_touch_accounting() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 3 * 4096).unwrap();
        assert_eq!(vm.rss_bytes(), 0);
        assert!(vm.touch(a.start));
        assert!(!vm.touch(a.start + 8), "same page is not a first touch");
        assert!(vm.touch(a.start + 4096));
        assert_eq!(vm.rss_bytes(), 2 * 4096);
        assert!(vm.touch(a.start + 2 * 4096));
        assert_eq!(vm.rss_bytes(), 3 * 4096);
        assert_eq!(vm.peak_rss_bytes(), 3 * 4096);
    }

    #[test]
    fn touch_outside_any_region_is_ignored() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 4096).unwrap();
        assert!(!vm.touch(a.start - 1));
        assert!(!vm.touch(a.end() + 4096 * 10));
        assert!(vm.place(a.start - 1).is_none());
        assert_eq!(vm.rss_bytes(), 0);
    }

    #[test]
    fn free_releases_resident_pages() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        for p in 0..4u64 {
            vm.touch(a.start + p * 4096);
        }
        assert_eq!(vm.rss_bytes(), 4 * 4096);
        vm.free("a");
        assert_eq!(vm.rss_bytes(), 0);
        assert_eq!(vm.peak_rss_bytes(), 4 * 4096, "peak is sticky");
        assert!(vm.region_of(a.start).is_none());
    }

    #[test]
    fn region_lookup() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 4096).unwrap();
        let b = vm.alloc("b", 4096).unwrap();
        assert_eq!(vm.region_of(a.start + 100).unwrap().name, "a");
        assert_eq!(vm.region_of(b.start).unwrap().name, "b");
        assert!(vm.region_of(b.end() + 4096 * 2).is_none());
        assert_eq!(vm.regions().len(), 2);
    }

    #[test]
    fn utilization_fraction() {
        let vm = AddressSpace::new(4096, 8 * 4096);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        for p in 0..4u64 {
            vm.touch(a.start + p * 4096);
        }
        assert!((vm.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn local_only_homes_everything_on_node_0() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::LocalOnly);
        let a = vm.alloc("a", 8 * 4096).unwrap();
        for p in 0..8u64 {
            let home = vm.place(a.start + p * 4096).unwrap();
            assert_eq!(home.node, 0);
            assert!(home.first_touch);
        }
        let by_node = vm.rss_bytes_by_node();
        assert_eq!(by_node[0], 8 * 4096);
        assert_eq!(by_node[1], 0);
    }

    #[test]
    fn interleave_stripes_pages_across_nodes() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::Interleave);
        let a = vm.alloc("a", 8 * 4096).unwrap();
        let homes: Vec<NodeId> =
            (0..8u64).map(|p| vm.place(a.start + p * 4096).unwrap().node).collect();
        assert_eq!(homes, vec![0, 1, 0, 1, 0, 1, 0, 1]);
        let by_node = vm.rss_bytes_by_node();
        assert_eq!(by_node[0], 4 * 4096);
        assert_eq!(by_node[1], 4 * 4096);
    }

    #[test]
    fn place_is_stable_after_first_touch() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::Interleave);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        let first = vm.place(a.start + 4096).unwrap();
        assert!(first.first_touch);
        for _ in 0..3 {
            let again = vm.place(a.start + 4096 + 8).unwrap();
            assert!(!again.first_touch);
            assert_eq!(again.node, first.node, "home is sticky");
        }
        assert_eq!(vm.node_of(a.start + 4096), Some(first.node));
        assert_eq!(vm.node_of(a.start), None, "untouched page has no home yet");
    }

    #[test]
    fn tier_split_respects_the_local_fraction() {
        for (fraction, expect_local) in [(1.0, 100u64), (0.75, 75), (0.5, 50), (0.0, 0)] {
            let vm = AddressSpace::with_placement(
                4096,
                1 << 30,
                2,
                PlacementPolicy::TierSplit { local_fraction: fraction },
            );
            let a = vm.alloc("a", 100 * 4096).unwrap();
            for p in 0..100u64 {
                vm.place(a.start + p * 4096).unwrap();
            }
            let by_node = vm.rss_bytes_by_node();
            assert_eq!(by_node[0] / 4096, expect_local, "fraction {fraction}");
            assert_eq!(by_node[1] / 4096, 100 - expect_local, "fraction {fraction}");
        }
    }

    #[test]
    fn tier_split_spreads_the_remote_share_round_robin() {
        let vm = AddressSpace::with_placement(
            4096,
            1 << 30,
            3,
            PlacementPolicy::TierSplit { local_fraction: 0.0 },
        );
        let a = vm.alloc("a", 6 * 4096).unwrap();
        let homes: Vec<NodeId> =
            (0..6u64).map(|p| vm.place(a.start + p * 4096).unwrap().node).collect();
        assert_eq!(homes, vec![1, 2, 1, 2, 1, 2]);
    }

    #[test]
    fn migrate_page_rehomes_and_keeps_rss_consistent() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::Interleave);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        for p in 0..4u64 {
            vm.place(a.start + p * 4096).unwrap();
        }
        // Page 0 went to node 0 under Interleave; move it to node 1.
        let mig = vm.migrate_page(a.start + 17, 1).expect("resident page migrates");
        assert_eq!(mig.page_addr, a.start, "page base address, not the probed one");
        assert_eq!((mig.from, mig.to, mig.bytes), (0, 1, 4096));
        assert_eq!(vm.node_of(a.start), Some(1), "home is updated");
        let (total, by_node) = vm.rss_snapshot();
        assert_eq!(total, 4 * 4096, "migration moves pages, not residency");
        assert_eq!(by_node[0], 4096);
        assert_eq!(by_node[1], 3 * 4096);
        // Moving it back restores the split.
        let back = vm.migrate_page(a.start, 0).unwrap();
        assert_eq!((back.from, back.to), (1, 0));
        assert_eq!(vm.rss_bytes_by_node()[0], 2 * 4096);
        // Re-touching the page after migration is not a first touch and
        // resolves to the migrated home.
        let home = vm.place(a.start + 8).unwrap();
        assert!(!home.first_touch);
        assert_eq!(home.node, 0);
    }

    #[test]
    fn migrate_page_rejects_invalid_targets() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::LocalOnly);
        let a = vm.alloc("a", 2 * 4096).unwrap();
        vm.place(a.start).unwrap();
        assert!(vm.migrate_page(a.start, 0).is_none(), "already home");
        assert!(vm.migrate_page(a.start, 5).is_none(), "no such node");
        assert!(vm.migrate_page(a.start + 4096, 1).is_none(), "untouched page");
        assert!(vm.migrate_page(a.end() + 4096 * 4, 1).is_none(), "outside every region");
        vm.free("a");
        assert!(vm.migrate_page(a.start, 1).is_none(), "freed region");
        assert_eq!(vm.rss_bytes_by_node(), [0; MAX_MEM_NODES]);
    }

    #[test]
    fn migration_does_not_disturb_placement_counters() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::Interleave);
        let a = vm.alloc("a", 8 * 4096).unwrap();
        vm.place(a.start).unwrap(); // node 0
        vm.place(a.start + 4096).unwrap(); // node 1
        vm.migrate_page(a.start, 1).unwrap();
        // The next first touch continues the round-robin as if no migration
        // had happened.
        assert_eq!(vm.place(a.start + 2 * 4096).unwrap().node, 0);
        assert_eq!(vm.place(a.start + 3 * 4096).unwrap().node, 1);
    }

    #[test]
    fn free_releases_per_node_counts() {
        let vm = AddressSpace::with_placement(4096, 1 << 30, 2, PlacementPolicy::Interleave);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        for p in 0..4u64 {
            vm.place(a.start + p * 4096).unwrap();
        }
        assert_eq!(vm.rss_bytes_by_node()[1], 2 * 4096);
        vm.free("a");
        assert_eq!(vm.rss_bytes_by_node(), [0; MAX_MEM_NODES]);
        assert_eq!(vm.rss_bytes(), 0);
    }
}
