//! Virtual address space, named allocations, and resident-set-size tracking.
//!
//! Workloads allocate named regions ("a", "b", "c", "normals", ...) from a
//! simulated 64 KiB-page address space. NMO's capacity profiler (Figure 2 of
//! the paper) needs the resident set size over time; residency is accounted
//! on *first touch* of each page, which in the simulator is detected on the
//! cold-miss path of the cache hierarchy (a never-touched page can never be
//! cached).

use std::collections::BTreeMap;

use parking_lot::RwLock;

use crate::{Result, SimError};

/// Base virtual address of the simulated heap. Chosen to look like a typical
/// Linux arm64 mmap region so plotted addresses resemble the paper's figures.
pub const HEAP_BASE: u64 = 0xffff_0000_0000;

/// A named, contiguous allocation in the simulated address space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// Name supplied at allocation time (matches NMO address tags).
    pub name: String,
    /// First virtual address of the region.
    pub start: u64,
    /// Length in bytes.
    pub len: u64,
}

impl Region {
    /// One-past-the-end address.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `addr` lies inside the region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.start && addr < self.end()
    }
}

#[derive(Debug)]
struct RegionState {
    region: Region,
    /// One bit per page: has the page been touched?
    touched: Vec<u64>,
    touched_pages: u64,
    freed: bool,
}

#[derive(Debug, Default)]
struct Inner {
    /// Regions keyed by start address for range lookup.
    regions: BTreeMap<u64, RegionState>,
    next_free: u64,
    resident_pages: u64,
    peak_resident_pages: u64,
}

/// The simulated process address space.
#[derive(Debug)]
pub struct AddressSpace {
    page_bytes: u64,
    page_shift: u32,
    capacity_bytes: u64,
    inner: RwLock<Inner>,
}

impl AddressSpace {
    /// Create an address space with the given page size and physical capacity.
    pub fn new(page_bytes: u64, capacity_bytes: u64) -> Self {
        AddressSpace {
            page_bytes,
            page_shift: page_bytes.trailing_zeros(),
            capacity_bytes,
            inner: RwLock::new(Inner { next_free: HEAP_BASE, ..Default::default() }),
        }
    }

    /// Page size in bytes.
    pub fn page_bytes(&self) -> u64 {
        self.page_bytes
    }

    /// Allocate `len` bytes under `name`. Returns the region descriptor.
    pub fn alloc(&self, name: &str, len: u64) -> Result<Region> {
        let mut inner = self.inner.write();
        if inner.regions.values().any(|r| r.region.name == name && !r.freed) {
            return Err(SimError::DuplicateRegion(name.to_string()));
        }
        let len_rounded = len.div_ceil(self.page_bytes) * self.page_bytes;
        let start = inner.next_free;
        let end = start.checked_add(len_rounded).ok_or(SimError::OutOfAddressSpace)?;
        // Leave a guard page between allocations so regions are visually
        // separated in address-scatter plots, like distinct mmap segments.
        inner.next_free = end + self.page_bytes;
        let region = Region { name: name.to_string(), start, len };
        let pages = (len_rounded >> self.page_shift) as usize;
        inner.regions.insert(
            start,
            RegionState {
                region: region.clone(),
                touched: vec![0u64; pages.div_ceil(64)],
                touched_pages: 0,
                freed: false,
            },
        );
        Ok(region)
    }

    /// Free a region by name. Its resident pages are returned to the system.
    pub fn free(&self, name: &str) -> bool {
        let mut inner = self.inner.write();
        let mut found = false;
        let mut released = 0;
        for st in inner.regions.values_mut() {
            if st.region.name == name && !st.freed {
                st.freed = true;
                released += st.touched_pages;
                st.touched_pages = 0;
                st.touched.iter_mut().for_each(|w| *w = 0);
                found = true;
            }
        }
        inner.resident_pages = inner.resident_pages.saturating_sub(released);
        found
    }

    /// Record a touch of `addr`; returns true if this was the first touch of
    /// its page (i.e. the page just became resident).
    pub fn touch(&self, addr: u64) -> bool {
        let mut inner = self.inner.write();
        // Find the region containing addr: last region starting at or below addr.
        let Some((_, st)) = inner.regions.range_mut(..=addr).next_back() else {
            return false;
        };
        if st.freed || !st.region.contains(addr) {
            return false;
        }
        let page = ((addr - st.region.start) >> self.page_shift) as usize;
        let (word, bit) = (page / 64, page % 64);
        if st.touched[word] & (1 << bit) != 0 {
            return false;
        }
        st.touched[word] |= 1 << bit;
        st.touched_pages += 1;
        inner.resident_pages += 1;
        inner.peak_resident_pages = inner.peak_resident_pages.max(inner.resident_pages);
        true
    }

    /// Current resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.inner.read().resident_pages * self.page_bytes
    }

    /// Peak resident set size in bytes.
    pub fn peak_rss_bytes(&self) -> u64 {
        self.inner.read().peak_resident_pages * self.page_bytes
    }

    /// Fraction of physical capacity currently resident (0.0–1.0+).
    pub fn utilization(&self) -> f64 {
        self.rss_bytes() as f64 / self.capacity_bytes as f64
    }

    /// Look up the region containing `addr`, if any.
    pub fn region_of(&self, addr: u64) -> Option<Region> {
        let inner = self.inner.read();
        inner
            .regions
            .range(..=addr)
            .next_back()
            .filter(|(_, st)| !st.freed && st.region.contains(addr))
            .map(|(_, st)| st.region.clone())
    }

    /// Snapshot of all live regions.
    pub fn regions(&self) -> Vec<Region> {
        self.inner
            .read()
            .regions
            .values()
            .filter(|st| !st.freed)
            .map(|st| st.region.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_assigns_disjoint_page_aligned_regions() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 10_000).unwrap();
        let b = vm.alloc("b", 10_000).unwrap();
        assert_eq!(a.start % 4096, 0);
        assert_eq!(b.start % 4096, 0);
        assert!(b.start >= a.start + 12288, "page-rounded plus guard page");
        assert!(!a.contains(b.start));
    }

    #[test]
    fn duplicate_names_rejected() {
        let vm = AddressSpace::new(4096, 1 << 30);
        vm.alloc("a", 100).unwrap();
        assert!(matches!(vm.alloc("a", 100), Err(SimError::DuplicateRegion(_))));
        // After freeing, the name can be reused.
        assert!(vm.free("a"));
        vm.alloc("a", 100).unwrap();
    }

    #[test]
    fn first_touch_accounting() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 3 * 4096).unwrap();
        assert_eq!(vm.rss_bytes(), 0);
        assert!(vm.touch(a.start));
        assert!(!vm.touch(a.start + 8), "same page is not a first touch");
        assert!(vm.touch(a.start + 4096));
        assert_eq!(vm.rss_bytes(), 2 * 4096);
        assert!(vm.touch(a.start + 2 * 4096));
        assert_eq!(vm.rss_bytes(), 3 * 4096);
        assert_eq!(vm.peak_rss_bytes(), 3 * 4096);
    }

    #[test]
    fn touch_outside_any_region_is_ignored() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 4096).unwrap();
        assert!(!vm.touch(a.start - 1));
        assert!(!vm.touch(a.end() + 4096 * 10));
        assert_eq!(vm.rss_bytes(), 0);
    }

    #[test]
    fn free_releases_resident_pages() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        for p in 0..4u64 {
            vm.touch(a.start + p * 4096);
        }
        assert_eq!(vm.rss_bytes(), 4 * 4096);
        vm.free("a");
        assert_eq!(vm.rss_bytes(), 0);
        assert_eq!(vm.peak_rss_bytes(), 4 * 4096, "peak is sticky");
        assert!(vm.region_of(a.start).is_none());
    }

    #[test]
    fn region_lookup() {
        let vm = AddressSpace::new(4096, 1 << 30);
        let a = vm.alloc("a", 4096).unwrap();
        let b = vm.alloc("b", 4096).unwrap();
        assert_eq!(vm.region_of(a.start + 100).unwrap().name, "a");
        assert_eq!(vm.region_of(b.start).unwrap().name, "b");
        assert!(vm.region_of(b.end() + 4096 * 2).is_none());
        assert_eq!(vm.regions().len(), 2);
    }

    #[test]
    fn utilization_fraction() {
        let vm = AddressSpace::new(4096, 8 * 4096);
        let a = vm.alloc("a", 4 * 4096).unwrap();
        for p in 0..4u64 {
            vm.touch(a.start + p * 4096);
        }
        assert!((vm.utilization() - 0.5).abs() < 1e-9);
    }
}
