//! Hardware-event counters.
//!
//! The paper's accuracy methodology (Section VII, Eq. 1) compares the number
//! of SPE samples multiplied by the sampling period against a `perf stat`
//! baseline counting the `mem_access` event. These counters provide that
//! baseline, plus the bus-traffic and floating-point counts used by the
//! bandwidth / arithmetic-intensity profiler.

/// Per-core event counters (owned by the core, merged on demand).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// Retired instructions (all kinds).
    pub instructions: u64,
    /// Retired memory operations (loads + stores) — the ARM `mem_access` event.
    pub mem_access: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired branches.
    pub branches: u64,
    /// Floating-point operations reported by the workload.
    pub flops: u64,
    /// L1d hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// SLC hits.
    pub slc_hits: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Bytes read from DRAM on behalf of this core.
    pub bus_read_bytes: u64,
    /// Bytes written back to DRAM on behalf of this core.
    pub bus_write_bytes: u64,
    /// Core cycles consumed (including profiling overhead charged by observers).
    pub cycles: u64,
    /// Cycles charged by observers (profiling overhead component).
    pub observer_cycles: u64,
}

impl CoreCounters {
    /// Add another counter set into this one.
    pub fn merge(&mut self, other: &CoreCounters) {
        self.instructions += other.instructions;
        self.mem_access += other.mem_access;
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.flops += other.flops;
        self.l1_hits += other.l1_hits;
        self.l2_hits += other.l2_hits;
        self.slc_hits += other.slc_hits;
        self.dram_accesses += other.dram_accesses;
        self.bus_read_bytes += other.bus_read_bytes;
        self.bus_write_bytes += other.bus_write_bytes;
        self.cycles = self.cycles.max(other.cycles);
        self.observer_cycles += other.observer_cycles;
    }
}

/// Machine-wide counter snapshot (sum over cores; `cycles` is the maximum,
/// i.e. the simulated makespan).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MachineCounters {
    /// Retired instructions.
    pub instructions: u64,
    /// Retired memory operations (loads + stores).
    pub mem_access: u64,
    /// Retired loads.
    pub loads: u64,
    /// Retired stores.
    pub stores: u64,
    /// Retired branches.
    pub branches: u64,
    /// Floating-point operations.
    pub flops: u64,
    /// L1d hits.
    pub l1_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// SLC hits.
    pub slc_hits: u64,
    /// DRAM accesses.
    pub dram_accesses: u64,
    /// Bytes read from DRAM.
    pub bus_read_bytes: u64,
    /// Bytes written to DRAM.
    pub bus_write_bytes: u64,
    /// Simulated makespan in cycles (max over cores).
    pub cycles: u64,
    /// Total cycles charged by observers (profiling overhead).
    pub observer_cycles: u64,
}

impl MachineCounters {
    /// Fold a per-core counter set into the machine-wide snapshot.
    pub fn absorb(&mut self, c: &CoreCounters) {
        self.instructions += c.instructions;
        self.mem_access += c.mem_access;
        self.loads += c.loads;
        self.stores += c.stores;
        self.branches += c.branches;
        self.flops += c.flops;
        self.l1_hits += c.l1_hits;
        self.l2_hits += c.l2_hits;
        self.slc_hits += c.slc_hits;
        self.dram_accesses += c.dram_accesses;
        self.bus_read_bytes += c.bus_read_bytes;
        self.bus_write_bytes += c.bus_write_bytes;
        self.cycles = self.cycles.max(c.cycles);
        self.observer_cycles += c.observer_cycles;
    }

    /// Total bus traffic in bytes.
    pub fn bus_bytes(&self) -> u64 {
        self.bus_read_bytes + self.bus_write_bytes
    }

    /// Arithmetic intensity in FLOP per byte of DRAM traffic (Roofline model);
    /// `None` when no DRAM traffic occurred.
    pub fn arithmetic_intensity(&self) -> Option<f64> {
        let bytes = self.bus_bytes();
        if bytes == 0 {
            None
        } else {
            Some(self.flops as f64 / bytes as f64)
        }
    }
}

/// Counters of the dynamic page-migration subsystem
/// ([`crate::Machine::migrate_page`]): how many pages moved between memory
/// tiers, in which direction, and what the moves cost. A *promotion* is a
/// move onto a local (non-remote) node, a *demotion* a move onto a remote
/// one; local↔local and remote↔remote moves count only in `migrations`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MigrationStats {
    /// Total pages migrated.
    pub migrations: u64,
    /// Pages moved from a remote node onto a local one.
    pub promoted_pages: u64,
    /// Pages moved from a local node onto a remote one.
    pub demoted_pages: u64,
    /// Bytes carried by promotions.
    pub promoted_bytes: u64,
    /// Bytes carried by demotions.
    pub demoted_bytes: u64,
    /// Total bus bytes moved by migrations (one read + one write per page).
    pub bus_bytes: u64,
    /// Total cycles charged by the migration cost model (fixed software
    /// overhead plus the link transfer latencies of both nodes).
    pub charged_cycles: u64,
}

impl MigrationStats {
    /// Fold one migration into the counters.
    pub fn record(&mut self, bytes: u64, from_remote: bool, to_remote: bool, cycles: u64) {
        self.migrations += 1;
        self.bus_bytes += 2 * bytes;
        self.charged_cycles += cycles;
        if from_remote && !to_remote {
            self.promoted_pages += 1;
            self.promoted_bytes += bytes;
        } else if !from_remote && to_remote {
            self.demoted_pages += 1;
            self.demoted_bytes += bytes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_stats_classify_directions() {
        let mut s = MigrationStats::default();
        s.record(4096, true, false, 100); // promotion
        s.record(4096, false, true, 100); // demotion
        s.record(4096, true, true, 100); // lateral remote move
        assert_eq!(s.migrations, 3);
        assert_eq!(s.promoted_pages, 1);
        assert_eq!(s.demoted_pages, 1);
        assert_eq!(s.promoted_bytes, 4096);
        assert_eq!(s.demoted_bytes, 4096);
        assert_eq!(s.bus_bytes, 3 * 2 * 4096);
        assert_eq!(s.charged_cycles, 300);
    }

    #[test]
    fn merge_sums_and_maxes() {
        let mut a =
            CoreCounters { mem_access: 10, loads: 6, stores: 4, cycles: 100, ..Default::default() };
        let b = CoreCounters { mem_access: 5, loads: 5, cycles: 200, ..Default::default() };
        a.merge(&b);
        assert_eq!(a.mem_access, 15);
        assert_eq!(a.loads, 11);
        assert_eq!(a.stores, 4);
        assert_eq!(a.cycles, 200, "cycles merge as max (makespan)");
    }

    #[test]
    fn machine_absorb() {
        let mut m = MachineCounters::default();
        m.absorb(&CoreCounters {
            mem_access: 3,
            bus_read_bytes: 64,
            cycles: 10,
            flops: 7,
            ..Default::default()
        });
        m.absorb(&CoreCounters {
            mem_access: 4,
            bus_write_bytes: 64,
            cycles: 50,
            flops: 1,
            ..Default::default()
        });
        assert_eq!(m.mem_access, 7);
        assert_eq!(m.bus_bytes(), 128);
        assert_eq!(m.cycles, 50);
        let ai = m.arithmetic_intensity().unwrap();
        assert!((ai - 8.0 / 128.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic_intensity_none_without_traffic() {
        let m = MachineCounters { flops: 100, ..Default::default() };
        assert!(m.arithmetic_intensity().is_none());
    }
}
