//! DRAM latency and bandwidth contention model.
//!
//! The memory bus is modelled as a single shared resource with a peak
//! throughput of `peak_bytes_per_cycle` (Table II: 200 GB/s). Each line fill
//! or write-back reserves `bytes / peak` cycles of bus time; when requests
//! arrive faster than the bus drains, a *busy frontier* runs ahead of the
//! requesting core's clock and the difference appears as queueing delay added
//! to the idle latency. This reproduces the two behaviours the paper's
//! experiments depend on:
//!
//! * bandwidth-bound workloads (STREAM at high thread counts) see inflated
//!   memory latencies, which lengthens the tracked lifetime of SPE samples
//!   and therefore increases sample collisions, and
//! * the achievable GiB/s saturates near the configured peak.
//!
//! The frontier is kept in micro-cycles (1/1024 cycle) in an atomic so that
//! all cores share it without locking.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::config::DramConfig;

const FRAC: u64 = 1024;

/// Shared DRAM/bus model.
#[derive(Debug)]
pub struct Dram {
    cfg: DramConfig,
    /// Bus busy frontier in micro-cycles (1/1024 of a core cycle).
    busy_until: AtomicU64,
    /// Total bytes read from DRAM.
    read_bytes: AtomicU64,
    /// Total bytes written back to DRAM.
    write_bytes: AtomicU64,
    /// Total number of DRAM accesses.
    accesses: AtomicU64,
    /// Cycles per byte on the bus, in micro-cycles.
    microcycles_per_byte: u64,
}

/// Outcome of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Total latency of the access in cycles (idle latency + queueing delay).
    pub latency_cycles: u64,
    /// Queueing delay component in cycles.
    pub queue_cycles: u64,
}

impl Dram {
    /// Create a DRAM model from its configuration.
    pub fn new(cfg: DramConfig) -> Self {
        let microcycles_per_byte = (FRAC as f64 / cfg.peak_bytes_per_cycle).round() as u64;
        Dram {
            cfg,
            busy_until: AtomicU64::new(0),
            read_bytes: AtomicU64::new(0),
            write_bytes: AtomicU64::new(0),
            accesses: AtomicU64::new(0),
            microcycles_per_byte: microcycles_per_byte.max(1),
        }
    }

    /// Access DRAM at simulated time `now_cycles`, transferring `bytes`
    /// (a line fill and possibly a write-back). `write_back_bytes` counts
    /// separately toward write traffic.
    pub fn access(&self, now_cycles: u64, read_bytes: u32, write_back_bytes: u32) -> DramAccess {
        let total_bytes = read_bytes as u64 + write_back_bytes as u64;
        self.read_bytes.fetch_add(read_bytes as u64, Ordering::Relaxed);
        self.write_bytes.fetch_add(write_back_bytes as u64, Ordering::Relaxed);
        self.accesses.fetch_add(1, Ordering::Relaxed);

        let now_micro = now_cycles.saturating_mul(FRAC);
        let reserve = total_bytes * self.microcycles_per_byte;

        // Advance the busy frontier: new_frontier = max(frontier, now) + reserve.
        let mut prev = self.busy_until.load(Ordering::Relaxed);
        loop {
            let start = prev.max(now_micro);
            let next = start + reserve;
            match self.busy_until.compare_exchange_weak(
                prev,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let queue_micro = start - now_micro;
                    let queue_cycles = (queue_micro / FRAC).min(self.cfg.max_queue_cycles);
                    return DramAccess {
                        latency_cycles: self.cfg.latency_cycles + queue_cycles,
                        queue_cycles,
                    };
                }
                Err(actual) => prev = actual,
            }
        }
    }

    /// Total bytes read from DRAM so far.
    pub fn read_bytes(&self) -> u64 {
        self.read_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes written back to DRAM so far.
    pub fn write_bytes(&self) -> u64 {
        self.write_bytes.load(Ordering::Relaxed)
    }

    /// Total number of DRAM accesses so far.
    pub fn accesses(&self) -> u64 {
        self.accesses.load(Ordering::Relaxed)
    }

    /// The configured idle latency, in cycles.
    pub fn idle_latency(&self) -> u64 {
        self.cfg.latency_cycles
    }

    /// The configured per-access core occupancy, in cycles.
    pub fn occupancy(&self) -> u64 {
        self.cfg.occupancy_cycles
    }

    /// Reset traffic counters and the busy frontier (between trials).
    pub fn reset(&self) {
        self.busy_until.store(0, Ordering::Relaxed);
        self.read_bytes.store(0, Ordering::Relaxed);
        self.write_bytes.store(0, Ordering::Relaxed);
        self.accesses.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig {
            latency_cycles: 100,
            peak_bytes_per_cycle: 64.0, // one line per cycle
            occupancy_cycles: 4,
            max_queue_cycles: 1000,
            capacity_bytes: 1 << 30,
        }
    }

    #[test]
    fn idle_access_sees_base_latency() {
        let d = Dram::new(cfg());
        let a = d.access(1_000_000, 64, 0);
        assert_eq!(a.queue_cycles, 0);
        assert_eq!(a.latency_cycles, 100);
    }

    #[test]
    fn back_to_back_accesses_queue() {
        let d = Dram::new(cfg());
        // 100 accesses at the same instant: the bus serialises them at one
        // line per cycle, so the last one queues for ~99 cycles.
        let mut max_queue = 0;
        for _ in 0..100 {
            let a = d.access(0, 64, 0);
            max_queue = max_queue.max(a.queue_cycles);
        }
        assert!(max_queue >= 90, "expected significant queueing, got {max_queue}");
        assert!(max_queue <= 100);
    }

    #[test]
    fn queue_delay_is_capped() {
        let d = Dram::new(cfg());
        for _ in 0..10_000 {
            let a = d.access(0, 64, 0);
            assert!(a.queue_cycles <= 1000);
        }
    }

    #[test]
    fn traffic_counters_accumulate() {
        let d = Dram::new(cfg());
        d.access(0, 64, 0);
        d.access(0, 64, 64);
        assert_eq!(d.read_bytes(), 128);
        assert_eq!(d.write_bytes(), 64);
        assert_eq!(d.accesses(), 2);
        d.reset();
        assert_eq!(d.read_bytes(), 0);
        assert_eq!(d.accesses(), 0);
    }

    #[test]
    fn idle_gaps_drain_the_queue() {
        let d = Dram::new(cfg());
        for _ in 0..100 {
            d.access(0, 64, 0);
        }
        // Far in the future the bus is idle again.
        let a = d.access(1_000_000, 64, 0);
        assert_eq!(a.queue_cycles, 0);
    }
}
