//! Machine configuration: cache geometry, DRAM model, cost model, platform presets.
//!
//! The default preset, [`MachineConfig::ampere_altra_max`], mirrors Table II of
//! the paper: an Ampere Altra Max with 128 Armv8.2+ cores at 3.0 GHz, 64 KiB
//! L1d and 1 MiB L2 per core, a 16 MiB system-level cache, 256 GiB of DDR4 at
//! a 200 GB/s peak, and 64 KiB pages.

use crate::{Result, SimError};

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes. Must be a multiple of `line_bytes * ways`.
    pub size_bytes: u64,
    /// Cache line size in bytes (64 on all modern ARM servers).
    pub line_bytes: u32,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Load-to-use latency in core cycles when this level hits.
    pub latency_cycles: u64,
    /// Cycles charged to the issuing core per access that *hits* this level.
    ///
    /// This is an effective occupancy (latency divided by the memory-level
    /// parallelism the core can extract), not the raw latency: out-of-order
    /// cores overlap most of a hit's latency with other work.
    pub occupancy_cycles: u64,
}

impl CacheLevelConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.ways as u64)
    }

    /// Validate that the geometry is consistent and power-of-two sized.
    pub fn validate(&self, name: &str) -> Result<()> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(SimError::BadConfig(format!(
                "{name}: line_bytes must be a non-zero power of two"
            )));
        }
        if self.ways == 0 {
            return Err(SimError::BadConfig(format!("{name}: ways must be non-zero")));
        }
        let denom = self.line_bytes as u64 * self.ways as u64;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err(SimError::BadConfig(format!(
                "{name}: size_bytes must be a non-zero multiple of line_bytes * ways"
            )));
        }
        if !self.sets().is_power_of_two() {
            return Err(SimError::BadConfig(format!(
                "{name}: number of sets ({}) must be a power of two",
                self.sets()
            )));
        }
        Ok(())
    }
}

/// DRAM latency/bandwidth model parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfig {
    /// Idle (unloaded) DRAM access latency in core cycles.
    pub latency_cycles: u64,
    /// Peak sustainable bandwidth of the memory system in bytes per core cycle
    /// (machine-wide, shared by all cores). 200 GB/s at 3.0 GHz is ~66.7 B/cycle.
    pub peak_bytes_per_cycle: f64,
    /// Cycles charged to the issuing core per DRAM access when the bus is idle.
    pub occupancy_cycles: u64,
    /// Maximum queueing delay (cycles) added when the bus is saturated.
    pub max_queue_cycles: u64,
    /// Total DRAM capacity in bytes (Table II: 256 GiB).
    pub capacity_bytes: u64,
}

/// Cost model for non-memory work and profiling-induced overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per non-memory instruction (inverse IPC of the scalar pipeline).
    pub cycles_per_cpu_op: f64,
    /// Cycles per floating-point operation (fused into the pipeline; small).
    pub cycles_per_flop: f64,
}

/// Complete description of the simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Number of cores.
    pub num_cores: usize,
    /// Core clock frequency in Hz.
    pub freq_hz: u64,
    /// Virtual-memory page size in bytes (64 KiB on the paper's testbed).
    pub page_bytes: u64,
    /// Private L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Private unified L2 cache.
    pub l2: CacheLevelConfig,
    /// Shared system-level cache (SLC).
    pub slc: CacheLevelConfig,
    /// Number of independently locked SLC shards (reduces contention between
    /// simulated cores; must be a power of two).
    pub slc_shards: usize,
    /// DRAM model.
    pub dram: DramConfig,
    /// Non-memory cost model.
    pub cost: CostModel,
    /// Width of one bandwidth-accounting bucket in core cycles.
    ///
    /// The machine aggregates bus traffic into buckets of this width; the NMO
    /// bandwidth profiler turns them into a GiB/s-over-time series.
    pub bandwidth_bucket_cycles: u64,
}

impl MachineConfig {
    /// Platform preset matching Table II of the paper (Ampere Altra Max).
    ///
    /// The core count defaults to 128 but most experiments only attach a
    /// subset of cores; allocating 128 private cache models is cheap.
    pub fn ampere_altra_max() -> Self {
        let freq_hz = 3_000_000_000;
        MachineConfig {
            name: "Ampere Altra Max 64-Bit (Neoverse V1-class, simulated)".to_string(),
            num_cores: 128,
            freq_hz,
            page_bytes: 64 * 1024,
            l1d: CacheLevelConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 4,
                latency_cycles: 4,
                occupancy_cycles: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 13,
                occupancy_cycles: 3,
            },
            slc: CacheLevelConfig {
                size_bytes: 16 * 1024 * 1024,
                line_bytes: 64,
                ways: 16,
                latency_cycles: 45,
                occupancy_cycles: 8,
            },
            slc_shards: 16,
            dram: DramConfig {
                latency_cycles: 330,
                // 200 GB/s at 3.0 GHz.
                peak_bytes_per_cycle: 200.0e9 / freq_hz as f64,
                occupancy_cycles: 18,
                max_queue_cycles: 2_000,
                capacity_bytes: 256 * 1024 * 1024 * 1024,
            },
            cost: CostModel { cycles_per_cpu_op: 0.4, cycles_per_flop: 0.3 },
            // 1 ms of simulated time per bucket at 3 GHz.
            bandwidth_bucket_cycles: 3_000_000,
        }
    }

    /// A tiny machine for unit tests: 4 cores, small caches, 4 KiB pages.
    ///
    /// Using a small configuration keeps tests fast and makes cache-eviction
    /// behaviour easy to trigger deterministically.
    pub fn small_test() -> Self {
        let freq_hz = 1_000_000_000;
        MachineConfig {
            name: "small-test".to_string(),
            num_cores: 4,
            freq_hz,
            page_bytes: 4096,
            l1d: CacheLevelConfig {
                size_bytes: 4 * 1024,
                line_bytes: 64,
                ways: 2,
                latency_cycles: 2,
                occupancy_cycles: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 4,
                latency_cycles: 8,
                occupancy_cycles: 2,
            },
            slc: CacheLevelConfig {
                size_bytes: 128 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 20,
                occupancy_cycles: 4,
            },
            slc_shards: 4,
            dram: DramConfig {
                latency_cycles: 100,
                peak_bytes_per_cycle: 16.0,
                occupancy_cycles: 8,
                max_queue_cycles: 500,
                capacity_bytes: 1024 * 1024 * 1024,
            },
            cost: CostModel { cycles_per_cpu_op: 0.5, cycles_per_flop: 0.5 },
            bandwidth_bucket_cycles: 10_000,
        }
    }

    /// Validate all geometry and parameters.
    pub fn validate(&self) -> Result<()> {
        if self.num_cores == 0 {
            return Err(SimError::BadConfig("num_cores must be non-zero".into()));
        }
        if self.freq_hz == 0 {
            return Err(SimError::BadConfig("freq_hz must be non-zero".into()));
        }
        if !self.page_bytes.is_power_of_two() || self.page_bytes < 4096 {
            return Err(SimError::BadConfig("page_bytes must be a power of two >= 4096".into()));
        }
        if self.slc_shards == 0 || !self.slc_shards.is_power_of_two() {
            return Err(SimError::BadConfig("slc_shards must be a non-zero power of two".into()));
        }
        if self.bandwidth_bucket_cycles == 0 {
            return Err(SimError::BadConfig("bandwidth_bucket_cycles must be non-zero".into()));
        }
        if self.dram.peak_bytes_per_cycle <= 0.0 {
            return Err(SimError::BadConfig("dram.peak_bytes_per_cycle must be positive".into()));
        }
        self.l1d.validate("l1d")?;
        self.l2.validate("l2")?;
        self.slc.validate("slc")?;
        // SLC sets must be divisible by the shard count so each shard is a
        // well-formed sub-cache.
        if !self.slc.sets().is_multiple_of(self.slc_shards as u64) {
            return Err(SimError::BadConfig("slc sets must be divisible by slc_shards".into()));
        }
        Ok(())
    }

    /// Number of simulated nanoseconds per core cycle (as a ratio num/denom to
    /// stay exact: ns = cycles * 1e9 / freq_hz).
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        ((cycles as u128 * 1_000_000_000u128) / self.freq_hz as u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn altra_preset_is_valid_and_matches_table2() {
        let c = MachineConfig::ampere_altra_max();
        c.validate().unwrap();
        assert_eq!(c.num_cores, 128);
        assert_eq!(c.freq_hz, 3_000_000_000);
        assert_eq!(c.page_bytes, 64 * 1024);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.slc.size_bytes, 16 * 1024 * 1024);
        assert_eq!(c.dram.capacity_bytes, 256 * 1024 * 1024 * 1024);
        // 200 GB/s at 3 GHz is about 66.7 bytes per cycle.
        assert!((c.dram.peak_bytes_per_cycle - 66.666).abs() < 0.1);
    }

    #[test]
    fn small_preset_is_valid() {
        MachineConfig::small_test().validate().unwrap();
    }

    #[test]
    fn cache_sets_power_of_two() {
        let c = MachineConfig::ampere_altra_max();
        assert_eq!(c.l1d.sets(), 256);
        assert_eq!(c.l2.sets(), 2048);
        assert!(c.slc.sets().is_power_of_two());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut c = MachineConfig::small_test();
        c.l1d.size_bytes = 5000; // not a multiple of line*ways
        assert!(matches!(c.validate(), Err(SimError::BadConfig(_))));

        let mut c = MachineConfig::small_test();
        c.l1d.ways = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_test();
        c.page_bytes = 1000;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_test();
        c.slc_shards = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn cycles_to_ns_conversion() {
        let c = MachineConfig::ampere_altra_max();
        assert_eq!(c.cycles_to_ns(3_000_000_000), 1_000_000_000);
        assert_eq!(c.cycles_to_ns(3), 1);
        assert_eq!(c.cycles_to_ns(0), 0);
    }
}
