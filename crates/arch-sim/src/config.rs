//! Machine configuration: cache geometry, memory topology, cost model,
//! platform presets.
//!
//! The default preset, [`MachineConfig::ampere_altra_max`], mirrors Table II of
//! the paper: an Ampere Altra Max with 128 Armv8.2+ cores at 3.0 GHz, 64 KiB
//! L1d and 1 MiB L2 per core, a 16 MiB system-level cache, 256 GiB of DDR4 at
//! a 200 GB/s peak, and 64 KiB pages.
//!
//! The memory system is a [`MemTopologyConfig`]: an ordered list of
//! [`MemNodeConfig`]s (node 0 is the local DDR; further nodes model
//! CXL-style remote memory with higher idle latency and lower peak
//! bandwidth) plus a [`PlacementPolicy`] that decides which node each
//! virtual page is homed on at first touch — the knob behind the paper's
//! tiered-memory (DDR vs. CXL-emulated NUMA) experiments.

use crate::{Result, SimError};

/// Maximum number of memory nodes a machine may have. Fixed-size per-node
/// arrays of this length ride on the bandwidth/RSS series points so they
/// stay `Copy`; the SPE data-source encoding itself supports 16 nodes.
pub const MAX_MEM_NODES: usize = 4;

/// Geometry and timing of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLevelConfig {
    /// Total capacity in bytes. Must be a multiple of `line_bytes * ways`.
    pub size_bytes: u64,
    /// Cache line size in bytes (64 on all modern ARM servers).
    pub line_bytes: u32,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Load-to-use latency in core cycles when this level hits.
    pub latency_cycles: u64,
    /// Cycles charged to the issuing core per access that *hits* this level.
    ///
    /// This is an effective occupancy (latency divided by the memory-level
    /// parallelism the core can extract), not the raw latency: out-of-order
    /// cores overlap most of a hit's latency with other work.
    pub occupancy_cycles: u64,
}

impl CacheLevelConfig {
    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.line_bytes as u64 * self.ways as u64)
    }

    /// Validate that the geometry is consistent and power-of-two sized.
    pub fn validate(&self, name: &str) -> Result<()> {
        if self.line_bytes == 0 || !self.line_bytes.is_power_of_two() {
            return Err(SimError::BadConfig(format!(
                "{name}: line_bytes must be a non-zero power of two"
            )));
        }
        if self.ways == 0 {
            return Err(SimError::BadConfig(format!("{name}: ways must be non-zero")));
        }
        let denom = self.line_bytes as u64 * self.ways as u64;
        if self.size_bytes == 0 || !self.size_bytes.is_multiple_of(denom) {
            return Err(SimError::BadConfig(format!(
                "{name}: size_bytes must be a non-zero multiple of line_bytes * ways"
            )));
        }
        if !self.sets().is_power_of_two() {
            return Err(SimError::BadConfig(format!(
                "{name}: number of sets ({}) must be a power of two",
                self.sets()
            )));
        }
        Ok(())
    }
}

/// Latency/bandwidth model parameters of one memory node (a DDR channel
/// group, or a CXL-attached expander).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemNodeConfig {
    /// Idle (unloaded) access latency in core cycles.
    pub latency_cycles: u64,
    /// Peak sustainable bandwidth of the node in bytes per core cycle
    /// (shared by all cores). 200 GB/s at 3.0 GHz is ~66.7 B/cycle.
    pub peak_bytes_per_cycle: f64,
    /// Cycles charged to the issuing core per access when the node is idle.
    pub occupancy_cycles: u64,
    /// Maximum queueing delay (cycles) added when the node is saturated.
    pub max_queue_cycles: u64,
    /// Node capacity in bytes.
    pub capacity_bytes: u64,
    /// Whether the node sits behind a remote (CXL-style) link. Accesses
    /// served here report [`crate::op::DataSource::RemoteDram`] instead of
    /// [`crate::op::DataSource::Dram`].
    pub remote: bool,
}

impl MemNodeConfig {
    /// Validate the node parameters.
    pub fn validate(&self, name: &str) -> Result<()> {
        if self.peak_bytes_per_cycle <= 0.0 {
            return Err(SimError::BadConfig(format!(
                "{name}: peak_bytes_per_cycle must be positive"
            )));
        }
        if self.capacity_bytes == 0 {
            return Err(SimError::BadConfig(format!("{name}: capacity_bytes must be non-zero")));
        }
        Ok(())
    }
}

/// Cost model of one [`crate::Machine::migrate_page`] call: moving a page
/// between nodes occupies both nodes' links for a page's worth of traffic
/// (that part falls out of the [`MemNodeConfig`] bandwidth model) plus this
/// fixed software overhead per page (unmap, copy setup, TLB shootdown — the
/// `move_pages(2)` bookkeeping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MigrationCostConfig {
    /// Fixed cycles charged per migrated page on top of the link transfer
    /// latencies, recorded in [`crate::MigrationStats::charged_cycles`].
    pub fixed_cycles_per_page: u64,
}

impl Default for MigrationCostConfig {
    fn default() -> Self {
        // ~2 µs at 3 GHz: the order of a move_pages() call per 64 KiB page.
        MigrationCostConfig { fixed_cycles_per_page: 6_000 }
    }
}

/// Where the virtual-memory system homes each page at first touch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum PlacementPolicy {
    /// Every page is homed on node 0 (the local DDR). Default.
    #[default]
    LocalOnly,
    /// Pages are striped round-robin across all nodes in first-touch order.
    Interleave,
    /// A `local_fraction` share of pages (in first-touch order) is homed on
    /// node 0; the remainder is spread round-robin over the remote nodes —
    /// the paper's DDR-vs-CXL capacity-split scenario.
    TierSplit {
        /// Fraction of pages homed locally, clamped to `[0, 1]`.
        local_fraction: f64,
    },
}

/// The machine's memory system: an ordered list of nodes (node 0 = local
/// DDR) plus the page-placement policy.
#[derive(Debug, Clone, PartialEq)]
pub struct MemTopologyConfig {
    /// The memory nodes, indexed by [`crate::op::NodeId`]. Node 0 must be
    /// local (not `remote`).
    pub nodes: Vec<MemNodeConfig>,
    /// First-touch page-placement policy.
    pub placement: PlacementPolicy,
    /// Cost model for dynamic page migration between the nodes.
    pub migration: MigrationCostConfig,
}

impl MemTopologyConfig {
    /// A single-node (flat DRAM) topology.
    pub fn single(node: MemNodeConfig) -> Self {
        MemTopologyConfig {
            nodes: vec![node],
            placement: PlacementPolicy::LocalOnly,
            migration: MigrationCostConfig::default(),
        }
    }

    /// A two-tier topology: local DDR plus one remote node, with the given
    /// placement policy.
    pub fn tiered(local: MemNodeConfig, remote: MemNodeConfig, placement: PlacementPolicy) -> Self {
        MemTopologyConfig {
            nodes: vec![local, MemNodeConfig { remote: true, ..remote }],
            placement,
            migration: MigrationCostConfig::default(),
        }
    }

    /// Total capacity across all nodes, bytes.
    pub fn total_capacity_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.capacity_bytes).sum()
    }

    /// Validate node count, node parameters, and tier ordering.
    pub fn validate(&self) -> Result<()> {
        if self.nodes.is_empty() {
            return Err(SimError::BadConfig("memory topology needs at least one node".into()));
        }
        if self.nodes.len() > MAX_MEM_NODES {
            return Err(SimError::BadConfig(format!(
                "memory topology supports at most {MAX_MEM_NODES} nodes, got {}",
                self.nodes.len()
            )));
        }
        if self.nodes[0].remote {
            return Err(SimError::BadConfig("memory node 0 must be the local tier".into()));
        }
        for (i, node) in self.nodes.iter().enumerate() {
            node.validate(&format!("mem node {i}"))?;
        }
        if let PlacementPolicy::TierSplit { local_fraction } = self.placement {
            if !local_fraction.is_finite() {
                return Err(SimError::BadConfig("TierSplit local_fraction must be finite".into()));
            }
            if self.nodes.len() < 2 {
                return Err(SimError::BadConfig(
                    "TierSplit placement needs at least one remote node".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Cost model for non-memory work and profiling-induced overhead.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Cycles per non-memory instruction (inverse IPC of the scalar pipeline).
    pub cycles_per_cpu_op: f64,
    /// Cycles per floating-point operation (fused into the pipeline; small).
    pub cycles_per_flop: f64,
}

/// Complete description of the simulated platform.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Human-readable platform name.
    pub name: String,
    /// Number of cores.
    pub num_cores: usize,
    /// Core clock frequency in Hz.
    pub freq_hz: u64,
    /// Virtual-memory page size in bytes (64 KiB on the paper's testbed).
    pub page_bytes: u64,
    /// Private L1 data cache.
    pub l1d: CacheLevelConfig,
    /// Private unified L2 cache.
    pub l2: CacheLevelConfig,
    /// Shared system-level cache (SLC).
    pub slc: CacheLevelConfig,
    /// Number of independently locked SLC shards (reduces contention between
    /// simulated cores; must be a power of two).
    pub slc_shards: usize,
    /// Memory topology: the nodes behind the SLC and the page-placement
    /// policy homing pages on them.
    pub mem: MemTopologyConfig,
    /// Non-memory cost model.
    pub cost: CostModel,
    /// Width of one bandwidth-accounting bucket in core cycles.
    ///
    /// The machine aggregates bus traffic into buckets of this width; the NMO
    /// bandwidth profiler turns them into a GiB/s-over-time series.
    pub bandwidth_bucket_cycles: u64,
}

impl MachineConfig {
    /// Platform preset matching Table II of the paper (Ampere Altra Max).
    ///
    /// The core count defaults to 128 but most experiments only attach a
    /// subset of cores; allocating 128 private cache models is cheap.
    pub fn ampere_altra_max() -> Self {
        let freq_hz = 3_000_000_000;
        MachineConfig {
            name: "Ampere Altra Max 64-Bit (Neoverse V1-class, simulated)".to_string(),
            num_cores: 128,
            freq_hz,
            page_bytes: 64 * 1024,
            l1d: CacheLevelConfig {
                size_bytes: 64 * 1024,
                line_bytes: 64,
                ways: 4,
                latency_cycles: 4,
                occupancy_cycles: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 1024 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 13,
                occupancy_cycles: 3,
            },
            slc: CacheLevelConfig {
                size_bytes: 16 * 1024 * 1024,
                line_bytes: 64,
                ways: 16,
                latency_cycles: 45,
                occupancy_cycles: 8,
            },
            slc_shards: 16,
            mem: MemTopologyConfig::single(MemNodeConfig {
                latency_cycles: 330,
                // 200 GB/s at 3.0 GHz.
                peak_bytes_per_cycle: 200.0e9 / freq_hz as f64,
                occupancy_cycles: 18,
                max_queue_cycles: 2_000,
                capacity_bytes: 256 * 1024 * 1024 * 1024,
                remote: false,
            }),
            cost: CostModel { cycles_per_cpu_op: 0.4, cycles_per_flop: 0.3 },
            // 1 ms of simulated time per bucket at 3 GHz.
            bandwidth_bucket_cycles: 3_000_000,
        }
    }

    /// The Table II platform extended with a CXL-style remote memory node
    /// (the paper's CXL-emulated NUMA testbed): ~3x the idle latency and a
    /// quarter of the local peak bandwidth, homed by `placement`.
    pub fn ampere_altra_max_tiered(placement: PlacementPolicy) -> Self {
        let base = Self::ampere_altra_max();
        let local = base.mem.nodes[0];
        let remote = MemNodeConfig {
            latency_cycles: local.latency_cycles * 3,
            peak_bytes_per_cycle: local.peak_bytes_per_cycle / 4.0,
            occupancy_cycles: local.occupancy_cycles * 2,
            max_queue_cycles: local.max_queue_cycles * 2,
            capacity_bytes: 128 * 1024 * 1024 * 1024,
            remote: true,
        };
        MachineConfig {
            name: format!("{} + CXL-style remote node", base.name),
            mem: MemTopologyConfig::tiered(local, remote, placement),
            ..base
        }
    }

    /// A tiny machine for unit tests: 4 cores, small caches, 4 KiB pages.
    ///
    /// Using a small configuration keeps tests fast and makes cache-eviction
    /// behaviour easy to trigger deterministically.
    pub fn small_test() -> Self {
        let freq_hz = 1_000_000_000;
        MachineConfig {
            name: "small-test".to_string(),
            num_cores: 4,
            freq_hz,
            page_bytes: 4096,
            l1d: CacheLevelConfig {
                size_bytes: 4 * 1024,
                line_bytes: 64,
                ways: 2,
                latency_cycles: 2,
                occupancy_cycles: 1,
            },
            l2: CacheLevelConfig {
                size_bytes: 32 * 1024,
                line_bytes: 64,
                ways: 4,
                latency_cycles: 8,
                occupancy_cycles: 2,
            },
            slc: CacheLevelConfig {
                size_bytes: 128 * 1024,
                line_bytes: 64,
                ways: 8,
                latency_cycles: 20,
                occupancy_cycles: 4,
            },
            slc_shards: 4,
            mem: MemTopologyConfig::single(MemNodeConfig {
                latency_cycles: 100,
                peak_bytes_per_cycle: 16.0,
                occupancy_cycles: 8,
                max_queue_cycles: 500,
                capacity_bytes: 1024 * 1024 * 1024,
                remote: false,
            }),
            cost: CostModel { cycles_per_cpu_op: 0.5, cycles_per_flop: 0.5 },
            bandwidth_bucket_cycles: 10_000,
        }
    }

    /// The tiny test machine with a second, slower remote memory node
    /// (4x the idle latency, a quarter of the bandwidth) and the given
    /// placement policy — the unit-test analogue of the tiered testbed.
    pub fn small_test_tiered(placement: PlacementPolicy) -> Self {
        let base = Self::small_test();
        let local = base.mem.nodes[0];
        let remote = MemNodeConfig {
            latency_cycles: local.latency_cycles * 4,
            peak_bytes_per_cycle: local.peak_bytes_per_cycle / 4.0,
            occupancy_cycles: local.occupancy_cycles * 2,
            max_queue_cycles: local.max_queue_cycles,
            capacity_bytes: local.capacity_bytes,
            remote: true,
        };
        MachineConfig {
            name: "small-test-tiered".to_string(),
            mem: MemTopologyConfig::tiered(local, remote, placement),
            ..base
        }
    }

    /// The node-0 (local DDR) memory configuration.
    pub fn local_mem(&self) -> &MemNodeConfig {
        &self.mem.nodes[0]
    }

    /// Total memory capacity across every node, bytes.
    pub fn total_mem_bytes(&self) -> u64 {
        self.mem.total_capacity_bytes()
    }

    /// Number of memory nodes in the topology.
    pub fn mem_nodes(&self) -> usize {
        self.mem.nodes.len()
    }

    /// Validate all geometry and parameters.
    pub fn validate(&self) -> Result<()> {
        if self.num_cores == 0 {
            return Err(SimError::BadConfig("num_cores must be non-zero".into()));
        }
        if self.freq_hz == 0 {
            return Err(SimError::BadConfig("freq_hz must be non-zero".into()));
        }
        if !self.page_bytes.is_power_of_two() || self.page_bytes < 4096 {
            return Err(SimError::BadConfig("page_bytes must be a power of two >= 4096".into()));
        }
        if self.slc_shards == 0 || !self.slc_shards.is_power_of_two() {
            return Err(SimError::BadConfig("slc_shards must be a non-zero power of two".into()));
        }
        if self.bandwidth_bucket_cycles == 0 {
            return Err(SimError::BadConfig("bandwidth_bucket_cycles must be non-zero".into()));
        }
        self.mem.validate()?;
        self.l1d.validate("l1d")?;
        self.l2.validate("l2")?;
        self.slc.validate("slc")?;
        // SLC sets must be divisible by the shard count so each shard is a
        // well-formed sub-cache.
        if !self.slc.sets().is_multiple_of(self.slc_shards as u64) {
            return Err(SimError::BadConfig("slc sets must be divisible by slc_shards".into()));
        }
        Ok(())
    }

    /// Number of simulated nanoseconds per core cycle (as a ratio num/denom to
    /// stay exact: ns = cycles * 1e9 / freq_hz).
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        ((cycles as u128 * 1_000_000_000u128) / self.freq_hz as u128) as u64
    }

    /// Inverse of [`MachineConfig::cycles_to_ns`]: simulated nanoseconds to
    /// core cycles (used by profilers translating sample timestamps back
    /// into machine time, e.g. to timestamp a page migration).
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        ((ns as u128 * self.freq_hz as u128) / 1_000_000_000u128) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn altra_preset_is_valid_and_matches_table2() {
        let c = MachineConfig::ampere_altra_max();
        c.validate().unwrap();
        assert_eq!(c.num_cores, 128);
        assert_eq!(c.freq_hz, 3_000_000_000);
        assert_eq!(c.page_bytes, 64 * 1024);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.slc.size_bytes, 16 * 1024 * 1024);
        assert_eq!(c.mem_nodes(), 1);
        assert_eq!(c.local_mem().capacity_bytes, 256 * 1024 * 1024 * 1024);
        assert_eq!(c.total_mem_bytes(), 256 * 1024 * 1024 * 1024);
        // 200 GB/s at 3 GHz is about 66.7 bytes per cycle.
        assert!((c.local_mem().peak_bytes_per_cycle - 66.666).abs() < 0.1);
    }

    #[test]
    fn small_preset_is_valid() {
        MachineConfig::small_test().validate().unwrap();
    }

    #[test]
    fn tiered_presets_are_valid_and_slower_remotely() {
        for c in [
            MachineConfig::small_test_tiered(PlacementPolicy::TierSplit { local_fraction: 0.5 }),
            MachineConfig::ampere_altra_max_tiered(PlacementPolicy::Interleave),
        ] {
            c.validate().unwrap();
            assert_eq!(c.mem_nodes(), 2);
            assert!(!c.mem.nodes[0].remote);
            assert!(c.mem.nodes[1].remote);
            assert!(c.mem.nodes[1].latency_cycles > c.mem.nodes[0].latency_cycles);
            assert!(c.mem.nodes[1].peak_bytes_per_cycle < c.mem.nodes[0].peak_bytes_per_cycle);
            assert_eq!(
                c.total_mem_bytes(),
                c.mem.nodes[0].capacity_bytes + c.mem.nodes[1].capacity_bytes
            );
        }
    }

    #[test]
    fn cache_sets_power_of_two() {
        let c = MachineConfig::ampere_altra_max();
        assert_eq!(c.l1d.sets(), 256);
        assert_eq!(c.l2.sets(), 2048);
        assert!(c.slc.sets().is_power_of_two());
    }

    #[test]
    fn invalid_geometry_rejected() {
        let mut c = MachineConfig::small_test();
        c.l1d.size_bytes = 5000; // not a multiple of line*ways
        assert!(matches!(c.validate(), Err(SimError::BadConfig(_))));

        let mut c = MachineConfig::small_test();
        c.l1d.ways = 0;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_test();
        c.page_bytes = 1000;
        assert!(c.validate().is_err());

        let mut c = MachineConfig::small_test();
        c.slc_shards = 3;
        assert!(c.validate().is_err());
    }

    #[test]
    fn invalid_topologies_rejected() {
        let mut c = MachineConfig::small_test();
        c.mem.nodes.clear();
        assert!(c.validate().is_err(), "empty topology");

        let mut c = MachineConfig::small_test();
        let node = c.mem.nodes[0];
        c.mem.nodes = vec![node; MAX_MEM_NODES + 1];
        assert!(c.validate().is_err(), "too many nodes");

        let mut c = MachineConfig::small_test();
        c.mem.nodes[0].remote = true;
        assert!(c.validate().is_err(), "node 0 must be local");

        let mut c = MachineConfig::small_test();
        c.mem.nodes[0].peak_bytes_per_cycle = 0.0;
        assert!(c.validate().is_err(), "zero bandwidth");

        let mut c = MachineConfig::small_test();
        c.mem.placement = PlacementPolicy::TierSplit { local_fraction: 0.5 };
        assert!(c.validate().is_err(), "TierSplit needs a remote node");

        let mut c = MachineConfig::small_test_tiered(PlacementPolicy::LocalOnly);
        c.mem.placement = PlacementPolicy::TierSplit { local_fraction: f64::NAN };
        assert!(c.validate().is_err(), "non-finite split fraction");
    }

    #[test]
    fn cycles_to_ns_conversion() {
        let c = MachineConfig::ampere_altra_max();
        assert_eq!(c.cycles_to_ns(3_000_000_000), 1_000_000_000);
        assert_eq!(c.cycles_to_ns(3), 1);
        assert_eq!(c.cycles_to_ns(0), 0);
        assert_eq!(c.ns_to_cycles(1_000_000_000), 3_000_000_000);
        assert_eq!(c.ns_to_cycles(c.cycles_to_ns(12_345_678)), 12_345_678);
    }

    #[test]
    fn migration_cost_defaults_are_sane() {
        let c = MachineConfig::small_test_tiered(PlacementPolicy::Interleave);
        assert!(c.mem.migration.fixed_cycles_per_page > 0);
        c.validate().unwrap();
    }
}
