//! # arch-sim — a cycle-approximate multi-core machine substrate
//!
//! This crate models the hardware platform the NMO profiler runs on: an
//! ARM-server-like multi-core machine with a private L1d/L2 per core, a
//! shared system-level cache (SLC), a multi-node memory topology (local DDR
//! plus optional CXL-style remote nodes, each with its own latency and
//! bandwidth contention model), a 64 KiB-page virtual address space with
//! first-touch page placement across the nodes, and a per-core *operation
//! stream* that observers (such as the ARM SPE unit model in the `spe`
//! crate) can subscribe to.
//!
//! The paper evaluates NMO on an Ampere Altra Max (Neoverse V1-class, 128
//! cores, 64 KiB pages, 256 GiB DDR4, 200 GB/s peak). Since real SPE hardware
//! is not available in this environment, this simulator provides the closest
//! synthetic equivalent: real multi-threaded Rust workloads (see the
//! `workloads` crate) perform their computation on host memory while routing
//! every load/store through [`Engine::load`]/[`Engine::store`], which
//!
//! 1. walks the simulated cache hierarchy and DRAM model to obtain the memory
//!    level, latency, and bus traffic of the access,
//! 2. advances the simulated core clock,
//! 3. updates machine-wide counters (the `mem_access` event used by the
//!    `perf stat` baseline, bus bytes used for bandwidth profiling, RSS
//!    first-touch accounting used for capacity profiling), and
//! 4. hands the retired operation to the core's [`OpObserver`], which is how
//!    the SPE sampling unit sees the instruction stream.
//!
//! The design goal is *mechanistic fidelity of the profiling path*, not
//! microarchitectural accuracy: everything NMO measures (sample counts,
//! collisions, truncation, interrupt-driven overhead, bandwidth, RSS) emerges
//! from the same mechanisms as on real hardware.
//!
//! ## Quick example
//!
//! ```
//! use arch_sim::{Machine, MachineConfig, OpKind};
//!
//! let machine = Machine::new(MachineConfig::small_test());
//! let region = machine.alloc("data", 1 << 20).unwrap();
//! let mut engine = machine.attach(0).unwrap();
//! for i in 0..1024u64 {
//!     engine.load(region.start + i * 8, 8);
//! }
//! drop(engine);
//! assert_eq!(machine.counters().mem_access, 1024);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod clock;
pub mod config;
pub mod counters;
pub mod engine;
pub mod machine;
pub mod observer;
pub mod op;
pub mod topology;
pub mod vm;

pub use cache::Cache;
pub use clock::TimeConv;
pub use config::{
    CacheLevelConfig, CostModel, MachineConfig, MemNodeConfig, MemTopologyConfig,
    MigrationCostConfig, PlacementPolicy, MAX_MEM_NODES,
};
pub use counters::{CoreCounters, MachineCounters, MigrationStats};
pub use engine::Engine;
pub use machine::{BandwidthPoint, Machine, RssPoint};
pub use observer::{FanoutObserver, NullObserver, ObserverCharge, OpObserver};
pub use op::{DataSource, MemLevel, MemOutcome, NodeId, Op, OpKind};
pub use topology::{MemNode, MemTopology, NodeAccess};
pub use vm::{AddressSpace, PageHome, PageMigration, Region};

/// Errors produced by the machine substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The requested core id does not exist on this machine.
    NoSuchCore(usize),
    /// The core is already attached to an engine (checked out by a thread).
    CoreBusy(usize),
    /// The virtual address space could not satisfy an allocation.
    OutOfAddressSpace,
    /// An allocation with the same name already exists.
    DuplicateRegion(String),
    /// A configuration value is invalid (e.g. non-power-of-two cache geometry).
    BadConfig(String),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::NoSuchCore(c) => write!(f, "no such core: {c}"),
            SimError::CoreBusy(c) => write!(f, "core {c} is already attached to an engine"),
            SimError::OutOfAddressSpace => write!(f, "virtual address space exhausted"),
            SimError::DuplicateRegion(n) => write!(f, "a region named '{n}' already exists"),
            SimError::BadConfig(msg) => write!(f, "bad configuration: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, SimError>;
