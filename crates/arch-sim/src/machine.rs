//! The simulated machine: cores, shared cache, the multi-node memory
//! topology, address space, and the temporal series (bandwidth, resident set
//! size) the NMO profiler consumes.

use parking_lot::Mutex;

use crate::cache::Cache;
use crate::clock::TimeConv;
use crate::config::{MachineConfig, MAX_MEM_NODES};
use crate::counters::{CoreCounters, MachineCounters, MigrationStats};
use crate::engine::Engine;
use crate::observer::OpObserver;
use crate::op::NodeId;
use crate::topology::MemTopology;
use crate::vm::{AddressSpace, PageMigration, Region};
use crate::{Result, SimError};

/// State owned by one simulated core. Checked out by an [`Engine`] while a
/// workload thread is running on the core, so the hot path needs no locks.
pub(crate) struct CoreState {
    /// Core id.
    pub id: usize,
    /// Private L1 data cache.
    pub l1: Cache,
    /// Private L2 cache.
    pub l2: Cache,
    /// Core clock in cycles (fractional cycles accumulate in f64).
    pub clock: f64,
    /// Event counters.
    pub counters: CoreCounters,
    /// Attached operation observer (the SPE unit when profiling is enabled).
    pub observer: Option<Box<dyn OpObserver>>,
    /// Bus bytes per bandwidth bucket attributable to this core, split per
    /// memory node.
    pub bw_buckets: Vec<[u64; MAX_MEM_NODES]>,
}

impl std::fmt::Debug for CoreState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoreState")
            .field("id", &self.id)
            .field("clock", &self.clock)
            .field("counters", &self.counters)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl CoreState {
    fn new(id: usize, cfg: &MachineConfig) -> Self {
        CoreState {
            id,
            l1: Cache::new(&cfg.l1d),
            l2: Cache::new(&cfg.l2),
            clock: 0.0,
            counters: CoreCounters::default(),
            observer: None,
            bw_buckets: Vec::new(),
        }
    }
}

/// One point of the memory-bandwidth-over-time series (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Start of the bucket, in simulated nanoseconds.
    pub time_ns: u64,
    /// Bus bytes transferred during the bucket (all nodes).
    pub bytes: u64,
    /// Bus bytes transferred during the bucket, per memory node.
    pub by_node: [u64; MAX_MEM_NODES],
    /// Bandwidth in GiB/s over the bucket.
    pub gib_per_s: f64,
}

/// One point of the resident-set-size-over-time series (Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RssPoint {
    /// Simulated time of the event, nanoseconds.
    pub time_ns: u64,
    /// Resident set size after the event, bytes (all nodes).
    pub rss_bytes: u64,
    /// Resident set size after the event, per memory node.
    pub rss_by_node: [u64; MAX_MEM_NODES],
}

impl RssPoint {
    /// A point with the whole RSS on node 0 (single-node topologies and
    /// tests).
    pub fn flat(time_ns: u64, rss_bytes: u64) -> Self {
        let mut rss_by_node = [0u64; MAX_MEM_NODES];
        rss_by_node[0] = rss_bytes;
        RssPoint { time_ns, rss_bytes, rss_by_node }
    }
}

/// The simulated multi-core machine.
pub struct Machine {
    cfg: MachineConfig,
    timeconv: TimeConv,
    vm: AddressSpace,
    /// The memory nodes (local DDR plus any remote tiers).
    topology: MemTopology,
    /// Sharded shared system-level cache. A line maps to shard
    /// `(line_index) & (shards - 1)`.
    slc: Vec<Mutex<Cache>>,
    /// Per-core state; `None` while checked out by an engine.
    cores: Vec<Mutex<Option<CoreState>>>,
    /// Step events of the RSS-over-time series.
    rss_events: Mutex<Vec<RssPoint>>,
    /// Counters of the page-migration subsystem.
    migration_stats: Mutex<MigrationStats>,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("name", &self.cfg.name)
            .field("num_cores", &self.cfg.num_cores)
            .field("mem_nodes", &self.topology.len())
            .finish()
    }
}

impl Machine {
    /// Build a machine from a (validated) configuration.
    ///
    /// # Panics
    /// Panics if the configuration is invalid; use [`MachineConfig::validate`]
    /// first if the configuration is user-supplied.
    pub fn new(cfg: MachineConfig) -> Self {
        // unwrap-ok: the panic is this constructor's documented contract
        // (see `# Panics` above); fallible callers validate first.
        cfg.validate().expect("invalid machine configuration");
        let timeconv =
            TimeConv { core_freq_hz: cfg.freq_hz, timer_freq_hz: 25_000_000, time_zero_ns: 0 };
        let vm = AddressSpace::with_placement(
            cfg.page_bytes,
            cfg.total_mem_bytes(),
            cfg.mem_nodes(),
            cfg.mem.placement,
        );
        let topology = MemTopology::from_config(&cfg.mem);
        let slc = (0..cfg.slc_shards)
            .map(|_| Mutex::named(Cache::new_shard(&cfg.slc, cfg.slc_shards), "machine.slc"))
            .collect();
        let cores = (0..cfg.num_cores)
            .map(|id| Mutex::named(Some(CoreState::new(id, &cfg)), "machine.core"))
            .collect();
        Machine {
            cfg,
            timeconv,
            vm,
            topology,
            slc,
            cores,
            rss_events: Mutex::named(Vec::new(), "machine.rss"),
            migration_stats: Mutex::named(MigrationStats::default(), "machine.migrations"),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Time-base conversion helper for this machine.
    pub fn timeconv(&self) -> TimeConv {
        self.timeconv
    }

    /// The virtual address space.
    pub fn vm(&self) -> &AddressSpace {
        &self.vm
    }

    /// The memory topology (every node, local and remote).
    pub fn topology(&self) -> &MemTopology {
        &self.topology
    }

    pub(crate) fn slc_shard(&self, vaddr: u64) -> &Mutex<Cache> {
        let line = vaddr >> self.cfg.slc.line_bytes.trailing_zeros();
        let idx = (line as usize) & (self.slc.len() - 1);
        &self.slc[idx]
    }

    /// Allocate a named region of the simulated address space.
    pub fn alloc(&self, name: &str, len: u64) -> Result<Region> {
        self.vm.alloc(name, len)
    }

    /// Free a named region, recording the RSS drop at simulated time
    /// `now_cycles` (use [`Engine::free`] from workload code so the timestamp
    /// comes from the issuing core's clock).
    pub fn free_at(&self, name: &str, now_cycles: u64) -> bool {
        let freed = self.vm.free(name);
        if freed {
            self.push_rss_event(now_cycles);
        }
        freed
    }

    pub(crate) fn push_rss_event(&self, now_cycles: u64) {
        // One consistent reading: taking total and per-node split under
        // separate locks could record a point whose split does not sum to
        // its total when another core first-touches in between.
        let (rss_bytes, rss_by_node) = self.vm.rss_snapshot();
        let point = RssPoint { time_ns: self.cfg.cycles_to_ns(now_cycles), rss_bytes, rss_by_node };
        self.rss_events.lock().push(point);
    }

    /// Migrate the resident page containing `addr` onto memory node `dst` at
    /// simulated time `now_cycles` — the actuator of profile-guided dynamic
    /// tiering. On success the page is re-homed (every later DRAM-class
    /// access to it is served by `dst`), a page's worth of traffic occupies
    /// both nodes' links, the configured fixed cost plus the transfer
    /// latency is recorded in [`MigrationStats`], and the RSS series gains a
    /// step event carrying the new per-node split.
    ///
    /// Returns `Ok(None)` (a no-op) when the page is not resident, lies
    /// outside every live region, or already lives on `dst`; `Err` when
    /// `dst` does not exist on this machine. Safe to call from any thread,
    /// including while workload engines are running on the cores.
    pub fn migrate_page(
        &self,
        addr: u64,
        dst: NodeId,
        now_cycles: u64,
    ) -> Result<Option<PageMigration>> {
        if (dst as usize) >= self.topology.len() {
            return Err(SimError::BadConfig(format!(
                "migrate_page: no memory node {dst} on '{}' ({} nodes)",
                self.cfg.name,
                self.topology.len()
            )));
        }
        let Some(migration) = self.vm.migrate_page(addr, dst) else {
            return Ok(None);
        };
        let transfer = self.topology.transfer_page(
            migration.from,
            migration.to,
            now_cycles,
            migration.bytes as u32,
        );
        let cycles = self.cfg.mem.migration.fixed_cycles_per_page + transfer;
        self.migration_stats.lock().record(
            migration.bytes,
            self.topology.node(migration.from).is_remote(),
            self.topology.node(migration.to).is_remote(),
            cycles,
        );
        self.push_rss_event(now_cycles);
        Ok(Some(migration))
    }

    /// Snapshot of the page-migration counters.
    pub fn migration_stats(&self) -> MigrationStats {
        *self.migration_stats.lock()
    }

    /// Attach an engine to a core (checking the core state out of the machine).
    pub fn attach(&self, core_id: usize) -> Result<Engine<'_>> {
        let slot = self.cores.get(core_id).ok_or(SimError::NoSuchCore(core_id))?;
        let state = slot.lock().take().ok_or(SimError::CoreBusy(core_id))?;
        Ok(Engine::new(self, state))
    }

    pub(crate) fn return_core(&self, state: CoreState) {
        let slot = &self.cores[state.id];
        *slot.lock() = Some(state);
    }

    /// Attach an operation observer (e.g. an SPE unit) to a core.
    ///
    /// Fails if the core is currently checked out by an engine.
    pub fn set_observer(&self, core_id: usize, observer: Box<dyn OpObserver>) -> Result<()> {
        let slot = self.cores.get(core_id).ok_or(SimError::NoSuchCore(core_id))?;
        let mut guard = slot.lock();
        match guard.as_mut() {
            Some(state) => {
                state.observer = Some(observer);
                Ok(())
            }
            None => Err(SimError::CoreBusy(core_id)),
        }
    }

    /// Flush the observer attached to a core without detaching it: buffered
    /// profiling data is published immediately (see
    /// [`OpObserver::on_flush`]), with any flush cost charged to the core's
    /// clock. Returns `Ok(true)` if an observer was flushed, `Ok(false)` if
    /// the core has none, and `Err(CoreBusy)` while an engine holds the core
    /// (use [`Engine::flush_observer`](crate::Engine::flush_observer) from
    /// the owning thread instead).
    pub fn flush_observer(&self, core_id: usize) -> Result<bool> {
        let slot = self.cores.get(core_id).ok_or(SimError::NoSuchCore(core_id))?;
        let mut guard = slot.lock();
        match guard.as_mut() {
            Some(state) => match state.observer.as_mut() {
                Some(obs) => {
                    let charge = obs.on_flush(state.clock as u64);
                    if charge.extra_cycles > 0 {
                        state.clock += charge.extra_cycles as f64;
                        state.counters.observer_cycles += charge.extra_cycles;
                        state.counters.cycles = state.clock as u64;
                    }
                    Ok(true)
                }
                None => Ok(false),
            },
            None => Err(SimError::CoreBusy(core_id)),
        }
    }

    /// Remove and return the observer attached to a core, if any.
    pub fn take_observer(&self, core_id: usize) -> Result<Option<Box<dyn OpObserver>>> {
        let slot = self.cores.get(core_id).ok_or(SimError::NoSuchCore(core_id))?;
        let mut guard = slot.lock();
        match guard.as_mut() {
            Some(state) => Ok(state.observer.take()),
            None => Err(SimError::CoreBusy(core_id)),
        }
    }

    /// Snapshot of one core's counters (None if the core is checked out).
    pub fn core_counters(&self, core_id: usize) -> Option<CoreCounters> {
        self.cores.get(core_id)?.lock().as_ref().map(|s| s.counters)
    }

    /// Machine-wide counter snapshot (sums over all cores not currently
    /// checked out; call after workload threads have detached).
    pub fn counters(&self) -> MachineCounters {
        let mut m = MachineCounters::default();
        for slot in &self.cores {
            if let Some(state) = slot.lock().as_ref() {
                m.absorb(&state.counters);
            }
        }
        m
    }

    /// Simulated makespan in cycles (max core clock).
    pub fn makespan_cycles(&self) -> u64 {
        self.counters().cycles
    }

    /// Simulated makespan in nanoseconds.
    pub fn makespan_ns(&self) -> u64 {
        self.cfg.cycles_to_ns(self.makespan_cycles())
    }

    /// The memory-bandwidth-over-time series (Figure 3), aggregated over all
    /// cores, one point per `bandwidth_bucket_cycles`-wide bucket, with the
    /// per-node traffic split preserved in [`BandwidthPoint::by_node`].
    pub fn bandwidth_series(&self) -> Vec<BandwidthPoint> {
        let mut buckets: Vec<[u64; MAX_MEM_NODES]> = Vec::new();
        for slot in &self.cores {
            if let Some(state) = slot.lock().as_ref() {
                if state.bw_buckets.len() > buckets.len() {
                    buckets.resize(state.bw_buckets.len(), [0; MAX_MEM_NODES]);
                }
                for (i, by_node) in state.bw_buckets.iter().enumerate() {
                    for (node, b) in by_node.iter().enumerate() {
                        buckets[i][node] += *b;
                    }
                }
            }
        }
        let bucket_cycles = self.cfg.bandwidth_bucket_cycles;
        let bucket_ns = self.cfg.cycles_to_ns(bucket_cycles).max(1);
        buckets
            .iter()
            .enumerate()
            .map(|(i, by_node)| {
                let bytes: u64 = by_node.iter().sum();
                BandwidthPoint {
                    time_ns: i as u64 * bucket_ns,
                    bytes,
                    by_node: *by_node,
                    gib_per_s: bytes as f64 / (1u64 << 30) as f64 / (bucket_ns as f64 * 1e-9),
                }
            })
            .collect()
    }

    /// The resident-set-size-over-time series (Figure 2): one step event per
    /// page first-touch or region free, with the per-node residency split in
    /// [`RssPoint::rss_by_node`].
    pub fn rss_series(&self) -> Vec<RssPoint> {
        self.rss_events.lock().clone()
    }

    /// The RSS step events from index `from` onward — the incremental read
    /// for streaming consumers, which copies only the new suffix instead of
    /// cloning the whole series on every poll.
    pub fn rss_events_since(&self, from: usize) -> Vec<RssPoint> {
        let events = self.rss_events.lock();
        events.get(from..).map(<[RssPoint]>::to_vec).unwrap_or_default()
    }

    /// Current resident set size in bytes.
    pub fn rss_bytes(&self) -> u64 {
        self.vm.rss_bytes()
    }

    /// Flush all caches and reset memory-node traffic and busy frontiers
    /// (used between experiment trials that reuse a machine). Counters,
    /// clocks and RSS are preserved.
    pub fn flush_caches(&self) {
        for slot in &self.cores {
            if let Some(state) = slot.lock().as_mut() {
                state.l1.flush();
                state.l2.flush();
            }
        }
        for shard in &self.slc {
            shard.lock().flush();
        }
        self.topology.reset();
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cfg.num_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PlacementPolicy;
    use crate::observer::CountingObserver;

    #[test]
    fn attach_and_detach_cores() {
        let m = Machine::new(MachineConfig::small_test());
        let e0 = m.attach(0).unwrap();
        assert!(matches!(m.attach(0), Err(SimError::CoreBusy(0))));
        assert!(matches!(m.attach(99), Err(SimError::NoSuchCore(99))));
        drop(e0);
        // After drop the core is back.
        let _e0 = m.attach(0).unwrap();
    }

    #[test]
    fn observer_attachment_lifecycle() {
        let m = Machine::new(MachineConfig::small_test());
        m.set_observer(1, Box::new(CountingObserver::default())).unwrap();
        assert!(m.take_observer(1).unwrap().is_some());
        assert!(m.take_observer(1).unwrap().is_none());
        assert!(m.set_observer(42, Box::new(CountingObserver::default())).is_err());
    }

    #[test]
    fn flush_observer_reaches_attached_observer() {
        let m = Machine::new(MachineConfig::small_test());
        assert!(!m.flush_observer(0).unwrap(), "no observer installed yet");
        m.set_observer(0, Box::new(CountingObserver::default())).unwrap();
        assert!(m.flush_observer(0).unwrap());
        let obs = m.take_observer(0).unwrap().unwrap();
        // Downcast-free check: reinstall and flush again, then inspect via
        // the engine path.
        m.set_observer(0, obs).unwrap();
        let mut e = m.attach(0).unwrap();
        e.flush_observer();
        assert!(matches!(m.flush_observer(0), Err(SimError::CoreBusy(0))));
        drop(e);
        assert!(matches!(m.flush_observer(99), Err(SimError::NoSuchCore(99))));
    }

    #[test]
    fn cannot_set_observer_while_checked_out() {
        let m = Machine::new(MachineConfig::small_test());
        let _e = m.attach(2).unwrap();
        assert!(matches!(
            m.set_observer(2, Box::new(CountingObserver::default())),
            Err(SimError::CoreBusy(2))
        ));
    }

    #[test]
    fn counters_initially_zero() {
        let m = Machine::new(MachineConfig::small_test());
        let c = m.counters();
        assert_eq!(c.mem_access, 0);
        assert_eq!(c.cycles, 0);
        assert!(m.bandwidth_series().is_empty());
        assert!(m.rss_series().is_empty());
    }

    #[test]
    fn rss_events_since_reads_only_the_new_suffix() {
        let m = Machine::new(MachineConfig::small_test());
        let page = m.config().page_bytes;
        let region = m.alloc("data", 4 * page).unwrap();
        {
            let mut e = m.attach(0).unwrap();
            e.store(region.start, 8);
            e.store(region.start + page, 8);
        }
        let first = m.rss_events_since(0);
        assert_eq!(first.len(), 2);
        assert_eq!(first, m.rss_series());
        {
            let mut e = m.attach(0).unwrap();
            e.store(region.start + 2 * page, 8);
        }
        let fresh = m.rss_events_since(first.len());
        assert_eq!(fresh.len(), 1);
        assert_eq!(fresh[0].rss_bytes, 3 * page);
        assert_eq!(fresh[0].rss_by_node[0], 3 * page, "single-node machine homes on node 0");
        assert!(m.rss_events_since(99).is_empty(), "past-the-end cursor yields nothing");
    }

    #[test]
    fn tiered_machine_splits_rss_events_per_node() {
        let m = Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::Interleave));
        let page = m.config().page_bytes;
        let region = m.alloc("data", 4 * page).unwrap();
        {
            let mut e = m.attach(0).unwrap();
            for p in 0..4u64 {
                e.store(region.start + p * page, 8);
            }
        }
        let series = m.rss_series();
        let last = series.last().unwrap();
        assert_eq!(last.rss_bytes, 4 * page);
        assert_eq!(last.rss_by_node[0], 2 * page);
        assert_eq!(last.rss_by_node[1], 2 * page);
        assert_eq!(last.rss_by_node.iter().sum::<u64>(), last.rss_bytes);
    }

    #[test]
    fn migrate_page_rehomes_charges_and_records() {
        let m = Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.0,
        }));
        let page = m.config().page_bytes;
        let region = m.alloc("data", 2 * page).unwrap();
        {
            let mut e = m.attach(0).unwrap();
            e.store(region.start, 8);
            e.store(region.start + page, 8);
        }
        assert_eq!(m.vm().rss_bytes_by_node()[1], 2 * page, "TierSplit(0) homes remotely");
        let node_traffic_before = m.topology().node(0).write_bytes();

        let mig = m.migrate_page(region.start, 0, 1_000).unwrap().expect("page migrates");
        assert_eq!((mig.from, mig.to), (1, 0));
        assert_eq!(m.vm().node_of(region.start), Some(0));
        let stats = m.migration_stats();
        assert_eq!(stats.migrations, 1);
        assert_eq!(stats.promoted_pages, 1);
        assert_eq!(stats.promoted_bytes, page);
        assert_eq!(stats.demoted_pages, 0);
        assert_eq!(stats.bus_bytes, 2 * page);
        assert!(
            stats.charged_cycles >= m.config().mem.migration.fixed_cycles_per_page,
            "{stats:?}"
        );
        // The transfer occupied the destination link.
        assert_eq!(m.topology().node(0).write_bytes(), node_traffic_before + page);
        // The RSS series recorded the re-homing as a step event.
        let last = *m.rss_series().last().unwrap();
        assert_eq!(last.rss_bytes, 2 * page, "total residency unchanged");
        assert_eq!(last.rss_by_node[0], page);
        assert_eq!(last.rss_by_node[1], page);

        // Demotion direction.
        m.migrate_page(region.start, 1, 2_000).unwrap().expect("demotes");
        let stats = m.migration_stats();
        assert_eq!(stats.demoted_pages, 1);
        assert_eq!(stats.demoted_bytes, page);

        // No-ops and errors.
        assert!(m.migrate_page(region.start, 1, 3_000).unwrap().is_none(), "already home");
        assert!(m.migrate_page(0xdead_0000, 0, 3_000).unwrap().is_none(), "outside regions");
        assert!(matches!(m.migrate_page(region.start, 9, 3_000), Err(SimError::BadConfig(_))));
        assert_eq!(m.migration_stats().migrations, 2, "no-ops never count");
    }

    #[test]
    fn migrated_page_is_served_by_its_new_node() {
        let m = Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.0,
        }));
        let page = m.config().page_bytes;
        let region = m.alloc("data", page).unwrap();
        {
            let mut e = m.attach(0).unwrap();
            e.store(region.start, 8);
        }
        m.migrate_page(region.start, 0, 1_000).unwrap().expect("promotes");
        // Flush caches so the next access goes back to memory.
        m.flush_caches();
        let mut e = m.attach(0).unwrap();
        let out = e.load(region.start, 8);
        assert_eq!(out.source, crate::op::DataSource::Dram(0), "served locally after promotion");
    }

    #[test]
    fn slc_sharding_covers_all_shards() {
        let m = Machine::new(MachineConfig::small_test());
        let mut seen = std::collections::HashSet::new();
        for line in 0..64u64 {
            let shard = m.slc_shard(line * 64) as *const _;
            seen.insert(shard as usize);
        }
        assert_eq!(seen.len(), m.config().slc_shards);
    }
}
