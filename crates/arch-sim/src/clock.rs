//! Time-base conversion between core cycles, nanoseconds, and the SPE
//! generic-timer timescale.
//!
//! ARM SPE timestamps are taken from the generic timer (`CNTVCT_EL0`), which
//! runs at a different (much lower) frequency than both the core clock and
//! the perf clock. The perf metadata page publishes a `(time_zero,
//! time_shift, time_mult)` triple so user space can convert timer ticks into
//! perf-clock nanoseconds:
//!
//! ```text
//! ns = time_zero + (ticks * time_mult) >> time_shift
//! ```
//!
//! NMO performs exactly this conversion when decoding SPE records (Section
//! IV-A of the paper); [`TimeConv`] implements both directions so the
//! profiler and the tests can verify it.

/// Conversion between core cycles, generic-timer ticks, and nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeConv {
    /// Core frequency in Hz.
    pub core_freq_hz: u64,
    /// Generic-timer (SPE timestamp) frequency in Hz. ARM systems commonly use
    /// 25 MHz or 1 GHz; the Altra uses 25 MHz.
    pub timer_freq_hz: u64,
    /// Offset added to converted timestamps (perf's `time_zero`), nanoseconds.
    pub time_zero_ns: u64,
}

impl TimeConv {
    /// Conversion for the paper's testbed: 3.0 GHz cores, 25 MHz generic timer.
    pub fn altra() -> Self {
        TimeConv { core_freq_hz: 3_000_000_000, timer_freq_hz: 25_000_000, time_zero_ns: 0 }
    }

    /// Construct a conversion with an explicit time-zero offset.
    pub fn with_time_zero(mut self, time_zero_ns: u64) -> Self {
        self.time_zero_ns = time_zero_ns;
        self
    }

    /// Convert core cycles to nanoseconds (truncating).
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        ((cycles as u128 * 1_000_000_000) / self.core_freq_hz as u128) as u64
    }

    /// Convert nanoseconds to core cycles (truncating).
    pub fn ns_to_cycles(&self, ns: u64) -> u64 {
        ((ns as u128 * self.core_freq_hz as u128) / 1_000_000_000) as u64
    }

    /// Convert core cycles to generic-timer ticks (the unit SPE timestamps use).
    pub fn cycles_to_timer_ticks(&self, cycles: u64) -> u64 {
        ((cycles as u128 * self.timer_freq_hz as u128) / self.core_freq_hz as u128) as u64
    }

    /// Convert generic-timer ticks to nanoseconds directly.
    pub fn timer_ticks_to_ns(&self, ticks: u64) -> u64 {
        self.time_zero_ns + ((ticks as u128 * 1_000_000_000) / self.timer_freq_hz as u128) as u64
    }

    /// Compute the `(time_zero, time_shift, time_mult)` triple that perf would
    /// publish in the mmap metadata page for this timer frequency.
    ///
    /// perf chooses `time_shift` such that `time_mult = (10^9 << shift) /
    /// timer_freq` fits in a `u32`. We use the same approach with a fixed
    /// shift of 20 bits, which is what arm64 kernels typically report for a
    /// 25 MHz timer.
    pub fn perf_mmap_triple(&self) -> (u64, u16, u32) {
        let shift: u16 = 20;
        let mult = ((1_000_000_000u128 << shift) / self.timer_freq_hz as u128) as u32;
        (self.time_zero_ns, shift, mult)
    }

    /// Apply the perf metadata-page conversion, as NMO does when decoding.
    pub fn apply_mmap_triple(ticks: u64, time_zero: u64, time_shift: u16, time_mult: u32) -> u64 {
        time_zero + ((ticks as u128 * time_mult as u128) >> time_shift) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_ns_roundtrip_at_core_freq() {
        let tc = TimeConv::altra();
        assert_eq!(tc.cycles_to_ns(3_000_000_000), 1_000_000_000);
        assert_eq!(tc.ns_to_cycles(1_000_000_000), 3_000_000_000);
        // Round trip within truncation error of one cycle's worth of ns.
        for cycles in [1u64, 7, 1000, 123_456_789] {
            let ns = tc.cycles_to_ns(cycles);
            let back = tc.ns_to_cycles(ns);
            assert!(back <= cycles && cycles - back <= 3, "cycles={cycles} back={back}");
        }
    }

    #[test]
    fn timer_ticks_much_coarser_than_cycles() {
        let tc = TimeConv::altra();
        // 3 GHz core, 25 MHz timer: 120 cycles per tick.
        assert_eq!(tc.cycles_to_timer_ticks(120), 1);
        assert_eq!(tc.cycles_to_timer_ticks(119), 0);
        assert_eq!(tc.cycles_to_timer_ticks(3_000_000_000), 25_000_000);
    }

    #[test]
    fn mmap_triple_matches_direct_conversion() {
        let tc = TimeConv::altra().with_time_zero(5_000);
        let (zero, shift, mult) = tc.perf_mmap_triple();
        assert_eq!(zero, 5_000);
        for ticks in [0u64, 1, 25_000_000, 1_234_567] {
            let direct = tc.timer_ticks_to_ns(ticks);
            let via_triple = TimeConv::apply_mmap_triple(ticks, zero, shift, mult);
            let diff = direct.abs_diff(via_triple);
            // The fixed-point triple loses a little precision; stay within 1 us
            // over a second of ticks.
            assert!(diff <= 1_000, "ticks={ticks} direct={direct} triple={via_triple}");
        }
    }

    #[test]
    fn time_zero_offsets_conversion() {
        let tc = TimeConv::altra().with_time_zero(123);
        assert_eq!(tc.timer_ticks_to_ns(0), 123);
    }
}
