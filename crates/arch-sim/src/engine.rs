//! The per-thread execution engine.
//!
//! A workload thread attaches to a simulated core via [`Machine::attach`] and
//! receives an [`Engine`]. The engine is the only hot-path object: it owns
//! the core state (no locks on L1/L2 or counters), and for each memory
//! operation it walks the hierarchy, charges time, updates counters, and
//! notifies the core's observer (the SPE unit when profiling is on).
//!
//! [`Machine::attach`]: crate::machine::Machine::attach

use crate::machine::{CoreState, Machine};
use crate::op::{DataSource, MemOutcome, Op, OpKind};

/// Execution handle bound to one core of a [`Machine`].
///
/// Dropping the engine returns the core to the machine (and notifies the
/// observer via `on_detach`, which is when the SPE aux buffer is drained).
///
/// [`Machine`]: crate::machine::Machine
pub struct Engine<'m> {
    machine: &'m Machine,
    state: Option<CoreState>,
}

impl<'m> Engine<'m> {
    pub(crate) fn new(machine: &'m Machine, state: CoreState) -> Self {
        Engine { machine, state: Some(state) }
    }

    #[inline]
    fn st(&mut self) -> &mut CoreState {
        // unwrap-ok: `state` is Some from `new()` until `Drop`/`into_state`
        // consumes the engine; no method can observe the None window.
        self.state.as_mut().expect("engine state present until drop")
    }

    /// The core this engine is attached to.
    pub fn core_id(&self) -> usize {
        // unwrap-ok: see `st()` — Some for the engine's whole lifetime.
        self.state.as_ref().expect("engine state present until drop").id
    }

    /// Current core clock in cycles.
    pub fn now_cycles(&self) -> u64 {
        // unwrap-ok: see `st()` — Some for the engine's whole lifetime.
        self.state.as_ref().expect("engine state present until drop").clock as u64
    }

    /// Current core clock in simulated nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.machine.config().cycles_to_ns(self.now_cycles())
    }

    /// Issue a load of `size` bytes at virtual address `vaddr`.
    #[inline]
    pub fn load(&mut self, vaddr: u64, size: u32) -> MemOutcome {
        self.mem_op(OpKind::Load, 0, vaddr, size)
    }

    /// Issue a store of `size` bytes at virtual address `vaddr`.
    #[inline]
    pub fn store(&mut self, vaddr: u64, size: u32) -> MemOutcome {
        self.mem_op(OpKind::Store, 0, vaddr, size)
    }

    /// Issue a load with an explicit synthetic program counter (used by
    /// workloads so samples can be attributed to kernels).
    #[inline]
    pub fn load_at(&mut self, pc: u64, vaddr: u64, size: u32) -> MemOutcome {
        self.mem_op(OpKind::Load, pc, vaddr, size)
    }

    /// Issue a store with an explicit synthetic program counter.
    #[inline]
    pub fn store_at(&mut self, pc: u64, vaddr: u64, size: u32) -> MemOutcome {
        self.mem_op(OpKind::Store, pc, vaddr, size)
    }

    /// Issue a branch instruction (sampleable by SPE but excluded by NMO's
    /// default filter).
    pub fn branch(&mut self, pc: u64) {
        let cost = self.machine.config().cost.cycles_per_cpu_op;
        let st = self.st();
        st.counters.instructions += 1;
        st.counters.branches += 1;
        st.clock += cost;
        let now = st.clock as u64;
        if let Some(obs) = st.observer.as_mut() {
            let charge = obs.on_op(&Op::branch(pc), None, now);
            if charge.extra_cycles > 0 {
                st.clock += charge.extra_cycles as f64;
                st.counters.observer_cycles += charge.extra_cycles;
            }
        }
        st.counters.cycles = st.clock as u64;
    }

    /// Account `n` non-memory, non-sampleable ALU/control instructions.
    ///
    /// These advance the clock and the instruction counter but are not fed to
    /// the observer individually (NMO's SPE configuration samples only memory
    /// operations; see DESIGN.md for this simplification).
    pub fn cpu_work(&mut self, n: u64) {
        let cost = self.machine.config().cost.cycles_per_cpu_op;
        let st = self.st();
        st.counters.instructions += n;
        st.clock += n as f64 * cost;
        st.counters.cycles = st.clock as u64;
    }

    /// Account `n` floating-point operations (for arithmetic intensity).
    pub fn flops(&mut self, n: u64) {
        let cost = self.machine.config().cost.cycles_per_flop;
        let st = self.st();
        st.counters.instructions += n;
        st.counters.flops += n;
        st.clock += n as f64 * cost;
        st.counters.cycles = st.clock as u64;
    }

    /// Advance the core clock by `cycles` without retiring instructions
    /// (models stalls, synchronisation waits, I/O phases).
    pub fn idle(&mut self, cycles: u64) {
        let st = self.st();
        st.clock += cycles as f64;
        st.counters.cycles = st.clock as u64;
    }

    /// Flush the core's observer (if any): buffered profiling data (e.g. SPE
    /// records below the aux watermark) is published immediately and any
    /// flush cost is charged to this core's clock. Used by streaming
    /// profilers at window boundaries.
    pub fn flush_observer(&mut self) {
        let st = self.st();
        let now = st.clock as u64;
        if let Some(obs) = st.observer.as_mut() {
            let charge = obs.on_flush(now);
            if charge.extra_cycles > 0 {
                st.clock += charge.extra_cycles as f64;
                st.counters.observer_cycles += charge.extra_cycles;
                st.counters.cycles = st.clock as u64;
            }
        }
    }

    /// Free a named region of the simulated address space, timestamped with
    /// this core's clock so the RSS-over-time series records the drop.
    pub fn free(&mut self, name: &str) -> bool {
        let now = self.now_cycles();
        self.machine.free_at(name, now)
    }

    #[inline]
    fn mem_op(&mut self, kind: OpKind, pc: u64, vaddr: u64, size: u32) -> MemOutcome {
        let cfg = self.machine.config();
        let line_bytes = cfg.l1d.line_bytes;
        let is_store = kind == OpKind::Store;
        let machine = self.machine;

        // unwrap-ok: see `st()` — Some for the engine's whole lifetime
        // (split borrow of `machine` + `state` forces the inline access).
        let st = self.state.as_mut().expect("engine state present until drop");
        st.counters.instructions += 1;
        st.counters.mem_access += 1;
        if is_store {
            st.counters.stores += 1;
        } else {
            st.counters.loads += 1;
        }

        // Walk the hierarchy.
        let l1 = st.l1.access(vaddr, is_store);
        let outcome = if l1.hit {
            st.counters.l1_hits += 1;
            MemOutcome::hit(DataSource::L1, cfg.l1d.latency_cycles, cfg.l1d.occupancy_cycles)
        } else {
            let l2 = st.l2.access(vaddr, is_store);
            if l2.hit {
                st.counters.l2_hits += 1;
                MemOutcome::hit(DataSource::L2, cfg.l2.latency_cycles, cfg.l2.occupancy_cycles)
            } else {
                let slc_res = {
                    let mut shard = machine.slc_shard(vaddr).lock();
                    shard.access(vaddr, is_store)
                };
                if slc_res.hit {
                    st.counters.slc_hits += 1;
                    MemOutcome::hit(
                        DataSource::Slc,
                        cfg.slc.latency_cycles,
                        cfg.slc.occupancy_cycles,
                    )
                } else {
                    // Memory-node access: line fill plus any write-back from
                    // the hierarchy walk above. Resolving the page home first
                    // also performs first-touch placement — only the cold
                    // path needs it, since a never-touched page cannot be
                    // cached. Write-back traffic is charged to the same node
                    // as the fill (the model does not track the evicted
                    // line's home).
                    let wb = if l1.dirty_eviction || l2.dirty_eviction || slc_res.dirty_eviction {
                        line_bytes
                    } else {
                        0
                    };
                    let now = st.clock as u64;
                    let (node_id, first_touch) = match machine.vm().place(vaddr) {
                        Some(home) => (home.node, home.first_touch),
                        // Untracked address (outside every region): served by
                        // the local node, no residency accounting.
                        None => (0, false),
                    };
                    let node = machine.topology().node(node_id);
                    let acc = node.access(now, line_bytes, wb);
                    st.counters.dram_accesses += 1;
                    st.counters.bus_read_bytes += line_bytes as u64;
                    st.counters.bus_write_bytes += wb as u64;

                    // Bandwidth bucket accounting, split per serving node.
                    let bucket = (now / cfg.bandwidth_bucket_cycles) as usize;
                    if st.bw_buckets.len() <= bucket {
                        st.bw_buckets.resize(bucket + 1, [0; crate::config::MAX_MEM_NODES]);
                    }
                    st.bw_buckets[bucket][node_id as usize] += (line_bytes + wb) as u64;

                    if first_touch {
                        machine.push_rss_event(now);
                    }

                    let source = if node.is_remote() {
                        DataSource::RemoteDram(node_id)
                    } else {
                        DataSource::Dram(node_id)
                    };
                    MemOutcome {
                        source,
                        latency_cycles: acc.latency_cycles,
                        occupancy_cycles: node.occupancy() + acc.queue_cycles,
                        bus_bytes: line_bytes + wb,
                        first_touch,
                    }
                }
            }
        };

        st.clock += outcome.occupancy_cycles as f64 + cfg.cost.cycles_per_cpu_op;
        let now = st.clock as u64;

        if let Some(obs) = st.observer.as_mut() {
            let op = Op { kind, pc, vaddr, size };
            let charge = obs.on_op(&op, Some(&outcome), now);
            if charge.extra_cycles > 0 {
                st.clock += charge.extra_cycles as f64;
                st.counters.observer_cycles += charge.extra_cycles;
            }
        }
        st.counters.cycles = st.clock as u64;
        outcome
    }
}

impl Drop for Engine<'_> {
    fn drop(&mut self) {
        if let Some(mut state) = self.state.take() {
            if let Some(obs) = state.observer.as_mut() {
                let charge = obs.on_detach(state.clock as u64);
                if charge.extra_cycles > 0 {
                    state.clock += charge.extra_cycles as f64;
                    state.counters.observer_cycles += charge.extra_cycles;
                    state.counters.cycles = state.clock as u64;
                }
            }
            self.machine.return_core(state);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{MachineConfig, PlacementPolicy};
    use crate::machine::Machine;
    use crate::observer::CountingObserver;
    use crate::op::MemLevel;

    #[test]
    fn streaming_counts_and_levels() {
        let m = Machine::new(MachineConfig::small_test());
        let region = m.alloc("data", 1 << 20).unwrap();
        let mut e = m.attach(0).unwrap();
        let mut dram_seen = 0;
        let mut l1_seen = 0;
        for i in 0..8192u64 {
            let out = e.load(region.start + i * 8, 8);
            match out.level() {
                MemLevel::Dram => {
                    assert_eq!(out.source, DataSource::Dram(0), "single-node machine");
                    dram_seen += 1;
                }
                MemLevel::L1 => l1_seen += 1,
                _ => {}
            }
        }
        drop(e);
        let c = m.counters();
        assert_eq!(c.mem_access, 8192);
        assert_eq!(c.loads, 8192);
        // 8 consecutive 8-byte loads share one 64-byte line: 1 miss + 7 hits.
        assert_eq!(dram_seen, 1024);
        assert_eq!(l1_seen, 7 * 1024);
        assert_eq!(c.bus_read_bytes, 1024 * 64);
        assert!(c.cycles > 0);
    }

    #[test]
    fn repeated_access_hits_cache_and_is_faster() {
        let m = Machine::new(MachineConfig::small_test());
        let region = m.alloc("data", 1 << 16).unwrap();
        let mut e = m.attach(0).unwrap();
        // First pass: cold.
        for i in 0..64u64 {
            e.load(region.start + i * 8, 8);
        }
        let cold_cycles = e.now_cycles();
        // Second pass over the same 512 bytes: hot in L1.
        for i in 0..64u64 {
            e.load(region.start + i * 8, 8);
        }
        let hot_cycles = e.now_cycles() - cold_cycles;
        assert!(hot_cycles < cold_cycles * 7 / 10, "hot {hot_cycles} vs cold {cold_cycles}");
    }

    #[test]
    fn rss_grows_on_first_touch_only() {
        let m = Machine::new(MachineConfig::small_test());
        let page = m.config().page_bytes;
        let region = m.alloc("data", 4 * page).unwrap();
        let mut e = m.attach(0).unwrap();
        for rep in 0..2 {
            for p in 0..4u64 {
                e.store(region.start + p * page, 8);
            }
            if rep == 0 {
                assert_eq!(m.rss_bytes(), 4 * page);
            }
        }
        drop(e);
        assert_eq!(m.rss_bytes(), 4 * page);
        assert_eq!(m.rss_series().len(), 4);
    }

    #[test]
    fn observer_sees_ops_and_charges_overhead() {
        let m = Machine::new(MachineConfig::small_test());
        let region = m.alloc("data", 1 << 16).unwrap();
        m.set_observer(0, Box::new(CountingObserver { charge_per_op: 5, ..Default::default() }))
            .unwrap();
        let mut e = m.attach(0).unwrap();
        for i in 0..100u64 {
            e.load(region.start + i * 8, 8);
        }
        e.cpu_work(50);
        e.branch(0x400000);
        drop(e);
        let c = m.counters();
        // 100 mem ops + 1 branch were observed, each charged 5 cycles.
        assert_eq!(c.observer_cycles, 101 * 5);
        assert_eq!(c.instructions, 100 + 50 + 1);
        assert_eq!(c.branches, 1);
    }

    #[test]
    fn flops_and_idle_advance_clock() {
        let m = Machine::new(MachineConfig::small_test());
        let mut e = m.attach(0).unwrap();
        let t0 = e.now_cycles();
        e.flops(1000);
        e.idle(500);
        assert!(e.now_cycles() >= t0 + 500);
        drop(e);
        assert_eq!(m.counters().flops, 1000);
    }

    #[test]
    fn free_records_rss_drop() {
        let m = Machine::new(MachineConfig::small_test());
        let page = m.config().page_bytes;
        let region = m.alloc("tmp", 2 * page).unwrap();
        let mut e = m.attach(0).unwrap();
        e.store(region.start, 8);
        e.store(region.start + page, 8);
        assert_eq!(m.rss_bytes(), 2 * page);
        assert!(e.free("tmp"));
        assert_eq!(m.rss_bytes(), 0);
        drop(e);
        let series = m.rss_series();
        assert_eq!(series.last().unwrap().rss_bytes, 0);
    }

    #[test]
    fn write_back_traffic_counted() {
        let m = Machine::new(MachineConfig::small_test());
        // Write a working set much larger than SLC so dirty lines get evicted
        // all the way to DRAM.
        let region = m.alloc("data", 4 << 20).unwrap();
        let mut e = m.attach(0).unwrap();
        for i in (0..(4 << 20)).step_by(64) {
            e.store(region.start + i as u64, 8);
        }
        drop(e);
        let c = m.counters();
        assert!(c.bus_write_bytes > 0, "dirty evictions must produce write-backs");
    }

    #[test]
    fn tiered_machine_serves_remote_pages_slower() {
        let m = Machine::new(MachineConfig::small_test_tiered(PlacementPolicy::TierSplit {
            local_fraction: 0.5,
        }));
        // Stream far past every cache so accesses keep reaching the nodes.
        let region = m.alloc("data", 8 << 20).unwrap();
        let mut e = m.attach(0).unwrap();
        let mut local = Vec::new();
        let mut remote = Vec::new();
        for i in (0..(8 << 20)).step_by(64) {
            let out = e.load(region.start + i as u64, 8);
            match out.source {
                DataSource::Dram(0) => local.push(out.latency_cycles),
                DataSource::RemoteDram(1) => remote.push(out.latency_cycles),
                DataSource::Dram(_) | DataSource::RemoteDram(_) => {
                    panic!("unexpected node: {:?}", out.source)
                }
                _ => {}
            }
        }
        drop(e);
        assert!(!local.is_empty() && !remote.is_empty(), "both tiers served traffic");
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64;
        assert!(
            mean(&remote) > mean(&local) + 100.0,
            "remote tier must be visibly slower: local {} remote {}",
            mean(&local),
            mean(&remote)
        );
        // Traffic accounting reaches the right nodes.
        assert!(m.topology().node(0).accesses() > 0);
        assert!(m.topology().node(1).accesses() > 0);
        let bw = m.bandwidth_series();
        let by_node: [u64; crate::config::MAX_MEM_NODES] =
            bw.iter().fold([0; crate::config::MAX_MEM_NODES], |mut acc, p| {
                for (n, b) in p.by_node.iter().enumerate() {
                    acc[n] += b;
                }
                acc
            });
        assert!(by_node[0] > 0 && by_node[1] > 0, "per-node bandwidth split recorded: {by_node:?}");
        assert_eq!(by_node.iter().sum::<u64>(), bw.iter().map(|p| p.bytes).sum::<u64>());
    }

    #[test]
    fn parallel_threads_on_separate_cores() {
        let m = Machine::new(MachineConfig::small_test());
        let region = m.alloc("data", 1 << 20).unwrap();
        std::thread::scope(|s| {
            for t in 0..4usize {
                let m = &m;
                let region = region.clone();
                s.spawn(move || {
                    let mut e = m.attach(t).unwrap();
                    let base = region.start + (t as u64) * (1 << 18);
                    for i in 0..4096u64 {
                        e.load(base + i * 8, 8);
                    }
                });
            }
        });
        let c = m.counters();
        assert_eq!(c.mem_access, 4 * 4096);
        assert!(!m.bandwidth_series().is_empty());
    }
}
