//! Per-core operation observers.
//!
//! An [`OpObserver`] is attached to a simulated core and sees every retired
//! operation together with its memory outcome and the core's clock. The ARM
//! SPE unit model (in the `spe` crate) is an observer: it decides whether the
//! operation is sampled, forms the sample record, writes it to the aux
//! buffer, and — crucially for the paper's overhead experiments — reports how
//! many extra cycles of profiling work (filter evaluation, buffer writes,
//! watermark interrupts, drain processing) the core must absorb. The engine
//! charges those cycles to the core clock, so profiling overhead shows up in
//! the simulated execution time exactly as it does on real hardware.

use crate::op::{MemOutcome, Op};

/// Cycles charged to the core by an observer for one retired operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ObserverCharge {
    /// Extra cycles the core spends on profiling work attributable to this op
    /// (e.g. its share of an aux-buffer watermark interrupt).
    pub extra_cycles: u64,
}

impl ObserverCharge {
    /// No overhead.
    pub const NONE: ObserverCharge = ObserverCharge { extra_cycles: 0 };

    /// Charge the given number of cycles.
    pub fn cycles(extra_cycles: u64) -> Self {
        ObserverCharge { extra_cycles }
    }
}

/// Observer of a core's retired-operation stream.
pub trait OpObserver: Send {
    /// Called after each retired operation.
    ///
    /// * `op` — the retired operation.
    /// * `outcome` — memory outcome (None for non-memory ops).
    /// * `now_cycles` — the core clock *after* the op itself retired, before
    ///   any observer charge is applied.
    fn on_op(&mut self, op: &Op, outcome: Option<&MemOutcome>, now_cycles: u64) -> ObserverCharge;

    /// Called when the owning engine detaches from the core (end of a
    /// workload phase or of the run). `now_cycles` is the core clock at
    /// detach time. Returns a final charge (e.g. the cost of draining a
    /// partially filled aux buffer).
    fn on_detach(&mut self, _now_cycles: u64) -> ObserverCharge {
        ObserverCharge::NONE
    }

    /// Ask the observer to publish any internally buffered data *now*,
    /// without detaching. A streaming profiler calls this at window
    /// boundaries so partially accumulated data (e.g. SPE records below the
    /// aux watermark) becomes visible to consumers mid-run, instead of only
    /// at [`OpObserver::on_detach`]. Observers without internal buffering
    /// keep the default no-op.
    fn on_flush(&mut self, _now_cycles: u64) -> ObserverCharge {
        ObserverCharge::NONE
    }
}

/// An observer that dispatches every callback to several child observers and
/// sums their charges.
///
/// One core has exactly one observer slot; a profiling session that runs
/// several sample backends on the same core (e.g. ARM SPE sampling plus
/// `perf stat`-style counting) composes their per-core observers with this
/// type.
pub struct FanoutObserver {
    observers: Vec<Box<dyn OpObserver>>,
}

impl FanoutObserver {
    /// Compose `observers` into a single observer. Order is preserved: charges
    /// accrue in registration order.
    pub fn new(observers: Vec<Box<dyn OpObserver>>) -> Self {
        FanoutObserver { observers }
    }

    /// Number of child observers.
    pub fn len(&self) -> usize {
        self.observers.len()
    }

    /// True when there are no child observers.
    pub fn is_empty(&self) -> bool {
        self.observers.is_empty()
    }
}

impl std::fmt::Debug for FanoutObserver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FanoutObserver").field("observers", &self.observers.len()).finish()
    }
}

impl OpObserver for FanoutObserver {
    fn on_op(&mut self, op: &Op, outcome: Option<&MemOutcome>, now_cycles: u64) -> ObserverCharge {
        let mut total = 0u64;
        for obs in &mut self.observers {
            total += obs.on_op(op, outcome, now_cycles).extra_cycles;
        }
        ObserverCharge::cycles(total)
    }

    fn on_detach(&mut self, now_cycles: u64) -> ObserverCharge {
        let mut total = 0u64;
        for obs in &mut self.observers {
            total += obs.on_detach(now_cycles).extra_cycles;
        }
        ObserverCharge::cycles(total)
    }

    fn on_flush(&mut self, now_cycles: u64) -> ObserverCharge {
        let mut total = 0u64;
        for obs in &mut self.observers {
            total += obs.on_flush(now_cycles).extra_cycles;
        }
        ObserverCharge::cycles(total)
    }
}

/// An observer that does nothing (profiling disabled).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullObserver;

impl OpObserver for NullObserver {
    fn on_op(&mut self, _op: &Op, _outcome: Option<&MemOutcome>, _now: u64) -> ObserverCharge {
        ObserverCharge::NONE
    }
}

/// A simple recording observer used in tests and examples: counts ops by kind
/// and remembers the last few addresses.
#[derive(Debug, Default)]
pub struct CountingObserver {
    /// Number of memory ops seen.
    pub mem_ops: u64,
    /// Number of non-memory ops seen.
    pub other_ops: u64,
    /// Last observed core clock.
    pub last_cycles: u64,
    /// Fixed per-op charge, for overhead-model tests.
    pub charge_per_op: u64,
    /// Number of detach callbacks received.
    pub detaches: u64,
    /// Number of flush callbacks received.
    pub flushes: u64,
}

impl OpObserver for CountingObserver {
    fn on_op(&mut self, op: &Op, outcome: Option<&MemOutcome>, now_cycles: u64) -> ObserverCharge {
        if op.kind.is_mem() {
            debug_assert!(outcome.is_some(), "memory ops must carry an outcome");
            self.mem_ops += 1;
        } else {
            self.other_ops += 1;
        }
        self.last_cycles = now_cycles;
        ObserverCharge::cycles(self.charge_per_op)
    }

    fn on_detach(&mut self, _now_cycles: u64) -> ObserverCharge {
        self.detaches += 1;
        ObserverCharge::NONE
    }

    fn on_flush(&mut self, _now_cycles: u64) -> ObserverCharge {
        self.flushes += 1;
        ObserverCharge::NONE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{DataSource, MemOutcome, Op};

    #[test]
    fn counting_observer_counts() {
        let mut obs = CountingObserver { charge_per_op: 2, ..Default::default() };
        let outcome = MemOutcome::hit(DataSource::L1, 4, 1);
        let c = obs.on_op(&Op::load(0, 0x100, 8), Some(&outcome), 10);
        assert_eq!(c.extra_cycles, 2);
        obs.on_op(&Op::other(0), None, 12);
        assert_eq!(obs.mem_ops, 1);
        assert_eq!(obs.other_ops, 1);
        assert_eq!(obs.last_cycles, 12);
        obs.on_detach(20);
        assert_eq!(obs.detaches, 1);
    }

    #[test]
    fn null_observer_charges_nothing() {
        let mut obs = NullObserver;
        let c = obs.on_op(&Op::other(0), None, 0);
        assert_eq!(c, ObserverCharge::NONE);
    }

    #[test]
    fn fanout_dispatches_and_sums_charges() {
        let mut fan = FanoutObserver::new(vec![
            Box::new(CountingObserver { charge_per_op: 3, ..Default::default() }),
            Box::new(CountingObserver { charge_per_op: 4, ..Default::default() }),
            Box::new(NullObserver),
        ]);
        assert_eq!(fan.len(), 3);
        assert!(!fan.is_empty());
        let outcome = MemOutcome::hit(DataSource::L1, 4, 1);
        let c = fan.on_op(&Op::load(0, 0x100, 8), Some(&outcome), 5);
        assert_eq!(c.extra_cycles, 7);
        let c = fan.on_detach(9);
        assert_eq!(c.extra_cycles, 0);
        let c = fan.on_flush(11);
        assert_eq!(c.extra_cycles, 0);
    }

    #[test]
    fn flush_default_is_noop_and_counting_observer_records_it() {
        let mut obs = CountingObserver::default();
        assert_eq!(obs.on_flush(7), ObserverCharge::NONE);
        assert_eq!(obs.flushes, 1);
        let mut null = NullObserver;
        assert_eq!(null.on_flush(7), ObserverCharge::NONE);
    }
}
