//! Operation and memory-access outcome types.
//!
//! Every operation retired by a simulated core is described by an [`Op`];
//! memory operations additionally carry a [`MemOutcome`] describing which
//! part of the memory system served them and at what latency. These are
//! exactly the quantities ARM SPE records per sampled operation (PC, data
//! address, event flags, latency, data source), so the SPE unit model
//! consumes them directly.
//!
//! Since the machine models a multi-node memory topology (local DDR plus
//! CXL-style remote nodes), a DRAM-class access carries the *node* that
//! served it in its [`DataSource`]; the coarser [`MemLevel`] remains the
//! class-level view (L1/L2/SLC/DRAM) used by filters and summaries.

/// The kind of a retired operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A load instruction (reads memory).
    Load,
    /// A store instruction (writes memory).
    Store,
    /// A conditional or unconditional branch.
    Branch,
    /// Any other (ALU/FP/...) instruction.
    Other,
}

impl OpKind {
    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }
}

/// The memory-hierarchy level (class) that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// Served by the core-private L1 data cache.
    L1,
    /// Served by the core-private L2 cache.
    L2,
    /// Served by the shared system-level cache.
    Slc,
    /// Served by a DRAM node (local or remote; see [`DataSource`]).
    Dram,
}

/// Identifier of one memory node in the topology (0 = local DDR).
pub type NodeId = u8;

/// The precise memory-system source that served an access, as recorded in
/// the SPE data-source packet.
///
/// The one-byte encoding is modeled on the Neoverse data-source encodings
/// (L1D `0x0`, L2 `0x8`, system cache, local and far DRAM), extended with
/// the serving node id in the high nibble for DRAM-class sources:
///
/// | Source              | Code           | Neoverse analogue     |
/// |---------------------|----------------|-----------------------|
/// | [`DataSource::L1`]  | `0x00`         | `L1D` (`0b0000`)      |
/// | [`DataSource::L2`]  | `0x08`         | `L2` (`0b1000`)       |
/// | [`DataSource::Slc`] | `0x09`         | `SYS_CACHE` class     |
/// | [`DataSource::Dram`]`(n)`       | `0x0d \| n << 4` | `DRAM` (`0b1101`) |
/// | [`DataSource::RemoteDram`]`(n)` | `0x0e \| n << 4` | `REMOTE` / far-memory class |
///
/// Node ids occupy the high nibble, so up to 16 nodes round-trip through
/// the packet codec (the machine model caps the topology at
/// [`crate::config::MAX_MEM_NODES`] nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DataSource {
    /// Served by the core-private L1 data cache.
    L1,
    /// Served by the core-private L2 cache.
    L2,
    /// Served by the shared system-level cache.
    Slc,
    /// Served by a local-tier DRAM node (node 0 is the DDR of the socket).
    Dram(NodeId),
    /// Served by a remote-tier (CXL-style) DRAM node.
    RemoteDram(NodeId),
}

/// Low-nibble class code of a local DRAM data source.
const DS_CLASS_DRAM: u8 = 0xd;
/// Low-nibble class code of a remote DRAM data source.
const DS_CLASS_REMOTE: u8 = 0xe;

impl DataSource {
    /// The memory-level class of this source.
    pub fn level(self) -> MemLevel {
        match self {
            DataSource::L1 => MemLevel::L1,
            DataSource::L2 => MemLevel::L2,
            DataSource::Slc => MemLevel::Slc,
            DataSource::Dram(_) | DataSource::RemoteDram(_) => MemLevel::Dram,
        }
    }

    /// Whether the access was served by a DRAM node (any tier).
    pub fn is_dram_class(self) -> bool {
        matches!(self, DataSource::Dram(_) | DataSource::RemoteDram(_))
    }

    /// Whether the access was served by a remote-tier node.
    pub fn is_remote(self) -> bool {
        matches!(self, DataSource::RemoteDram(_))
    }

    /// The serving memory node, for DRAM-class sources.
    pub fn node(self) -> Option<NodeId> {
        match self {
            DataSource::Dram(n) | DataSource::RemoteDram(n) => Some(n),
            _ => None,
        }
    }

    /// Encoding used in the SPE data-source packet (see the type-level
    /// table). Node ids above 15 are masked to the low 4 bits.
    pub fn encode(self) -> u8 {
        match self {
            DataSource::L1 => 0x0,
            DataSource::L2 => 0x8,
            DataSource::Slc => 0x9,
            DataSource::Dram(n) => DS_CLASS_DRAM | (n & 0xf) << 4,
            DataSource::RemoteDram(n) => DS_CLASS_REMOTE | (n & 0xf) << 4,
        }
    }

    /// Inverse of [`DataSource::encode`]. Returns `None` for codes that do
    /// not name a source (including cache-class codes with a non-zero node
    /// nibble).
    pub fn decode(code: u8) -> Option<Self> {
        let node = code >> 4;
        match code & 0xf {
            _ if code == 0x0 => Some(DataSource::L1),
            _ if code == 0x8 => Some(DataSource::L2),
            _ if code == 0x9 => Some(DataSource::Slc),
            DS_CLASS_DRAM => Some(DataSource::Dram(node)),
            DS_CLASS_REMOTE => Some(DataSource::RemoteDram(node)),
            _ => None,
        }
    }
}

impl MemLevel {
    /// Encoding used in the SPE data-source packet for the canonical source
    /// of this class (node 0 for DRAM). Kept for class-level tooling; the
    /// full encoding lives on [`DataSource::encode`].
    pub fn data_source_code(self) -> u8 {
        match self {
            MemLevel::L1 => DataSource::L1.encode(),
            MemLevel::L2 => DataSource::L2.encode(),
            MemLevel::Slc => DataSource::Slc.encode(),
            MemLevel::Dram => DataSource::Dram(0).encode(),
        }
    }

    /// Inverse of [`MemLevel::data_source_code`] at class granularity.
    pub fn from_data_source_code(code: u8) -> Option<Self> {
        DataSource::decode(code).map(DataSource::level)
    }
}

/// A retired operation as seen by per-core observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Synthetic program counter (work-loads use stable per-kernel values so
    /// samples can be attributed to code regions).
    pub pc: u64,
    /// Virtual data address (0 for non-memory operations).
    pub vaddr: u64,
    /// Access size in bytes (0 for non-memory operations).
    pub size: u32,
}

impl Op {
    /// Construct a load operation.
    pub fn load(pc: u64, vaddr: u64, size: u32) -> Self {
        Op { kind: OpKind::Load, pc, vaddr, size }
    }

    /// Construct a store operation.
    pub fn store(pc: u64, vaddr: u64, size: u32) -> Self {
        Op { kind: OpKind::Store, pc, vaddr, size }
    }

    /// Construct a non-memory operation.
    pub fn other(pc: u64) -> Self {
        Op { kind: OpKind::Other, pc, vaddr: 0, size: 0 }
    }

    /// Construct a branch operation.
    pub fn branch(pc: u64) -> Self {
        Op { kind: OpKind::Branch, pc, vaddr: 0, size: 0 }
    }
}

/// Result of sending a memory access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOutcome {
    /// The precise source that served the access (carries the node for
    /// DRAM-class accesses).
    pub source: DataSource,
    /// Total load-to-use latency in cycles, including any queueing delay at
    /// the serving memory node.
    pub latency_cycles: u64,
    /// Cycles of issue-slot occupancy charged to the core for this access.
    pub occupancy_cycles: u64,
    /// Bytes moved on the memory bus (0 unless the access reached DRAM).
    pub bus_bytes: u32,
    /// Whether this access was the first touch of its virtual page (used for
    /// resident-set-size accounting and page placement).
    pub first_touch: bool,
}

impl MemOutcome {
    /// An outcome representing a hit in the given source with no bus traffic.
    pub fn hit(source: DataSource, latency_cycles: u64, occupancy_cycles: u64) -> Self {
        MemOutcome { source, latency_cycles, occupancy_cycles, bus_bytes: 0, first_touch: false }
    }

    /// The memory-level class of the serving source.
    pub fn level(&self) -> MemLevel {
        self.source.level()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        let l = Op::load(0x400100, 0x1000, 8);
        assert_eq!(l.kind, OpKind::Load);
        assert!(l.kind.is_mem());
        let s = Op::store(0x400104, 0x2000, 4);
        assert_eq!(s.kind, OpKind::Store);
        assert!(s.kind.is_mem());
        let o = Op::other(0x400108);
        assert!(!o.kind.is_mem());
        assert_eq!(o.vaddr, 0);
        let b = Op::branch(0x40010c);
        assert_eq!(b.kind, OpKind::Branch);
        assert!(!b.kind.is_mem());
    }

    #[test]
    fn data_source_roundtrip_including_nodes() {
        let mut sources = vec![DataSource::L1, DataSource::L2, DataSource::Slc];
        for n in 0..16u8 {
            sources.push(DataSource::Dram(n));
            sources.push(DataSource::RemoteDram(n));
        }
        for src in sources {
            assert_eq!(DataSource::decode(src.encode()), Some(src), "{src:?}");
        }
        assert_eq!(DataSource::decode(0x3), None);
        assert_eq!(DataSource::decode(0x18), None, "L2 with a node nibble is invalid");
        assert_eq!(DataSource::decode(0xff), None);
    }

    #[test]
    fn data_source_codes_match_neoverse_classes() {
        assert_eq!(DataSource::L1.encode(), 0x0);
        assert_eq!(DataSource::L2.encode(), 0x8);
        assert_eq!(DataSource::Slc.encode(), 0x9);
        assert_eq!(DataSource::Dram(0).encode(), 0xd);
        assert_eq!(DataSource::Dram(1).encode(), 0x1d);
        assert_eq!(DataSource::RemoteDram(1).encode(), 0x1e);
    }

    #[test]
    fn data_source_classification() {
        assert_eq!(DataSource::Dram(0).level(), MemLevel::Dram);
        assert_eq!(DataSource::RemoteDram(2).level(), MemLevel::Dram);
        assert!(DataSource::RemoteDram(1).is_dram_class());
        assert!(DataSource::RemoteDram(1).is_remote());
        assert!(!DataSource::Dram(0).is_remote());
        assert_eq!(DataSource::Dram(3).node(), Some(3));
        assert_eq!(DataSource::Slc.node(), None);
    }

    #[test]
    fn mem_level_data_source_roundtrip() {
        for level in [MemLevel::L1, MemLevel::L2, MemLevel::Slc, MemLevel::Dram] {
            assert_eq!(MemLevel::from_data_source_code(level.data_source_code()), Some(level));
        }
        assert_eq!(MemLevel::from_data_source_code(0x3), None);
        // Any node decodes to the DRAM class.
        assert_eq!(
            MemLevel::from_data_source_code(DataSource::RemoteDram(1).encode()),
            Some(MemLevel::Dram)
        );
    }

    #[test]
    fn mem_level_ordering_reflects_distance() {
        assert!(MemLevel::L1 < MemLevel::L2);
        assert!(MemLevel::L2 < MemLevel::Slc);
        assert!(MemLevel::Slc < MemLevel::Dram);
    }

    #[test]
    fn outcome_level_follows_source() {
        let hit = MemOutcome::hit(DataSource::L2, 13, 3);
        assert_eq!(hit.level(), MemLevel::L2);
        assert_eq!(hit.bus_bytes, 0);
        let far = MemOutcome::hit(DataSource::RemoteDram(1), 900, 20);
        assert_eq!(far.level(), MemLevel::Dram);
    }
}
