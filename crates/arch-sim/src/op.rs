//! Operation and memory-access outcome types.
//!
//! Every operation retired by a simulated core is described by an [`Op`];
//! memory operations additionally carry a [`MemOutcome`] describing which
//! level of the hierarchy served them and at what latency. These are exactly
//! the quantities ARM SPE records per sampled operation (PC, data address,
//! event flags, latency, data source), so the SPE unit model consumes them
//! directly.

/// The kind of a retired operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// A load instruction (reads memory).
    Load,
    /// A store instruction (writes memory).
    Store,
    /// A conditional or unconditional branch.
    Branch,
    /// Any other (ALU/FP/...) instruction.
    Other,
}

impl OpKind {
    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load | OpKind::Store)
    }
}

/// The memory-hierarchy level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MemLevel {
    /// Served by the core-private L1 data cache.
    L1,
    /// Served by the core-private L2 cache.
    L2,
    /// Served by the shared system-level cache.
    Slc,
    /// Served by DRAM.
    Dram,
}

impl MemLevel {
    /// Encoding used in the SPE data-source packet (model-specific values;
    /// chosen to be stable for decoding in tests and tools).
    pub fn data_source_code(self) -> u8 {
        match self {
            MemLevel::L1 => 0x0,
            MemLevel::L2 => 0x8,
            MemLevel::Slc => 0x9,
            MemLevel::Dram => 0xd,
        }
    }

    /// Inverse of [`MemLevel::data_source_code`].
    pub fn from_data_source_code(code: u8) -> Option<Self> {
        match code {
            0x0 => Some(MemLevel::L1),
            0x8 => Some(MemLevel::L2),
            0x9 => Some(MemLevel::Slc),
            0xd => Some(MemLevel::Dram),
            _ => None,
        }
    }
}

/// A retired operation as seen by per-core observers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Op {
    /// Operation kind.
    pub kind: OpKind,
    /// Synthetic program counter (work-loads use stable per-kernel values so
    /// samples can be attributed to code regions).
    pub pc: u64,
    /// Virtual data address (0 for non-memory operations).
    pub vaddr: u64,
    /// Access size in bytes (0 for non-memory operations).
    pub size: u32,
}

impl Op {
    /// Construct a load operation.
    pub fn load(pc: u64, vaddr: u64, size: u32) -> Self {
        Op { kind: OpKind::Load, pc, vaddr, size }
    }

    /// Construct a store operation.
    pub fn store(pc: u64, vaddr: u64, size: u32) -> Self {
        Op { kind: OpKind::Store, pc, vaddr, size }
    }

    /// Construct a non-memory operation.
    pub fn other(pc: u64) -> Self {
        Op { kind: OpKind::Other, pc, vaddr: 0, size: 0 }
    }

    /// Construct a branch operation.
    pub fn branch(pc: u64) -> Self {
        Op { kind: OpKind::Branch, pc, vaddr: 0, size: 0 }
    }
}

/// Result of sending a memory access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemOutcome {
    /// Level that ultimately served the access.
    pub level: MemLevel,
    /// Total load-to-use latency in cycles, including any DRAM queueing delay.
    pub latency_cycles: u64,
    /// Cycles of issue-slot occupancy charged to the core for this access.
    pub occupancy_cycles: u64,
    /// Bytes moved on the memory bus (0 unless the access reached DRAM).
    pub bus_bytes: u32,
    /// Whether this access was the first touch of its virtual page (used for
    /// resident-set-size accounting).
    pub first_touch: bool,
}

impl MemOutcome {
    /// An outcome representing a hit in the given level with no bus traffic.
    pub fn hit(level: MemLevel, latency_cycles: u64, occupancy_cycles: u64) -> Self {
        MemOutcome { level, latency_cycles, occupancy_cycles, bus_bytes: 0, first_touch: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_constructors() {
        let l = Op::load(0x400100, 0x1000, 8);
        assert_eq!(l.kind, OpKind::Load);
        assert!(l.kind.is_mem());
        let s = Op::store(0x400104, 0x2000, 4);
        assert_eq!(s.kind, OpKind::Store);
        assert!(s.kind.is_mem());
        let o = Op::other(0x400108);
        assert!(!o.kind.is_mem());
        assert_eq!(o.vaddr, 0);
        let b = Op::branch(0x40010c);
        assert_eq!(b.kind, OpKind::Branch);
        assert!(!b.kind.is_mem());
    }

    #[test]
    fn mem_level_data_source_roundtrip() {
        for level in [MemLevel::L1, MemLevel::L2, MemLevel::Slc, MemLevel::Dram] {
            assert_eq!(MemLevel::from_data_source_code(level.data_source_code()), Some(level));
        }
        assert_eq!(MemLevel::from_data_source_code(0x3), None);
    }

    #[test]
    fn mem_level_ordering_reflects_distance() {
        assert!(MemLevel::L1 < MemLevel::L2);
        assert!(MemLevel::L2 < MemLevel::Slc);
        assert!(MemLevel::Slc < MemLevel::Dram);
    }
}
