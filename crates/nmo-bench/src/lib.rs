//! # nmo-bench — benchmark harness and figure/table reproduction
//!
//! This crate regenerates every table and figure of the paper's evaluation
//! (Sections VI and VII) on the simulated platform:
//!
//! | Experiment | Content | Function |
//! |---|---|---|
//! | Table I | NMO environment variables | [`experiments::table1`] |
//! | Table II | Platform specification | [`experiments::table2`] |
//! | Fig. 2 | Capacity over time (PageRank, In-memory Analytics) | [`experiments::fig2_fig3_cloud`] |
//! | Fig. 3 | Bandwidth over time (same workloads) | [`experiments::fig2_fig3_cloud`] |
//! | Fig. 4 | STREAM tagged address scatter | [`experiments::fig4_stream_scatter`] |
//! | Fig. 5/6 | CFD access patterns at 1 and 32 threads | [`experiments::fig5_fig6_cfd_scatter`] |
//! | Fig. 7 | Samples vs sampling period (5 trials) | [`experiments::fig7_samples_vs_period`] |
//! | Fig. 8 | Accuracy / overhead / collisions vs period | [`experiments::fig8_sensitivity`] |
//! | Fig. 9 | Aux-buffer size sweep | [`experiments::fig9_aux_buffer`] |
//! | Fig. 10/11 | Thread-count sweep | [`experiments::fig10_fig11_threads`] |
//!
//! Beyond the paper's figures, `bench_trace` ([`trace_bench`]) measures the
//! trace store: live encode overhead, bytes/sample vs a fixed-width layout,
//! and indexed parallel replay speedup over re-simulation.
//!
//! The `repro` binary drives them all (`repro --exp all --quick`) and writes
//! CSV series under `results/`. Criterion benches cover the profiler's hot
//! paths (SPE packet decode, aux drain, cache simulation) and a reduced-size
//! figure workload.

#![warn(missing_docs)]

pub mod experiments;
pub mod harness;
pub mod stream_adaptive;
pub mod stream_throughput;
pub mod trace_bench;

pub use harness::{baseline_run, profiled_run, BaselineRun, Scale, WorkloadKind};
