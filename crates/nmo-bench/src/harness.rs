//! Shared harness: workload construction, baseline and profiled runs.

use arch_sim::{Machine, MachineConfig};
use nmo::{NmoConfig, NmoError, Profile, ProfileSession, RunMeasurement};
use spe::SpeStatsSnapshot;
use workloads::{
    bfs::GraphKind, BfsBench, CfdBench, InMemAnalytics, PageRank, StreamBench, Workload,
};

/// Which of the five paper workloads to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// STREAM (Triad).
    Stream,
    /// Rodinia CFD.
    Cfd,
    /// Rodinia BFS.
    Bfs,
    /// CloudSuite Graph Analytics (Page Rank).
    PageRank,
    /// CloudSuite In-memory Analytics (ALS).
    InMemAnalytics,
}

impl WorkloadKind {
    /// Display name used in figure legends.
    pub fn label(self) -> &'static str {
        match self {
            WorkloadKind::Stream => "stream",
            WorkloadKind::Cfd => "cfd",
            WorkloadKind::Bfs => "bfs",
            WorkloadKind::PageRank => "pagerank",
            WorkloadKind::InMemAnalytics => "inmem-analytics",
        }
    }
}

/// Problem-size scaling of the experiments.
///
/// The paper's runs (1 GiB STREAM arrays, full CloudSuite datasets) would
/// take hours through a software-simulated memory hierarchy, so the harness
/// scales the inputs down while keeping every access *pattern* intact.
/// `Scale::quick()` targets a few minutes for the full figure set;
/// `Scale::full()` is an order of magnitude larger.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// STREAM array elements.
    pub stream_elems: usize,
    /// STREAM kernel repetitions.
    pub stream_iters: usize,
    /// CFD mesh elements.
    pub cfd_elements: usize,
    /// CFD solver iterations.
    pub cfd_iters: usize,
    /// BFS vertices.
    pub bfs_vertices: usize,
    /// BFS average degree.
    pub bfs_degree: usize,
    /// PageRank vertices.
    pub pr_vertices: usize,
    /// PageRank iterations.
    pub pr_iters: usize,
    /// In-memory-analytics users.
    pub inmem_users: usize,
    /// In-memory-analytics movies.
    pub inmem_movies: usize,
    /// Ratings per user.
    pub inmem_ratings_per_user: usize,
    /// ALS sweeps.
    pub inmem_sweeps: usize,
    /// Trials per configuration point.
    pub trials: usize,
    /// Threads used by the period sweeps (Figures 7 and 8).
    pub sweep_threads: usize,
    /// Threads used by the aux-buffer sweep (Figure 9).
    pub aux_sweep_threads: usize,
    /// Largest aux-buffer size (pages) in the Figure 9 sweep.
    pub aux_sweep_max_pages: u64,
    /// Thread counts for the Figure 10/11 sweep.
    pub thread_sweep_max: usize,
}

impl Scale {
    /// A few-minutes configuration (default for `repro`).
    ///
    /// The period/aux-buffer sweeps run on 2 threads with large-ish inputs so
    /// the per-core SPE record volume exceeds the default 1 MiB aux buffer at
    /// small sampling periods — the regime where the paper observes sample
    /// drops and the accuracy collapse of Figure 8a.
    pub fn quick() -> Self {
        Scale {
            stream_elems: 8_000_000,
            stream_iters: 2,
            cfd_elements: 100_000,
            cfd_iters: 6,
            bfs_vertices: 1 << 19,
            bfs_degree: 8,
            pr_vertices: 1 << 15,
            pr_iters: 4,
            inmem_users: 3_000,
            inmem_movies: 4_000,
            inmem_ratings_per_user: 40,
            inmem_sweeps: 3,
            trials: 2,
            sweep_threads: 2,
            aux_sweep_threads: 2,
            aux_sweep_max_pages: 512,
            thread_sweep_max: 32,
        }
    }

    /// A larger configuration closer to the paper's setup (tens of minutes).
    pub fn full() -> Self {
        Scale {
            stream_elems: 8_000_000,
            stream_iters: 5,
            cfd_elements: 200_000,
            cfd_iters: 10,
            bfs_vertices: 1 << 20,
            bfs_degree: 8,
            pr_vertices: 1 << 18,
            pr_iters: 6,
            inmem_users: 20_000,
            inmem_movies: 10_000,
            inmem_ratings_per_user: 60,
            inmem_sweeps: 4,
            trials: 5,
            sweep_threads: 16,
            aux_sweep_threads: 32,
            aux_sweep_max_pages: 2048,
            thread_sweep_max: 128,
        }
    }

    /// A tiny configuration for unit/integration tests (sub-second).
    pub fn tiny() -> Self {
        Scale {
            stream_elems: 40_000,
            stream_iters: 2,
            cfd_elements: 2_000,
            cfd_iters: 2,
            bfs_vertices: 1 << 12,
            bfs_degree: 6,
            pr_vertices: 1 << 11,
            pr_iters: 2,
            inmem_users: 200,
            inmem_movies: 400,
            inmem_ratings_per_user: 10,
            inmem_sweeps: 2,
            trials: 2,
            sweep_threads: 4,
            aux_sweep_threads: 4,
            aux_sweep_max_pages: 64,
            thread_sweep_max: 8,
        }
    }

    /// Instantiate a fresh workload of the given kind at this scale.
    pub fn build(&self, kind: WorkloadKind) -> Box<dyn Workload> {
        match kind {
            WorkloadKind::Stream => {
                Box::new(StreamBench::new(self.stream_elems, self.stream_iters))
            }
            WorkloadKind::Cfd => Box::new(CfdBench::new(self.cfd_elements, self.cfd_iters)),
            WorkloadKind::Bfs => {
                Box::new(BfsBench::new(self.bfs_vertices, self.bfs_degree, GraphKind::Uniform))
            }
            WorkloadKind::PageRank => Box::new(PageRank::new(self.pr_vertices, 8, self.pr_iters)),
            WorkloadKind::InMemAnalytics => Box::new(InMemAnalytics::new(
                self.inmem_users,
                self.inmem_movies,
                self.inmem_ratings_per_user,
                self.inmem_sweeps,
            )),
        }
    }
}

/// Result of a baseline (unprofiled) run — the `perf stat` side of Eq. (1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BaselineRun {
    /// Total `mem_access` events counted.
    pub mem_counted: u64,
    /// Execution time in simulated cycles.
    pub cycles: u64,
}

/// The machine preset every experiment runs on (Table II).
pub fn paper_machine() -> Machine {
    Machine::new(MachineConfig::ampere_altra_max())
}

/// Run a workload without any profiling and return the baseline measurements.
pub fn baseline_run(
    kind: WorkloadKind,
    scale: &Scale,
    threads: usize,
) -> Result<BaselineRun, NmoError> {
    let machine = paper_machine();
    let annotations = nmo::Annotations::new();
    let mut workload = scale.build(kind);
    let cores: Vec<usize> = (0..threads).collect();
    workload.setup(&machine, &annotations)?;
    workload.run(&machine, &annotations, &cores)?;
    if !workload.verify() {
        return Err(NmoError::Workload(format!(
            "{} failed verification in baseline run",
            kind.label()
        )));
    }
    let counters = machine.counters();
    Ok(BaselineRun { mem_counted: counters.mem_access, cycles: counters.cycles })
}

/// Run a workload under an NMO profiling session and return the profile.
pub fn profiled_run(
    kind: WorkloadKind,
    scale: &Scale,
    threads: usize,
    config: NmoConfig,
) -> Result<Profile, NmoError> {
    ProfileSession::builder()
        .machine_config(MachineConfig::ampere_altra_max())
        .config(config)
        .threads(threads)
        .workload(scale.build(kind))
        .build()?
        .run()
}

/// Run one trial of the sensitivity study and fold it into a [`RunMeasurement`].
pub fn measure(
    kind: WorkloadKind,
    scale: &Scale,
    threads: usize,
    config: NmoConfig,
    baseline: &BaselineRun,
) -> Result<RunMeasurement, NmoError> {
    let aux_pages = config.aux_pages(64 * 1024);
    let period = config.period;
    let profile = profiled_run(kind, scale, threads, config)?;
    Ok(RunMeasurement {
        period,
        aux_pages,
        threads,
        baseline_cycles: baseline.cycles,
        profiled_cycles: profile.elapsed_cycles,
        mem_counted: baseline.mem_counted,
        processed_samples: profile.processed_samples,
        spe: merge_spe(&profile),
    })
}

fn merge_spe(profile: &Profile) -> SpeStatsSnapshot {
    profile.spe
}

#[cfg(test)]
mod tests {
    use super::*;
    use nmo::NmoConfig;

    #[test]
    fn baseline_and_profiled_runs_agree_on_workload_size() {
        let scale = Scale::tiny();
        let baseline = baseline_run(WorkloadKind::Stream, &scale, 2).unwrap();
        assert!(baseline.mem_counted > 0);
        let profile =
            profiled_run(WorkloadKind::Stream, &scale, 2, NmoConfig::paper_default(200)).unwrap();
        // The profiled run issues the same number of memory accesses.
        assert_eq!(profile.counters.mem_access, baseline.mem_counted);
        assert!(profile.processed_samples > 0);
        // The counter backend ran alongside SPE and agrees with the machine.
        assert_eq!(profile.perf_count("mem_access"), Some(profile.counters.mem_access));
    }

    #[test]
    fn measure_produces_consistent_measurement() {
        let scale = Scale::tiny();
        let baseline = baseline_run(WorkloadKind::Bfs, &scale, 2).unwrap();
        let m = measure(WorkloadKind::Bfs, &scale, 2, NmoConfig::paper_default(500), &baseline)
            .unwrap();
        assert_eq!(m.period, 500);
        assert!(m.processed_samples > 0);
        assert!(m.accuracy() > 0.0 && m.accuracy() <= 1.0);
        assert!(m.overhead() >= 0.0);
    }

    #[test]
    fn every_workload_kind_builds_and_verifies_at_tiny_scale() {
        let scale = Scale::tiny();
        for kind in [
            WorkloadKind::Stream,
            WorkloadKind::Cfd,
            WorkloadKind::Bfs,
            WorkloadKind::PageRank,
            WorkloadKind::InMemAnalytics,
        ] {
            let b = baseline_run(kind, &scale, 2).unwrap();
            assert!(b.mem_counted > 0, "{}", kind.label());
            assert!(b.cycles > 0, "{}", kind.label());
        }
    }
}
