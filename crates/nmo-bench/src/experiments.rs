//! One function per table/figure of the paper's evaluation.
//!
//! Every function returns its data as rows of strings (ready for CSV or
//! terminal tables) so the `repro` binary can both print and persist them.
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison of each experiment.

use std::path::Path;

use arch_sim::MachineConfig;
use nmo::report::{format_table, write_csv};
use nmo::{Mode, NmoConfig, NmoError, Sweep, SweepPoint};

use crate::harness::{baseline_run, measure, profiled_run, Scale, WorkloadKind};

/// A rendered experiment result: a title, a header, and data rows.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment identifier ("fig7", "table1", ...).
    pub id: String,
    /// Human-readable title.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl ExperimentResult {
    /// Render as an aligned text table.
    pub fn to_table(&self) -> String {
        let header: Vec<&str> = self.header.iter().map(|s| s.as_str()).collect();
        format!("== {} ({}) ==\n{}", self.title, self.id, format_table(&header, &self.rows))
    }

    /// Write as `<id>.csv` under `dir`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<String> {
        let header: Vec<&str> = self.header.iter().map(|s| s.as_str()).collect();
        let path = dir.join(format!("{}.csv", self.id));
        write_csv(&path, &header, &self.rows)?;
        Ok(path.display().to_string())
    }
}

fn f3(x: f64) -> String {
    format!("{x:.3}")
}

fn pct(x: f64) -> String {
    format!("{:.3}", x * 100.0)
}

/// Table I — the supported environment variables and their defaults.
pub fn table1() -> ExperimentResult {
    ExperimentResult {
        id: "table1".into(),
        title: "NMO environment variables".into(),
        header: vec!["option".into(), "description".into(), "default".into()],
        rows: NmoConfig::table1()
            .into_iter()
            .map(|(o, d, def)| vec![o.to_string(), d.to_string(), def.to_string()])
            .collect(),
    }
}

/// Table II — the (simulated) hardware platform.
pub fn table2() -> ExperimentResult {
    let c = MachineConfig::ampere_altra_max();
    let rows = vec![
        vec!["CPU".to_string(), c.name.clone()],
        vec!["Cores".to_string(), format!("{} Armv8.2+ cores", c.num_cores)],
        vec!["Frequency".to_string(), format!("{:.1} GHz", c.freq_hz as f64 / 1e9)],
        vec!["Mem. capacity".to_string(), format!("{} GB", c.total_mem_bytes() >> 30)],
        vec!["Mem. technology".to_string(), "DDR4 (simulated)".to_string()],
        vec![
            "Peak bandwidth".to_string(),
            format!("{:.0} GB/s", c.local_mem().peak_bytes_per_cycle * c.freq_hz as f64 / 1e9),
        ],
        vec!["L1d".to_string(), format!("{} KB per core", c.l1d.size_bytes >> 10)],
        vec!["L2".to_string(), format!("{} MB per core", c.l2.size_bytes >> 20)],
        vec!["System Level Cache".to_string(), format!("{} MB", c.slc.size_bytes >> 20)],
        vec!["Page size".to_string(), format!("{} KB", c.page_bytes >> 10)],
    ];
    ExperimentResult {
        id: "table2".into(),
        title: "Hardware specification of the (simulated) ARM platform".into(),
        header: vec!["item".into(), "value".into()],
        rows,
    }
}

/// Figures 2 and 3 — capacity and bandwidth over time for the two CloudSuite
/// workloads (Page Rank and In-memory Analytics), profiled without SPE
/// sampling (levels 1 and 2 only), 32 threads in the paper.
pub fn fig2_fig3_cloud(scale: &Scale, threads: usize) -> Result<Vec<ExperimentResult>, NmoError> {
    let mut results = Vec::new();
    for (kind, label) in
        [(WorkloadKind::PageRank, "pagerank"), (WorkloadKind::InMemAnalytics, "inmem")]
    {
        let config = NmoConfig {
            enabled: true,
            mode: Mode::None,
            track_rss: true,
            track_bandwidth: true,
            name: label.to_string(),
            ..Default::default()
        };
        let profile = profiled_run(kind, scale, threads, config)?;

        let cap_rows: Vec<Vec<String>> = profile
            .capacity
            .points
            .iter()
            .map(|p| vec![format!("{:.6}", p.time_s), format!("{:.6}", p.rss_gib)])
            .collect();
        results.push(ExperimentResult {
            id: format!("fig2_capacity_{label}"),
            title: format!(
                "Memory capacity over time — {label} (peak {:.3} GiB, {:.1}% of node)",
                profile.capacity.peak_gib(),
                profile.capacity.peak_utilization * 100.0
            ),
            header: vec!["time_s".into(), "rss_gib".into()],
            rows: cap_rows,
        });

        let bw_rows: Vec<Vec<String>> = profile
            .bandwidth
            .points
            .iter()
            .map(|p| vec![format!("{:.6}", p.time_s), format!("{:.3}", p.gib_per_s)])
            .collect();
        results.push(ExperimentResult {
            id: format!("fig3_bandwidth_{label}"),
            title: format!(
                "Memory bandwidth over time — {label} (peak {:.1} GiB/s)",
                profile.bandwidth.peak_gib_per_s
            ),
            header: vec!["time_s".into(), "gib_per_s".into()],
            rows: bw_rows,
        });
    }
    Ok(results)
}

/// Figure 4 — STREAM sampled-address scatter with tagged arrays and the
/// `triad` phase (8 OpenMP threads, 5 iterations in the paper).
pub fn fig4_stream_scatter(scale: &Scale, period: u64) -> Result<ExperimentResult, NmoError> {
    let config = NmoConfig { name: "stream".into(), ..NmoConfig::paper_default(period) };
    let profile = profiled_run(WorkloadKind::Stream, scale, 8, config)?;
    let regions = profile.regions();
    let rows: Vec<Vec<String>> = regions
        .scatter
        .iter()
        .map(|s| {
            vec![
                format!("{:.6}", s.time_s),
                format!("{:#x}", s.vaddr),
                s.tag.clone().unwrap_or_else(|| "-".into()),
                s.phase.clone().unwrap_or_else(|| "-".into()),
                (s.is_store as u8).to_string(),
            ]
        })
        .collect();
    Ok(ExperimentResult {
        id: "fig4_stream_scatter".into(),
        title: format!(
            "STREAM tagged memory-access samples (8 threads, {} samples, hottest tag: {})",
            rows.len(),
            regions.hottest_tag().map(|t| t.name.clone()).unwrap_or_default()
        ),
        header: vec![
            "time_s".into(),
            "vaddr".into(),
            "tag".into(),
            "phase".into(),
            "is_store".into(),
        ],
        rows,
    })
}

/// Figures 5 and 6 — CFD sampled-address scatter at 1 thread and at
/// `many_threads` threads, plus the high-resolution window of Figure 6.
pub fn fig5_fig6_cfd_scatter(
    scale: &Scale,
    period: u64,
    many_threads: usize,
) -> Result<Vec<ExperimentResult>, NmoError> {
    let mut out = Vec::new();
    for (id, threads) in [("fig5_cfd_1thread", 1usize), ("fig6_cfd_multithread", many_threads)] {
        let config = NmoConfig { name: "cfd".into(), ..NmoConfig::paper_default(period) };
        let profile = profiled_run(WorkloadKind::Cfd, scale, threads, config)?;
        let regions = profile.regions();
        let rows: Vec<Vec<String>> = regions
            .scatter
            .iter()
            .map(|s| {
                vec![
                    format!("{:.6}", s.time_s),
                    format!("{:#x}", s.vaddr),
                    s.tag.clone().unwrap_or_else(|| "-".into()),
                ]
            })
            .collect();
        out.push(ExperimentResult {
            id: id.into(),
            title: format!("CFD sampled accesses, {threads} thread(s), {} samples", rows.len()),
            header: vec!["time_s".into(), "vaddr".into(), "tag".into()],
            rows,
        });
        if threads > 1 {
            // High-resolution zoom: the middle 10% of the computation loop.
            let t_end = profile.elapsed_ns as f64 * 1e-9;
            let window = regions.window(t_end * 0.45, t_end * 0.55, None);
            let rows: Vec<Vec<String>> = window
                .iter()
                .map(|s| {
                    vec![
                        format!("{:.9}", s.time_s),
                        format!("{:#x}", s.vaddr),
                        s.tag.clone().unwrap_or_else(|| "-".into()),
                    ]
                })
                .collect();
            out.push(ExperimentResult {
                id: "fig6_cfd_highres_window".into(),
                title: format!("CFD high-resolution trace window ({} samples)", rows.len()),
                header: vec!["time_s".into(), "vaddr".into(), "tag".into()],
                rows,
            });
        }
    }
    Ok(out)
}

/// The sampling periods of Figure 7 (512 … 131072, powers of two).
pub fn fig7_periods() -> Vec<u64> {
    (9..=17).map(|p| 1u64 << p).collect()
}

/// The sampling periods of Figure 8 (1000 … 128000, doubling).
pub fn fig8_periods() -> Vec<u64> {
    vec![1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000]
}

fn sweep_workloads() -> Vec<WorkloadKind> {
    vec![WorkloadKind::Stream, WorkloadKind::Cfd, WorkloadKind::Bfs]
}

/// Figure 7 — number of collected SPE samples vs sampling period, with every
/// trial reported separately (the paper plots 5 trials per point).
pub fn fig7_samples_vs_period(scale: &Scale) -> Result<ExperimentResult, NmoError> {
    let threads = scale.sweep_threads;
    let mut rows = Vec::new();
    for kind in sweep_workloads() {
        for period in fig7_periods() {
            for trial in 0..scale.trials {
                let config = NmoConfig::paper_default(period);
                let profile = profiled_run(kind, scale, threads, config)?;
                rows.push(vec![
                    kind.label().to_string(),
                    period.to_string(),
                    (trial + 1).to_string(),
                    profile.processed_samples.to_string(),
                ]);
            }
        }
    }
    Ok(ExperimentResult {
        id: "fig7_samples_vs_period".into(),
        title: "Collected ARM SPE samples vs sampling period (per trial)".into(),
        header: vec!["workload".into(), "period".into(), "trial".into(), "samples".into()],
        rows,
    })
}

/// Figures 8a–8c — accuracy, time overhead, and sample collisions vs
/// sampling period for STREAM, CFD and BFS.
pub fn fig8_sensitivity(scale: &Scale) -> Result<ExperimentResult, NmoError> {
    let threads = scale.sweep_threads;
    let mut rows = Vec::new();
    for kind in sweep_workloads() {
        let baseline = baseline_run(kind, scale, threads)?;
        let mut sweep = Sweep::new(kind.label());
        for period in fig8_periods() {
            let trials: Vec<_> = (0..scale.trials)
                .map(|_| measure(kind, scale, threads, NmoConfig::paper_default(period), &baseline))
                .collect::<Result<_, _>>()?;
            let point = SweepPoint::from_trials(period, &trials);
            rows.push(vec![
                kind.label().to_string(),
                period.to_string(),
                pct(point.accuracy_mean),
                pct(point.accuracy_std),
                pct(point.overhead_mean),
                pct(point.overhead_std),
                f3(point.collisions_mean),
                f3(point.samples_mean()),
            ]);
            sweep.points.push(point);
        }
    }
    Ok(ExperimentResult {
        id: "fig8_sensitivity".into(),
        title: "Accuracy / time overhead / sample collisions vs sampling period".into(),
        header: vec![
            "workload".into(),
            "period".into(),
            "accuracy_pct".into(),
            "accuracy_std_pct".into(),
            "overhead_pct".into(),
            "overhead_std_pct".into(),
            "collisions".into(),
            "samples".into(),
        ],
        rows,
    })
}

/// The aux-buffer sizes (in 64 KiB pages) of Figure 9.
pub fn fig9_aux_pages(max_pages: u64) -> Vec<u64> {
    [2u64, 8, 32, 128, 512, 2048].into_iter().filter(|p| *p <= max_pages).collect()
}

/// Figure 9 — impact of the aux-buffer size on time overhead and accuracy
/// (STREAM, fixed ring buffer, fixed sampling period).
pub fn fig9_aux_buffer(scale: &Scale, period: u64) -> Result<ExperimentResult, NmoError> {
    let threads = scale.aux_sweep_threads;
    let baseline = baseline_run(WorkloadKind::Stream, scale, threads)?;
    let mut rows = Vec::new();
    for pages in fig9_aux_pages(scale.aux_sweep_max_pages) {
        let trials: Vec<_> = (0..scale.trials)
            .map(|_| {
                let config = NmoConfig {
                    auxbuf_pages_override: Some(pages),
                    ..NmoConfig::paper_default(period)
                };
                measure(WorkloadKind::Stream, scale, threads, config, &baseline)
            })
            .collect::<Result<_, _>>()?;
        let point = SweepPoint::from_trials(pages, &trials);
        rows.push(vec![
            pages.to_string(),
            pct(point.overhead_mean),
            pct(point.accuracy_mean),
            f3(point.samples_mean()),
            f3(point.collisions_mean),
        ]);
    }
    Ok(ExperimentResult {
        id: "fig9_aux_buffer".into(),
        title: format!(
            "Impact of the aux-buffer size (STREAM, {threads} threads, period {period})"
        ),
        header: vec![
            "aux_pages".into(),
            "overhead_pct".into(),
            "accuracy_pct".into(),
            "samples".into(),
            "collisions".into(),
        ],
        rows,
    })
}

/// The thread counts of Figures 10 and 11.
pub fn fig10_thread_counts(max_threads: usize) -> Vec<usize> {
    [1usize, 2, 4, 8, 16, 32, 48, 64, 96, 128].into_iter().filter(|t| *t <= max_threads).collect()
}

/// Figures 10 and 11 — impact of the OpenMP thread count on time overhead,
/// accuracy, and sample collisions (STREAM, 16-page aux buffer).
pub fn fig10_fig11_threads(scale: &Scale, period: u64) -> Result<ExperimentResult, NmoError> {
    let mut rows = Vec::new();
    for threads in fig10_thread_counts(scale.thread_sweep_max) {
        let baseline = baseline_run(WorkloadKind::Stream, scale, threads)?;
        let trials: Vec<_> = (0..scale.trials)
            .map(|_| {
                let config = NmoConfig {
                    auxbufsize_mib: 1, // 16 pages of 64 KiB
                    ..NmoConfig::paper_default(period)
                };
                measure(WorkloadKind::Stream, scale, threads, config, &baseline)
            })
            .collect::<Result<_, _>>()?;
        let point = SweepPoint::from_trials(threads as u64, &trials);
        rows.push(vec![
            threads.to_string(),
            pct(point.overhead_mean),
            pct(point.accuracy_mean),
            f3(point.collisions_mean),
            f3(point.samples_mean()),
        ]);
    }
    Ok(ExperimentResult {
        id: "fig10_fig11_threads".into(),
        title: format!("Impact of thread count (STREAM, 16-page aux buffer, period {period})"),
        header: vec![
            "threads".into(),
            "overhead_pct".into(),
            "accuracy_pct".into(),
            "collisions".into(),
            "samples".into(),
        ],
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_render() {
        let t1 = table1();
        assert_eq!(t1.rows.len(), 7);
        assert!(t1.to_table().contains("NMO_PERIOD"));
        let t2 = table2();
        assert!(t2.to_table().contains("128 Armv8.2+ cores"));
        assert!(t2.rows.iter().any(|r| r[1].contains("200 GB/s")));
    }

    #[test]
    fn period_and_size_grids_match_paper() {
        assert_eq!(fig7_periods().first(), Some(&512));
        assert_eq!(fig7_periods().last(), Some(&131072));
        assert_eq!(fig8_periods(), vec![1000, 2000, 4000, 8000, 16000, 32000, 64000, 128000]);
        assert_eq!(fig9_aux_pages(2048), vec![2, 8, 32, 128, 512, 2048]);
        assert_eq!(fig9_aux_pages(128), vec![2, 8, 32, 128]);
        assert_eq!(fig10_thread_counts(128).last(), Some(&128));
        assert_eq!(fig10_thread_counts(8), vec![1, 2, 4, 8]);
    }

    #[test]
    fn fig4_scatter_has_tagged_samples_at_tiny_scale() {
        let scale = Scale::tiny();
        let r = fig4_stream_scatter(&scale, 200).unwrap();
        assert!(!r.rows.is_empty());
        // Most STREAM samples land in a tagged array.
        let tagged = r.rows.iter().filter(|row| row[2] != "-").count();
        assert!(tagged * 10 >= r.rows.len() * 9, "tagged {tagged} of {}", r.rows.len());
    }

    #[test]
    fn fig2_fig3_series_nonempty_at_tiny_scale() {
        let scale = Scale::tiny();
        let results = fig2_fig3_cloud(&scale, 2).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert!(!r.rows.is_empty(), "{} empty", r.id);
        }
    }
}
