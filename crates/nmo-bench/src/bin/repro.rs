//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro [--exp all|table1|table2|fig2|fig3|fig4|fig5|fig6|fig7|fig8|fig9|fig10|fig11]
//!       [--quick|--full|--tiny] [--out results/]
//! ```
//!
//! Each experiment prints an aligned table to stdout and writes a CSV file
//! under the output directory.

use std::path::{Path, PathBuf};

use nmo::NmoError;
use nmo_bench::experiments::{self, ExperimentResult};
use nmo_bench::harness::Scale;
use nmo_bench::{stream_adaptive, stream_throughput, trace_bench};

struct Args {
    exp: String,
    scale: Scale,
    scale_name: &'static str,
    out: PathBuf,
}

fn parse_args() -> Args {
    let mut exp = "all".to_string();
    let mut scale = Scale::quick();
    let mut scale_name = "quick";
    let mut out = PathBuf::from("results");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--exp" => exp = args.next().unwrap_or_else(|| "all".into()),
            "--quick" => {
                scale = Scale::quick();
                scale_name = "quick";
            }
            "--full" => {
                scale = Scale::full();
                scale_name = "full";
            }
            "--tiny" => {
                scale = Scale::tiny();
                scale_name = "tiny";
            }
            "--out" => out = PathBuf::from(args.next().unwrap_or_else(|| "results".into())),
            "--help" | "-h" => {
                println!(
                    "usage: repro [--exp <id|all>] [--quick|--full|--tiny] [--out <dir>]\n\
                     experiments: table1 table2 fig2 fig3 fig4 fig5 fig6 fig7 fig8 fig9 fig10 \
                     fig11 bench_stream bench_stream_adaptive bench_trace"
                );
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }
    Args { exp, scale, scale_name, out }
}

const EXPERIMENT_IDS: &[&str] = &[
    "table1",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "bench_stream",
    "bench_stream_adaptive",
    "bench_trace",
];

fn wants(exp: &str, ids: &[&str]) -> bool {
    exp == "all" || ids.contains(&exp)
}

fn emit(results: Vec<ExperimentResult>, out: &Path, max_print_rows: usize) {
    for r in results {
        println!("{}", r.to_table_truncated(max_print_rows));
        match r.write_csv(out) {
            Ok(path) => println!("  -> wrote {path}\n"),
            Err(e) => eprintln!("  !! failed to write {}: {e}", r.id),
        }
    }
}

trait Truncate {
    fn to_table_truncated(&self, max_rows: usize) -> String;
}

impl Truncate for ExperimentResult {
    fn to_table_truncated(&self, max_rows: usize) -> String {
        if self.rows.len() <= max_rows {
            return self.to_table();
        }
        let mut clipped = self.clone();
        clipped.rows.truncate(max_rows);
        format!(
            "{}  ... ({} more rows in the CSV)\n",
            clipped.to_table(),
            self.rows.len() - max_rows
        )
    }
}

fn run(args: &Args) -> Result<(), NmoError> {
    let exp = args.exp.as_str();
    if exp != "all" && !EXPERIMENT_IDS.contains(&exp) {
        return Err(NmoError::Config(format!(
            "unknown experiment '{exp}'; valid ids: all {}",
            EXPERIMENT_IDS.join(" ")
        )));
    }
    let scale = &args.scale;

    if wants(exp, &["table1"]) {
        emit(vec![experiments::table1()], &args.out, 20);
    }
    if wants(exp, &["table2"]) {
        emit(vec![experiments::table2()], &args.out, 20);
    }
    if wants(exp, &["fig2", "fig3"]) {
        let threads = scale.sweep_threads.max(4);
        emit(experiments::fig2_fig3_cloud(scale, threads)?, &args.out, 12);
    }
    if wants(exp, &["fig4"]) {
        emit(vec![experiments::fig4_stream_scatter(scale, 2048)?], &args.out, 12);
    }
    if wants(exp, &["fig5", "fig6"]) {
        let many = scale.thread_sweep_max.min(32);
        emit(experiments::fig5_fig6_cfd_scatter(scale, 2048, many)?, &args.out, 12);
    }
    if wants(exp, &["fig7"]) {
        emit(vec![experiments::fig7_samples_vs_period(scale)?], &args.out, 40);
    }
    if wants(exp, &["fig8"]) {
        emit(vec![experiments::fig8_sensitivity(scale)?], &args.out, 40);
    }
    if wants(exp, &["fig9"]) {
        emit(vec![experiments::fig9_aux_buffer(scale, 2048)?], &args.out, 20);
    }
    if wants(exp, &["fig10", "fig11"]) {
        emit(vec![experiments::fig10_fig11_threads(scale, 4096)?], &args.out, 20);
    }
    if wants(exp, &["bench_stream"]) {
        // Pipeline-throughput sweep (samples/sec vs shard count at 1/32/128
        // simulated cores); also writes BENCH_stream.json to seed the perf
        // trajectory of the sharded streaming pipeline.
        let records_per_core = match args.scale_name {
            "tiny" => 2_000,
            "full" => 65_536,
            _ => 16_384,
        };
        let points = stream_throughput::default_sweep(records_per_core);
        emit(vec![stream_throughput::to_experiment(&points)], &args.out, 20);
        match stream_throughput::write_bench_stream_json(&points, &args.out) {
            Ok(path) => println!("  -> wrote {path}\n"),
            Err(e) => eprintln!("  !! failed to write BENCH_stream.json: {e}"),
        }
    }
    if wants(exp, &["bench_stream_adaptive"]) {
        // Adaptive controller vs the static shard sweep at the 128-core
        // configuration; writes BENCH_stream_adaptive.json with the
        // best-adaptive / best-static headline ratio.
        let records_per_core = match args.scale_name {
            "tiny" => 2_000,
            "full" => 32_768,
            _ => 8_192,
        };
        let (static_points, adaptive_points) =
            stream_adaptive::adaptive_sweep(128, &[1, 2, 4, 8], records_per_core);
        emit(vec![stream_adaptive::to_experiment(&static_points, &adaptive_points)], &args.out, 20);
        if let Some(ratio) =
            stream_adaptive::adaptive_vs_best_static(&static_points, &adaptive_points)
        {
            println!("  adaptive vs best static: {ratio:.3}x\n");
        }
        match stream_adaptive::write_bench_stream_adaptive_json(
            &static_points,
            &adaptive_points,
            &args.out,
        ) {
            Ok(path) => println!("  -> wrote {path}\n"),
            Err(e) => eprintln!("  !! failed to write BENCH_stream_adaptive.json: {e}"),
        }
    }
    if wants(exp, &["bench_trace"]) {
        // Trace-store benchmark: live encode overhead, storage density vs a
        // fixed-width layout, and indexed replay speedup over re-simulating
        // the recorded session; writes BENCH_trace.json.
        let records_per_core = match args.scale_name {
            "tiny" => 2_000,
            "full" => 65_536,
            _ => 16_384,
        };
        let result = trace_bench::bench_trace(8, 4, records_per_core, 3);
        emit(vec![trace_bench::to_experiment(&result)], &args.out, 20);
        println!(
            "  encode overhead {:.2}%, {:.2} bytes/sample, indexed replay {:.1}x vs re-simulate\n",
            result.encode_overhead_fraction.max(0.0) * 100.0,
            result.bytes_per_sample,
            result.indexed_speedup_vs_resimulate
        );
        match trace_bench::write_bench_trace_json(&result, &args.out) {
            Ok(path) => println!("  -> wrote {path}\n"),
            Err(e) => eprintln!("  !! failed to write BENCH_trace.json: {e}"),
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let t0 = std::time::Instant::now();
    println!(
        "NMO reproduction harness — scale: {}, output: {}\n",
        args.scale_name,
        args.out.display()
    );
    if let Err(e) = std::fs::create_dir_all(&args.out) {
        eprintln!("cannot create output directory {}: {e}", args.out.display());
        std::process::exit(1);
    }
    if let Err(e) = run(&args) {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
    println!("done in {:.1} s", t0.elapsed().as_secs_f64());
}
